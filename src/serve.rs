//! Concurrent query serving: a framed-TCP front door over one
//! [`Session`] — many clients, one dataset, one shared morsel pool.
//!
//! # Protocol
//!
//! Length-framed messages both ways: a 4-byte big-endian payload length,
//! then that many bytes of UTF-8. A request payload is one header line
//! plus an optional body:
//!
//! ```text
//! QUERY [planner=hsp] [format=json|table|csv|tsv] [explain=1] [sip=1]
//!       [threads=N] [timeout_ms=N] [mem_budget_mb=N] [row_budget=N]
//!       [strategy=auto|operator] [cache=off]
//! <query text>
//!
//! UPDATE [timeout_ms=N] [mem_budget_mb=N]
//! <update text>
//!
//! PING | STATS | SHUTDOWN
//! ```
//!
//! Responses are `OK <k=v …>\n<body>` or a single-line
//! `ERR <CODE> <message>` with codes `PARSE`, `PLAN`, `EXEC`, `TIMEOUT`,
//! `CANCELLED`, `MEM`, `UNSUPPORTED`, `BUSY`, `PROTO`, `SHUTDOWN`.
//!
//! # Concurrency
//!
//! One thread per connection, but **not** one worker pool per query:
//! every admitted request executes on the session's shared morsel pool,
//! which round-robins morsel batches across the queries in flight (the
//! pool's `cross_query_switches` counter, surfaced by `STATS`, proves
//! it). Admission control bounds the requests actually executing
//! (`max_inflight`) and the requests waiting for a slot (`max_queue`);
//! beyond that the server answers `ERR BUSY` instead of queueing without
//! bound. Updates go through the same session and publish by pointer
//! swap, so in-flight reads keep their snapshot.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use hsp_engine::explain::render_runtime_metrics;
use hsp_engine::ExecStrategy;

use crate::results;
use crate::session::{Planner, Request, Session};

/// Frames larger than this are rejected as a protocol error.
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// How long a connection thread sleeps in its read poll before
/// re-checking the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Write one length-framed payload.
///
/// Header and payload go out in a single `write_all` — two separate
/// writes would make Nagle's algorithm hold the payload segment back
/// until the header's (delayed) ACK, adding tens of milliseconds to
/// every request/response round trip.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&len.to_be_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()
}

/// Read one length-framed payload; `Ok(None)` on clean EOF before the
/// first header byte.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < header.len() {
        let n = r.read(&mut header[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(io::ErrorKind::UnexpectedEof.into());
        }
        filled += n;
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Requests allowed to execute at once; further requests queue.
    pub max_inflight: usize,
    /// Requests allowed to wait for an execution slot; beyond this the
    /// server answers `ERR BUSY` immediately.
    pub max_queue: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            max_inflight: 8,
            max_queue: 16,
        }
    }
}

/// Lifetime request counters, readable while the server runs.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    connections: AtomicU64,
    queries_ok: AtomicU64,
    updates_ok: AtomicU64,
    errors: AtomicU64,
    rejected: AtomicU64,
}

impl ServeMetrics {
    /// Connections accepted.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Queries answered `OK`.
    pub fn queries_ok(&self) -> u64 {
        self.queries_ok.load(Ordering::Relaxed)
    }

    /// Updates answered `OK`.
    pub fn updates_ok(&self) -> u64 {
        self.updates_ok.load(Ordering::Relaxed)
    }

    /// Requests answered `ERR` (any code but `BUSY`).
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Requests rejected by admission control (`ERR BUSY`).
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }
}

/// The counting-semaphore admission gate: `max_inflight` permits, at
/// most `max_queue` waiters, reject beyond that.
struct Admission {
    max_inflight: usize,
    max_queue: usize,
    /// `(executing, waiting)`.
    state: Mutex<(usize, usize)>,
    freed: Condvar,
}

enum AdmitError {
    Busy,
    ShuttingDown,
}

struct Permit<'a>(&'a Admission);

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut state = self
            .0
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state.0 -= 1;
        self.0.freed.notify_one();
    }
}

impl Admission {
    fn new(max_inflight: usize, max_queue: usize) -> Self {
        Admission {
            max_inflight: max_inflight.max(1),
            max_queue,
            state: Mutex::new((0, 0)),
            freed: Condvar::new(),
        }
    }

    fn acquire(&self, shutdown: &AtomicBool) -> Result<Permit<'_>, AdmitError> {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if state.0 < self.max_inflight {
            state.0 += 1;
            return Ok(Permit(self));
        }
        if state.1 >= self.max_queue {
            return Err(AdmitError::Busy);
        }
        state.1 += 1;
        loop {
            if shutdown.load(Ordering::Acquire) {
                state.1 -= 1;
                return Err(AdmitError::ShuttingDown);
            }
            if state.0 < self.max_inflight {
                state.0 += 1;
                state.1 -= 1;
                return Ok(Permit(self));
            }
            // Timed wait so waiters notice shutdown.
            let (guard, _) = self
                .freed
                .wait_timeout(state, POLL_INTERVAL)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state = guard;
        }
    }
}

struct ServerShared {
    session: Session,
    admission: Admission,
    metrics: ServeMetrics,
    shutdown: AtomicBool,
}

/// The server factory; see [`Server::start`].
pub struct Server;

impl Server {
    /// Bind `config.addr` and serve `session` until
    /// [`ServerHandle::shutdown`] is called (or a client sends
    /// `SHUTDOWN`).
    pub fn start(session: Session, config: ServeConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(ServerShared {
            session: session.clone(),
            admission: Admission::new(config.max_inflight, config.max_queue),
            metrics: ServeMetrics::default(),
            shutdown: AtomicBool::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("hsp-serve-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(ServerHandle {
            addr,
            shared,
            accept: Some(accept),
            session,
        })
    }
}

/// A running server: its bound address and its off switch.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept: Option<JoinHandle<()>>,
    session: Session,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served session (e.g. to read [`Session::pool_stats`]).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Request counters.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.shared.metrics
    }

    /// Stop accepting, finish in-flight requests, join all threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    /// Block until the server stops (a client sent `SHUTDOWN`).
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    let mut conn_id = 0u64;
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Small framed request/response round trips: Nagle only
                // adds delayed-ACK latency here.
                let _ = stream.set_nodelay(true);
                shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
                let conn_shared = Arc::clone(&shared);
                conn_id += 1;
                let handle = std::thread::Builder::new()
                    .name(format!("hsp-serve-conn-{conn_id}"))
                    .spawn(move || connection_loop(stream, conn_shared))
                    .expect("spawning a connection thread");
                conns.push(handle);
                // Opportunistically reap finished connections so a
                // long-lived server doesn't accumulate handles.
                conns.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => break,
        }
    }
    for conn in conns {
        let _ = conn.join();
    }
}

fn connection_loop(stream: TcpStream, shared: Arc<ServerShared>) {
    let mut reader = match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    let mut writer = stream;
    // Short read timeouts so the thread notices shutdown between (and
    // within) frames.
    let _ = reader.set_read_timeout(Some(POLL_INTERVAL));
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let payload = match read_frame(&mut reader) {
            Ok(Some(payload)) => payload,
            Ok(None) => return, // client hung up
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        };
        let (response, stop) = match std::str::from_utf8(&payload) {
            Ok(text) => handle_request(&shared, text),
            Err(_) => ("ERR PROTO request is not UTF-8".to_string(), false),
        };
        if write_frame(&mut writer, response.as_bytes()).is_err() {
            return;
        }
        if stop {
            shared.shutdown.store(true, Ordering::Release);
            return;
        }
    }
}

/// Options parsed from a request header line.
struct ReqOpts {
    planner: Planner,
    format: String,
    explain: bool,
    sip: bool,
    threads: Option<usize>,
    timeout_ms: Option<u64>,
    mem_budget_mb: Option<usize>,
    row_budget: Option<usize>,
    strategy: ExecStrategy,
    cache: bool,
}

impl ReqOpts {
    fn parse(tokens: std::str::SplitWhitespace<'_>) -> Result<ReqOpts, String> {
        let mut opts = ReqOpts {
            planner: Planner::Hsp,
            format: "json".into(),
            explain: false,
            sip: false,
            threads: None,
            timeout_ms: None,
            mem_budget_mb: None,
            row_budget: None,
            strategy: ExecStrategy::default(),
            cache: true,
        };
        for token in tokens {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("malformed option `{token}` (expected k=v)"))?;
            let int = |name: &str| -> Result<usize, String> {
                value
                    .parse::<usize>()
                    .map_err(|_| format!("option {name} needs an integer, got `{value}`"))
            };
            match key {
                "planner" => opts.planner = value.parse()?,
                "format" => {
                    if !matches!(value, "table" | "json" | "csv" | "tsv") {
                        return Err(format!("unknown format `{value}` (table|json|csv|tsv)"));
                    }
                    opts.format = value.into();
                }
                "explain" => opts.explain = value == "1" || value == "true",
                "sip" => opts.sip = value == "1" || value == "true",
                "threads" => opts.threads = Some(int("threads")?.max(1)),
                "timeout_ms" => opts.timeout_ms = Some(int("timeout_ms")? as u64),
                "mem_budget_mb" => opts.mem_budget_mb = Some(int("mem_budget_mb")?),
                "row_budget" => opts.row_budget = Some(int("row_budget")?),
                "strategy" => opts.strategy = value.parse()?,
                "cache" => opts.cache = !matches!(value, "off" | "0" | "false"),
                other => return Err(format!("unknown option `{other}`")),
            }
        }
        Ok(opts)
    }

    fn request(&self, text: &str) -> Request {
        let mut request = Request::new(text)
            .with_planner(self.planner)
            .with_strategy(self.strategy);
        if self.explain {
            request = request.with_explain();
        }
        if self.sip {
            request = request.with_sip();
        }
        if let Some(threads) = self.threads {
            request = request.with_threads(threads);
        }
        if let Some(ms) = self.timeout_ms {
            request = request.with_timeout_ms(ms);
        }
        if let Some(mb) = self.mem_budget_mb {
            request = request.with_mem_budget_mb(mb);
        }
        if let Some(rows) = self.row_budget {
            request = request.with_row_budget(rows);
        }
        if !self.cache {
            request = request.without_cache();
        }
        request
    }
}

/// One line, whatever the source error looked like.
fn flat(msg: impl std::fmt::Display) -> String {
    msg.to_string().replace('\n', "; ")
}

/// Dispatch one request payload; returns the response payload and
/// whether the server should shut down.
fn handle_request(shared: &ServerShared, payload: &str) -> (String, bool) {
    let (header, body) = match payload.split_once('\n') {
        Some((header, body)) => (header, body),
        None => (payload, ""),
    };
    let mut tokens = header.split_whitespace();
    let command = tokens.next().unwrap_or("");
    match command {
        "PING" => ("OK pong".to_string(), false),
        "STATS" => (render_stats(shared), false),
        "SHUTDOWN" => ("OK bye".to_string(), true),
        "QUERY" | "UPDATE" => {
            let opts = match ReqOpts::parse(tokens) {
                Ok(opts) => opts,
                Err(e) => {
                    shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                    return (format!("ERR PROTO {}", flat(e)), false);
                }
            };
            let permit = match shared.admission.acquire(&shared.shutdown) {
                Ok(permit) => permit,
                Err(AdmitError::Busy) => {
                    shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                    return (
                        format!(
                            "ERR BUSY server at capacity ({} executing, {} queued)",
                            shared.admission.max_inflight, shared.admission.max_queue
                        ),
                        false,
                    );
                }
                Err(AdmitError::ShuttingDown) => {
                    shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                    return ("ERR SHUTDOWN server is shutting down".to_string(), false);
                }
            };
            let response = if command == "QUERY" {
                run_query(shared, &opts, body)
            } else {
                run_update(shared, &opts, body)
            };
            drop(permit);
            (response, false)
        }
        other => {
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
            (
                format!(
                    "ERR PROTO unknown command `{}` (QUERY|UPDATE|PING|STATS|SHUTDOWN)",
                    flat(other)
                ),
                false,
            )
        }
    }
}

fn run_query(shared: &ServerShared, opts: &ReqOpts, text: &str) -> String {
    match shared.session.query(opts.request(text)) {
        Ok(response) => {
            shared.metrics.queries_ok.fetch_add(1, Ordering::Relaxed);
            let body = if let Some(plan) = &response.explain {
                format!("{plan}{}", render_runtime_metrics(&response.metrics))
            } else if let Some(answer) = response.ask {
                match opts.format.as_str() {
                    "json" => results::ask_to_sparql_json(answer),
                    _ => answer.to_string(),
                }
            } else {
                match opts.format.as_str() {
                    "table" => results::to_table(&response.output),
                    "csv" => results::to_csv(&response.output),
                    "tsv" => results::to_tsv(&response.output),
                    _ => results::to_sparql_json(&response.output),
                }
            };
            format!(
                "OK rows={} cols={} pool_batches={}\n{body}",
                response.output.rows.len(),
                response.output.columns.len(),
                response.metrics.shared_pool_batches,
            )
        }
        Err(e) => {
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
            format!("ERR {} {}", e.code(), flat(e))
        }
    }
}

fn run_update(shared: &ServerShared, opts: &ReqOpts, text: &str) -> String {
    match shared.session.update(opts.request(text)) {
        Ok(response) => {
            shared.metrics.updates_ok.fetch_add(1, Ordering::Relaxed);
            format!(
                "OK inserted={} deleted={} triples={}",
                response.stats.inserted, response.stats.deleted, response.triples
            )
        }
        Err(e) => {
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
            format!("ERR {} {}", e.code(), flat(e))
        }
    }
}

fn render_stats(shared: &ServerShared) -> String {
    let m = &shared.metrics;
    let snapshot = shared.session.snapshot();
    let mut body = format!(
        "connections={}\nqueries_ok={}\nupdates_ok={}\nerrors={}\nrejected={}\ntriples={}\n",
        m.connections(),
        m.queries_ok(),
        m.updates_ok(),
        m.errors(),
        m.rejected(),
        snapshot.len(),
    );
    body.push_str(&format!(
        "store_version={}\nstore_delta_rows={}\nstore_compactions={}\n",
        snapshot.store().version(),
        snapshot.store().delta_rows(),
        snapshot.store().compactions(),
    ));
    let cache = shared.session.cache_stats();
    body.push_str(&format!(
        "plan_cache_hits={}\nplan_cache_misses={}\nresult_cache_hits={}\n\
         result_cache_misses={}\nresult_cache_invalidations={}\nresult_cache_entries={}\n",
        cache.plan_hits,
        cache.plan_misses,
        cache.result_hits,
        cache.result_misses,
        cache.invalidations,
        cache.result_entries,
    ));
    if let Some(pool) = shared.session.pool_stats() {
        body.push_str(&format!(
            "pool_threads={}\npool_batches={}\npool_tasks={}\npool_cross_query_switches={}\n",
            pool.threads, pool.batches, pool.tasks, pool.cross_query_switches,
        ));
    }
    format!("OK\n{body}")
}

/// A minimal blocking client for the framed protocol — used by the CLI
/// smoke mode, the integration tests, and the serve benchmark.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Mirrors the server side: frames are small and latency-bound.
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Send one raw request payload, wait for the response payload.
    pub fn request(&mut self, payload: &str) -> io::Result<String> {
        write_frame(&mut self.stream, payload.as_bytes())?;
        let response = read_frame(&mut self.stream)?
            .ok_or_else(|| io::Error::from(io::ErrorKind::UnexpectedEof))?;
        String::from_utf8(response)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "response is not UTF-8"))
    }

    /// `QUERY` with a `k=v …` option string (may be empty).
    pub fn query(&mut self, options: &str, text: &str) -> io::Result<String> {
        self.request(&format!("QUERY {options}\n{text}"))
    }

    /// `UPDATE` with a `k=v …` option string (may be empty).
    pub fn update(&mut self, options: &str, text: &str) -> io::Result<String> {
        self.request(&format!("UPDATE {options}\n{text}"))
    }

    /// `STATS`, as the raw response payload.
    pub fn stats(&mut self) -> io::Result<String> {
        self.request("STATS")
    }

    /// `PING`, expecting `OK pong`.
    pub fn ping(&mut self) -> io::Result<String> {
        self.request("PING")
    }

    /// Ask the server to shut down.
    pub fn shutdown(&mut self) -> io::Result<String> {
        self.request("SHUTDOWN")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_session() -> Session {
        let ds = hsp_store::Dataset::from_ntriples(
            r#"<http://e/a1> <http://e/name> "Alice" .
<http://e/a2> <http://e/name> "Bob" .
"#,
        )
        .unwrap();
        Session::new(ds)
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let mut buf = Vec::from(u32::MAX.to_be_bytes());
        buf.extend_from_slice(b"xx");
        let mut cursor = io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn ping_stats_and_query_over_tcp() {
        let server = Server::start(demo_session(), ServeConfig::default()).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        assert_eq!(client.ping().unwrap(), "OK pong");
        let response = client
            .query(
                "format=csv",
                "SELECT ?n WHERE { ?p <http://e/name> ?n . } ORDER BY ?n",
            )
            .unwrap();
        let (header, body) = response.split_once('\n').unwrap();
        assert!(header.starts_with("OK rows=2 cols=1"), "{header}");
        assert_eq!(body, "n\r\nAlice\r\nBob\r\n");
        let stats = client.stats().unwrap();
        assert!(stats.contains("queries_ok=1"), "{stats}");
        server.shutdown();
    }

    #[test]
    fn protocol_errors_are_reported() {
        let server = Server::start(demo_session(), ServeConfig::default()).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let response = client.request("FROBNICATE\n").unwrap();
        assert!(response.starts_with("ERR PROTO"), "{response}");
        let response = client.query("format=xml", "ASK { ?s ?p ?o . }").unwrap();
        assert!(response.starts_with("ERR PROTO"), "{response}");
        let response = client.query("", "SELECT ?x WHERE { broken").unwrap();
        assert!(response.starts_with("ERR PARSE"), "{response}");
        server.shutdown();
    }

    #[test]
    fn shutdown_command_stops_the_server() {
        let server = Server::start(demo_session(), ServeConfig::default()).unwrap();
        let addr = server.addr();
        let mut client = Client::connect(addr).unwrap();
        assert_eq!(client.shutdown().unwrap(), "OK bye");
        server.join();
        // The listener is gone; new connections fail once the OS drops
        // the accept queue (give it a moment).
        std::thread::sleep(Duration::from_millis(100));
        let refused = Client::connect(addr).and_then(|mut c| c.ping()).is_err();
        assert!(refused);
    }
}
