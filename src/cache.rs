//! Two-tier query cache keyed on canonical query shape.
//!
//! **Tier 1 — plan cache.** HSP planning is statistics-free: a plan
//! depends only on the *syntactic shape* of the query (paper §3 — the
//! heuristics consult no data statistics). Two queries with the same
//! [canonical shape](hsp_sparql::canonicalize) therefore get the same
//! plan modulo the hoisted constants, so the session caches the lowered
//! [`PhysicalPlan`] per shape key and re-instantiates it with the new
//! request's constants — skipping parsing-to-plan lowering (including
//! the MWIS independence search) entirely. Because the plan never
//! depended on the data, this tier needs **no invalidation**: updates
//! cannot make a cached plan wrong, only a cached *result* stale.
//!
//! **Tier 2 — result cache.** A bounded LRU (entries + approximate
//! bytes) of full [`Response`]s keyed by the exact request text plus
//! every knob that can change the answer or its ordering. Each entry
//! records the set of predicates its query read (`Reads`); the update
//! path reports the predicates it touched ([`Touched`]) and only the
//! entries whose read set intersects are dropped. An update that binds
//! a *variable* predicate flushes the whole tier (the conservative
//! fallback). Entries store decoded [`Term`]s, never dictionary ids, so
//! a hit is byte-identical to a cold run against the same snapshot.
//!
//! Concurrency contract (enforced by the session, documented here):
//! result lookups and inserts happen while holding the store's read
//! lock; invalidation + version bump happen inside the store's write
//! lock, before the new snapshot is published. An insert re-checks the
//! version recorded at lookup time and drops the entry if an update
//! published in between — a reader can therefore never observe a
//! pre-update result after the publishing swap.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use hsp_engine::plan::PhysicalPlan;
use hsp_rdf::Term;
use hsp_sparql::{CanonicalQuery, JoinQuery, TermOrVar, Var};

use crate::session::Response;
use crate::update::Touched;

/// Maximum cached plans (shape keys). Plans are small; this bound only
/// guards against unbounded template churn.
const MAX_PLAN_ENTRIES: usize = 512;
/// Maximum cached responses.
const MAX_RESULT_ENTRIES: usize = 1024;
/// Approximate byte budget for cached responses (32 MiB).
const MAX_RESULT_BYTES: usize = 32 << 20;

/// What a cached result's query read — the invalidation granularity.
#[derive(Debug, Clone)]
pub(crate) enum Reads {
    /// The query only scanned patterns with these constant predicates.
    Predicates(Vec<Term>),
    /// At least one pattern had a variable predicate: any update may
    /// affect this result.
    All,
}

impl Reads {
    fn overlaps(&self, touched: &Touched) -> bool {
        if touched.all {
            return true;
        }
        match self {
            Reads::All => !touched.predicates.is_empty(),
            Reads::Predicates(preds) => preds.iter().any(|p| touched.predicates.contains(p)),
        }
    }
}

/// Point-in-time cache counters, surfaced via `Session::cache_stats`
/// and the server's `STATS` verb.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Plan-tier hits (planning skipped, plan re-instantiated).
    pub plan_hits: u64,
    /// Plan-tier misses (planned fresh, entry stored).
    pub plan_misses: u64,
    /// Result-tier hits (execution skipped entirely).
    pub result_hits: u64,
    /// Result-tier misses among cacheable requests.
    pub result_misses: u64,
    /// Result entries dropped by update-driven invalidation.
    pub invalidations: u64,
    /// Live result entries.
    pub result_entries: usize,
    /// Approximate bytes held by live result entries.
    pub result_bytes: usize,
}

/// A cached plan for one canonical shape: the physical plan and the
/// rewritten query it was lowered from, plus enough of the original
/// request to re-instantiate both for a different member of the shape
/// class (same key, different hoisted constants / variable spellings).
struct PlanEntry {
    plan: PhysicalPlan,
    /// The planner's rewritten query (drives projection and explain).
    planned_query: JoinQuery,
    /// Hoisted constants of the query that populated the entry,
    /// position-aligned with any later hit's `params`.
    params: Vec<Term>,
    /// canonical id -> source var of the populating query.
    canon_vars: Vec<Var>,
    /// Raw projection output names of the populating query, in order.
    proj_names: Vec<String>,
    /// Aggregate output names of the populating query, in order.
    agg_names: Vec<String>,
    /// LRU stamp.
    used: u64,
}

impl PlanEntry {
    /// Re-target the cached plan at `hit` (a query with the same shape
    /// key). Returns `None` when the output-name correspondence is
    /// ambiguous — the caller then plans fresh, which is always safe.
    fn instantiate(
        &self,
        hit: &CanonicalQuery,
        hit_query: &JoinQuery,
    ) -> Option<(PhysicalPlan, JoinQuery)> {
        if hit.params.len() != self.params.len() || hit.canon_vars.len() != self.canon_vars.len() {
            return None; // impossible under key equality; belt and braces
        }
        let mut term_map: HashMap<Term, Term> = HashMap::new();
        for (old, new) in self.params.iter().zip(&hit.params) {
            if old != new {
                term_map.insert(old.clone(), new.clone());
            }
        }
        // Output names are positional: the key fixes projection and
        // aggregate *positions*, so name i of the cached query becomes
        // name i of the hit. A source name reused for two different
        // targets would make by-name replacement ambiguous — bail.
        let mut name_map: HashMap<String, String> = HashMap::new();
        let mut bind = |from: &str, to: &str| -> bool {
            if from == to {
                return !name_map.contains_key(from) || name_map[from] == to;
            }
            match name_map.get(from) {
                Some(prev) => prev == to,
                None => {
                    name_map.insert(from.to_string(), to.to_string());
                    true
                }
            }
        };
        if self.proj_names.len() != hit_query.projection.len()
            || self.agg_names.len() != hit_query.aggregates.len()
        {
            return None;
        }
        for (from, (to, _)) in self.proj_names.iter().zip(&hit_query.projection) {
            if !bind(from, to) {
                return None;
            }
        }
        for (from, agg) in self.agg_names.iter().zip(&hit_query.aggregates) {
            if !bind(from, &agg.name) {
                return None;
            }
        }
        let term = |t: &Term| term_map.get(t).cloned();
        let name = |n: &str| name_map.get(n).cloned();
        let plan = self.plan.instantiate(&term, &name);
        let mut query = instantiate_query(&self.planned_query, &term, &name);
        // Cosmetics: make explain output name variables as the hit
        // request spelled them, via the canonical bijection.
        for (canon, src) in self.canon_vars.iter().enumerate() {
            if let (Some(hit_var), Some(slot)) = (
                hit.canon_vars.get(canon),
                query.var_names.get_mut(src.index()),
            ) {
                if let Some(spelling) = hit_query.var_names.get(hit_var.index()) {
                    slot.clone_from(spelling);
                }
            }
        }
        Some((plan, query))
    }
}

/// Clone `q` with constants and output names substituted. Variables are
/// untouched: execution happens entirely in the cached query's variable
/// space, which the key guarantees is isomorphic to the hit's.
fn instantiate_query(
    q: &JoinQuery,
    term: &impl Fn(&Term) -> Option<Term>,
    name: &impl Fn(&str) -> Option<String>,
) -> JoinQuery {
    let mut out = q.clone();
    for p in &mut out.patterns {
        *p = p.map_consts(term);
    }
    for f in &mut out.filters {
        *f = f.map_consts(term);
    }
    for (n, _) in &mut out.projection {
        if let Some(mapped) = name(n) {
            *n = mapped;
        }
    }
    for agg in &mut out.aggregates {
        if let Some(mapped) = name(&agg.name) {
            agg.name = mapped;
        }
    }
    if let Some(having) = &mut out.having {
        *having = having.map_consts(term);
    }
    for key in &mut out.modifiers.order_by {
        key.expr = key.expr.map_consts(term);
    }
    out
}

/// Derive the read set of a parsed (possibly extended) query from its
/// WHERE group — OPTIONAL/UNION arms included.
pub(crate) fn ast_reads(group: &hsp_sparql::ast::GroupPattern) -> Reads {
    use hsp_sparql::ast::{Element, NodeAst};
    fn walk(group: &hsp_sparql::ast::GroupPattern, preds: &mut Vec<Term>) -> bool {
        for element in &group.elements {
            match element {
                Element::Triple(t) => match &t.predicate {
                    NodeAst::Const(term) => preds.push(term.clone()),
                    NodeAst::Var(_) => return false,
                },
                Element::Filter(_) => {}
                Element::Optional(inner) => {
                    if !walk(inner, preds) {
                        return false;
                    }
                }
                Element::Union(left, right) => {
                    if !walk(left, preds) || !walk(right, preds) {
                        return false;
                    }
                }
            }
        }
        true
    }
    let mut preds = Vec::new();
    if walk(group, &mut preds) {
        preds.sort_unstable();
        preds.dedup();
        Reads::Predicates(preds)
    } else {
        Reads::All
    }
}

/// Derive the read set of a planned join query from its patterns.
pub(crate) fn query_reads(q: &JoinQuery) -> Reads {
    let mut preds = Vec::new();
    for p in &q.patterns {
        match &p.slots[1] {
            TermOrVar::Const(t) => preds.push(t.clone()),
            TermOrVar::Var(_) => return Reads::All,
        }
    }
    preds.sort_unstable();
    preds.dedup();
    Reads::Predicates(preds)
}

struct ResultEntry {
    response: Response,
    reads: Reads,
    bytes: usize,
    used: u64,
}

#[derive(Default)]
struct ResultStore {
    map: HashMap<String, ResultEntry>,
    bytes: usize,
    tick: u64,
}

impl ResultStore {
    fn evict_to_fit(&mut self) {
        while self.map.len() > MAX_RESULT_ENTRIES || self.bytes > MAX_RESULT_BYTES {
            let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some(dropped) = self.map.remove(&oldest) {
                self.bytes -= dropped.bytes;
            }
        }
    }
}

#[derive(Default)]
struct PlanStore {
    map: HashMap<String, PlanEntry>,
    tick: u64,
}

/// The session-owned two-tier cache. See the module docs for the
/// design and the concurrency contract.
pub(crate) struct QueryCache {
    plans: Mutex<PlanStore>,
    results: Mutex<ResultStore>,
    /// Bumped (under the store's write lock) every time an update
    /// publishes a new snapshot; guards result inserts against races.
    version: AtomicU64,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    result_hits: AtomicU64,
    result_misses: AtomicU64,
    invalidations: AtomicU64,
}

impl Default for QueryCache {
    fn default() -> Self {
        QueryCache {
            plans: Mutex::default(),
            results: Mutex::default(),
            version: AtomicU64::new(0),
            plan_hits: AtomicU64::new(0),
            plan_misses: AtomicU64::new(0),
            result_hits: AtomicU64::new(0),
            result_misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }
}

impl QueryCache {
    /// Current dataset version as seen by the cache.
    pub(crate) fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Plan-tier lookup: returns the cached plan re-instantiated for
    /// `query` on a hit. Counts a miss when absent *or* when the entry
    /// cannot be safely re-targeted (the caller plans fresh either way).
    pub(crate) fn plan_get(
        &self,
        canon: &CanonicalQuery,
        query: &JoinQuery,
    ) -> Option<(PhysicalPlan, JoinQuery)> {
        let mut store = self.plans.lock().unwrap_or_else(|e| e.into_inner());
        store.tick += 1;
        let tick = store.tick;
        let instantiated = store.map.get_mut(&canon.key).and_then(|entry| {
            entry.used = tick;
            entry.instantiate(canon, query)
        });
        drop(store);
        match instantiated {
            Some(pair) => {
                self.plan_hits.fetch_add(1, Ordering::Relaxed);
                Some(pair)
            }
            None => {
                self.plan_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store a freshly planned query under its shape key.
    pub(crate) fn plan_insert(
        &self,
        canon: CanonicalQuery,
        query: &JoinQuery,
        plan: &PhysicalPlan,
        planned_query: &JoinQuery,
    ) {
        let entry = PlanEntry {
            plan: plan.clone(),
            planned_query: planned_query.clone(),
            params: canon.params,
            canon_vars: canon.canon_vars,
            proj_names: query.projection.iter().map(|(n, _)| n.clone()).collect(),
            agg_names: query.aggregates.iter().map(|a| a.name.clone()).collect(),
            used: 0,
        };
        let mut store = self.plans.lock().unwrap_or_else(|e| e.into_inner());
        store.tick += 1;
        let tick = store.tick;
        if store.map.len() >= MAX_PLAN_ENTRIES && !store.map.contains_key(&canon.key) {
            if let Some(oldest) = store
                .map
                .iter()
                .min_by_key(|(_, e)| e.used)
                .map(|(k, _)| k.clone())
            {
                store.map.remove(&oldest);
            }
        }
        store.map.insert(
            canon.key,
            PlanEntry {
                used: tick,
                ..entry
            },
        );
    }

    /// Result-tier lookup. Call while holding the store's read lock.
    pub(crate) fn result_get(&self, key: &str) -> Option<Response> {
        let mut store = self.results.lock().unwrap_or_else(|e| e.into_inner());
        store.tick += 1;
        let tick = store.tick;
        let found = store.map.get_mut(key).map(|entry| {
            entry.used = tick;
            entry.response.clone()
        });
        drop(store);
        match found {
            Some(response) => {
                self.result_hits.fetch_add(1, Ordering::Relaxed);
                Some(response)
            }
            None => {
                self.result_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Result-tier insert. Call while holding the store's read lock;
    /// the entry is dropped if an update published a new snapshot since
    /// `version` was read (its invalidation pass could not see us).
    pub(crate) fn result_insert(
        &self,
        key: String,
        response: &Response,
        reads: Reads,
        version: u64,
    ) {
        if self.version.load(Ordering::Acquire) != version {
            return;
        }
        let bytes = approx_response_bytes(response);
        if bytes > MAX_RESULT_BYTES {
            return;
        }
        let mut store = self.results.lock().unwrap_or_else(|e| e.into_inner());
        store.tick += 1;
        let entry = ResultEntry {
            response: response.clone(),
            reads,
            bytes,
            used: store.tick,
        };
        if let Some(old) = store.map.insert(key, entry) {
            store.bytes -= old.bytes;
        }
        store.bytes += bytes;
        store.evict_to_fit();
    }

    /// Drop every result entry whose read set intersects `touched` and
    /// bump the dataset version. Call under the store's write lock,
    /// before publishing the new snapshot. The plan tier is untouched:
    /// statistics-free plans are data-independent.
    pub(crate) fn invalidate(&self, touched: &Touched) {
        self.version.fetch_add(1, Ordering::AcqRel);
        let mut store = self.results.lock().unwrap_or_else(|e| e.into_inner());
        let doomed: Vec<String> = store
            .map
            .iter()
            .filter(|(_, e)| e.reads.overlaps(touched))
            .map(|(k, _)| k.clone())
            .collect();
        for key in &doomed {
            if let Some(dropped) = store.map.remove(key) {
                store.bytes -= dropped.bytes;
            }
        }
        drop(store);
        self.invalidations
            .fetch_add(doomed.len() as u64, Ordering::Relaxed);
    }

    /// Snapshot the counters.
    pub(crate) fn stats(&self) -> CacheStats {
        let (entries, bytes) = {
            let store = self.results.lock().unwrap_or_else(|e| e.into_inner());
            (store.map.len(), store.bytes)
        };
        CacheStats {
            plan_hits: self.plan_hits.load(Ordering::Relaxed),
            plan_misses: self.plan_misses.load(Ordering::Relaxed),
            result_hits: self.result_hits.load(Ordering::Relaxed),
            result_misses: self.result_misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            result_entries: entries,
            result_bytes: bytes,
        }
    }
}

/// Rough memory footprint of a response — sizing only, never
/// correctness; over/under-counting just shifts the eviction point.
fn approx_response_bytes(response: &Response) -> usize {
    let mut bytes = 128;
    for col in &response.output.columns {
        bytes += col.len() + 24;
    }
    for row in &response.output.rows {
        bytes += 24;
        for cell in row {
            bytes += 8;
            if let Some(term) = cell {
                bytes += term.lexical().len() + 48;
            }
        }
    }
    if let Some(explain) = &response.explain {
        bytes += explain.len();
    }
    if let Some(note) = &response.note {
        bytes += note.len();
    }
    bytes
}
