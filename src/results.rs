//! Result serialisation: the W3C SPARQL 1.1 Query Results formats
//! (JSON, CSV, TSV) plus a human-readable table.
//!
//! All serialisers are hand-rolled (no serde) and operate on
//! [`crate::extended::ExtendedOutput`], the term-level
//! result representation shared by the join-query pipeline and the
//! extended (OPTIONAL/UNION) evaluator. Unbound cells (possible under
//! OPTIONAL and UNION padding) serialise per each format's rule: omitted
//! binding in JSON, empty field in CSV/TSV.

use std::fmt::Write as _;

use hsp_rdf::Term;

use crate::extended::ExtendedOutput;

/// Serialise to the SPARQL 1.1 Query Results JSON format
/// (`application/sparql-results+json`).
pub fn to_sparql_json(out: &ExtendedOutput) -> String {
    let mut s = String::new();
    s.push_str("{\"head\":{\"vars\":[");
    for (i, c) in out.columns.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        write!(s, "\"{}\"", escape_json(c)).expect("writing to String");
    }
    s.push_str("]},\"results\":{\"bindings\":[");
    for (ri, row) in out.rows.iter().enumerate() {
        if ri > 0 {
            s.push(',');
        }
        s.push('{');
        let mut first = true;
        for (col, cell) in out.columns.iter().zip(row) {
            let Some(term) = cell else { continue }; // unbound: omitted
            if !first {
                s.push(',');
            }
            first = false;
            write!(s, "\"{}\":", escape_json(col)).expect("writing to String");
            json_term(&mut s, term);
        }
        s.push('}');
    }
    s.push_str("]}}");
    s
}

fn json_term(s: &mut String, term: &Term) {
    match term {
        Term::Iri(iri) => {
            write!(s, "{{\"type\":\"uri\",\"value\":\"{}\"}}", escape_json(iri))
                .expect("writing to String");
        }
        Term::Literal {
            lexical,
            datatype,
            language,
        } => {
            write!(
                s,
                "{{\"type\":\"literal\",\"value\":\"{}\"",
                escape_json(lexical)
            )
            .expect("writing to String");
            if let Some(lang) = language {
                write!(s, ",\"xml:lang\":\"{}\"", escape_json(lang)).expect("writing to String");
            } else if let Some(dt) = datatype {
                write!(s, ",\"datatype\":\"{}\"", escape_json(dt)).expect("writing to String");
            }
            s.push('}');
        }
    }
}

/// Escape a string for a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("writing to String");
            }
            c => out.push(c),
        }
    }
    out
}

/// Serialise an `ASK` result to the SPARQL 1.1 JSON boolean form.
pub fn ask_to_sparql_json(answer: bool) -> String {
    format!("{{\"head\":{{}},\"boolean\":{answer}}}")
}

/// Serialise to the SPARQL 1.1 CSV results format (`text/csv`): header row
/// of variable names, then one row per solution with *plain values* (IRI
/// text and literal lexical forms), RFC-4180 quoting.
pub fn to_csv(out: &ExtendedOutput) -> String {
    let mut s = String::new();
    for (i, c) in out.columns.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&csv_field(c));
    }
    s.push_str("\r\n");
    for row in &out.rows {
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            if let Some(term) = cell {
                s.push_str(&csv_field(term.lexical()));
            }
        }
        s.push_str("\r\n");
    }
    s
}

fn csv_field(value: &str) -> String {
    if value.contains(',') || value.contains('"') || value.contains('\n') || value.contains('\r') {
        format!("\"{}\"", value.replace('"', "\"\""))
    } else {
        value.to_string()
    }
}

/// Serialise to the SPARQL 1.1 TSV results format
/// (`text/tab-separated-values`): `?var` headers, then terms in their
/// N-Triples/Turtle surface syntax.
pub fn to_tsv(out: &ExtendedOutput) -> String {
    let mut s = String::new();
    for (i, c) in out.columns.iter().enumerate() {
        if i > 0 {
            s.push('\t');
        }
        s.push('?');
        s.push_str(c);
    }
    s.push('\n');
    for row in &out.rows {
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                s.push('\t');
            }
            if let Some(term) = cell {
                s.push_str(&term.to_string());
            }
        }
        s.push('\n');
    }
    s
}

/// Render as a human-readable aligned table (for the CLI).
pub fn to_table(out: &ExtendedOutput) -> String {
    let render = |cell: &Option<Term>| -> String {
        match cell {
            Some(t) => t.to_string(),
            None => String::new(),
        }
    };
    let mut widths: Vec<usize> = out.columns.iter().map(|c| c.len() + 1).collect();
    let rendered: Vec<Vec<String>> = out
        .rows
        .iter()
        .map(|row| {
            row.iter()
                .enumerate()
                .map(|(i, cell)| {
                    let s = render(cell);
                    widths[i] = widths[i].max(s.chars().count());
                    s
                })
                .collect()
        })
        .collect();

    let mut s = String::new();
    for (i, c) in out.columns.iter().enumerate() {
        if i > 0 {
            s.push_str("  ");
        }
        write!(s, "{:<width$}", format!("?{c}"), width = widths[i]).expect("writing to String");
    }
    s.push('\n');
    for (i, _) in out.columns.iter().enumerate() {
        if i > 0 {
            s.push_str("  ");
        }
        s.push_str(&"-".repeat(widths[i]));
    }
    s.push('\n');
    for row in &rendered {
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                s.push_str("  ");
            }
            write!(s, "{:<width$}", cell, width = widths[i]).expect("writing to String");
        }
        s.push('\n');
    }
    writeln!(
        s,
        "({} row{})",
        out.rows.len(),
        if out.rows.len() == 1 { "" } else { "s" }
    )
    .expect("writing to String");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExtendedOutput {
        ExtendedOutput {
            columns: vec!["x".into(), "label".into()],
            rows: vec![
                vec![
                    Some(Term::iri("http://e/a")),
                    Some(Term::lang_literal("chat, \"fancy\"", "en")),
                ],
                vec![
                    Some(Term::typed_literal(
                        "42",
                        "http://www.w3.org/2001/XMLSchema#integer",
                    )),
                    None, // unbound
                ],
            ],
        }
    }

    #[test]
    fn json_shape_and_escaping() {
        let j = to_sparql_json(&sample());
        assert!(j.starts_with("{\"head\":{\"vars\":[\"x\",\"label\"]}"));
        assert!(j.contains("\"type\":\"uri\",\"value\":\"http://e/a\""));
        assert!(j.contains("\\\"fancy\\\""));
        assert!(j.contains("\"xml:lang\":\"en\""));
        assert!(j.contains("\"datatype\":\"http://www.w3.org/2001/XMLSchema#integer\""));
        // The unbound cell is omitted entirely.
        assert!(j.contains("{\"x\":{\"type\":\"literal\",\"value\":\"42\""));
    }

    #[test]
    fn json_is_parseable_shape() {
        // Cheap structural sanity: balanced braces/brackets.
        let j = to_sparql_json(&sample());
        let depth = j.chars().fold(0i32, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
    }

    #[test]
    fn json_control_character_escaped() {
        let out = ExtendedOutput {
            columns: vec!["x".into()],
            rows: vec![vec![Some(Term::literal("a\u{01}b"))]],
        };
        assert!(to_sparql_json(&out).contains("\\u0001"));
    }

    #[test]
    fn csv_quoting_rules() {
        let c = to_csv(&sample());
        let mut lines = c.lines();
        assert_eq!(lines.next(), Some("x,label"));
        // Comma + quotes force RFC-4180 quoting with doubled quotes.
        assert_eq!(lines.next(), Some(r#"http://e/a,"chat, ""fancy""""#));
        // Unbound serialises as an empty field.
        assert_eq!(lines.next(), Some("42,"));
    }

    #[test]
    fn tsv_uses_term_syntax() {
        let t = to_tsv(&sample());
        let mut lines = t.lines();
        assert_eq!(lines.next(), Some("?x\t?label"));
        assert_eq!(
            lines.next(),
            Some("<http://e/a>\t\"chat, \\\"fancy\\\"\"@en")
        );
        let line3 = lines.next().unwrap();
        assert!(line3.starts_with("\"42\"^^<"));
        assert!(line3.ends_with('\t'));
    }

    #[test]
    fn table_alignment_and_row_count() {
        let t = to_table(&sample());
        assert!(t.contains("?x"));
        assert!(t.contains("?label"));
        assert!(t.ends_with("(2 rows)\n"));
        let one = ExtendedOutput {
            columns: vec!["x".into()],
            rows: vec![vec![None]],
        };
        assert!(to_table(&one).ends_with("(1 row)\n"));
    }

    #[test]
    fn empty_result_serialises_cleanly() {
        let empty = ExtendedOutput {
            columns: vec!["x".into()],
            rows: vec![],
        };
        assert_eq!(
            to_sparql_json(&empty),
            "{\"head\":{\"vars\":[\"x\"]},\"results\":{\"bindings\":[]}}"
        );
        assert_eq!(to_csv(&empty), "x\r\n");
        assert_eq!(to_tsv(&empty), "?x\n");
    }
}
