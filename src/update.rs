//! SPARQL 1.1 Update execution: `INSERT DATA`, `DELETE DATA`, and
//! `DELETE WHERE` against a mutable [`Dataset`].
//!
//! The paper's setting is read-mostly LOD querying — but its motivation
//! ("freshly (re-)loaded" data sources whose statistics are outdated) is
//! precisely an update workload, and HSP's statistics-free planning is the
//! feature that makes updates cheap: there are *no histograms to rebuild*
//! after a batch of changes. This module exercises that claim: the store's
//! six sorted orders are maintained incrementally
//! ([`hsp_store::Dataset::insert_data`] / [`remove_data`](hsp_store::Dataset::remove_data)),
//! and `DELETE WHERE` patterns are planned by HSP itself — the deletion
//! query runs with the same heuristics as any read query.

use std::collections::HashSet;

use hsp_core::HspPlanner;
use hsp_engine::{execute, ExecConfig};
use hsp_rdf::{IdTriple, Term, Triple};
use hsp_sparql::ast::{GroupPattern, NodeAst, TriplePatternAst, UpdateOp};
use hsp_sparql::{parse_update, JoinQuery, Query, Var};
use hsp_store::Dataset;

/// What an update request did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UpdateStats {
    /// Triples genuinely added by `INSERT DATA`.
    pub inserted: usize,
    /// Triples removed by `DELETE DATA` + `DELETE WHERE`.
    pub deleted: usize,
}

/// The predicates an update request touched — the session result cache's
/// invalidation granularity. Conservative by construction: every
/// predicate that *could* have gained or lost a triple is listed, so an
/// entry surviving invalidation is guaranteed unaffected.
#[derive(Debug, Clone, Default)]
pub struct Touched {
    /// A `DELETE WHERE` pattern had a *variable* predicate: any predicate
    /// may have been touched, so predicate-level invalidation is off and
    /// the whole result cache flushes (the conservative fallback).
    pub all: bool,
    /// Predicates of the ground triples inserted/deleted and of the
    /// constant-predicate `DELETE WHERE` patterns.
    pub predicates: HashSet<Term>,
}

impl Touched {
    fn note_data(&mut self, triples: &[Triple]) {
        for t in triples {
            // Data blocks repeat few distinct predicates across many
            // triples; check before cloning so a large batch does not
            // allocate per-triple inside the writer critical section.
            if !self.predicates.contains(&t.predicate) {
                self.predicates.insert(t.predicate.clone());
            }
        }
    }

    fn note_where(&mut self, group: &GroupPattern) {
        use hsp_sparql::ast::Element;
        for element in &group.elements {
            match element {
                Element::Triple(t) => match &t.predicate {
                    NodeAst::Const(term) => {
                        self.predicates.insert(term.clone());
                    }
                    NodeAst::Var(_) => self.all = true,
                },
                Element::Filter(_) => {}
                Element::Optional(inner) => self.note_where(inner),
                Element::Union(left, right) => {
                    self.note_where(left);
                    self.note_where(right);
                }
            }
        }
    }
}

/// An update failure.
#[derive(Debug)]
pub enum UpdateError {
    /// The update text failed to parse.
    Parse(hsp_sparql::ParseError),
    /// A `DELETE WHERE` pattern could not be planned or executed.
    Eval(String),
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::Parse(e) => write!(f, "{e}"),
            UpdateError::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for UpdateError {}

/// Parse and apply a SPARQL Update request to `ds`.
///
/// Operations run in source order; each sees the effects of the previous
/// one (the SPARQL Update sequencing rule).
///
/// ```
/// use hsp_store::Dataset;
/// use sparql_hsp::update::apply_update;
///
/// let mut ds = Dataset::from_ntriples("").unwrap();
/// let stats = apply_update(&mut ds, r#"
///     INSERT DATA { <http://e/j1> <http://e/issued> "1940" .
///                   <http://e/j2> <http://e/issued> "1941" . }
/// "#).unwrap();
/// assert_eq!(stats.inserted, 2);
/// let stats = apply_update(&mut ds,
///     "DELETE WHERE { ?j <http://e/issued> ?yr . }").unwrap();
/// assert_eq!(stats.deleted, 2);
/// assert!(ds.is_empty());
/// ```
#[deprecated(note = "go through `sparql_hsp::session::Session::update`, which \
                     adds build-and-swap snapshot isolation")]
pub fn apply_update(ds: &mut Dataset, text: &str) -> Result<UpdateStats, UpdateError> {
    let stats = run_update(ds, text, &ExecConfig::unlimited())?;
    // The in-place path has no post-publication hook, so fold oversized
    // deltas back into the base runs here.
    ds.compact_if_needed();
    Ok(stats)
}

/// [`apply_update`] under an explicit [`ExecConfig`]: a timeout, memory
/// budget, or cancel token on the config governs the `DELETE WHERE`
/// matching queries exactly as it governs reads (site `"update"` marks
/// the per-operation checkpoints). `INSERT DATA` / `DELETE DATA` apply
/// whole or not at all; a trip between operations leaves the effects of
/// the already-completed ones in place, per the SPARQL Update sequencing
/// rule.
///
/// Note the semantic difference from [`Session::update`](crate::session::Session::update): the
/// session applies the
/// whole request to a private clone and publishes all-or-nothing,
/// whereas this mutates `ds` in place, op by op.
#[deprecated(note = "go through `sparql_hsp::session::Session::update`, which \
                     adds build-and-swap snapshot isolation")]
pub fn apply_update_with(
    ds: &mut Dataset,
    text: &str,
    config: &ExecConfig,
) -> Result<UpdateStats, UpdateError> {
    let stats = run_update(ds, text, config)?;
    ds.compact_if_needed();
    Ok(stats)
}

/// The in-place update engine behind [`Session::update`](crate::session::Session::update) and
/// the deprecated wrappers:
/// operations run in source order against `ds`, each seeing the effects
/// of the previous one (the SPARQL Update sequencing rule). The session
/// gets its all-or-nothing semantics by pointing `ds` at a private clone
/// and publishing only on `Ok`.
pub(crate) fn run_update(
    ds: &mut Dataset,
    text: &str,
    config: &ExecConfig,
) -> Result<UpdateStats, UpdateError> {
    run_update_traced(ds, text, config).map(|(stats, _)| stats)
}

/// [`run_update`] plus a [`Touched`] trace of the predicates each applied
/// operation could have affected, which the session uses to invalidate
/// exactly the result-cache entries whose plans read them.
pub(crate) fn run_update_traced(
    ds: &mut Dataset,
    text: &str,
    config: &ExecConfig,
) -> Result<(UpdateStats, Touched), UpdateError> {
    let request = parse_update(text).map_err(UpdateError::Parse)?;
    let mut stats = UpdateStats::default();
    let mut touched = Touched::default();
    let governor = config.governor();
    for op in &request.ops {
        if let Some(gov) = &governor {
            gov.check("update")
                .map_err(|e| UpdateError::Eval(e.to_string()))?;
        }
        match op {
            UpdateOp::InsertData(triples) => {
                let triples = ground_triples(triples);
                touched.note_data(&triples);
                stats.inserted += ds.insert_data(&triples);
            }
            UpdateOp::DeleteData(triples) => {
                let triples = ground_triples(triples);
                touched.note_data(&triples);
                stats.deleted += ds.remove_data(&triples);
            }
            UpdateOp::DeleteWhere(group) => {
                touched.note_where(group);
                stats.deleted += delete_where(ds, group, config)?;
            }
        }
    }
    Ok((stats, touched))
}

/// Convert parser-validated ground triple patterns to term triples.
fn ground_triples(patterns: &[TriplePatternAst]) -> Vec<Triple> {
    patterns
        .iter()
        .map(|t| Triple {
            subject: ground(&t.subject),
            predicate: ground(&t.predicate),
            object: ground(&t.object),
        })
        .collect()
}

fn ground(node: &NodeAst) -> Term {
    match node {
        NodeAst::Const(t) => t.clone(),
        NodeAst::Var(_) => unreachable!("parser rejects variables in DATA blocks"),
    }
}

/// `DELETE WHERE`: match the pattern (planned by HSP, like any query),
/// instantiate each pattern for each solution, and remove the resulting
/// ground triples. Returns the number of triples removed.
fn delete_where(
    ds: &mut Dataset,
    group: &GroupPattern,
    config: &ExecConfig,
) -> Result<usize, UpdateError> {
    // The WHERE block is a conjunctive pattern: reuse the query pipeline
    // with a SELECT * projection.
    let query_ast = Query {
        prefixes: Vec::new(),
        ask: false,
        distinct: false,
        reduced: false,
        projection: None,
        aggregates: Vec::new(),
        group_by: Vec::new(),
        having: None,
        where_clause: group.clone(),
        order_by: Vec::new(),
        limit: None,
        offset: None,
    };
    let query = JoinQuery::from_ast(&query_ast).map_err(|e| UpdateError::Eval(e.to_string()))?;
    let planned = HspPlanner::new()
        .plan(&query)
        .map_err(|e| UpdateError::Eval(e.to_string()))?;
    let out = execute(&planned.plan, ds, config).map_err(|e| UpdateError::Eval(e.to_string()))?;

    // Each pattern slot is a constant id or a column of the result table.
    // `DELETE WHERE` ran against the *rewritten* query (HSP substitutes
    // FILTER equalities into the patterns), so instantiate the rewritten
    // patterns — they match the same triples.
    enum Slot {
        Const(hsp_rdf::TermId),
        Col(Var),
    }
    let mut doomed: Vec<IdTriple> = Vec::new();
    for pattern in &planned.query.patterns {
        let slots: Option<Vec<Slot>> = pattern
            .slots
            .iter()
            .map(|s| match s {
                hsp_sparql::TermOrVar::Const(t) => ds.id_of(t).map(Slot::Const),
                hsp_sparql::TermOrVar::Var(v) => Some(Slot::Col(*v)),
            })
            .collect();
        // A constant unknown to the dictionary matches nothing.
        let Some(slots) = slots else { continue };
        for row in 0..out.table.len() {
            let ids: Vec<hsp_rdf::TermId> = slots
                .iter()
                .map(|s| match s {
                    Slot::Const(id) => *id,
                    Slot::Col(v) => out.table.value(*v, row),
                })
                .collect();
            doomed.push([ids[0], ids[1], ids[2]]);
        }
    }
    Ok(ds.remove_encoded(&doomed))
}

#[cfg(test)]
#[allow(deprecated)] // the wrappers stay covered until they are removed
mod tests {
    use super::*;
    use hsp_store::{Order, StorageBackend};

    fn seed() -> Dataset {
        Dataset::from_ntriples(
            r#"<http://e/j1> <http://e/rdf-type> <http://e/Journal> .
<http://e/j1> <http://e/issued> "1940" .
<http://e/j2> <http://e/rdf-type> <http://e/Journal> .
<http://e/j2> <http://e/issued> "1941" .
<http://e/a1> <http://e/rdf-type> <http://e/Article> .
"#,
        )
        .unwrap()
    }

    fn orders_agree(ds: &Dataset) {
        let n = ds.len();
        for order in Order::ALL {
            let scan = ds.store().scan(order, &[]);
            assert_eq!(scan.len(), n, "{order}");
            assert!(scan.as_slice().windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn insert_data_adds_and_dedups() {
        let mut ds = seed();
        let stats = apply_update(
            &mut ds,
            r#"INSERT DATA {
                <http://e/j3> <http://e/issued> "1950" .
                <http://e/j1> <http://e/issued> "1940" .
            }"#,
        )
        .unwrap();
        assert_eq!(stats.inserted, 1); // j1/issued/1940 already present
        assert_eq!(ds.len(), 6);
        orders_agree(&ds);
    }

    #[test]
    fn delete_data_removes_exactly_listed() {
        let mut ds = seed();
        let stats = apply_update(
            &mut ds,
            r#"DELETE DATA {
                <http://e/j1> <http://e/issued> "1940" .
                <http://e/never> <http://e/was> "here" .
            }"#,
        )
        .unwrap();
        assert_eq!(stats.deleted, 1);
        assert_eq!(ds.len(), 4);
        orders_agree(&ds);
    }

    #[test]
    fn delete_where_removes_matching_instantiations() {
        let mut ds = seed();
        let stats = apply_update(
            &mut ds,
            "DELETE WHERE { ?j <http://e/rdf-type> <http://e/Journal> . ?j <http://e/issued> ?yr . }",
        )
        .unwrap();
        // Both journal triples of j1 and j2 are matched: 4 deletions.
        assert_eq!(stats.deleted, 4);
        assert_eq!(ds.len(), 1); // only the Article triple remains
        orders_agree(&ds);
    }

    #[test]
    fn sequenced_operations_see_prior_effects() {
        let mut ds = seed();
        let stats = apply_update(
            &mut ds,
            r#"INSERT DATA { <http://e/j3> <http://e/issued> "1950" . } ;
               DELETE WHERE { ?j <http://e/issued> ?yr . } ;"#,
        )
        .unwrap();
        assert_eq!(stats.inserted, 1);
        assert_eq!(stats.deleted, 3); // j1, j2, and the just-inserted j3
        orders_agree(&ds);
    }

    #[test]
    fn delete_where_with_no_matches_is_a_noop() {
        let mut ds = seed();
        let stats = apply_update(&mut ds, "DELETE WHERE { ?x <http://e/nosuch> ?y . }").unwrap();
        assert_eq!(stats.deleted, 0);
        assert_eq!(ds.len(), 5);
    }

    #[test]
    fn variables_in_data_blocks_are_rejected() {
        let mut ds = seed();
        let err = apply_update(&mut ds, "INSERT DATA { ?x <http://e/p> \"v\" . }");
        assert!(err.is_err());
        let err = apply_update(&mut ds, "DELETE DATA { <http://e/x> ?p \"v\" . }");
        assert!(err.is_err());
    }

    #[test]
    fn queries_still_work_after_updates() {
        use hsp_sparql::JoinQuery;
        let mut ds = seed();
        apply_update(
            &mut ds,
            r#"INSERT DATA { <http://e/j9> <http://e/issued> "1999" . }"#,
        )
        .unwrap();
        let q = JoinQuery::parse("SELECT ?j WHERE { ?j <http://e/issued> \"1999\" . }").unwrap();
        let planned = HspPlanner::new().plan(&q).unwrap();
        let out = execute(&planned.plan, &ds, &ExecConfig::unlimited()).unwrap();
        assert_eq!(out.table.len(), 1);
    }
}
