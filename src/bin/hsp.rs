//! `hsp` — a command-line SPARQL processor built on the HSP reproduction.
//!
//! ```text
//! hsp <data.nt> --query 'SELECT ?s WHERE { ?s ?p ?o . }' [options]
//! hsp <data.nt> --update 'INSERT DATA { … }' [--out new.nt]
//!
//! Options:
//!   --query <text|@file>    SPARQL query (join queries, OPTIONAL, UNION,
//!                           FILTER expressions, ORDER BY/LIMIT/OFFSET)
//!   --update <text|@file>   SPARQL update (INSERT DATA / DELETE DATA /
//!                           DELETE WHERE); prints the mutated dataset to
//!                           --out (or stdout) as N-Triples
//!   --planner <name>        hsp (default) | cdp | sql | hybrid | stocker
//!   --format <name>         table (default) | json | csv | tsv
//!   --explain               print the physical plan (with cardinalities),
//!                           the pipeline DAG it lowers into, and the
//!                           runtime counters instead of results
//!   --sip                   enable sideways information passing
//!   --budget <rows>         abort when an operator exceeds this many rows
//!   --threads <n>           thread budget for the morsel-parallel kernels
//!                           (default: auto-detect, overridable with the
//!                           HSP_FORCE_THREADS env var; 1 = sequential)
//!   --timeout-ms <n>        query governor deadline: abort the execution
//!                           (query or update) once it has run this long
//!   --mem-budget-mb <n>     query governor memory budget: abort when the
//!                           materialised intermediates exceed this many
//!                           mebibytes
//!   --no-cache              bypass the session's plan + result caches
//!                           (one-shot runs never hit anyway; `--explain`
//!                           reports the cache outcome either way)
//! ```
//!
//! Queries that fit the paper's Definition 3 (conjunctive + FILTER) run
//! through the chosen planner; OPTIONAL/UNION queries fall back to the
//! extended evaluator (always HSP-planned, per block).

use std::process::ExitCode;

use hsp_engine::explain::render_runtime_metrics;
use hsp_store::Dataset;
use sparql_hsp::extended::ExtendedOutput;
use sparql_hsp::results;
use sparql_hsp::session::{Planner, Request, Session, SessionOptions};

struct Args {
    data: String,
    query: Option<String>,
    update: Option<String>,
    planner: String,
    format: String,
    explain: bool,
    sip: bool,
    budget: Option<usize>,
    threads: Option<usize>,
    timeout_ms: Option<u64>,
    mem_budget_mb: Option<usize>,
    no_cache: bool,
    out: Option<String>,
}

fn usage() -> &'static str {
    "usage: hsp <data.nt> (--query <text|@file> | --update <text|@file>)\n\
     \x20      [--planner hsp|cdp|sql|hybrid|stocker] [--format table|json|csv|tsv]\n\
     \x20      [--explain] [--sip] [--budget <rows>] [--threads <n>]\n\
     \x20      [--timeout-ms <n>] [--mem-budget-mb <n>] [--no-cache] [--out <file>]"
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let data = argv.next().ok_or_else(|| usage().to_string())?;
    let mut args = Args {
        data,
        query: None,
        update: None,
        planner: "hsp".into(),
        format: "table".into(),
        explain: false,
        sip: false,
        budget: None,
        threads: None,
        timeout_ms: None,
        mem_budget_mb: None,
        no_cache: false,
        out: None,
    };
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match flag.as_str() {
            "--query" => args.query = Some(value("--query")?),
            "--update" => args.update = Some(value("--update")?),
            "--planner" => args.planner = value("--planner")?.to_lowercase(),
            "--format" => args.format = value("--format")?.to_lowercase(),
            "--explain" => args.explain = true,
            "--sip" => args.sip = true,
            "--budget" => {
                args.budget = Some(
                    value("--budget")?
                        .parse()
                        .map_err(|_| "--budget needs an integer".to_string())?,
                )
            }
            "--threads" => {
                let n: usize = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads needs an integer".to_string())?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                args.threads = Some(n);
            }
            "--timeout-ms" => {
                args.timeout_ms = Some(
                    value("--timeout-ms")?
                        .parse()
                        .map_err(|_| "--timeout-ms needs an integer".to_string())?,
                )
            }
            "--mem-budget-mb" => {
                args.mem_budget_mb = Some(
                    value("--mem-budget-mb")?
                        .parse()
                        .map_err(|_| "--mem-budget-mb needs an integer".to_string())?,
                )
            }
            "--no-cache" => args.no_cache = true,
            "--out" => args.out = Some(value("--out")?),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    if args.query.is_none() && args.update.is_none() {
        return Err(format!(
            "one of --query / --update is required\n{}",
            usage()
        ));
    }
    Ok(args)
}

/// `@file` indirection for query/update texts.
fn load_text(spec: &str) -> Result<String, String> {
    if let Some(path) = spec.strip_prefix('@') {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    } else {
        Ok(spec.to_string())
    }
}

fn emit(format: &str, out: &ExtendedOutput) -> Result<String, String> {
    Ok(match format {
        "table" => results::to_table(out),
        "json" => results::to_sparql_json(out),
        "csv" => results::to_csv(out),
        "tsv" => results::to_tsv(out),
        other => return Err(format!("unknown format `{other}` (table|json|csv|tsv)")),
    })
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let planner: Planner = args.planner.parse()?;
    let document = std::fs::read_to_string(&args.data)
        .map_err(|e| format!("cannot read {}: {e}", args.data))?;
    // Turtle by extension (.ttl); N-Triples (a Turtle subset) otherwise.
    let ds = if args.data.ends_with(".ttl") {
        Dataset::from_turtle(&document).map_err(|e| e.to_string())?
    } else {
        Dataset::from_ntriples(&document).map_err(|e| e.to_string())?
    };
    eprintln!("loaded {} triples from {}", ds.len(), args.data);

    // One-shot process: skip the shared pool (pool_threads 0) so the
    // kernels use scoped threads exactly as before; `--threads` still
    // sets their width through the request.
    let session = Session::with_options(
        ds,
        SessionOptions {
            pool_threads: Some(0),
            ..SessionOptions::default()
        },
    );
    let build_request = |text: &str| {
        let mut request = Request::new(text).with_planner(planner);
        if args.explain {
            request = request.with_explain();
        }
        if args.sip {
            request = request.with_sip();
        }
        if let Some(rows) = args.budget {
            request = request.with_row_budget(rows);
        }
        if let Some(n) = args.threads {
            request = request.with_threads(n);
        }
        if let Some(ms) = args.timeout_ms {
            request = request.with_timeout_ms(ms);
        }
        if let Some(mb) = args.mem_budget_mb {
            request = request.with_mem_budget_mb(mb);
        }
        if args.no_cache {
            request = request.without_cache();
        }
        request
    };

    if let Some(update) = &args.update {
        let text = load_text(update)?;
        let response = session
            .update(build_request(&text))
            .map_err(|e| e.to_string())?;
        eprintln!(
            "update ok: +{} / -{} triples (now {})",
            response.stats.inserted, response.stats.deleted, response.triples
        );
        let rendered = session.snapshot().to_ntriples();
        match &args.out {
            Some(path) => {
                std::fs::write(path, rendered).map_err(|e| format!("cannot write {path}: {e}"))?
            }
            None => print!("{rendered}"),
        }
        return Ok(());
    }

    let text = load_text(args.query.as_deref().expect("query or update required"))?;
    let response = session
        .query(build_request(&text))
        .map_err(|e| e.to_string())?;
    if let Some(note) = &response.note {
        eprintln!("note: {note}");
    }
    // ASK answers are a bare boolean (or the W3C JSON envelope).
    if let Some(answer) = response.ask {
        match args.format.as_str() {
            "json" => println!("{}", results::ask_to_sparql_json(answer)),
            _ => println!("{answer}"),
        }
        return Ok(());
    }
    if let Some(plan) = &response.explain {
        print!("{plan}");
        print!("{}", render_runtime_metrics(&response.metrics));
        return Ok(());
    }
    print!("{}", emit(&args.format, &response.output)?);
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
