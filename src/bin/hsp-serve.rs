//! `hsp-serve` — the framed-TCP SPARQL server over one shared session.
//!
//! ```text
//! hsp-serve <data.nt|-> [options]
//!
//! Options:
//!   --addr <host:port>       bind address (default 127.0.0.1:7878;
//!                            port 0 picks an ephemeral port)
//!   --pool-threads <n>       shared morsel pool width (default:
//!                            auto-detect; 0 disables the shared pool)
//!   --max-inflight <n>       requests executing at once (default 8)
//!   --max-queue <n>          requests waiting for a slot before the
//!                            server answers ERR BUSY (default 16)
//!   --morsel-rows <n>        rows per morsel (small values interleave
//!                            small datasets across concurrent queries)
//!   --min-parallel-rows <n>  parallelise operators at or above this
//!                            many rows (0 = always)
//!   --smoke [clients]        self-test: serve on an ephemeral port,
//!                            fire concurrent internal clients at the
//!                            server, verify the plan + result caches
//!                            hit, print STATS, shut down cleanly
//! ```
//!
//! `-` as the data file serves a small built-in demo dataset (useful
//! with `--smoke`, which needs no files at all). The server runs until
//! a client sends `SHUTDOWN`. See [`sparql_hsp::serve`] for the wire
//! protocol.

use std::process::ExitCode;

use hsp_store::Dataset;
use sparql_hsp::serve::{Client, ServeConfig, Server};
use sparql_hsp::session::{Session, SessionOptions};

struct Args {
    data: String,
    addr: String,
    pool_threads: Option<usize>,
    max_inflight: usize,
    max_queue: usize,
    morsel_rows: Option<usize>,
    min_parallel_rows: Option<usize>,
    compaction_threshold: Option<usize>,
    smoke: Option<usize>,
}

fn usage() -> &'static str {
    "usage: hsp-serve <data.nt|-> [--addr host:port] [--pool-threads <n>]\n\
     \x20      [--max-inflight <n>] [--max-queue <n>] [--morsel-rows <n>]\n\
     \x20      [--min-parallel-rows <n>] [--compaction-threshold <n>]\n\
     \x20      [--smoke [clients]]"
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1).peekable();
    let data = argv.next().ok_or_else(|| usage().to_string())?;
    let mut args = Args {
        data,
        addr: "127.0.0.1:7878".into(),
        pool_threads: None,
        max_inflight: 8,
        max_queue: 16,
        morsel_rows: None,
        min_parallel_rows: None,
        compaction_threshold: None,
        smoke: None,
    };
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        let int = |name: &str, v: String| {
            v.parse::<usize>()
                .map_err(|_| format!("{name} needs an integer"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--pool-threads" => {
                args.pool_threads = Some(int("--pool-threads", value("--pool-threads")?)?)
            }
            "--max-inflight" => {
                args.max_inflight = int("--max-inflight", value("--max-inflight")?)?.max(1)
            }
            "--max-queue" => args.max_queue = int("--max-queue", value("--max-queue")?)?,
            "--morsel-rows" => {
                args.morsel_rows = Some(int("--morsel-rows", value("--morsel-rows")?)?.max(1))
            }
            "--min-parallel-rows" => {
                args.min_parallel_rows =
                    Some(int("--min-parallel-rows", value("--min-parallel-rows")?)?)
            }
            "--compaction-threshold" => {
                args.compaction_threshold =
                    Some(int("--compaction-threshold", value("--compaction-threshold")?)?.max(1))
            }
            "--smoke" => {
                // Optional client-count operand.
                let clients = match argv.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let v = argv.next().expect("peeked");
                        int("--smoke", v)?.max(1)
                    }
                    _ => 4,
                };
                args.smoke = Some(clients);
            }
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    Ok(args)
}

/// A tiny dataset for `-`: enough shape for joins, OPTIONAL, and ASK.
fn demo_dataset() -> Dataset {
    let mut nt = String::new();
    for i in 0..64 {
        nt.push_str(&format!(
            "<http://e/p{i}> <http://e/name> \"Person {i}\" .\n\
             <http://e/p{i}> <http://e/knows> <http://e/p{next}> .\n",
            next = (i + 1) % 64,
        ));
        if i % 2 == 0 {
            nt.push_str(&format!(
                "<http://e/p{i}> <http://e/email> \"p{i}@example.org\" .\n"
            ));
        }
    }
    Dataset::from_ntriples(&nt).expect("demo dataset parses")
}

fn load(data: &str) -> Result<Dataset, String> {
    if data == "-" {
        return Ok(demo_dataset());
    }
    let document = std::fs::read_to_string(data).map_err(|e| format!("cannot read {data}: {e}"))?;
    if data.ends_with(".ttl") {
        Dataset::from_turtle(&document).map_err(|e| e.to_string())
    } else {
        Dataset::from_ntriples(&document).map_err(|e| e.to_string())
    }
}

/// The smoke drill: `clients` threads, each a TCP connection firing a
/// small mixed batch (SELECT / join / OPTIONAL / ASK / an update), every
/// response checked, then STATS and a clean SHUTDOWN.
fn smoke(addr: std::net::SocketAddr, clients: usize) -> Result<(), String> {
    let queries = [
        "SELECT ?n WHERE { ?p <http://e/name> ?n . } ORDER BY ?n LIMIT 5",
        "SELECT ?a ?b WHERE { ?a <http://e/knows> ?b . ?b <http://e/knows> ?c . } LIMIT 5",
        "SELECT ?n ?e WHERE { ?p <http://e/name> ?n . \
         OPTIONAL { ?p <http://e/email> ?e . } } LIMIT 5",
        "ASK { ?p <http://e/knows> ?q . }",
    ];
    let errors: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || -> Result<(), String> {
                    let mut client = Client::connect(addr)
                        .map_err(|e| format!("client {c}: connect: {e}"))?;
                    for (i, text) in queries.iter().cycle().take(queries.len() * 4).enumerate() {
                        // threads=2 keeps the request above the one-thread
                        // sequential fallback so it reaches the shared pool.
                        let response = client
                            .query("timeout_ms=10000 threads=2", text)
                            .map_err(|e| format!("client {c}: query {i}: {e}"))?;
                        if !response.starts_with("OK ") {
                            return Err(format!("client {c}: query {i}: {response}"));
                        }
                    }
                    let response = client
                        .update(
                            "",
                            &format!(
                                "INSERT DATA {{ <http://e/smoke{c}> <http://e/name> \"Smoke {c}\" . }}"
                            ),
                        )
                        .map_err(|e| format!("client {c}: update: {e}"))?;
                    if !response.starts_with("OK ") {
                        return Err(format!("client {c}: update: {response}"));
                    }
                    Ok(())
                })
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|h| h.join().expect("smoke client panicked").err())
            .collect()
    });
    if !errors.is_empty() {
        return Err(errors.join("\n"));
    }
    // Cache drill: the same ungoverned query twice — the second serve
    // must come from the result tier, byte-identical below the header —
    // then a same-shape / different-constant variant, which must reuse
    // the cached plan instead of planning again.
    let template = |name: &str| format!("SELECT ?p WHERE {{ ?p <http://e/name> \"{name}\" . }}");
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    let first = client
        .query("", &template("Person 1"))
        .map_err(|e| format!("cache drill: {e}"))?;
    let second = client
        .query("", &template("Person 1"))
        .map_err(|e| format!("cache drill: {e}"))?;
    if !first.starts_with("OK ") || !second.starts_with("OK ") {
        return Err(format!("cache drill failed: {first} / {second}"));
    }
    let body = |r: &str| {
        r.split_once('\n')
            .map(|(_, b)| b.to_string())
            .unwrap_or_default()
    };
    if body(&first) != body(&second) {
        return Err("cache drill: cached response is not byte-identical to the cold run".into());
    }
    let third = client
        .query("", &template("Person 2"))
        .map_err(|e| format!("cache drill: {e}"))?;
    if !third.starts_with("OK ") {
        return Err(format!("cache drill failed: {third}"));
    }
    let stats = client.stats().map_err(|e| e.to_string())?;
    println!("--- STATS after {clients} concurrent clients ---");
    print!("{}", stats.trim_start_matches("OK\n"));
    // When the session has a shared pool (the smoke default), the run
    // must actually have scheduled morsel batches on it.
    if let Some(line) = stats.lines().find(|l| l.starts_with("pool_batches=")) {
        let batches: u64 = line
            .trim_start_matches("pool_batches=")
            .parse()
            .unwrap_or(0);
        if batches == 0 {
            return Err("shared pool never scheduled a morsel batch".into());
        }
    }
    // The drill (and the repeated per-client batches before it) must
    // have exercised both cache tiers.
    let stat = |name: &str| -> u64 {
        stats
            .lines()
            .find_map(|l| l.strip_prefix(name)?.strip_prefix('=')?.parse().ok())
            .unwrap_or(0)
    };
    if stat("plan_cache_hits") == 0 {
        return Err("plan cache never hit (templated query was re-planned)".into());
    }
    if stat("result_cache_hits") == 0 {
        return Err("result cache never hit (repeated query was re-executed)".into());
    }
    client.shutdown().map_err(|e| e.to_string())?;
    Ok(())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let ds = load(&args.data)?;
    eprintln!("loaded {} triples from {}", ds.len(), args.data);
    // Smoke mode forces pool scheduling (two workers, tiny morsels, no
    // sequential-below threshold) unless overridden, so its STATS show
    // live shared-pool counters even on the small demo dataset.
    let options = if args.smoke.is_some() {
        SessionOptions {
            pool_threads: args.pool_threads.or(Some(2)),
            morsel_rows: args.morsel_rows.or(Some(16)),
            min_parallel_rows: args.min_parallel_rows.or(Some(0)),
            compaction_threshold: args.compaction_threshold,
        }
    } else {
        SessionOptions {
            pool_threads: args.pool_threads,
            morsel_rows: args.morsel_rows,
            min_parallel_rows: args.min_parallel_rows,
            compaction_threshold: args.compaction_threshold,
        }
    };
    let session = Session::with_options(ds, options);
    let config = ServeConfig {
        // Smoke mode always binds an ephemeral port so it cannot collide
        // with a real server on the default port.
        addr: if args.smoke.is_some() {
            "127.0.0.1:0".into()
        } else {
            args.addr.clone()
        },
        max_inflight: args.max_inflight,
        max_queue: args.max_queue,
    };
    let server = Server::start(session, config).map_err(|e| e.to_string())?;
    let addr = server.addr();
    if let Some(clients) = args.smoke {
        eprintln!("smoke: serving on {addr}, {clients} concurrent clients");
        let result = smoke(addr, clients);
        server.join();
        result?;
        eprintln!("smoke: ok");
        return Ok(());
    }
    eprintln!("serving on {addr} (send SHUTDOWN to stop)");
    server.join();
    eprintln!("server stopped");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
