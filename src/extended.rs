//! Extended SPARQL evaluation: OPTIONAL, UNION, and group-scoped FILTERs —
//! the paper's §7 future work ("extend our optimizer to include all
//! features of the SPARQL language, such as the OPTIONAL clause").
//!
//! The strategy keeps HSP in charge of everything it covers: each basic
//! graph pattern (the conjunctive triple blocks) is planned by
//! [`HspPlanner`] exactly as in the paper; OPTIONAL groups become
//! left-outer hash joins, UNION branches are evaluated independently and
//! concatenated (missing columns padded with [`hsp_rdf::TermId::UNBOUND`]), and
//! group-level FILTERs run after the group's joins with SPARQL's
//! unbound-is-type-error semantics.
//!
//! When a group is a conjunctive core plus *plain* OPTIONAL blocks (each
//! only triples and FILTERs), the whole group **composes into one
//! [`PhysicalPlan`]** — the core's HSP plan, a
//! [`PhysicalPlan::LeftOuterHashJoin`] per OPTIONAL block, then the
//! group's FILTERs — and runs through [`execute_in`] under the
//! configured [`ExecStrategy`](hsp_engine::ExecStrategy). Under the
//! default `Auto` strategy the engine lowers that plan into morsel-driven
//! pipelines end to end, so the OPTIONAL probe *streams* (the
//! `pipeline_outer_probes` runtime counter) instead of materialising both
//! join inputs and the joined output, as the previous
//! table-at-a-time evaluation did. Groups with UNION branches or nested
//! OPTIONALs keep the table-at-a-time path.
//!
//! Scope notes (documented simplifications):
//! * FILTERs inside an OPTIONAL/UNION group apply to that group; FILTERs of
//!   the outer group apply after the outer group's joins (no cross-group
//!   pushdown).
//! * Join compatibility with UNBOUND follows strict equality (a row binding
//!   `?x` never joins a row where `?x` is UNBOUND), which is sufficient for
//!   the common "pad then project" UNION usage.

use std::collections::HashMap;

use hsp_core::HspPlanner;
use hsp_engine::ops;
use hsp_engine::{execute_in, BindingTable, ExecConfig, ExecContext, PhysicalPlan};
use hsp_rdf::Term;
use hsp_sparql::ast::{Element, GroupPattern, NodeAst, Query};
use hsp_sparql::{parse_query, FilterExpr, JoinQuery, TermOrVar, TriplePattern, Var};
use hsp_store::Dataset;

/// An extended-evaluation failure.
#[derive(Debug)]
pub enum ExtendedError {
    /// The query text failed to parse.
    Parse(hsp_sparql::ParseError),
    /// A projected variable is bound nowhere in the query.
    UnboundProjection(String),
    /// Planning or execution failed.
    Eval(String),
}

impl std::fmt::Display for ExtendedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtendedError::Parse(e) => write!(f, "{e}"),
            ExtendedError::UnboundProjection(v) => {
                write!(f, "projected variable ?{v} is not bound anywhere")
            }
            ExtendedError::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ExtendedError {}

/// The result of extended evaluation: named columns over optional terms
/// (`None` = unbound, from OPTIONAL/UNION padding).
#[derive(Debug, Clone)]
pub struct ExtendedOutput {
    /// Output column names, in SELECT order.
    pub columns: Vec<String>,
    /// Result rows; `None` marks an unbound value.
    pub rows: Vec<Vec<Option<Term>>>,
}

/// Evaluate a SPARQL query that may use OPTIONAL and UNION.
#[deprecated(note = "go through `sparql_hsp::session::Session::query`, the \
                     unified request front door")]
pub fn evaluate_extended(ds: &Dataset, text: &str) -> Result<ExtendedOutput, ExtendedError> {
    let config = ExecConfig::unlimited();
    evaluate_extended_in(ds, text, &config, &config.context())
}

/// [`evaluate_extended`] under an explicit [`ExecConfig`]: the thread
/// budget (`config.threads`) governs the morsel-parallel kernels of every
/// block and join, and one buffer pool is shared across the whole
/// evaluation — the same behaviour `hsp --threads` gives join queries.
#[deprecated(note = "go through `sparql_hsp::session::Session::query` (a \
                     `Request` carries every `ExecConfig` option), or \
                     `evaluate_extended_in` for a caller-owned context")]
pub fn evaluate_extended_with(
    ds: &Dataset,
    text: &str,
    config: &ExecConfig,
) -> Result<ExtendedOutput, ExtendedError> {
    evaluate_extended_in(ds, text, config, &config.context())
}

/// [`evaluate_extended_with`] inside a caller-owned [`ExecContext`]: the
/// caller's pool and runtime counters accumulate over the evaluation, so
/// callers can snapshot
/// [`RuntimeMetrics`](hsp_engine::RuntimeMetrics)`::of(ctx)` afterwards to
/// see what the engine did (pipelines launched, outer probes streamed,
/// breakers handed off, …).
pub fn evaluate_extended_in(
    ds: &Dataset,
    text: &str,
    config: &ExecConfig,
    ctx: &ExecContext,
) -> Result<ExtendedOutput, ExtendedError> {
    let ast = parse_query(text).map_err(ExtendedError::Parse)?;
    evaluate_ast_in(ds, &ast, config, ctx)
}

/// Evaluate an `ASK` query: `true` iff the pattern has at least one
/// solution. (A `SELECT` query text is accepted too and asks whether it
/// returns any row.)
#[deprecated(note = "go through `sparql_hsp::session::Session::query`, whose \
                     `Response::ask` answers under the request's governor \
                     instead of an unlimited one")]
pub fn evaluate_ask(ds: &Dataset, text: &str) -> Result<bool, ExtendedError> {
    let ast = parse_query(text).map_err(ExtendedError::Parse)?;
    let config = ExecConfig::unlimited();
    let mut vars = VarTable::default();
    let table = eval_group(ds, &ast.where_clause, &mut vars, &config, &config.context())?;
    Ok(!table.is_empty())
}

/// Evaluate a parsed extended query.
#[deprecated(note = "go through `sparql_hsp::session::Session::query`, or \
                     `evaluate_ast_in` for a caller-owned context")]
pub fn evaluate_ast(
    ds: &Dataset,
    query: &Query,
    config: &ExecConfig,
) -> Result<ExtendedOutput, ExtendedError> {
    evaluate_ast_in(ds, query, config, &config.context())
}

/// [`evaluate_ast`] inside a caller-owned [`ExecContext`].
pub fn evaluate_ast_in(
    ds: &Dataset,
    query: &Query,
    config: &ExecConfig,
    ctx: &ExecContext,
) -> Result<ExtendedOutput, ExtendedError> {
    // Aggregation (GROUP BY / HAVING / aggregate select items) lives in
    // the join-query fragment: lower the whole AST there, plan with HSP,
    // and let the engine's γ breaker do the work. OPTIONAL/UNION cannot
    // be combined with aggregates (typed error, not a silent drop).
    if !query.aggregates.is_empty() || !query.group_by.is_empty() || query.having.is_some() {
        return evaluate_aggregate_in(ds, query, config, ctx);
    }
    let mut vars = VarTable::default();
    let table = eval_group(ds, &query.where_clause, &mut vars, config, ctx)?;

    if query.ask {
        // ASK: zero columns; one empty row iff a solution exists.
        let rows = if table.is_empty() {
            vec![]
        } else {
            vec![vec![]]
        };
        return Ok(ExtendedOutput {
            columns: Vec::new(),
            rows,
        });
    }

    // Projection: named variables or everything, in declaration order.
    let projection: Vec<(String, Var)> = match &query.projection {
        Some(names) => names
            .iter()
            .map(|name| {
                vars.lookup(name)
                    .map(|v| (name.clone(), v))
                    .ok_or_else(|| ExtendedError::UnboundProjection(name.clone()))
            })
            .collect::<Result<_, _>>()?,
        None => vars
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), Var(i as u32)))
            .collect(),
    };

    let mut rows: Vec<Vec<Option<Term>>> = Vec::with_capacity(table.len());
    for i in 0..table.len() {
        let row: Vec<Option<Term>> = projection
            .iter()
            .map(|&(_, v)| {
                if table.vars().contains(&v) {
                    let id = table.value(v, i);
                    if id.is_unbound() {
                        None
                    } else {
                        Some(ds.dict().term(id).clone())
                    }
                } else {
                    None
                }
            })
            .collect();
        rows.push(row);
    }
    // Solution modifiers, in the spec's application order: ORDER BY, then
    // DISTINCT/REDUCED (stable — keeps first occurrences), then
    // OFFSET/LIMIT. ORDER BY keys may reference non-projected variables,
    // so key values come from the full pre-projection table, which is why
    // sorting happens on (key, projected row) pairs built per table row.
    if !query.order_by.is_empty() {
        let evaluator = hsp_sparql::Evaluator::new();
        let mut keys = Vec::with_capacity(query.order_by.len());
        for (ast, descending) in &query.order_by {
            let expr = hsp_sparql::algebra::lower_expr_ast(ast, &mut |n| vars.var(n))
                .map_err(|e| ExtendedError::Eval(e.to_string()))?;
            keys.push((expr, *descending));
        }
        type Decorated = (Vec<Option<hsp_sparql::Value>>, Vec<Option<Term>>);
        let mut decorated: Vec<Decorated> = rows
            .into_iter()
            .enumerate()
            .map(|(i, row)| {
                let bindings = TableRow {
                    ds,
                    table: &table,
                    row: i,
                };
                let key_vals = keys
                    .iter()
                    .map(|(e, _)| evaluator.eval(e, &bindings).ok())
                    .collect();
                (key_vals, row)
            })
            .collect();
        decorated.sort_by(|(ka, _), (kb, _)| {
            for ((_, desc), (va, vb)) in keys.iter().zip(ka.iter().zip(kb.iter())) {
                let ord = hsp_sparql::expr::compare_for_order(va.as_ref(), vb.as_ref());
                let ord = if *desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        rows = decorated.into_iter().map(|(_, row)| row).collect();
    }

    if query.distinct || query.reduced {
        let mut seen = std::collections::HashSet::new();
        rows.retain(|row| seen.insert(format!("{row:?}")));
    }

    let offset = query.offset.unwrap_or(0).min(rows.len());
    let end = match query.limit {
        Some(n) => (offset + n).min(rows.len()),
        None => rows.len(),
    };
    rows = rows[offset..end].to_vec();

    Ok(ExtendedOutput {
        columns: projection.into_iter().map(|(n, _)| n).collect(),
        rows,
    })
}

/// Aggregate queries take the planner path end to end: the HSP plan gets a
/// [`PhysicalPlan::HashAggregate`] between the residual filters and the
/// projection, the engine's γ breaker (or its operator-at-a-time oracle)
/// computes the groups, and `ORDER BY`/`DISTINCT`/`LIMIT` ride along as
/// plan modifiers. Aggregate outputs are computed-overlay ids, so term
/// materialisation goes through [`hsp_engine::ExecOutput::term`] rather
/// than the dictionary alone.
fn evaluate_aggregate_in(
    ds: &Dataset,
    query: &Query,
    config: &ExecConfig,
    ctx: &ExecContext,
) -> Result<ExtendedOutput, ExtendedError> {
    use hsp_sparql::algebra::AlgebraError;
    let jq = JoinQuery::from_ast(query).map_err(|e| match e {
        AlgebraError::UnsupportedFeature(what) => ExtendedError::Eval(format!(
            "aggregation (GROUP BY / HAVING / aggregate functions) is only \
             supported over conjunctive patterns + FILTER; this query also \
             uses {what}"
        )),
        other => ExtendedError::Eval(other.to_string()),
    })?;
    let planned = HspPlanner::new()
        .plan(&jq)
        .map_err(|e| ExtendedError::Eval(e.to_string()))?;
    let output = execute_in(&planned.plan, ds, config, ctx)
        .map_err(|e| ExtendedError::Eval(e.to_string()))?;
    let columns: Vec<String> = planned
        .query
        .projection
        .iter()
        .map(|(n, _)| n.clone())
        .collect();
    let rows = (0..output.table.len())
        .map(|i| {
            planned
                .query
                .projection
                .iter()
                .map(|&(_, v)| output.term(ds, output.table.value(v, i)))
                .collect()
        })
        .collect();
    Ok(ExtendedOutput { columns, rows })
}

/// [`hsp_sparql::Bindings`] over one row of the final (pre-projection)
/// extended-evaluation table.
struct TableRow<'a> {
    ds: &'a Dataset,
    table: &'a BindingTable,
    row: usize,
}

impl hsp_sparql::Bindings for TableRow<'_> {
    fn term(&self, v: Var) -> Option<Term> {
        let idx = self.table.col_index(v)?;
        let id = self.table.columns()[idx][self.row];
        if id.is_unbound() {
            None
        } else {
            Some(self.ds.dict().term(id).clone())
        }
    }
}

/// Global variable numbering shared by all groups of one query.
#[derive(Debug, Default)]
struct VarTable {
    names: Vec<String>,
    by_name: HashMap<String, Var>,
}

impl VarTable {
    fn var(&mut self, name: &str) -> Var {
        if let Some(&v) = self.by_name.get(name) {
            return v;
        }
        let v = Var(self.names.len() as u32);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), v);
        v
    }

    fn lookup(&self, name: &str) -> Option<Var> {
        self.by_name.get(name).copied()
    }
}

/// Evaluate one group: HSP over its triple block, then UNIONs (joined in),
/// then OPTIONALs (left-outer), then the group's FILTERs.
fn eval_group(
    ds: &Dataset,
    group: &GroupPattern,
    vars: &mut VarTable,
    config: &ExecConfig,
    ctx: &ExecContext,
) -> Result<BindingTable, ExtendedError> {
    let mut patterns: Vec<TriplePattern> = Vec::new();
    let mut filters: Vec<FilterExpr> = Vec::new();
    let mut optionals: Vec<&GroupPattern> = Vec::new();
    let mut unions: Vec<(&GroupPattern, &GroupPattern)> = Vec::new();

    for element in &group.elements {
        match element {
            Element::Triple(t) => {
                let s = lower_node(&t.subject, vars);
                let p = lower_node(&t.predicate, vars);
                let o = lower_node(&t.object, vars);
                patterns.push(TriplePattern::new(s, p, o));
            }
            Element::Filter(expr) => filters.push(lower_filter(expr, vars)?),
            Element::Optional(g) => optionals.push(g),
            Element::Union(a, b) => unions.push((a, b)),
        }
    }

    // 1. The conjunctive core, planned by HSP (when present) — and, when
    // the whole group is a core plus plain OPTIONAL blocks, composed with
    // them (and the group's FILTERs) into ONE physical plan executed
    // through `execute_in` under the configured strategy: by default the
    // engine lowers it into morsel-driven pipelines, so the OPTIONAL
    // left-outer probes and the FILTERs *stream* instead of materialising
    // each step's input and output. `compose_group_plan` hands the core
    // plan back untouched when the group needs the table-at-a-time path,
    // so the core is planned exactly once either way.
    let mut current: Option<BindingTable> = if patterns.is_empty() {
        None
    } else {
        let core = block_plan(patterns, vars)?;
        let core = if unions.is_empty() && optionals.iter().all(|g| plain_block(g)) {
            match compose_group_plan(core, &filters, &optionals, vars)? {
                Composed::Whole(plan) => {
                    let out = execute_in(&plan, ds, config, ctx)
                        .map_err(|e| ExtendedError::Eval(e.to_string()))?;
                    return Ok(out.table);
                }
                Composed::CoreOnly(core) => core,
            }
        } else {
            core
        };
        let out =
            execute_in(&core, ds, config, ctx).map_err(|e| ExtendedError::Eval(e.to_string()))?;
        Some(out.table)
    };

    // 2. UNION blocks: evaluate branches, concatenate, join with the core.
    //
    // Every table this function holds is charged against the governor's
    // memory budget (`execute_in` charges its own outputs; the
    // table-at-a-time steps below charge through `settle`), so each
    // `ctx.recycle` releases exactly what was charged and an error leaves
    // the accounting at zero.
    for (a, b) in unions {
        ctx.checkpoint("extended")
            .map_err(|e| ExtendedError::Eval(e.to_string()))?;
        let ta = eval_group(ds, a, vars, config, ctx)?;
        let tb = match eval_group(ds, b, vars, config, ctx) {
            Ok(tb) => tb,
            Err(e) => {
                ctx.recycle(ta);
                if let Some(core) = current.take() {
                    ctx.recycle(core);
                }
                return Err(e);
            }
        };
        let union = ops::union_all_in(ctx, &ta, &tb);
        ctx.recycle(ta);
        ctx.recycle(tb);
        let union = match settle(ctx, union) {
            Ok(t) => t,
            Err(e) => {
                if let Some(core) = current.take() {
                    ctx.recycle(core);
                }
                return Err(e);
            }
        };
        current = Some(match current.take() {
            None => union,
            Some(core) => {
                let joined = join_tables(ctx, &core, &union);
                ctx.recycle(core);
                ctx.recycle(union);
                settle(ctx, joined)?
            }
        });
    }

    let mut table = current.ok_or_else(|| {
        ExtendedError::Eval("group has neither triple patterns nor UNION branches".into())
    })?;

    // 3. OPTIONAL blocks: left-outer joins on the shared variables.
    for g in optionals {
        if let Err(e) = ctx.checkpoint("extended") {
            ctx.recycle(table);
            return Err(ExtendedError::Eval(e.to_string()));
        }
        let right = match eval_group(ds, g, vars, config, ctx) {
            Ok(right) => right,
            Err(e) => {
                ctx.recycle(table);
                return Err(e);
            }
        };
        let shared: Vec<Var> = right
            .vars()
            .iter()
            .copied()
            .filter(|v| table.vars().contains(v))
            .collect();
        let joined = if !shared.is_empty() {
            ops::left_outer_hash_join_in(ctx, &table, &right, &shared)
        } else if right.is_empty() {
            // OPTIONAL with no shared variables: every combination, or
            // UNBOUND padding when the optional side is empty.
            ops::union_all_in(ctx, &table, &BindingTable::empty(right.vars().to_vec()))
        } else {
            ops::cross_product_in(ctx, &table, &right)
        };
        ctx.recycle(table);
        ctx.recycle(right);
        table = settle(ctx, joined)?;
    }

    // 4. Group-level FILTERs (unbound comparisons are false).
    for f in &filters {
        if let Err(e) = ctx.checkpoint("extended") {
            ctx.recycle(table);
            return Err(ExtendedError::Eval(e.to_string()));
        }
        let filtered = ops::filter_in(ctx, ds, &table, f);
        ctx.recycle(table);
        table = settle(ctx, filtered)?;
    }
    Ok(table)
}

/// Charge a freshly produced table-at-a-time intermediate against the
/// governor's memory budget, surfacing any trip the producing kernel
/// recorded (the cross product bails out cooperatively).
fn settle(ctx: &ExecContext, table: BindingTable) -> Result<BindingTable, ExtendedError> {
    if let Some(e) = ctx
        .governor()
        .and_then(hsp_engine::QueryGovernor::trip_error)
    {
        // A tripped cross product returned an empty placeholder whose
        // columns never came from the pool: drop, don't recycle.
        drop(table);
        return Err(ExtendedError::Eval(e.to_string()));
    }
    if let Err(e) = ctx.charge_table(&table, "extended") {
        ctx.recycle(table);
        return Err(ExtendedError::Eval(e.to_string()));
    }
    Ok(table)
}

fn lower_filter(
    expr: &hsp_sparql::ast::ExprAst,
    vars: &mut VarTable,
) -> Result<FilterExpr, ExtendedError> {
    hsp_sparql::algebra::lower_filter_ast(expr, &mut |n| vars.var(n))
        .map_err(|e| ExtendedError::Eval(e.to_string()))
}

fn lower_node(node: &NodeAst, vars: &mut VarTable) -> TermOrVar {
    match node {
        NodeAst::Var(n) => TermOrVar::Var(vars.var(n)),
        NodeAst::Const(t) => TermOrVar::Const(t.clone()),
    }
}

/// Plan one conjunctive triple block with HSP, projecting every block
/// variable (sorted) — the shape both evaluation paths share.
fn block_plan(
    patterns: Vec<TriplePattern>,
    vars: &VarTable,
) -> Result<PhysicalPlan, ExtendedError> {
    let block_vars: Vec<Var> = {
        let mut v: Vec<Var> = patterns.iter().flat_map(|p| p.vars()).collect();
        v.sort();
        v.dedup();
        v
    };
    let query = JoinQuery {
        patterns,
        filters: Vec::new(), // group filters are composed/applied by the caller
        projection: block_vars
            .iter()
            .map(|&v| (vars.names[v.index()].clone(), v))
            .collect(),
        distinct: false,
        var_names: vars.names.clone(),
        modifiers: Default::default(),
        group_by: vec![],
        aggregates: vec![],
        having: None,
    };
    let planned = HspPlanner::new()
        .plan(&query)
        .map_err(|e| ExtendedError::Eval(e.to_string()))?;
    Ok(planned.plan)
}

/// `true` when a group holds only triple patterns and FILTERs (no nested
/// OPTIONAL/UNION) plus at least one triple — the shape that plans as a
/// single conjunctive block.
fn plain_block(group: &GroupPattern) -> bool {
    let mut has_triple = false;
    for element in &group.elements {
        match element {
            Element::Triple(_) => has_triple = true,
            Element::Filter(_) => {}
            Element::Optional(_) | Element::Union(..) => return false,
        }
    }
    has_triple
}

/// [`compose_group_plan`]'s outcome: the whole group as one plan, or —
/// when the group needs the table-at-a-time path — the core plan handed
/// back untouched so the caller never plans it twice.
enum Composed {
    /// Core + OPTIONAL blocks + group FILTERs, as one plan.
    Whole(PhysicalPlan),
    /// Not composable: the caller's core plan, returned as received.
    CoreOnly(PhysicalPlan),
}

/// Try to compose a whole group into one physical plan: the (already
/// planned) conjunctive core, one [`PhysicalPlan::LeftOuterHashJoin`] per
/// plain OPTIONAL block (the block's own FILTERs applied inside it), then
/// the group's FILTERs on top.
///
/// Returns [`Composed::CoreOnly`] — fall back to table-at-a-time
/// evaluation — when an OPTIONAL block shares no variable with the part
/// already composed (the cross-product / padding special cases) or a
/// FILTER reads a variable its input does not bind (plan validation would
/// reject it; the table-at-a-time path evaluates such a variable as
/// UNBOUND). The caller has already checked every block is plain (no
/// nested OPTIONAL/UNION). Wrapping is deferred until every check has
/// passed, so a bail returns the core exactly as it came in.
fn compose_group_plan(
    core: PhysicalPlan,
    filters: &[FilterExpr],
    optionals: &[&GroupPattern],
    vars: &mut VarTable,
) -> Result<Composed, ExtendedError> {
    let mut bound = core.output_vars();
    let mut joins: Vec<(PhysicalPlan, Vec<Var>)> = Vec::new();
    for g in optionals {
        let mut opt_patterns: Vec<TriplePattern> = Vec::new();
        let mut opt_filters: Vec<FilterExpr> = Vec::new();
        for element in &g.elements {
            match element {
                Element::Triple(t) => {
                    let s = lower_node(&t.subject, vars);
                    let p = lower_node(&t.predicate, vars);
                    let o = lower_node(&t.object, vars);
                    opt_patterns.push(TriplePattern::new(s, p, o));
                }
                Element::Filter(expr) => opt_filters.push(lower_filter(expr, vars)?),
                Element::Optional(_) | Element::Union(..) => unreachable!("plain block"),
            }
        }
        let mut opt_plan = block_plan(opt_patterns, vars)?;
        let opt_vars = opt_plan.output_vars();
        for f in opt_filters {
            if !f.vars().iter().all(|v| opt_vars.contains(v)) {
                return Ok(Composed::CoreOnly(core));
            }
            opt_plan = PhysicalPlan::Filter {
                input: Box::new(opt_plan),
                expr: f,
            };
        }
        let shared: Vec<Var> = opt_vars
            .iter()
            .copied()
            .filter(|v| bound.contains(v))
            .collect();
        if shared.is_empty() {
            return Ok(Composed::CoreOnly(core));
        }
        for v in opt_vars {
            if !bound.contains(&v) {
                bound.push(v);
            }
        }
        joins.push((opt_plan, shared));
    }
    for f in filters {
        if !f.vars().iter().all(|v| bound.contains(v)) {
            return Ok(Composed::CoreOnly(core));
        }
    }
    let mut plan = core;
    for (opt_plan, shared) in joins {
        plan = PhysicalPlan::LeftOuterHashJoin {
            left: Box::new(plan),
            right: Box::new(opt_plan),
            vars: shared,
        };
    }
    for f in filters {
        plan = PhysicalPlan::Filter {
            input: Box::new(plan),
            expr: f.clone(),
        };
    }
    Ok(Composed::Whole(plan))
}

/// Inner join two evaluated tables on their shared variables (hash join),
/// or cross product when they share none.
fn join_tables(ctx: &ExecContext, a: &BindingTable, b: &BindingTable) -> BindingTable {
    let shared: Vec<Var> = b
        .vars()
        .iter()
        .copied()
        .filter(|v| a.vars().contains(v))
        .collect();
    if shared.is_empty() {
        ops::cross_product_in(ctx, a, b)
    } else {
        ops::hash_join_in(ctx, a, b, &shared)
    }
}

/// Re-export for tests/examples that need to inspect unbound cells.
pub use hsp_rdf::dictionary::TermId as ExtendedTermId;

#[cfg(test)]
#[allow(deprecated)] // the wrappers stay covered until they are removed
mod tests {
    use super::*;

    fn dataset() -> Dataset {
        Dataset::from_ntriples(
            r#"<http://e/a1> <http://e/name> "Alice" .
<http://e/a1> <http://e/email> "alice@example.org" .
<http://e/a2> <http://e/name> "Bob" .
<http://e/a3> <http://e/name> "Carol" .
<http://e/a3> <http://e/phone> "555-1234" .
"#,
        )
        .unwrap()
    }

    #[test]
    fn optional_keeps_rows_without_match() {
        let ds = dataset();
        let out = evaluate_extended(
            &ds,
            "SELECT ?n ?e WHERE {
                ?p <http://e/name> ?n .
                OPTIONAL { ?p <http://e/email> ?e . } }",
        )
        .unwrap();
        assert_eq!(out.rows.len(), 3);
        let with_email = out.rows.iter().filter(|r| r[1].is_some()).count();
        assert_eq!(with_email, 1); // only Alice
    }

    #[test]
    fn nested_optional_groups() {
        let ds = dataset();
        let out = evaluate_extended(
            &ds,
            "SELECT ?n ?e ?ph WHERE {
                ?p <http://e/name> ?n .
                OPTIONAL { ?p <http://e/email> ?e . }
                OPTIONAL { ?p <http://e/phone> ?ph . } }",
        )
        .unwrap();
        assert_eq!(out.rows.len(), 3);
        let phones = out.rows.iter().filter(|r| r[2].is_some()).count();
        assert_eq!(phones, 1); // only Carol
    }

    #[test]
    fn union_concatenates_branches() {
        let ds = dataset();
        let out = evaluate_extended(
            &ds,
            "SELECT ?p ?c WHERE {
                { ?p <http://e/email> ?c . } UNION { ?p <http://e/phone> ?c . } }",
        )
        .unwrap();
        assert_eq!(out.rows.len(), 2); // Alice's email + Carol's phone
        assert!(out.rows.iter().all(|r| r[0].is_some() && r[1].is_some()));
    }

    #[test]
    fn union_with_different_vars_pads_unbound() {
        let ds = dataset();
        let out = evaluate_extended(
            &ds,
            "SELECT ?e ?ph WHERE {
                { ?p <http://e/email> ?e . } UNION { ?p <http://e/phone> ?ph . } }",
        )
        .unwrap();
        assert_eq!(out.rows.len(), 2);
        for row in &out.rows {
            // Exactly one of the two columns is bound per branch row.
            assert_eq!(row.iter().filter(|c| c.is_some()).count(), 1);
        }
    }

    #[test]
    fn union_joined_with_core_block() {
        let ds = dataset();
        let out = evaluate_extended(
            &ds,
            "SELECT ?n ?c WHERE {
                ?p <http://e/name> ?n .
                { ?p <http://e/email> ?c . } UNION { ?p <http://e/phone> ?c . } }",
        )
        .unwrap();
        // Alice-email + Carol-phone, joined back to names.
        assert_eq!(out.rows.len(), 2);
        let names: Vec<String> = out
            .rows
            .iter()
            .map(|r| r[0].as_ref().unwrap().lexical().to_string())
            .collect();
        assert!(names.contains(&"Alice".to_string()));
        assert!(names.contains(&"Carol".to_string()));
    }

    #[test]
    fn filter_after_optional_sees_unbound_as_false() {
        let ds = dataset();
        let out = evaluate_extended(
            &ds,
            r#"SELECT ?n WHERE {
                ?p <http://e/name> ?n .
                OPTIONAL { ?p <http://e/email> ?e . }
                FILTER (?e = "alice@example.org") }"#,
        )
        .unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0].as_ref().unwrap().lexical(), "Alice");
    }

    #[test]
    fn plain_join_queries_still_work() {
        let ds = dataset();
        let out = evaluate_extended(
            &ds,
            "SELECT ?n WHERE { ?p <http://e/name> ?n . ?p <http://e/email> ?m . }",
        )
        .unwrap();
        assert_eq!(out.rows.len(), 1);
    }

    #[test]
    fn distinct_applies_to_extended_results() {
        let ds = dataset();
        let out = evaluate_extended(
            &ds,
            "SELECT DISTINCT ?p WHERE {
                { ?p <http://e/name> ?n . } UNION { ?p <http://e/name> ?m . } }",
        )
        .unwrap();
        assert_eq!(out.rows.len(), 3); // a1, a2, a3 — each once
    }

    #[test]
    fn unbound_projection_is_an_error() {
        let ds = dataset();
        let err =
            evaluate_extended(&ds, "SELECT ?zzz WHERE { ?p <http://e/name> ?n . }").unwrap_err();
        assert!(err.to_string().contains("zzz"));
    }

    #[test]
    fn select_star_collects_all_vars() {
        let ds = dataset();
        let out = evaluate_extended(
            &ds,
            "SELECT * WHERE { ?p <http://e/name> ?n . OPTIONAL { ?p <http://e/email> ?e . } }",
        )
        .unwrap();
        assert_eq!(out.columns, vec!["p", "n", "e"]);
        assert_eq!(out.rows.len(), 3);
    }

    fn names_of(out: &ExtendedOutput) -> Vec<String> {
        out.rows
            .iter()
            .map(|r| r[0].as_ref().expect("bound").lexical().to_string())
            .collect()
    }

    #[test]
    fn order_by_sorts_extended_results() {
        let ds = dataset();
        let out = evaluate_extended(
            &ds,
            "SELECT ?n WHERE { ?p <http://e/name> ?n . } ORDER BY DESC(?n)",
        )
        .unwrap();
        assert_eq!(names_of(&out), vec!["Carol", "Bob", "Alice"]);
    }

    #[test]
    fn order_by_non_projected_variable() {
        let ds = dataset();
        // Sort by ?p (the IRI), project only ?n.
        let out = evaluate_extended(
            &ds,
            "SELECT ?n WHERE { ?p <http://e/name> ?n . } ORDER BY ?p",
        )
        .unwrap();
        assert_eq!(names_of(&out), vec!["Alice", "Bob", "Carol"]);
    }

    #[test]
    fn limit_offset_paginate() {
        let ds = dataset();
        let q = "SELECT ?n WHERE { ?p <http://e/name> ?n . } ORDER BY ?n LIMIT 2";
        assert_eq!(
            names_of(&evaluate_extended(&ds, q).unwrap()),
            vec!["Alice", "Bob"]
        );
        let q = "SELECT ?n WHERE { ?p <http://e/name> ?n . } ORDER BY ?n LIMIT 2 OFFSET 2";
        assert_eq!(names_of(&evaluate_extended(&ds, q).unwrap()), vec!["Carol"]);
        let q = "SELECT ?n WHERE { ?p <http://e/name> ?n . } ORDER BY ?n OFFSET 9";
        assert!(evaluate_extended(&ds, q).unwrap().rows.is_empty());
    }

    #[test]
    fn unbound_optional_values_sort_first() {
        let ds = dataset();
        let out = evaluate_extended(
            &ds,
            "SELECT ?n ?e WHERE { ?p <http://e/name> ?n . \
             OPTIONAL { ?p <http://e/email> ?e . } } ORDER BY ?e ?n",
        )
        .unwrap();
        // Bob and Carol have no email (unbound < any value), then Alice.
        assert_eq!(names_of(&out), vec!["Bob", "Carol", "Alice"]);
    }

    #[test]
    fn order_by_expression_key() {
        let ds = dataset();
        // Sort by string length: Bob (3) < Alice/Carol (5, tie broken by ?n).
        let out = evaluate_extended(
            &ds,
            "SELECT ?n WHERE { ?p <http://e/name> ?n . } ORDER BY strlen(?n) ?n",
        )
        .unwrap();
        assert_eq!(names_of(&out), vec!["Bob", "Alice", "Carol"]);
    }

    #[test]
    fn reduced_deduplicates() {
        let ds = dataset();
        let out = evaluate_extended(&ds, "SELECT REDUCED ?p WHERE { ?p ?prop ?v . }").unwrap();
        assert_eq!(out.rows.len(), 3); // a1, a2, a3 deduplicated
    }

    #[test]
    fn ask_queries() {
        let ds = dataset();
        assert!(evaluate_ask(&ds, "ASK { ?p <http://e/name> \"Alice\" . }").unwrap());
        assert!(!evaluate_ask(&ds, "ASK { ?p <http://e/name> \"Zed\" . }").unwrap());
        // WHERE keyword and OPTIONAL are accepted.
        assert!(evaluate_ask(
            &ds,
            "ASK WHERE { ?p <http://e/name> ?n . OPTIONAL { ?p <http://e/email> ?e . } }"
        )
        .unwrap());
        // Through evaluate_extended: zero columns, row presence as answer.
        let out = evaluate_extended(&ds, "ASK { ?p <http://e/phone> ?t . }").unwrap();
        assert!(out.columns.is_empty());
        assert_eq!(out.rows.len(), 1);
    }

    #[test]
    fn regex_filter_in_extended_query() {
        let ds = dataset();
        let out = evaluate_extended(
            &ds,
            r#"SELECT ?n WHERE { ?p <http://e/name> ?n . FILTER regex(?n, "^[AB]") } ORDER BY ?n"#,
        )
        .unwrap();
        assert_eq!(names_of(&out), vec!["Alice", "Bob"]);
    }
}
