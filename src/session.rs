//! The unified front door: one [`Session`] owns a shared dataset and a
//! shared, long-lived morsel worker pool; every read goes through
//! [`Session::query`] and every write through [`Session::update`].
//!
//! This collapses the historical entrypoint sprawl (`evaluate_extended` /
//! `_with` / `_in`, `evaluate_ask`, `evaluate_ast`, `apply_update` /
//! `_with`, and the ad-hoc `ExecConfig` plumbing around
//! [`execute`](hsp_engine::execute)) behind a single builder-style
//! [`Request`]. The `hsp` CLI, the [`serve`](crate::serve) server, and
//! the examples all go through it, so their option handling cannot drift.
//!
//! # Concurrency model
//!
//! * **Reads snapshot.** The dataset lives behind an `Arc` swap: a query
//!   clones the `Arc` once and runs against an immutable snapshot, so
//!   updates never block readers and a reader never observes a half
//!   -applied update.
//! * **Writes build-and-swap.** [`Session::update`] clones the dataset,
//!   applies the whole request to the clone, and publishes the result
//!   with one pointer swap — all-or-nothing. (This is deliberately
//!   *transactional*, unlike the deprecated in-place
//!   [`apply_update`](crate::update::apply_update), whose sequenced
//!   operations left earlier effects in place when a later one failed.)
//!   Writers serialise on an internal lock; readers are never blocked.
//! * **One worker pool.** Parallel kernels of *all* concurrent queries
//!   schedule their morsels on the session's one
//!   [`SharedPool`] (round-robin across queries),
//!   instead of spawning scoped threads per kernel. Results are
//!   byte-identical to the scoped path — morsel outputs are stitched in
//!   morsel order either way.
//!
//! ```
//! use sparql_hsp::session::{Request, Session};
//! use hsp_store::Dataset;
//!
//! let ds = Dataset::from_ntriples(
//!     "<http://e/j1> <http://e/issued> \"1940\" .\n",
//! ).unwrap();
//! let session = Session::new(ds);
//! let stats = session
//!     .update(Request::new("INSERT DATA { <http://e/j2> <http://e/issued> \"1952\" . }"))
//!     .unwrap();
//! assert_eq!(stats.stats.inserted, 1);
//! let response = session
//!     .query(Request::new("SELECT ?j WHERE { ?j <http://e/issued> ?yr . }"))
//!     .unwrap();
//! assert_eq!(response.output.rows.len(), 2);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

use hsp_baseline::{CdpPlanner, HybridPlanner, LeftDeepPlanner, StockerPlanner};
use hsp_core::HspPlanner;
use hsp_engine::plan::PhysicalPlan;
use hsp_engine::{
    execute_in, CancelToken, ExecConfig, ExecContext, ExecStrategy, MorselConfig, PoolStats,
    RuntimeMetrics, SharedPool,
};
use hsp_sparql::JoinQuery;
use hsp_store::Dataset;

use crate::cache::{ast_reads, query_reads, CacheStats, QueryCache, Reads};
use crate::extended::{evaluate_ast_in, ExtendedError, ExtendedOutput};
use crate::update::{run_update_traced, UpdateError, UpdateStats};

/// Which planner a [`Request`] runs through (join-fragment queries only;
/// OPTIONAL/UNION queries always evaluate HSP-planned, per block).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Planner {
    /// The paper's heuristics-based planner (the default).
    #[default]
    Hsp,
    /// The RDF-3X-style dynamic-programming baseline.
    Cdp,
    /// The SQL-style left-deep baseline.
    Sql,
    /// CDP over HSP's rewritten query.
    Hybrid,
    /// The Stocker et al. selectivity-ordering baseline.
    Stocker,
}

impl std::str::FromStr for Planner {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "hsp" => Ok(Planner::Hsp),
            "cdp" => Ok(Planner::Cdp),
            "sql" => Ok(Planner::Sql),
            "hybrid" => Ok(Planner::Hybrid),
            "stocker" => Ok(Planner::Stocker),
            other => Err(format!(
                "unknown planner `{other}` (hsp|cdp|sql|hybrid|stocker)"
            )),
        }
    }
}

/// One query or update request: the text plus every execution option the
/// engine understands, builder-style. All options default off.
#[derive(Debug, Clone, Default)]
pub struct Request {
    text: String,
    planner: Planner,
    explain: bool,
    sip: bool,
    strategy: ExecStrategy,
    row_budget: Option<usize>,
    threads: Option<usize>,
    timeout: Option<Duration>,
    mem_budget: Option<usize>,
    cancel: Option<Arc<CancelToken>>,
    inject_faults: bool,
    no_cache: bool,
}

impl Request {
    /// A request for `text` with default options.
    pub fn new(text: impl Into<String>) -> Self {
        Request {
            text: text.into(),
            ..Request::default()
        }
    }

    /// The request text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Select the planner for join-fragment queries.
    pub fn with_planner(mut self, planner: Planner) -> Self {
        self.planner = planner;
        self
    }

    /// Return the plan/pipeline explanation instead of executing only.
    pub fn with_explain(mut self) -> Self {
        self.explain = true;
        self
    }

    /// Enable sideways information passing.
    pub fn with_sip(mut self) -> Self {
        self.sip = true;
        self
    }

    /// Select the evaluator (see [`ExecStrategy`]).
    pub fn with_strategy(mut self, strategy: ExecStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Abort when any operator materialises more than `rows` rows.
    pub fn with_row_budget(mut self, rows: usize) -> Self {
        self.row_budget = Some(rows);
        self
    }

    /// Thread budget for the parallel kernels (gates *whether* kernels
    /// parallelise; on a pooled session the pool's width does the work).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Wall-clock deadline for the whole request.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// [`Request::with_timeout`] in milliseconds.
    pub fn with_timeout_ms(self, ms: u64) -> Self {
        self.with_timeout(Duration::from_millis(ms))
    }

    /// Cap the live materialised bytes of the request.
    pub fn with_mem_budget(mut self, bytes: usize) -> Self {
        self.mem_budget = Some(bytes);
        self
    }

    /// [`Request::with_mem_budget`] in mebibytes.
    pub fn with_mem_budget_mb(self, mb: usize) -> Self {
        self.with_mem_budget(mb.saturating_mul(1024 * 1024))
    }

    /// Attach a caller-held cancellation token.
    pub fn with_cancel_token(mut self, token: Arc<CancelToken>) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Arm the `HSP_FAULT` fault-injection hook (tests / CI only).
    pub fn with_fault_injection(mut self) -> Self {
        self.inject_faults = true;
        self
    }

    /// Bypass the session's plan and result caches for this request
    /// (see [`crate::cache`]). Caching is on by default.
    pub fn without_cache(mut self) -> Self {
        self.no_cache = true;
        self
    }
}

/// A query's result: the materialised rows plus everything the CLI and
/// server render around them.
#[derive(Debug, Clone)]
pub struct Response {
    /// Named columns over optional terms (`None` = unbound).
    pub output: ExtendedOutput,
    /// `Some(answer)` when the request was an `ASK` query (the output
    /// then has zero columns and at most one row).
    pub ask: Option<bool>,
    /// The rendered plan + pipeline DAG, when the request asked for
    /// [`Request::with_explain`]. Append
    /// [`render_runtime_metrics`](hsp_engine::explain::render_runtime_metrics)
    /// over [`Response::metrics`] for the full CLI explain output.
    pub explain: Option<String>,
    /// A caller-facing note (e.g. "fell back to the extended evaluator").
    pub note: Option<String>,
    /// What the engine did: parallel kernels, pipelines, pool counters —
    /// with `shared_pool_batches` stamped from the session's pool, which
    /// is the per-query proof of shared-pool scheduling.
    pub metrics: RuntimeMetrics,
}

/// An update's result.
#[derive(Debug, Clone, Copy)]
pub struct UpdateResponse {
    /// Triples inserted / deleted.
    pub stats: UpdateStats,
    /// Dataset size after the update was published.
    pub triples: usize,
}

/// A [`Session`] request failure.
#[derive(Debug)]
pub enum SessionError {
    /// Query parsing, planning, or execution failed.
    Query(ExtendedError),
    /// Update parsing or execution failed (nothing was published).
    Update(UpdateError),
    /// The chosen planner could not plan the query.
    Plan(String),
    /// The request combination is unsupported (e.g. `explain` on a query
    /// outside the join fragment).
    Unsupported(String),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Query(e) => write!(f, "{e}"),
            SessionError::Update(e) => write!(f, "{e}"),
            SessionError::Plan(e) => write!(f, "{e}"),
            SessionError::Unsupported(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl SessionError {
    /// A short machine-readable code for protocol surfaces (the serve
    /// layer's `ERR <CODE> …` responses). Governor trips are recognised
    /// from the engine's error messages, which cross the extended
    /// evaluator as strings.
    pub fn code(&self) -> &'static str {
        match self {
            SessionError::Query(ExtendedError::Parse(_))
            | SessionError::Update(UpdateError::Parse(_)) => "PARSE",
            SessionError::Plan(_) => "PLAN",
            SessionError::Unsupported(_) => "UNSUPPORTED",
            other => {
                let msg = other.to_string();
                if msg.contains("deadline exceeded") {
                    "TIMEOUT"
                } else if msg.contains("cancelled") {
                    "CANCELLED"
                } else if msg.contains("memory budget exceeded") {
                    "MEM"
                } else {
                    "EXEC"
                }
            }
        }
    }
}

/// Knobs fixed at session construction.
#[derive(Debug, Clone, Default)]
pub struct SessionOptions {
    /// Shared-pool worker count: `None` auto-detects (like
    /// [`MorselConfig::auto`]), `Some(0)` disables the shared pool
    /// entirely (kernels spawn scoped threads per invocation — the
    /// pre-session behaviour, still right for one-shot CLI runs),
    /// `Some(n)` pins it.
    pub pool_threads: Option<usize>,
    /// Session-wide rows-per-morsel override (see
    /// [`ExecConfig::with_morsel_rows`]); servers lower it so small
    /// datasets still interleave on the pool.
    pub morsel_rows: Option<usize>,
    /// Session-wide sequential-below threshold override.
    pub min_parallel_rows: Option<usize>,
    /// Per-order delta size above which [`Session::update`] rebuilds the
    /// base runs after publishing (see
    /// [`Dataset::set_compaction_threshold`]). `None` keeps the store's
    /// default (the `HSP_COMPACT_THRESHOLD` environment variable, else
    /// 4096); `Some(1)` forces a rebuild after every update, which is
    /// the O(store)-per-batch behaviour of the pre-delta store and is
    /// what the write-heavy bench uses as its baseline.
    pub compaction_threshold: Option<usize>,
}

struct SessionInner {
    /// The `Arc`-swapped store: readers clone the `Arc` (a snapshot),
    /// writers replace it.
    store: RwLock<Arc<Dataset>>,
    /// Serialises writers (the `RwLock` write lock is held only for the
    /// final pointer swap, never across update execution).
    write_lock: Mutex<()>,
    pool: Option<SharedPool>,
    morsel_rows: Option<usize>,
    min_parallel_rows: Option<usize>,
    /// Monotonic query tags for the pool's cross-query accounting.
    queries: AtomicU64,
    /// The two-tier plan + result cache (see [`crate::cache`]).
    cache: QueryCache,
}

impl Drop for SessionInner {
    fn drop(&mut self) {
        if let Some(pool) = &self.pool {
            pool.shutdown();
        }
    }
}

/// A shared handle (cheap to clone) to one dataset + one worker pool.
/// See the module docs for the concurrency model.
#[derive(Clone)]
pub struct Session {
    inner: Arc<SessionInner>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("triples", &self.snapshot().len())
            .field("pool", &self.inner.pool)
            .finish()
    }
}

impl Session {
    /// A session over `ds` with an auto-sized shared pool.
    pub fn new(ds: Dataset) -> Self {
        Session::with_options(ds, SessionOptions::default())
    }

    /// A session over `ds` with explicit [`SessionOptions`].
    pub fn with_options(mut ds: Dataset, options: SessionOptions) -> Self {
        if options.compaction_threshold.is_some() {
            ds.set_compaction_threshold(options.compaction_threshold);
        }
        let pool = match options.pool_threads {
            Some(0) => None,
            Some(n) => Some(SharedPool::new(n)),
            None => Some(SharedPool::new(MorselConfig::auto().threads())),
        };
        Session {
            inner: Arc::new(SessionInner {
                store: RwLock::new(Arc::new(ds)),
                write_lock: Mutex::new(()),
                pool,
                morsel_rows: options.morsel_rows,
                min_parallel_rows: options.min_parallel_rows,
                queries: AtomicU64::new(0),
                cache: QueryCache::default(),
            }),
        }
    }

    /// The current dataset snapshot (immutable; updates swap in a new
    /// one, they never mutate a published snapshot).
    pub fn snapshot(&self) -> Arc<Dataset> {
        Arc::clone(
            &self
                .inner
                .store
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    /// The shared pool's lifetime counters, when the session has one.
    /// `cross_query_switches > 0` under concurrent load is the proof
    /// that one pool interleaves morsels of many queries.
    pub fn pool_stats(&self) -> Option<PoolStats> {
        self.inner.pool.as_ref().map(SharedPool::stats)
    }

    /// Run one query against the current snapshot. Safe to call from
    /// many threads at once: every request gets its own context and
    /// governor, and parallel kernels of all of them share the pool.
    ///
    /// Caching (on by default, [`Request::without_cache`] opts out):
    /// a result-cacheable request is first looked up in the result tier
    /// and a hit returns the stored response without executing at all;
    /// on a miss, HSP join queries consult the plan tier by canonical
    /// shape, skipping planning when an isomorphic query was planned
    /// before. [`Response::metrics`] reports both tiers' outcomes.
    pub fn query(&self, request: Request) -> Result<Response, SessionError> {
        let result_key = result_cache_key(&request);
        // Look up and snapshot under one store read guard: invalidation
        // runs inside the *write* guard before the snapshot swap, so an
        // entry seen here is guaranteed to match the snapshot we take.
        let (ds, version) = {
            let store = self
                .inner
                .store
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(key) = &result_key {
                if let Some(mut response) = self.inner.cache.result_get(key) {
                    response.metrics.result_cache_used = true;
                    response.metrics.result_cache_hit = true;
                    // Execution was skipped; nothing ran on the pool.
                    response.metrics.shared_pool_batches = 0;
                    return Ok(response);
                }
            }
            (Arc::clone(&store), self.inner.cache.version())
        };
        let config = self.exec_config(&request);
        let ctx = config.context();
        let tag = self.inner.queries.fetch_add(1, Ordering::Relaxed);
        let guard = self.inner.pool.as_ref().map(|p| p.install(tag));
        let cache = (!request.no_cache).then_some(&self.inner.cache);
        let result = query_snapshot(&ds, &request, &config, &ctx, cache);
        let batches = guard.as_ref().map_or(0, |g| g.batches() as usize);
        drop(guard);
        let (mut response, reads) = result?;
        response.metrics.shared_pool_batches = batches;
        response.metrics.store_version = ds.store().version();
        response.metrics.store_delta_rows = ds.store().delta_rows();
        response.metrics.store_compactions = ds.store().compactions();
        if let Some(key) = result_key {
            response.metrics.result_cache_used = true;
            // Re-acquire the read guard so the insert cannot interleave
            // with an invalidation pass; the version check inside drops
            // the entry if an update published since our snapshot.
            let _store = self
                .inner
                .store
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            self.inner
                .cache
                .result_insert(key, &response, reads, version);
        }
        Ok(response)
    }

    /// Apply one SPARQL Update request, build-and-swap: the whole
    /// request applies to a private clone of the dataset, and the clone
    /// is published only on success — concurrent readers keep their
    /// snapshot throughout, and an error publishes nothing.
    ///
    /// The clone is copy-on-write: the six base runs (and the
    /// dictionary's base segment) stay `Arc`-shared with the published
    /// snapshot, and the update lands in per-order delta overlays — so
    /// building and publishing a batch costs O(delta log delta), not
    /// O(store). When an order's delta outgrows the compaction
    /// threshold, the base runs are rebuilt *after* the swap: readers
    /// are already served by the new snapshot, so the rebuild never
    /// adds publication latency.
    pub fn update(&self, request: Request) -> Result<UpdateResponse, SessionError> {
        let config = self.exec_config(&request);
        let _writer = self
            .inner
            .write_lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // O(delta) clone: shares the base runs with the published
        // snapshot via `Arc`, copies only the delta overlays.
        let mut working = (*self.snapshot()).clone();
        let tag = self.inner.queries.fetch_add(1, Ordering::Relaxed);
        let guard = self.inner.pool.as_ref().map(|p| p.install(tag));
        let result = run_update_traced(&mut working, &request.text, &config);
        drop(guard);
        let (stats, touched) = result.map_err(SessionError::Update)?;
        let triples = working.len();
        let needs_compaction = working.store().needs_compaction();
        let published = Arc::new(working);
        {
            let mut store = self
                .inner
                .store
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            // Invalidate inside the write guard, before the swap: a
            // concurrent reader either held the read lock first and saw
            // the old snapshot with its entries (consistent), or blocks
            // until the swap and sees neither. No-op updates (nothing
            // inserted or deleted) keep the cache warm.
            if stats.inserted + stats.deleted > 0 {
                self.inner.cache.invalidate(&touched);
            }
            *store = Arc::clone(&published);
        }
        if needs_compaction {
            // Rebuild the base runs off the publication path: the delta
            // snapshot is already published and serving readers, so the
            // rebuild costs no reader or publication latency. Still
            // under the writer lock — the next update waits for fresh
            // base runs instead of stacking deltas. Compaction is
            // content-neutral (same `version`), so the result cache
            // stays warm across the second swap.
            let mut compacted = (*published).clone();
            compacted.compact();
            let mut store = self
                .inner
                .store
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            *store = Arc::new(compacted);
        }
        Ok(UpdateResponse { stats, triples })
    }

    /// Lifetime counters of the two-tier query cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache.stats()
    }

    /// The [`ExecConfig`] a request asks for, under this session's
    /// morsel overrides.
    fn exec_config(&self, request: &Request) -> ExecConfig {
        let mut config = ExecConfig::unlimited();
        config.max_intermediate_rows = request.row_budget;
        config.threads = request.threads;
        config.strategy = request.strategy;
        config.morsel_rows = self.inner.morsel_rows;
        config.min_parallel_rows = self.inner.min_parallel_rows;
        if request.sip {
            config = config.with_sip();
        }
        if let Some(timeout) = request.timeout {
            config = config.with_timeout(timeout);
        }
        if let Some(bytes) = request.mem_budget {
            config = config.with_mem_budget(bytes);
        }
        if let Some(token) = &request.cancel {
            config = config.with_cancel_token(Arc::clone(token));
        }
        if request.inject_faults {
            config = config.with_fault_injection();
        }
        config
    }
}

/// Plan a join-fragment query with the chosen planner (aggregates are
/// HSP-only, as in the CLI).
fn plan_query(
    planner: Planner,
    ds: &Dataset,
    query: &JoinQuery,
) -> Result<(PhysicalPlan, JoinQuery), String> {
    if query.is_aggregate() && planner != Planner::Hsp {
        return Err(
            "aggregation (GROUP BY / HAVING / aggregate functions) is only \
             planned by the hsp planner"
                .to_string(),
        );
    }
    match planner {
        Planner::Hsp => {
            let p = HspPlanner::new().plan(query).map_err(|e| e.to_string())?;
            Ok((p.plan, p.query))
        }
        Planner::Cdp => {
            let p = CdpPlanner::new()
                .plan(ds, query)
                .map_err(|e| e.to_string())?;
            Ok((p.plan, p.query))
        }
        Planner::Sql => {
            let p = LeftDeepPlanner::new()
                .plan(ds, query)
                .map_err(|e| e.to_string())?;
            Ok((p.plan, p.query))
        }
        Planner::Hybrid => {
            let p = HybridPlanner::new()
                .plan(ds, query)
                .map_err(|e| e.to_string())?;
            Ok((p.plan, p.query))
        }
        Planner::Stocker => {
            let p = StockerPlanner::new()
                .plan(ds, query)
                .map_err(|e| e.to_string())?;
            Ok((p.plan, p.query))
        }
    }
}

/// The result-tier cache key, when the request is result-cacheable at
/// all. Governed requests (timeout / budgets / cancellation / fault
/// injection) and explain runs are never served from the result tier —
/// their responses depend on more than the snapshot — but they still
/// use the plan tier, whose entries are execution-independent.
fn result_cache_key(request: &Request) -> Option<String> {
    if request.no_cache
        || request.explain
        || request.inject_faults
        || request.row_budget.is_some()
        || request.timeout.is_some()
        || request.mem_budget.is_some()
        || request.cancel.is_some()
    {
        return None;
    }
    Some(format!(
        "{:?}|{}|{:?}|{:?}|{}",
        request.planner, request.sip, request.strategy, request.threads, request.text
    ))
}

/// The dispatch the CLI used to hand-roll: ASK short-circuits, join
/// -fragment queries take the chosen planner, everything else goes to
/// the extended (OPTIONAL/UNION) evaluator. Returns the response plus
/// the predicate read set the result cache keys invalidation on.
fn query_snapshot(
    ds: &Dataset,
    request: &Request,
    config: &ExecConfig,
    ctx: &ExecContext,
    cache: Option<&QueryCache>,
) -> Result<(Response, Reads), SessionError> {
    if let Ok(ast) = hsp_sparql::parse_query(&request.text) {
        if ast.ask {
            let reads = ast_reads(&ast.where_clause);
            let output = evaluate_ast_in(ds, &ast, config, ctx).map_err(SessionError::Query)?;
            let ask = Some(!output.rows.is_empty());
            return Ok((
                Response {
                    output,
                    ask,
                    explain: None,
                    note: None,
                    metrics: RuntimeMetrics::of(ctx),
                },
                reads,
            ));
        }
    }
    match JoinQuery::parse(&request.text) {
        Ok(query) => {
            // Plan tier: HSP plans are statistics-free, so any query
            // with the same canonical shape reuses the cached plan with
            // its own constants substituted — planning runs only once
            // per shape. Baseline planners consult the data and are
            // planned fresh every time.
            let mut plan_cache_used = false;
            let mut plan_cache_hit = false;
            let mut planned = None;
            if request.planner == Planner::Hsp {
                if let Some(c) = cache {
                    if let Some(canon) = hsp_sparql::canonicalize(&query) {
                        plan_cache_used = true;
                        if let Some(pair) = c.plan_get(&canon, &query) {
                            plan_cache_hit = true;
                            planned = Some(pair);
                        } else {
                            let pair = plan_query(request.planner, ds, &query)
                                .map_err(SessionError::Plan)?;
                            c.plan_insert(canon, &query, &pair.0, &pair.1);
                            planned = Some(pair);
                        }
                    }
                }
            }
            let (plan, planned_query) = match planned {
                Some(pair) => pair,
                None => plan_query(request.planner, ds, &query).map_err(SessionError::Plan)?,
            };
            let reads = query_reads(&planned_query);
            let output = execute_in(&plan, ds, config, ctx)
                .map_err(|e| SessionError::Query(ExtendedError::Eval(e.to_string())))?;
            let explain = request.explain.then(|| {
                let mut text = hsp_engine::explain::render_plan_with_profile(
                    &plan,
                    &output.profile,
                    &planned_query,
                );
                // SIP and row-budget executions fall back to the
                // operator-at-a-time evaluator — only render the pipeline
                // DAG when the pipeline executor actually ran.
                if !request.sip && request.row_budget.is_none() {
                    text.push_str(&hsp_engine::explain::render_pipeline_dag(
                        &plan,
                        &planned_query,
                    ));
                }
                text
            });
            let columns: Vec<String> = planned_query
                .projection
                .iter()
                .map(|(n, _)| n.clone())
                .collect();
            let rows = (0..output.table.len())
                .map(|i| {
                    planned_query
                        .projection
                        .iter()
                        // `ExecOutput::term` resolves both dictionary ids
                        // and computed (aggregate-output) ids.
                        .map(|&(_, v)| output.term(ds, output.table.value(v, i)))
                        .collect()
                })
                .collect();
            let mut metrics = output.runtime;
            metrics.plan_cache_used = plan_cache_used;
            metrics.plan_cache_hit = plan_cache_hit;
            Ok((
                Response {
                    output: ExtendedOutput { columns, rows },
                    ask: None,
                    explain,
                    note: None,
                    metrics,
                },
                reads,
            ))
        }
        Err(join_err) => {
            if request.explain {
                return Err(SessionError::Unsupported(
                    "--explain requires a join query (no OPTIONAL/UNION)".into(),
                ));
            }
            let note = (request.planner != Planner::Hsp).then(|| {
                format!(
                    "query is outside the join-query fragment ({join_err}); \
                     using the extended evaluator (HSP-planned blocks)"
                )
            });
            let ast = hsp_sparql::parse_query(&request.text)
                .map_err(|e| SessionError::Query(ExtendedError::Parse(e)))?;
            let reads = ast_reads(&ast.where_clause);
            let output = evaluate_ast_in(ds, &ast, config, ctx).map_err(SessionError::Query)?;
            Ok((
                Response {
                    output,
                    ask: None,
                    explain: None,
                    note,
                    metrics: RuntimeMetrics::of(ctx),
                },
                reads,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Dataset {
        Dataset::from_ntriples(
            r#"<http://e/a1> <http://e/name> "Alice" .
<http://e/a1> <http://e/email> "alice@example.org" .
<http://e/a2> <http://e/name> "Bob" .
"#,
        )
        .unwrap()
    }

    #[test]
    fn query_and_update_round_trip() {
        let session = Session::new(dataset());
        let out = session
            .query(Request::new(
                "SELECT ?n WHERE { ?p <http://e/name> ?n . } ORDER BY ?n",
            ))
            .unwrap();
        assert_eq!(out.output.rows.len(), 2);
        let up = session
            .update(Request::new(
                "INSERT DATA { <http://e/a3> <http://e/name> \"Carol\" . }",
            ))
            .unwrap();
        assert_eq!(up.stats.inserted, 1);
        assert_eq!(up.triples, 4);
        let out = session
            .query(Request::new(
                "SELECT ?n WHERE { ?p <http://e/name> ?n . } ORDER BY ?n",
            ))
            .unwrap();
        assert_eq!(out.output.rows.len(), 3);
    }

    #[test]
    fn ask_sets_the_answer() {
        let session = Session::new(dataset());
        let yes = session
            .query(Request::new("ASK { ?p <http://e/name> \"Alice\" . }"))
            .unwrap();
        assert_eq!(yes.ask, Some(true));
        let no = session
            .query(Request::new("ASK { ?p <http://e/name> \"Zed\" . }"))
            .unwrap();
        assert_eq!(no.ask, Some(false));
    }

    #[test]
    fn failed_update_publishes_nothing() {
        let session = Session::new(dataset());
        let before = session.snapshot();
        // The INSERT succeeds, then the DELETE WHERE trips the row
        // budget mid-sequence.
        let err = session.update(
            Request::new(
                "INSERT DATA { <http://e/a9> <http://e/name> \"Eve\" . } ; \
                 DELETE WHERE { ?s <http://e/name> ?n . }",
            )
            .with_row_budget(0),
        );
        assert!(err.is_err());
        // Build-and-swap: the failed request left the published dataset
        // untouched, including the first (successful) operation.
        assert_eq!(session.snapshot().len(), before.len());
    }

    #[test]
    fn snapshots_survive_updates() {
        let session = Session::new(dataset());
        let old = session.snapshot();
        session
            .update(Request::new("DELETE WHERE { ?s <http://e/name> ?n . }"))
            .unwrap();
        assert_eq!(old.len(), 3);
        assert_eq!(session.snapshot().len(), 1);
    }

    #[test]
    fn explain_requires_join_fragment() {
        let session = Session::new(dataset());
        let out = session
            .query(Request::new("SELECT ?n WHERE { ?p <http://e/name> ?n . }").with_explain())
            .unwrap();
        assert!(out.explain.unwrap().contains("[tp0]"));
        let err = session
            .query(
                Request::new(
                    "SELECT ?n WHERE { ?p <http://e/name> ?n . \
                     OPTIONAL { ?p <http://e/email> ?e . } }",
                )
                .with_explain(),
            )
            .unwrap_err();
        assert_eq!(err.code(), "UNSUPPORTED");
    }

    #[test]
    fn timeout_maps_to_timeout_code() {
        let session = Session::new(dataset());
        let result = session.query(
            Request::new("SELECT ?n WHERE { ?p <http://e/name> ?n . }")
                .with_timeout(Duration::from_nanos(1)),
        );
        if let Err(e) = result {
            assert_eq!(e.code(), "TIMEOUT", "{e}");
        }
        // Either way the session still serves the next query.
        assert!(session
            .query(Request::new("SELECT ?n WHERE { ?p <http://e/name> ?n . }"))
            .is_ok());
    }

    #[test]
    fn pool_less_session_works() {
        let session = Session::with_options(
            dataset(),
            SessionOptions {
                pool_threads: Some(0),
                ..SessionOptions::default()
            },
        );
        assert!(session.pool_stats().is_none());
        let out = session
            .query(Request::new("SELECT ?n WHERE { ?p <http://e/name> ?n . }"))
            .unwrap();
        assert_eq!(out.output.rows.len(), 2);
        assert_eq!(out.metrics.shared_pool_batches, 0);
    }
}
