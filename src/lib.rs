//! # sparql-hsp — Heuristics-based SPARQL query optimisation
//!
//! A faithful, self-contained reproduction of *"Heuristics-based Query
//! Optimisation for SPARQL"* (Tsialiamanis, Sidirourgos, Fundulaki,
//! Christophides, Boncz — EDBT 2012): the **HSP** planner, the substrate it
//! needs (a six-order columnar triple store and a sortedness-aware
//! execution engine), the baselines it is evaluated against (RDF-3X-style
//! **CDP** and a SQL-style left-deep optimizer), and the full benchmark
//! workload.
//!
//! ## Quick start
//!
//! ```
//! use sparql_hsp::prelude::*;
//!
//! // Load RDF data (N-Triples) into a dataset with all six sort orders.
//! let ds = Dataset::from_ntriples(r#"
//! <http://e/Journal1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://e/Journal> .
//! <http://e/Journal1> <http://e/title> "Journal 1 (1940)" .
//! <http://e/Journal1> <http://e/issued> "1940" .
//! "#).unwrap();
//!
//! // Parse a SPARQL join query.
//! let query = JoinQuery::parse(r#"
//!     SELECT ?yr ?jrnl WHERE {
//!         ?jrnl <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://e/Journal> .
//!         ?jrnl <http://e/title> "Journal 1 (1940)" .
//!         ?jrnl <http://e/issued> ?yr .
//!     }"#).unwrap();
//!
//! // Plan with HSP (no statistics needed!) and execute.
//! let planned = HspPlanner::new().plan(&query).unwrap();
//! let out = execute(&planned.plan, &ds, &ExecConfig::unlimited()).unwrap();
//! assert_eq!(out.table.len(), 1);
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`rdf`] | terms, dictionary encoding, N-Triples I/O |
//! | [`store`] | the six sorted relations + exact statistics |
//! | [`sparql`] | parser, join-query algebra, FILTER rewriting, analysis |
//! | [`engine`] | columnar operators, executor, cost model, explain |
//! | [`hsp`] | **the paper**: variable graph, MWIS, heuristics, planner |
//! | [`baseline`] | CDP, SQL-left-deep and hybrid planners |
//! | [`datagen`] | SP2Bench-like + YAGO-like generators, the workload |
//! | [`extended`] | OPTIONAL / UNION / ASK evaluation over HSP-planned blocks |
//! | [`update`] | SPARQL Update (INSERT DATA / DELETE DATA / DELETE WHERE) |
//! | [`results`] | W3C SPARQL 1.1 JSON/CSV/TSV result serialisers |
//! | [`session`] | the unified `Session::query` / `Session::update` front door |
//! | [`cache`] | two-tier plan + result cache keyed on canonical query shape |
//! | [`serve`] | framed-TCP concurrent query server on one shared morsel pool |
//!
//! ## Serving many queries at once
//!
//! For anything beyond one-shot evaluation, open a [`session::Session`]:
//! it keeps the dataset behind an `Arc` swap (reads snapshot, updates
//! build-and-swap) and schedules the parallel kernels of *all* concurrent
//! queries on one shared morsel worker pool. [`serve::Server`] exposes a
//! session over framed TCP with admission control.

pub mod cache;
pub mod extended;
pub mod results;
pub mod serve;
pub mod session;
pub mod update;

pub use hsp_baseline as baseline;
pub use hsp_core as hsp;
pub use hsp_datagen as datagen;
pub use hsp_engine as engine;
pub use hsp_rdf as rdf;
pub use hsp_sparql as sparql;
pub use hsp_store as store;

/// One-import convenience: the types almost every user needs.
pub mod prelude {
    pub use hsp_baseline::{
        CdpPlanner, HybridPlanner, LeftDeepPlanner, StockerPlanner, StockerStats,
    };
    pub use hsp_core::{HspConfig, HspPlanner, VariableGraph};
    pub use hsp_engine::explain::{render_plan, render_plan_with_profile};
    pub use hsp_engine::metrics::{plans_similar, PlanMetrics, PlanShape};
    pub use hsp_engine::{execute, BindingTable, ExecConfig, PhysicalPlan};
    pub use hsp_rdf::{Dictionary, Term, TermId, Triple, TriplePos};
    pub use hsp_sparql::{Evaluator, Expr, JoinQuery, Modifiers, QueryCharacteristics, Regex, Var};
    pub use hsp_store::{Dataset, Order, TripleStore};

    pub use crate::cache::CacheStats;
    pub use crate::extended::ExtendedOutput;
    pub use crate::results;
    pub use crate::session::{Planner, Request, Response, Session, SessionOptions};
    pub use crate::update::UpdateStats;

    // Deprecated entry points, re-exported until they are removed.
    #[allow(deprecated)]
    pub use crate::extended::evaluate_extended;
    #[allow(deprecated)]
    pub use crate::update::apply_update;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_quickstart_works() {
        let ds = Dataset::from_ntriples("<http://e/s> <http://e/p> <http://e/o> .\n").unwrap();
        let query = JoinQuery::parse("SELECT ?s WHERE { ?s <http://e/p> ?o . }").unwrap();
        let planned = HspPlanner::new().plan(&query).unwrap();
        let out = execute(&planned.plan, &ds, &ExecConfig::unlimited()).unwrap();
        assert_eq!(out.table.len(), 1);
    }
}
