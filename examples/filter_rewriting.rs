//! FILTER rewriting: the optimisation Section 6.2.1 credits to HSP alone.
//!
//! `FILTER (?v = const)` becomes a pattern constant; `FILTER (?u = ?v)`
//! unifies the variables. The second rewrite is what saves SP4a from a
//! Cartesian product — this example shows all three systems' behaviour.
//!
//! ```text
//! cargo run --release --example filter_rewriting
//! ```

use sparql_hsp::datagen::{generate_sp2bench, Sp2BenchConfig};
use sparql_hsp::prelude::*;
use sparql_hsp::sparql::rewrite::rewrite_filters;

fn main() {
    let ds = generate_sp2bench(Sp2BenchConfig::with_triples(100_000));
    println!("dataset: {} triples\n", ds.len());

    let query = JoinQuery::parse(sparql_hsp::datagen::workload::SP4A).expect("SP4a parses");
    println!("SP4a: authors of articles sharing a homepage, connected ONLY via");
    println!("FILTER (?hp1 = ?hp2)\n");

    // What the rewrite does.
    let (rewritten, report) = rewrite_filters(&query);
    println!(
        "HSP rewriting: {} unification(s) {:?}, residual filters: {}",
        report.unifications.len(),
        report.unifications,
        report.residual_filters
    );
    println!(
        "variables: {} before, {} after\n",
        query.num_vars(),
        rewritten.num_vars()
    );

    // HSP: rewrites internally, no cross product.
    let hsp = HspPlanner::new().plan(&query).expect("HSP plans");
    let m = PlanMetrics::of(&hsp.plan);
    println!(
        "HSP  : {} merge joins, {} hash joins, {} cross products",
        m.merge_joins, m.hash_joins, m.cross_products
    );

    // CDP: no unification — compile-time cross-product rejection (RDF-3X
    // behaviour; the paper rewrote SP4a manually to benchmark it).
    match CdpPlanner::new().plan(&ds, &query) {
        Ok(_) => println!("CDP  : unexpectedly planned the raw query"),
        Err(e) => println!("CDP  : {e}"),
    }
    let cdp = CdpPlanner::new()
        .plan(&ds, &rewritten)
        .expect("CDP plans rewritten form");
    let cm = PlanMetrics::of(&cdp.plan);
    println!(
        "CDP  : on the manually-rewritten form: {} merge joins, {} hash joins",
        cm.merge_joins, cm.hash_joins
    );

    // SQL left-deep: plans the Cartesian product and dies on the row budget.
    let sql = LeftDeepPlanner::new().plan(&ds, &query).expect("SQL plans");
    let sm = PlanMetrics::of(&sql.plan);
    println!(
        "SQL  : {} cross product(s) in the plan — executing under a row budget:",
        sm.cross_products
    );
    match execute(&sql.plan, &ds, &ExecConfig::with_row_budget(1_000_000)) {
        Ok(out) => println!(
            "SQL  : finished with {} rows (small dataset!)",
            out.table.len()
        ),
        Err(e) => println!("SQL  : XXX — {e}"),
    }

    // And the rewritten plans agree on the answer.
    let a = execute(&hsp.plan, &ds, &ExecConfig::unlimited()).expect("HSP executes");
    let b = execute(&cdp.plan, &ds, &ExecConfig::unlimited()).expect("CDP executes");
    let proj: Vec<Var> = hsp.query.projection.iter().map(|&(_, v)| v).collect();
    assert_eq!(
        a.table.sorted_rows_for(&proj),
        b.table.sorted_rows_for(&proj)
    );
    println!(
        "\nHSP and CDP agree: {} author pairs share a homepage",
        a.table.len()
    );
}
