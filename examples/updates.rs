//! SPARQL Update against the six-order store: `INSERT DATA`,
//! `DELETE DATA`, `DELETE WHERE` — and why a *heuristics-based* planner
//! shines on mutating data (no statistics ever go stale).
//!
//! Updates go through [`Session::update`]: the whole request applies to
//! a private clone of the dataset and publishes with one pointer swap,
//! so concurrent readers keep a consistent snapshot and a failed
//! request changes nothing.
//!
//! ```text
//! cargo run --release --example updates
//! ```

use sparql_hsp::session::{Request, Session};
use sparql_hsp::store::Dataset;

fn count(session: &Session, query: &str) -> usize {
    session
        .query(Request::new(query))
        .expect("query evaluates")
        .output
        .rows
        .len()
}

fn main() {
    let session = Session::new(Dataset::from_ntriples("").expect("empty document"));
    println!("starting from an empty dataset\n");

    // 1. Load a batch of bibliographic facts.
    let up = session
        .update(Request::new(
            r#"PREFIX e: <http://e/>
            INSERT DATA {
                e:j1 e:type e:Journal . e:j1 e:issued "1940" .
                e:j2 e:type e:Journal . e:j2 e:issued "1941" .
                e:j3 e:type e:Journal . e:j3 e:issued "1942" .
                e:a1 e:type e:Article . e:a1 e:issued "1950" .
            }"#,
        ))
        .expect("insert applies");
    println!(
        "INSERT DATA: +{} triples (dataset now {})",
        up.stats.inserted, up.triples
    );

    // All six sort orders stay consistent after incremental inserts —
    // queries run immediately, no reload, no statistics rebuild.
    let journals = "SELECT ?j WHERE { ?j <http://e/type> <http://e/Journal> . }";
    println!("journals now: {}", count(&session, journals));

    // 2. Re-inserting existing triples is a no-op (RDF graphs are sets).
    let up = session
        .update(Request::new(
            r#"INSERT DATA { <http://e/j1> <http://e/type> <http://e/Journal> . }"#,
        ))
        .expect("insert applies");
    assert_eq!(up.stats.inserted, 0);
    println!("re-insert of an existing triple: +0 (set semantics)");

    // 3. Point deletion. Readers holding the old snapshot are unmoved.
    let before = session.snapshot();
    let up = session
        .update(Request::new(
            r#"DELETE DATA { <http://e/j3> <http://e/issued> "1942" . }"#,
        ))
        .expect("delete applies");
    println!(
        "DELETE DATA: -{} (dataset now {}; a pre-update snapshot still sees {})",
        up.stats.deleted,
        up.triples,
        before.len()
    );

    // 4. Pattern deletion: DELETE WHERE is planned by HSP like any query.
    let up = session
        .update(Request::new(
            "DELETE WHERE { ?j <http://e/type> <http://e/Journal> . ?j <http://e/issued> ?yr . }",
        ))
        .expect("delete-where applies");
    println!(
        "DELETE WHERE (journal ⋈ issued): -{} (dataset now {})",
        up.stats.deleted, up.triples
    );
    println!(
        "journals with a year left: {}",
        count(
            &session,
            "SELECT ?j WHERE { ?j <http://e/type> <http://e/Journal> . ?j <http://e/issued> ?y . }"
        )
    );

    // 5. Sequenced request: each op sees the previous one's effect
    //    inside the working clone, and the result publishes atomically.
    let up = session
        .update(Request::new(
            r#"INSERT DATA { <http://e/tmp> <http://e/type> <http://e/Scratch> . } ;
               DELETE WHERE { ?x <http://e/type> <http://e/Scratch> . } ;"#,
        ))
        .expect("sequence applies");
    assert_eq!(up.stats.inserted, 1);
    assert_eq!(up.stats.deleted, 1);
    println!("\nsequenced insert-then-delete-where: net zero, as expected");
    println!("final dataset:\n{}", session.snapshot().to_ntriples());
}
