//! SPARQL Update against the six-order store: `INSERT DATA`,
//! `DELETE DATA`, `DELETE WHERE` — and why a *heuristics-based* planner
//! shines on mutating data (no statistics ever go stale).
//!
//! ```text
//! cargo run --release --example updates
//! ```

use sparql_hsp::prelude::*;
use sparql_hsp::update::apply_update;

fn count(ds: &Dataset, query: &str) -> usize {
    let q = JoinQuery::parse(query).expect("valid SPARQL");
    let plan = HspPlanner::new().plan(&q).expect("plannable");
    execute(&plan.plan, ds, &ExecConfig::unlimited())
        .expect("executes")
        .table
        .len()
}

fn main() {
    let mut ds = Dataset::from_ntriples("").expect("empty document");
    println!("starting from an empty dataset\n");

    // 1. Load a batch of bibliographic facts.
    let stats = apply_update(
        &mut ds,
        r#"PREFIX e: <http://e/>
        INSERT DATA {
            e:j1 e:type e:Journal . e:j1 e:issued "1940" .
            e:j2 e:type e:Journal . e:j2 e:issued "1941" .
            e:j3 e:type e:Journal . e:j3 e:issued "1942" .
            e:a1 e:type e:Article . e:a1 e:issued "1950" .
        }"#,
    )
    .expect("insert applies");
    println!(
        "INSERT DATA: +{} triples (dataset now {})",
        stats.inserted,
        ds.len()
    );

    // All six sort orders stay consistent after incremental inserts —
    // queries run immediately, no reload, no statistics rebuild.
    let journals = "SELECT ?j WHERE { ?j <http://e/type> <http://e/Journal> . }";
    println!("journals now: {}", count(&ds, journals));

    // 2. Re-inserting existing triples is a no-op (RDF graphs are sets).
    let stats = apply_update(
        &mut ds,
        r#"INSERT DATA { <http://e/j1> <http://e/type> <http://e/Journal> . }"#,
    )
    .expect("insert applies");
    assert_eq!(stats.inserted, 0);
    println!("re-insert of an existing triple: +0 (set semantics)");

    // 3. Point deletion.
    let stats = apply_update(
        &mut ds,
        r#"DELETE DATA { <http://e/j3> <http://e/issued> "1942" . }"#,
    )
    .expect("delete applies");
    println!("DELETE DATA: -{} (dataset now {})", stats.deleted, ds.len());

    // 4. Pattern deletion: DELETE WHERE is planned by HSP like any query.
    let stats = apply_update(
        &mut ds,
        "DELETE WHERE { ?j <http://e/type> <http://e/Journal> . ?j <http://e/issued> ?yr . }",
    )
    .expect("delete-where applies");
    println!(
        "DELETE WHERE (journal ⋈ issued): -{} (dataset now {})",
        stats.deleted,
        ds.len()
    );
    println!(
        "journals with a year left: {}",
        count(
            &ds,
            "SELECT ?j WHERE { ?j <http://e/type> <http://e/Journal> . ?j <http://e/issued> ?y . }"
        )
    );

    // 5. Sequenced request: each op sees the previous one's effect.
    let stats = apply_update(
        &mut ds,
        r#"INSERT DATA { <http://e/tmp> <http://e/type> <http://e/Scratch> . } ;
           DELETE WHERE { ?x <http://e/type> <http://e/Scratch> . } ;"#,
    )
    .expect("sequence applies");
    assert_eq!(stats.inserted, 1);
    assert_eq!(stats.deleted, 1);
    println!("\nsequenced insert-then-delete-where: net zero, as expected");
    println!("final dataset:\n{}", ds.to_ntriples());
}
