//! Tour of the full FILTER expression language: typed comparisons,
//! arithmetic, string functions, `REGEX`, three-valued logic with
//! OPTIONAL's unbound values, and ORDER BY / LIMIT solution modifiers.
//!
//! ```text
//! cargo run --release --example expressions
//! ```

use sparql_hsp::prelude::*;
use sparql_hsp::results;
use sparql_hsp::session::{Request, Session};

fn show(session: &Session, title: &str, query: &str) {
    println!("== {title}\n{}", query.trim());
    let out = session
        .query(Request::new(query))
        .expect("query evaluates")
        .output;
    println!("{}", results::to_table(&out));
}

fn main() {
    // A small bibliographic dataset with typed literals and language tags.
    let ds = Dataset::from_ntriples(
        r#"<http://e/j1> <http://e/title> "Journal 1 (1940)" .
<http://e/j1> <http://e/issued> "1940"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://e/j1> <http://e/pages> "120"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://e/j2> <http://e/title> "Journal 1 (1952)" .
<http://e/j2> <http://e/issued> "1952"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://e/j2> <http://e/pages> "64"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://e/a1> <http://e/title> "Dielectrics at scale" .
<http://e/a1> <http://e/issued> "1950"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://e/a1> <http://e/abstract> "Sur les dielectriques"@fr .
<http://e/a2> <http://e/title> "RDF stores, considered" .
"#,
    )
    .expect("valid N-Triples");
    // The session front door; the raw dataset stays around for the
    // plan-rendering coda below.
    let session = Session::new(ds.clone());

    show(
        &session,
        "Numeric comparison on typed literals (value, not lexical, order)",
        r#"SELECT ?t ?yr WHERE {
            ?x <http://e/title> ?t . ?x <http://e/issued> ?yr .
            FILTER (?yr >= 1945)
        } ORDER BY ?yr"#,
    );

    show(
        &session,
        "Arithmetic in FILTER: journals thicker than 100 pages after doubling",
        r#"SELECT ?t ?p WHERE {
            ?x <http://e/title> ?t . ?x <http://e/pages> ?p .
            FILTER (?p * 2 > 200)
        }"#,
    );

    show(
        &session,
        "REGEX (linear-time engine, case-insensitive flag)",
        r#"SELECT ?t WHERE {
            ?x <http://e/title> ?t .
            FILTER regex(?t, "^journal \\d+", "i")
        } ORDER BY ?t"#,
    );

    show(
        &session,
        "String predicates and functions",
        r#"SELECT ?t WHERE {
            ?x <http://e/title> ?t .
            FILTER (contains(?t, "RDF") || strlen(?t) < 15)
        }"#,
    );

    show(
        &session,
        "LANG / LANGMATCHES on language-tagged literals",
        r#"SELECT ?abs WHERE {
            ?x <http://e/abstract> ?abs .
            FILTER langmatches(lang(?abs), "fr")
        }"#,
    );

    show(
        &session,
        "!BOUND: entities with a title but no recorded year (OPTIONAL minus)",
        r#"SELECT ?t WHERE {
            ?x <http://e/title> ?t .
            OPTIONAL { ?x <http://e/issued> ?yr . }
            FILTER (!bound(?yr))
        }"#,
    );

    show(
        &session,
        "ORDER BY an expression key, paginated",
        r#"SELECT ?t WHERE {
            ?x <http://e/title> ?t .
        } ORDER BY DESC(strlen(?t)) LIMIT 2"#,
    );

    // The same machinery, query-planned: complex filters ride along as
    // residual Filter operators in HSP plans.
    let query = JoinQuery::parse(
        r#"SELECT ?t WHERE {
            ?x <http://e/title> ?t .
            ?x <http://e/issued> ?yr .
            FILTER (?yr - 1900 < 45)
        }"#,
    )
    .expect("valid SPARQL");
    let planned = HspPlanner::new().plan(&query).expect("plannable");
    println!(
        "== An arithmetic FILTER inside an HSP plan\n{}",
        render_plan(&planned.plan, &planned.query)
    );
    let out = execute(&planned.plan, &ds, &ExecConfig::unlimited()).expect("executes");
    println!("rows: {}", out.table.len());
    assert_eq!(out.table.len(), 1); // only 1940
}
