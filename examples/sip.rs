//! Sideways information passing (SIP) — the run-time optimization Neumann
//! et al. added to RDF-3X (discussed in the paper's related work): a join
//! passes the observed domain of its join variable into the evaluation of
//! its other input, so scans drop non-qualifying rows immediately.
//!
//! This example executes the YAGO workload query Y2 (the paper's Table 9)
//! with and without SIP and compares the intermediate-result footprint —
//! results are identical, the footprint only shrinks.
//!
//! ```text
//! cargo run --release --example sip
//! ```

use hsp_datagen::workload;
use hsp_datagen::yago::{generate_yago, YagoConfig};
use sparql_hsp::prelude::*;

fn main() {
    let ds = generate_yago(YagoConfig::with_triples(60_000));
    println!("generated YAGO-like dataset: {} triples\n", ds.len());

    for q in workload().into_iter().filter(|q| q.id.starts_with('Y')) {
        let query = q.parse();
        let planned = HspPlanner::new().plan(&query).expect("plannable");

        let plain = execute(&planned.plan, &ds, &ExecConfig::unlimited()).expect("executes");
        let sip =
            execute(&planned.plan, &ds, &ExecConfig::unlimited().with_sip()).expect("executes");

        // SIP never changes results.
        assert_eq!(
            sip.table.sorted_rows(),
            plain.table.sorted_rows(),
            "{}: SIP changed the result set!",
            q.id
        );

        let before = plain.profile.total_intermediate_rows();
        let after = sip.profile.total_intermediate_rows();
        println!(
            "{:>3}: {} rows; intermediates {:>8} -> {:>8}  ({:.1}% kept)",
            q.id,
            plain.table.len(),
            before,
            after,
            100.0 * after as f64 / before.max(1) as f64,
        );
    }

    // Zoom into one query: per-operator view of where SIP saves work.
    let q = workload()
        .into_iter()
        .find(|q| q.id == "Y2")
        .expect("Y2 exists");
    let query = q.parse();
    let planned = HspPlanner::new().plan(&query).expect("plannable");
    let sip = execute(&planned.plan, &ds, &ExecConfig::unlimited().with_sip()).expect("executes");
    println!(
        "\nY2 under SIP (scans marked `+sip` were domain-filtered):\n{}",
        render_plan_with_profile(&planned.plan, &sip.profile, &planned.query)
    );
}
