//! OPTIONAL and UNION — the paper's §7 future-work features, evaluated by
//! the extended evaluator on top of HSP-planned blocks.
//!
//! ```text
//! cargo run --release --example optional_union
//! ```

use sparql_hsp::datagen::{generate_sp2bench, Sp2BenchConfig};
use sparql_hsp::session::{Request, Session};

fn main() {
    let ds = generate_sp2bench(Sp2BenchConfig::with_triples(60_000));
    println!("dataset: {} triples\n", ds.len());
    let session = Session::new(ds);

    // OPTIONAL: articles always have pages, only some have a month.
    let query = "
        PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
        PREFIX bench: <http://localhost/vocabulary/bench/>
        PREFIX swrc: <http://swrc.ontoware.org/ontology#>
        SELECT ?article ?pages ?month WHERE {
            ?article rdf:type bench:Article .
            ?article swrc:pages ?pages .
            OPTIONAL { ?article swrc:month ?month . }
        }";
    let out = session
        .query(Request::new(query))
        .expect("evaluates")
        .output;
    let with_month = out.rows.iter().filter(|r| r[2].is_some()).count();
    println!(
        "OPTIONAL: {} articles total, {} with a month, {} padded with UNBOUND",
        out.rows.len(),
        with_month,
        out.rows.len() - with_month
    );

    // UNION: everything that carries a title — articles or inproceedings.
    let query = "
        PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
        PREFIX bench: <http://localhost/vocabulary/bench/>
        PREFIX dc: <http://purl.org/dc/elements/1.1/>
        SELECT ?pub ?title WHERE {
            ?pub dc:title ?title .
            { ?pub rdf:type bench:Article . } UNION { ?pub rdf:type bench:Inproceedings . }
        }";
    let out = session
        .query(Request::new(query))
        .expect("evaluates")
        .output;
    println!(
        "UNION   : {} titled articles + inproceedings",
        out.rows.len()
    );

    // Both, with a filter over the optional column.
    let query = r#"
        PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
        PREFIX bench: <http://localhost/vocabulary/bench/>
        PREFIX swrc: <http://swrc.ontoware.org/ontology#>
        PREFIX dcterms: <http://purl.org/dc/terms/>
        SELECT ?article ?month WHERE {
            ?article rdf:type bench:Article .
            ?article dcterms:issued ?yr .
            OPTIONAL { ?article swrc:month ?month . }
            FILTER (?month = "6")
        }"#;
    let out = session
        .query(Request::new(query))
        .expect("evaluates")
        .output;
    println!(
        "FILTER over OPTIONAL column: {} June articles (unbound month = filtered out)",
        out.rows.len()
    );

    // Show a couple of rows.
    println!("\nsample rows:");
    for row in out.rows.iter().take(3) {
        let cells: Vec<String> = row
            .iter()
            .map(|c| c.as_ref().map_or("—".to_string(), |t| t.to_string()))
            .collect();
        println!("  [{}]", cells.join(", "));
    }
}
