//! Analytical queries on YAGO-like data: the paper's Y2 and Y3, with
//! annotated plans — a live rendition of the paper's Figures 2 and 3.
//!
//! ```text
//! cargo run --release --example yago_analytics
//! ```

use sparql_hsp::datagen::{generate_yago, YagoConfig};
use sparql_hsp::prelude::*;

fn main() {
    let ds = generate_yago(YagoConfig::with_triples(150_000));
    println!("generated YAGO-like dataset: {} triples\n", ds.len());

    // --- Y3 (paper Table 5 / Figure 2) ---
    let y3 = JoinQuery::parse(sparql_hsp::datagen::workload::Y3).expect("Y3 parses");
    let hsp = HspPlanner::new().plan(&y3).expect("HSP plans Y3");
    let out = execute(&hsp.plan, &ds, &ExecConfig::unlimited()).expect("Y3 executes");
    println!("Y3 — entities related to both a village and a site");
    println!("HSP plan with measured cardinalities (the paper's Figure 2):");
    println!(
        "{}",
        render_plan_with_profile(&hsp.plan, &out.profile, &hsp.query)
    );
    println!("Y3 answers: {} rows\n", out.table.len());

    // --- Y2 (paper Table 9 / Figure 3) ---
    let y2 = JoinQuery::parse(sparql_hsp::datagen::workload::Y2).expect("Y2 parses");
    let hsp2 = HspPlanner::new().plan(&y2).expect("HSP plans Y2");
    let out2 = execute(&hsp2.plan, &ds, &ExecConfig::unlimited()).expect("Y2 executes");
    println!("Y2 — actors that also directed a movie");
    println!("HSP plan (Figure 3a): all merge joins on ?a, left-deep:");
    println!(
        "{}",
        render_plan_with_profile(&hsp2.plan, &out2.profile, &hsp2.query)
    );

    let cdp = CdpPlanner::new().plan(&ds, &y2).expect("CDP plans Y2");
    let cdp_out = execute(&cdp.plan, &ds, &ExecConfig::unlimited()).expect("CDP Y2 executes");
    println!("CDP plan (Figure 3b): bushy, breaks the star:");
    println!(
        "{}",
        render_plan_with_profile(&cdp.plan, &cdp_out.profile, &cdp.query)
    );

    // Same answers either way.
    let proj: Vec<Var> = hsp2.query.projection.iter().map(|&(_, v)| v).collect();
    assert_eq!(
        out2.table.sorted_rows_for(&proj),
        cdp_out.table.sorted_rows_for(&proj),
        "HSP and CDP must agree"
    );
    println!(
        "both plans return the same {} actor(s); plans similar: {}",
        out2.table.len(),
        plans_similar(&hsp2.plan, &cdp.plan)
    );
}
