//! Star-join planning on SP2Bench-like data: compare HSP against the
//! cost-based CDP and SQL-left-deep baselines on the paper's SP2a (the
//! 10-pattern subject star) and SP4a (the FILTER-connected double star).
//!
//! ```text
//! cargo run --release --example sp2bench_star
//! ```

use std::time::Instant;

use sparql_hsp::datagen::{generate_sp2bench, Sp2BenchConfig};
use sparql_hsp::prelude::*;

fn main() {
    let ds = generate_sp2bench(Sp2BenchConfig::with_triples(200_000));
    println!("generated SP2Bench-like dataset: {} triples\n", ds.len());

    for (id, text) in [
        ("SP2a (heavy star)", sparql_hsp::datagen::workload::SP2A),
        (
            "SP4a (FILTER-connected stars)",
            sparql_hsp::datagen::workload::SP4A,
        ),
    ] {
        println!("=== {id} ===");
        let query = JoinQuery::parse(text).expect("workload query parses");

        // HSP: plans from syntax alone.
        let start = Instant::now();
        let hsp = HspPlanner::new().plan(&query).expect("HSP plans");
        let hsp_planning = start.elapsed();
        let hsp_metrics = PlanMetrics::of(&hsp.plan);
        println!(
            "HSP     : {} merge joins, {} hash joins, {} plan, planned in {:?}",
            hsp_metrics.merge_joins, hsp_metrics.hash_joins, hsp_metrics.shape, hsp_planning
        );

        // CDP: needs statistics. SP4a's raw form is a cross product for it —
        // exactly the paper's observation — so fall back to the rewritten form.
        let cdp = CdpPlanner::new();
        let start = Instant::now();
        let cdp_plan = cdp.plan(&ds, &query).or_else(|_| {
            let (rewritten, _) = sparql_hsp::sparql::rewrite::rewrite_filters(&query);
            cdp.plan(&ds, &rewritten)
        });
        match &cdp_plan {
            Ok(p) => {
                let m = PlanMetrics::of(&p.plan);
                println!(
                    "CDP     : {} merge joins, {} hash joins, {} plan, planned in {:?}",
                    m.merge_joins,
                    m.hash_joins,
                    m.shape,
                    start.elapsed()
                );
            }
            Err(e) => println!("CDP     : failed: {e}"),
        }

        // SQL left-deep: no rewriting at all.
        let sql = LeftDeepPlanner::new().plan(&ds, &query).expect("SQL plans");
        let sql_metrics = PlanMetrics::of(&sql.plan);
        println!(
            "SQL     : {} merge joins, {} hash joins, {} cross products, {} plan",
            sql_metrics.merge_joins,
            sql_metrics.hash_joins,
            sql_metrics.cross_products,
            sql_metrics.shape
        );

        // Execute all plans that can run under a row budget.
        let budget = ExecConfig::with_row_budget(5_000_000);
        for (name, plan) in [
            ("HSP", Some(&hsp.plan)),
            ("CDP", cdp_plan.as_ref().ok().map(|p| &p.plan)),
            ("SQL", Some(&sql.plan)),
        ] {
            let Some(plan) = plan else { continue };
            let start = Instant::now();
            match execute(plan, &ds, &budget) {
                Ok(out) => println!(
                    "{name} exec: {} rows in {:?}",
                    out.table.len(),
                    start.elapsed()
                ),
                Err(e) => println!("{name} exec: XXX ({e})"),
            }
        }
        println!();
    }
}
