//! Explain: parse any SPARQL join query from the command line (or a
//! built-in default), show its variable graph, the HSP plan, and — when a
//! generated dataset is requested — execution with per-operator
//! cardinalities.
//!
//! ```text
//! cargo run --release --example explain
//! cargo run --release --example explain -- 'SELECT ?x WHERE { ?x ?p ?y . ?y ?q ?z . }'
//! cargo run --release --example explain -- --dataset yago 'SELECT ?a WHERE { ... }'
//! ```

use sparql_hsp::datagen::{generate_sp2bench, generate_yago, Sp2BenchConfig, YagoConfig};
use sparql_hsp::prelude::*;

const DEFAULT_QUERY: &str = "
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX yago: <http://yago-knowledge.org/resource/>
SELECT ?a WHERE {
  ?a rdf:type yago:wordnet_actor .
  ?a yago:livesIn ?city .
  ?a yago:actedIn ?m1 .
  ?m1 rdf:type yago:wordnet_movie .
}";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dataset = "yago".to_string();
    let mut query_text = DEFAULT_QUERY.to_string();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--dataset" && i + 1 < args.len() {
            dataset = args[i + 1].clone();
            i += 2;
        } else {
            query_text = args[i].clone();
            i += 1;
        }
    }

    let query = match JoinQuery::parse(&query_text) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("cannot parse query: {e}");
            std::process::exit(1);
        }
    };

    // Variable graph, before and after trimming.
    let indices: Vec<usize> = (0..query.patterns.len()).collect();
    let graph = VariableGraph::build(&query, &indices);
    println!("{}", graph.render(&query));
    let trimmed = graph.trimmed();
    println!(
        "trimmed graph: {} node(s), {} edge(s)",
        trimmed.num_nodes(),
        trimmed.num_edges()
    );
    for set in trimmed.max_weight_independent_sets() {
        let names: Vec<String> = set
            .iter()
            .map(|&v| format!("?{}", query.var_name(v)))
            .collect();
        println!("maximum-weight independent set: {{{}}}", names.join(", "));
    }
    println!();

    // Structural characteristics (a Table 2 column for this query).
    let c = QueryCharacteristics::of(&query);
    println!(
        "characteristics: {} patterns, {} vars ({} shared), {} joins, max star {}",
        c.num_patterns, c.num_vars, c.num_shared_vars, c.num_joins, c.max_star_join
    );

    // HSP plan.
    let planned = HspPlanner::new().plan(&query).expect("plannable");
    println!(
        "\nHSP plan:\n{}",
        render_plan(&planned.plan, &planned.query)
    );

    // Execute on a generated dataset for live cardinalities.
    let ds = match dataset.as_str() {
        "sp2bench" => generate_sp2bench(Sp2BenchConfig::with_triples(100_000)),
        _ => generate_yago(YagoConfig::with_triples(100_000)),
    };
    println!(
        "executing on generated `{dataset}` dataset ({} triples):",
        ds.len()
    );
    match execute(&planned.plan, &ds, &ExecConfig::with_row_budget(10_000_000)) {
        Ok(out) => {
            println!(
                "{}",
                render_plan_with_profile(&planned.plan, &out.profile, &planned.query)
            );
            println!("{} result rows", out.table.len());
        }
        Err(e) => println!("execution failed: {e}"),
    }
}
