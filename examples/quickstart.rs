//! Quickstart: load data, plan a query with HSP, look at the plan, run it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sparql_hsp::prelude::*;

fn main() {
    // A miniature dataset in the spirit of the paper's Table 1.
    let ds = Dataset::from_ntriples(
        r#"<http://e/Journal1_1940> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://e/Journal> .
<http://e/Journal1_1940> <http://e/title> "Journal 1 (1940)" .
<http://e/Journal1_1940> <http://e/issued> "1940" .
<http://e/Journal1_1940> <http://e/revised> "1942" .
<http://e/Journal1_1941> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://e/Journal> .
<http://e/Journal1_1941> <http://e/title> "Journal 1 (1941)" .
<http://e/Journal1_1941> <http://e/issued> "1941" .
<http://e/Article9> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://e/Article> .
"#,
    )
    .expect("valid N-Triples");
    println!("loaded {} triples\n", ds.len());

    // The paper's Section 3 example query: which year was the journal titled
    // "Journal 1 (1940)" issued, given it was revised in 1942?
    let query = JoinQuery::parse(
        r#"SELECT ?yr ?jrnl WHERE {
            ?jrnl <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://e/Journal> .
            ?jrnl <http://e/title> "Journal 1 (1940)" .
            ?jrnl <http://e/issued> ?yr .
            ?jrnl <http://e/revised> ?rev .
            FILTER (?rev = "1942")
        }"#,
    )
    .expect("valid SPARQL");

    // Look at the variable graph (the paper's Figure 1).
    let indices: Vec<usize> = (0..query.patterns.len()).collect();
    let graph = VariableGraph::build(&query, &indices);
    println!("{}", graph.render(&query));

    // Plan with HSP: no statistics, only the query's syntax.
    let planned = HspPlanner::new().plan(&query).expect("plannable");
    println!(
        "FILTER rewriting: {} substitutions, {} unifications\n",
        planned.rewrite.substitutions.len(),
        planned.rewrite.unifications.len()
    );
    println!("plan:\n{}", render_plan(&planned.plan, &planned.query));

    // Execute and print the mapping, resolving ids back to terms.
    let out = execute(&planned.plan, &ds, &ExecConfig::unlimited()).expect("executes");
    println!("{} result row(s):", out.table.len());
    for i in 0..out.table.len() {
        let bindings: Vec<String> = planned
            .query
            .projection
            .iter()
            .map(|&(ref name, v)| format!("(?{name}, {})", ds.dict().term(out.table.value(v, i))))
            .collect();
        println!("  {{{}}}", bindings.join(", "));
    }
}
