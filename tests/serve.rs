//! The serve path end to end: concurrent TCP clients against one shared
//! session must get byte-identical answers to serial execution, governor
//! trips must not poison the shared morsel pool, and updates must never
//! tear a concurrent reader's snapshot.

use std::sync::OnceLock;

use hsp_bench::{BenchEnv, EnvConfig};
use hsp_datagen::{workload, DatasetKind};
use sparql_hsp::results;
use sparql_hsp::serve::{Client, ServeConfig, Server};
use sparql_hsp::session::{Request, Session, SessionOptions};
use sparql_hsp::store::Dataset;

fn env() -> &'static BenchEnv {
    static ENV: OnceLock<BenchEnv> = OnceLock::new();
    ENV.get_or_init(|| BenchEnv::load(EnvConfig::small()))
}

/// Session options that force real shared-pool scheduling on the small
/// test datasets: tiny morsels, no sequential-below threshold, a fixed
/// two-worker pool.
fn pooled_options() -> SessionOptions {
    SessionOptions {
        pool_threads: Some(2),
        morsel_rows: Some(512),
        min_parallel_rows: Some(0),
        ..SessionOptions::default()
    }
}

/// The mixed workload restricted to the server's dataset.
fn sp2b_queries() -> Vec<(String, String)> {
    workload()
        .into_iter()
        .filter(|q| q.dataset == DatasetKind::Sp2Bench)
        .map(|q| (q.id.to_string(), q.text.to_string()))
        .collect()
}

/// ≥4 concurrent clients fire the mixed workload at one server; every
/// response body must be byte-identical to a serial (scoped-thread,
/// single-session) execution of the same query, and the session's one
/// pool must have scheduled morsel batches from more than one query.
#[test]
fn concurrent_clients_are_byte_identical_to_serial_execution() {
    let ds = env().dataset(DatasetKind::Sp2Bench);
    let queries = sp2b_queries();
    assert!(queries.len() >= 4, "workload shrank unexpectedly");

    // The serial oracle: no shared pool, no thread budget — the plain
    // sequential path.
    let serial = Session::with_options(
        ds.clone(),
        SessionOptions {
            pool_threads: Some(0),
            ..SessionOptions::default()
        },
    );
    let expected: Vec<String> = queries
        .iter()
        .map(|(id, text)| {
            let response = serial
                .query(Request::new(text))
                .unwrap_or_else(|e| panic!("{id} failed serially: {e}"));
            results::to_sparql_json(&response.output)
        })
        .collect();

    let session = Session::with_options(ds.clone(), pooled_options());
    let server = Server::start(session, ServeConfig::default()).expect("server starts");
    let addr = server.addr();

    const CLIENTS: usize = 4;
    // Concurrent bursts repeat until the pool has demonstrably
    // interleaved two queries' morsels (round-robin makes this all but
    // immediate; the bound only guards against a pathological scheduler).
    let mut interleaved = 0;
    for _round in 0..10 {
        std::thread::scope(|scope| {
            for client_id in 0..CLIENTS {
                let queries = &queries;
                let expected = &expected;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connects");
                    // Stagger the per-client query order so different
                    // queries overlap in time.
                    for i in 0..queries.len() {
                        let slot = (i + client_id) % queries.len();
                        let (id, text) = &queries[slot];
                        // cache=off: this test is about pool scheduling —
                        // result-cache hits would stop sending morsels to
                        // the pool after the first round.
                        let response = client
                            .query("threads=4 cache=off", text)
                            .unwrap_or_else(|e| panic!("{id}: transport error: {e}"));
                        let (header, body) =
                            response.split_once('\n').unwrap_or((response.as_str(), ""));
                        assert!(header.starts_with("OK "), "{id}: {header}");
                        assert_eq!(body, expected[slot], "{id} diverged from serial execution");
                    }
                });
            }
        });
        let stats = server.session().pool_stats().expect("pooled session");
        assert!(stats.batches > 0, "shared pool never saw a morsel batch");
        interleaved = stats.cross_query_switches;
        if interleaved > 0 {
            break;
        }
    }
    assert!(
        interleaved > 0,
        "workers never switched between queries' batches under concurrent load"
    );
    server.shutdown();
}

fn name_dataset(people: usize) -> Dataset {
    let mut nt = String::new();
    for i in 0..people {
        nt.push_str(&format!(
            "<http://e/p{i}> <http://e/name> \"Person {i}\" .\n\
             <http://e/p{i}> <http://e/knows> <http://e/p{n}> .\n",
            n = (i + 1) % people,
        ));
    }
    Dataset::from_ntriples(&nt).unwrap()
}

/// A deadline trip on the shared pool must drain cleanly: the very next
/// query on the same pool (same server) succeeds, repeatedly.
#[test]
fn governor_trips_do_not_poison_the_shared_pool() {
    let server = Server::start(
        Session::with_options(name_dataset(2_000), pooled_options()),
        ServeConfig::default(),
    )
    .expect("server starts");
    let mut client = Client::connect(server.addr()).expect("client connects");
    let join = "SELECT ?a ?c WHERE { ?a <http://e/knows> ?b . ?b <http://e/knows> ?c . }";
    for round in 0..5 {
        // An already-expired deadline trips at the first checkpoint.
        let tripped = client
            .query("threads=4 timeout_ms=0", join)
            .expect("transport survives a trip");
        assert!(
            tripped.starts_with("ERR TIMEOUT"),
            "round {round}: expected a deadline trip, got {tripped}"
        );
        // The pool drained; the same query now succeeds on it
        // (cache=off so every round re-executes on the pool).
        let ok = client
            .query("threads=4 cache=off", join)
            .expect("transport survives");
        assert!(
            ok.starts_with("OK rows=2000 "),
            "round {round}: pool poisoned after a trip? {ok}"
        );
    }
    let stats = server.session().pool_stats().expect("pooled session");
    assert!(stats.batches > 0, "the trips never reached the pool");
    server.shutdown();
}

/// Updates publish by pointer swap: concurrent readers must only ever
/// see all `MARKERS` marker triples or none — a torn count means a
/// reader observed a half-applied update.
#[test]
fn updates_never_tear_a_concurrent_reader() {
    const MARKERS: usize = 50;
    const TRANSITIONS: usize = 20;
    let server = Server::start(
        Session::with_options(name_dataset(100), pooled_options()),
        ServeConfig::default(),
    )
    .expect("server starts");
    let addr = server.addr();

    let insert = {
        let mut text = String::from("INSERT DATA {\n");
        for i in 0..MARKERS {
            text.push_str(&format!("<http://e/m{i}> <http://e/marker> \"x\" .\n"));
        }
        text.push('}');
        text
    };
    let delete = "DELETE WHERE { ?m <http://e/marker> ?v . }".to_string();
    let count_query = "SELECT ?m WHERE { ?m <http://e/marker> ?v . }";

    std::thread::scope(|scope| {
        let writer = scope.spawn(move || {
            let mut client = Client::connect(addr).expect("writer connects");
            for i in 0..TRANSITIONS {
                let text = if i % 2 == 0 { &insert } else { &delete };
                let response = client.update("", text).expect("update transport");
                assert!(response.starts_with("OK "), "writer: {response}");
            }
        });
        let readers: Vec<_> = (0..3)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("reader connects");
                    let mut seen_full = false;
                    loop {
                        let response = client.query("", count_query).expect("query transport");
                        let header = response.lines().next().unwrap_or("");
                        let rows: usize = header
                            .strip_prefix("OK rows=")
                            .and_then(|r| r.split(' ').next())
                            .and_then(|r| r.parse().ok())
                            .unwrap_or_else(|| panic!("unparseable header: {header}"));
                        assert!(
                            rows == 0 || rows == MARKERS,
                            "torn read: {rows} of {MARKERS} marker triples visible"
                        );
                        seen_full |= rows == MARKERS;
                        // Stop once the writer is done (marker state is
                        // then stable at the final transition's value).
                        if seen_full && rows == 0 {
                            break;
                        }
                    }
                })
            })
            .collect();
        writer.join().expect("writer panicked");
        // TRANSITIONS is even, so the final state is marker-free; every
        // reader terminates once it has seen both states.
        for reader in readers {
            reader.join().expect("reader panicked");
        }
    });
    server.shutdown();
}

/// The two-tier cache end to end: a templated query plans once and then
/// reuses the cached plan; result entries are invalidated exactly when
/// an update touches a predicate they read; every cached or refreshed
/// response is byte-identical to an uncached session — across thread
/// budgets 1–4.
#[test]
fn invalidation_is_exact_and_cached_responses_stay_byte_identical() {
    let ds = name_dataset(200);
    let cached = Session::with_options(ds.clone(), pooled_options());
    let uncached = Session::with_options(ds, pooled_options());
    let name_q = "SELECT ?p ?n WHERE { ?p <http://e/name> ?n . }";
    let knows_q = "SELECT ?a ?b WHERE { ?a <http://e/knows> ?b . }";

    let run = |s: &Session, text: &str, threads: usize, no_cache: bool| {
        let mut request = Request::new(text).with_threads(threads);
        if no_cache {
            request = request.without_cache();
        }
        let response = s.query(request).unwrap_or_else(|e| panic!("{text}: {e}"));
        (results::to_sparql_json(&response.output), response.metrics)
    };

    // Plan tier: same shape, different constant — planned once.
    let (_, cold) = run(
        &cached,
        "SELECT ?p WHERE { ?p <http://e/name> \"Person 1\" . }",
        1,
        false,
    );
    assert!(cold.plan_cache_used && !cold.plan_cache_hit);
    let (templated, warm) = run(
        &cached,
        "SELECT ?p WHERE { ?p <http://e/name> \"Person 2\" . }",
        1,
        false,
    );
    assert!(
        warm.plan_cache_hit,
        "same shape, different constant must reuse the plan"
    );
    assert!(
        warm.result_cache_used && !warm.result_cache_hit,
        "a different constant is a different result key"
    );
    let (expected, _) = run(
        &uncached,
        "SELECT ?p WHERE { ?p <http://e/name> \"Person 2\" . }",
        1,
        true,
    );
    assert_eq!(
        templated, expected,
        "plan-cache hit diverged from uncached execution"
    );

    // Result tier: warm one entry per (query, threads) key.
    for threads in 1..=4 {
        run(&cached, name_q, threads, false);
        run(&cached, knows_q, threads, false);
    }
    for threads in 1..=4 {
        assert!(run(&cached, name_q, threads, false).1.result_cache_hit);
        assert!(run(&cached, knows_q, threads, false).1.result_cache_hit);
    }
    let warm = cached.cache_stats();

    // A no-op update (duplicate insert) publishes nothing and must keep
    // the cache warm.
    let noop = Request::new("INSERT DATA { <http://e/p0> <http://e/name> \"Person 0\" . }");
    assert_eq!(cached.update(noop).unwrap().stats.inserted, 0);
    assert_eq!(cached.cache_stats().invalidations, warm.invalidations);
    assert!(run(&cached, name_q, 1, false).1.result_cache_hit);

    // An update touching only <http://e/name> drops exactly the name
    // entries (one per thread budget, plus the templated entry).
    let insert = "INSERT DATA { <http://e/extra> <http://e/name> \"Extra\" . }";
    cached.update(Request::new(insert)).unwrap();
    uncached.update(Request::new(insert)).unwrap();
    let after = cached.cache_stats();
    assert_eq!(
        after.invalidations,
        warm.invalidations + 6,
        "expected exactly the 4 name entries + cold/templated entries to drop"
    );
    for threads in 1..=4 {
        // Entries over the untouched predicate survived.
        let (_, m) = run(&cached, knows_q, threads, false);
        assert!(
            m.result_cache_hit,
            "untouched-predicate entry was invalidated"
        );
        // Name entries re-execute and match the uncached session.
        let (body, m) = run(&cached, name_q, threads, false);
        assert!(m.result_cache_used && !m.result_cache_hit);
        let (expected, _) = run(&uncached, name_q, threads, true);
        assert_eq!(
            body, expected,
            "threads={threads}: refresh diverged from uncached run"
        );
        // The refreshed entry serves those same bytes.
        let (again, m) = run(&cached, name_q, threads, false);
        assert!(m.result_cache_hit);
        assert_eq!(
            again, expected,
            "threads={threads}: cache hit is not byte-identical"
        );
    }

    // DELETE WHERE over knows flushes the knows entries (and only them:
    // the 4 refreshed name entries survive).
    let before = cached.cache_stats();
    cached
        .update(Request::new("DELETE WHERE { ?a <http://e/knows> ?b . }"))
        .unwrap();
    let final_stats = cached.cache_stats();
    assert_eq!(final_stats.invalidations, before.invalidations + 4);
    assert!(run(&cached, name_q, 1, false).1.result_cache_hit);
    assert!(!run(&cached, knows_q, 1, false).1.result_cache_hit);
}

/// Admission control under a deliberately tiny capacity: every response
/// is either a success or an explicit `ERR BUSY` — never a hang or a
/// protocol failure — and the server keeps serving afterwards.
#[test]
fn admission_control_rejects_rather_than_queueing_without_bound() {
    let server = Server::start(
        Session::with_options(name_dataset(500), pooled_options()),
        ServeConfig {
            max_inflight: 1,
            max_queue: 0,
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.addr();
    let join = "SELECT ?a ?c WHERE { ?a <http://e/knows> ?b . ?b <http://e/knows> ?c . }";
    let (ok, busy) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connects");
                    let mut ok = 0u32;
                    let mut busy = 0u32;
                    for _ in 0..5 {
                        // cache=off keeps every request executing, so the
                        // tiny capacity stays under real pressure.
                        let response = client
                            .query("threads=2 cache=off", join)
                            .expect("transport");
                        if response.starts_with("OK ") {
                            ok += 1;
                        } else if response.starts_with("ERR BUSY") {
                            busy += 1;
                        } else {
                            panic!("unexpected response: {response}");
                        }
                    }
                    (ok, busy)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client panicked"))
            .fold((0u32, 0u32), |(a, b), (c, d)| (a + c, b + d))
    });
    assert!(ok > 0, "no query was ever admitted (busy={busy})");
    // Whatever was rejected was counted.
    assert_eq!(server.metrics().rejected(), u64::from(busy));
    let mut client = Client::connect(addr).expect("client connects");
    assert!(client
        .query("", join)
        .expect("transport")
        .starts_with("OK "));
    server.shutdown();
}
