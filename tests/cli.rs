//! End-to-end tests of the `hsp` CLI binary: real process invocations over
//! a temporary N-Triples file, exercising query execution, formats,
//! explain output, planner selection, ASK, and updates.

use std::path::PathBuf;
use std::process::Command;

const DATA: &str = r#"<http://e/j1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://e/Journal> .
<http://e/j1> <http://e/title> "Journal 1 (1940)" .
<http://e/j1> <http://e/issued> "1940"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://e/j2> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://e/Journal> .
<http://e/j2> <http://e/title> "Journal 1 (1952)" .
<http://e/j2> <http://e/issued> "1952"^^<http://www.w3.org/2001/XMLSchema#integer> .
"#;

fn data_file(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("hsp-cli-test-{name}.nt"));
    std::fs::write(&path, DATA).expect("writable temp dir");
    path
}

fn hsp(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_hsp"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn select_table_output() {
    let data = data_file("select");
    let (stdout, stderr, ok) = hsp(&[
        data.to_str().unwrap(),
        "--query",
        "SELECT ?t WHERE { ?j <http://e/title> ?t . } ORDER BY ?t",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("Journal 1 (1940)"));
    assert!(stdout.contains("(2 rows)"));
    assert!(stderr.contains("loaded 6 triples"));
}

#[test]
fn json_output_across_planners() {
    let data = data_file("planners");
    for planner in ["hsp", "cdp", "sql", "hybrid", "stocker"] {
        let (stdout, stderr, ok) = hsp(&[
            data.to_str().unwrap(),
            "--query",
            "SELECT ?j WHERE { ?j a <http://e/Journal> . ?j <http://e/issued> ?yr . }",
            "--planner",
            planner,
            "--format",
            "json",
        ]);
        assert!(ok, "{planner} failed: {stderr}");
        assert!(stdout.starts_with("{\"head\""), "{planner}: {stdout}");
        assert_eq!(stdout.matches("http://e/j").count(), 2, "{planner}");
    }
}

#[test]
fn explain_prints_plan_tree() {
    let data = data_file("explain");
    let (stdout, _, ok) = hsp(&[
        data.to_str().unwrap(),
        "--query",
        "SELECT ?j WHERE { ?j a <http://e/Journal> . ?j <http://e/issued> ?yr . }",
        "--explain",
    ]);
    assert!(ok);
    assert!(stdout.contains("⋈mj"), "{stdout}");
    assert!(stdout.contains("[tp0]"));
}

#[test]
fn ask_and_filter() {
    let data = data_file("ask");
    let (stdout, _, ok) = hsp(&[
        data.to_str().unwrap(),
        "--query",
        r#"ASK { ?j <http://e/issued> ?yr . FILTER (?yr > 1950) }"#,
    ]);
    assert!(ok);
    assert_eq!(stdout.trim(), "true");
    let (stdout, _, ok) = hsp(&[
        data.to_str().unwrap(),
        "--query",
        r#"ASK { ?j <http://e/issued> ?yr . FILTER (?yr > 2000) }"#,
        "--format",
        "json",
    ]);
    assert!(ok);
    assert_eq!(stdout.trim(), "{\"head\":{},\"boolean\":false}");
}

#[test]
fn update_writes_out_file() {
    let data = data_file("update");
    let out_path = std::env::temp_dir().join("hsp-cli-test-update-out.nt");
    let (_, stderr, ok) = hsp(&[
        data.to_str().unwrap(),
        "--update",
        "DELETE WHERE { ?j <http://e/issued> ?yr . }",
        "--out",
        out_path.to_str().unwrap(),
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stderr.contains("-2 triples"));
    let rendered = std::fs::read_to_string(&out_path).unwrap();
    assert!(!rendered.contains("issued"));
    assert_eq!(rendered.lines().count(), 4);
}

#[test]
fn errors_exit_nonzero() {
    let data = data_file("errors");
    // Unknown flag.
    let (_, stderr, ok) = hsp(&[data.to_str().unwrap(), "--frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag"));
    // Unknown planner.
    let (_, stderr, ok) = hsp(&[
        data.to_str().unwrap(),
        "--query",
        "SELECT ?s WHERE { ?s ?p ?o . }",
        "--planner",
        "oracle",
    ]);
    assert!(!ok);
    assert!(stderr.contains("unknown planner"));
    // Missing data file.
    let (_, stderr, ok) = hsp(&[
        "/no/such/file.nt",
        "--query",
        "SELECT ?s WHERE { ?s ?p ?o . }",
    ]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"));
}

#[test]
fn extended_queries_fall_back() {
    let data = data_file("extended");
    let (stdout, _, ok) = hsp(&[
        data.to_str().unwrap(),
        "--query",
        "SELECT ?t ?yr WHERE { ?j <http://e/title> ?t . OPTIONAL { ?j <http://e/nosuch> ?yr . } }",
        "--format",
        "csv",
    ]);
    assert!(ok);
    // CSV header + 2 rows; the OPTIONAL column is empty.
    assert!(stdout.starts_with("t,yr\r\n"));
    assert!(stdout.contains("Journal 1 (1940),\r\n"));
}
