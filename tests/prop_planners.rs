//! Property-based cross-crate tests: random join queries over a small
//! random dataset; every planner's plan is valid and agrees with an
//! independent nested-loop reference evaluator.

use std::collections::HashMap;

use hsp_baseline::{CdpPlanner, LeftDeepPlanner};
use hsp_core::HspPlanner;
use hsp_engine::{execute, ExecConfig};
use hsp_rdf::{Dictionary, IdTriple, Term, TermId};
use hsp_sparql::{JoinQuery, TermOrVar, TriplePattern, Var};
use hsp_store::Dataset;
use proptest::prelude::*;

/// A small random dataset: subjects `e0..e9`, predicates `p0..p3`,
/// objects mix entities and literals.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    proptest::collection::vec((0u32..10, 0u32..4, 0u32..12), 5..120).prop_map(|spec| {
        let mut dict = Dictionary::new();
        let entities: Vec<TermId> = (0..12)
            .map(|i| dict.intern(Term::iri(format!("http://e/e{i}"))))
            .collect();
        let predicates: Vec<TermId> = (0..4)
            .map(|i| dict.intern(Term::iri(format!("http://e/p{i}"))))
            .collect();
        let triples: Vec<IdTriple> = spec
            .into_iter()
            .map(|(s, p, o)| {
                [
                    entities[s as usize],
                    predicates[p as usize],
                    entities[o as usize],
                ]
            })
            .collect();
        Dataset::from_encoded(dict, &triples)
    })
}

/// A random join query over the same vocabulary: 1–5 patterns over
/// variables ?v0..?v4, constants from the dataset vocabulary.
fn arb_query() -> impl Strategy<Value = JoinQuery> {
    let slot = prop_oneof![
        (0u32..5).prop_map(SlotSpec::Var),
        (0u32..12).prop_map(SlotSpec::Entity),
    ];
    let pred_slot = prop_oneof![
        3 => (0u32..4).prop_map(SlotSpec::Pred),
        1 => (0u32..5).prop_map(SlotSpec::Var),
    ];
    proptest::collection::vec((slot.clone(), pred_slot, slot), 1..5).prop_filter_map(
        "projection needs a variable",
        |patterns| {
            let mut names: Vec<String> = Vec::new();
            let mut lower = |s: &SlotSpec| -> TermOrVar {
                match s {
                    SlotSpec::Var(i) => {
                        let name = format!("v{i}");
                        let idx = names.iter().position(|n| *n == name).unwrap_or_else(|| {
                            names.push(name);
                            names.len() - 1
                        });
                        TermOrVar::Var(Var(idx as u32))
                    }
                    SlotSpec::Entity(i) => TermOrVar::Const(Term::iri(format!("http://e/e{i}"))),
                    SlotSpec::Pred(i) => TermOrVar::Const(Term::iri(format!("http://e/p{i}"))),
                }
            };
            let patterns: Vec<TriplePattern> = patterns
                .iter()
                .map(|(s, p, o)| TriplePattern::new(lower(s), lower(p), lower(o)))
                .collect();
            if names.is_empty() {
                return None;
            }
            let projection: Vec<(String, Var)> = names
                .iter()
                .enumerate()
                .map(|(i, n)| (n.clone(), Var(i as u32)))
                .collect();
            Some(JoinQuery {
                patterns,
                filters: vec![],
                projection,
                distinct: false,
                var_names: names,
                modifiers: Default::default(),
                group_by: vec![],
                aggregates: vec![],
                having: None,
            })
        },
    )
}

#[derive(Debug, Clone)]
enum SlotSpec {
    Var(u32),
    Entity(u32),
    Pred(u32),
}

/// Independent reference evaluator: nested-loop pattern matching.
fn reference_eval(ds: &Dataset, query: &JoinQuery) -> Vec<Vec<TermId>> {
    use hsp_store::StorageBackend;
    let all: Vec<IdTriple> = ds
        .store()
        .scan(hsp_store::Order::Spo, &[])
        .as_slice()
        .iter()
        .map(|&k| hsp_store::Order::Spo.from_key(k))
        .collect();
    let mut bindings: Vec<HashMap<Var, TermId>> = vec![HashMap::new()];
    for pattern in &query.patterns {
        let mut next = Vec::new();
        for binding in &bindings {
            for triple in &all {
                let mut candidate = binding.clone();
                let mut ok = true;
                for pos in hsp_rdf::TriplePos::ALL {
                    let value = triple[pos.index()];
                    match pattern.slot(pos) {
                        TermOrVar::Const(t) => {
                            if ds.dict().id(t) != Some(value) {
                                ok = false;
                                break;
                            }
                        }
                        TermOrVar::Var(v) => match candidate.get(v) {
                            Some(&bound) if bound != value => {
                                ok = false;
                                break;
                            }
                            Some(_) => {}
                            None => {
                                candidate.insert(*v, value);
                            }
                        },
                    }
                }
                if ok {
                    next.push(candidate);
                }
            }
        }
        bindings = next;
    }
    let mut rows: Vec<Vec<TermId>> = bindings
        .iter()
        .map(|b| query.projection.iter().map(|&(_, v)| b[&v]).collect())
        .collect();
    rows.sort();
    rows
}

/// Deduplicated projection columns, mirroring how the engine materialises
/// duplicate projection entries.
fn proj_vars(query: &JoinQuery) -> Vec<Var> {
    let mut vars = Vec::new();
    for &(_, v) in &query.projection {
        if !vars.contains(&v) {
            vars.push(v);
        }
    }
    vars
}

fn reference_rows_for(ds: &Dataset, query: &JoinQuery) -> Vec<Vec<TermId>> {
    // reference_eval emits one column per projection entry; collapse to the
    // deduplicated layout the engine uses.
    let unique = proj_vars(query);
    let full = reference_eval(ds, query);
    let idx: Vec<usize> = unique
        .iter()
        .map(|v| {
            query
                .projection
                .iter()
                .position(|&(_, pv)| pv == *v)
                .expect("projected")
        })
        .collect();
    let mut rows: Vec<Vec<TermId>> = full
        .iter()
        .map(|row| idx.iter().map(|&i| row[i]).collect())
        .collect();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// HSP plans validate and agree with the reference evaluator.
    #[test]
    fn hsp_matches_reference(ds in arb_dataset(), query in arb_query()) {
        let planned = HspPlanner::new().plan(&query).expect("plannable");
        prop_assert!(planned.plan.validate().is_ok());
        let out = execute(&planned.plan, &ds, &ExecConfig::unlimited()).expect("executes");
        let vars = proj_vars(&query);
        let mut got = out.table.sorted_rows_for(&vars);
        got.sort();
        prop_assert_eq!(got, reference_rows_for(&ds, &query));
    }

    /// The left-deep baseline agrees with the reference evaluator too.
    #[test]
    fn leftdeep_matches_reference(ds in arb_dataset(), query in arb_query()) {
        let planned = LeftDeepPlanner::new().plan(&ds, &query).expect("plannable");
        prop_assert!(planned.plan.validate().is_ok());
        let out = execute(&planned.plan, &ds, &ExecConfig::unlimited()).expect("executes");
        let vars = proj_vars(&query);
        let mut got = out.table.sorted_rows_for(&vars);
        got.sort();
        prop_assert_eq!(got, reference_rows_for(&ds, &query));
    }

    /// CDP (when the query is connected) agrees with the reference.
    #[test]
    fn cdp_matches_reference(ds in arb_dataset(), query in arb_query()) {
        match CdpPlanner::new().plan(&ds, &query) {
            Ok(planned) => {
                prop_assert!(planned.plan.validate().is_ok());
                let out = execute(&planned.plan, &ds, &ExecConfig::unlimited()).expect("executes");
                let vars = proj_vars(&query);
                let mut got = out.table.sorted_rows_for(&vars);
                got.sort();
                prop_assert_eq!(got, reference_rows_for(&ds, &query));
            }
            Err(hsp_baseline::cdp::CdpError::CrossProduct) => {
                // Expected for disconnected random queries.
            }
            Err(e) => prop_assert!(false, "unexpected CDP error: {e}"),
        }
    }

    /// Every pattern appears exactly once among HSP plan leaves.
    #[test]
    fn hsp_scans_each_pattern_once(query in arb_query()) {
        let planned = HspPlanner::new().plan(&query).expect("plannable");
        let mut scanned = planned.plan.scanned_patterns();
        scanned.sort();
        let expected: Vec<usize> = (0..query.patterns.len()).collect();
        prop_assert_eq!(scanned, expected);
    }
}
