//! End-to-end integration: all 14 workload queries, all four planners, on
//! generated SP2Bench-like and YAGO-like datasets — identical result sets
//! everywhere a plan exists.

use std::sync::OnceLock;

use hsp_bench::planners::{plan_query, PlannerKind};
use hsp_bench::{BenchEnv, EnvConfig};
use hsp_datagen::workload;
use hsp_engine::{execute, ExecConfig};
use hsp_sparql::Var;

fn env() -> &'static BenchEnv {
    static ENV: OnceLock<BenchEnv> = OnceLock::new();
    ENV.get_or_init(|| BenchEnv::load(EnvConfig::small()))
}

#[test]
fn all_queries_all_planners_agree_on_results() {
    let env = env();
    for q in workload() {
        let parsed = q.parse();
        let ds = env.dataset(q.dataset);
        let mut reference: Option<Vec<Vec<hsp_rdf::TermId>>> = None;
        for kind in PlannerKind::ALL {
            let planned = plan_query(kind, ds, &parsed)
                .unwrap_or_else(|e| panic!("{} via {kind:?} failed to plan: {e}", q.id));
            planned
                .plan
                .validate()
                .unwrap_or_else(|e| panic!("{} via {kind:?} invalid: {e}", q.id));
            // The SQL and Stocker baselines plan SP4a as a Cartesian
            // product (no FILTER unification); skip executing those (that
            // behaviour is asserted separately).
            if matches!(kind, PlannerKind::Sql | PlannerKind::Stocker) && q.id == "SP4a" {
                continue;
            }
            let out = execute(&planned.plan, ds, &ExecConfig::unlimited())
                .unwrap_or_else(|e| panic!("{} via {kind:?} failed to run: {e}", q.id));
            let proj: Vec<Var> = planned.query.projection.iter().map(|&(_, v)| v).collect();
            let mut rows = out.table.sorted_rows_for(&proj);
            // SP4a via SQL would dedup differently; queries are not DISTINCT
            // so multiset equality is the contract.
            rows.sort();
            match &reference {
                None => reference = Some(rows),
                Some(r) => assert_eq!(
                    &rows, r,
                    "{} via {kind:?} disagrees with the first planner",
                    q.id
                ),
            }
        }
    }
}

#[test]
fn workload_queries_return_expected_emptiness() {
    let env = env();
    // Queries designed to return rows must return rows; SP3c must be empty.
    for q in workload() {
        let parsed = q.parse();
        let ds = env.dataset(q.dataset);
        let planned = plan_query(PlannerKind::Hsp, ds, &parsed).unwrap();
        let out = execute(&planned.plan, ds, &ExecConfig::unlimited()).unwrap();
        if q.id == "SP3c" {
            assert!(
                out.table.is_empty(),
                "SP3c must be empty (articles carry no isbn)"
            );
        } else {
            assert!(!out.table.is_empty(), "{} returned no rows", q.id);
        }
    }
}

#[test]
fn sp1_returns_exactly_one_journal() {
    let env = env();
    let q = workload().into_iter().find(|q| q.id == "SP1").unwrap();
    let planned = plan_query(PlannerKind::Hsp, env.dataset(q.dataset), &q.parse()).unwrap();
    let out = execute(
        &planned.plan,
        env.dataset(q.dataset),
        &ExecConfig::unlimited(),
    )
    .unwrap();
    assert_eq!(out.table.len(), 1);
}

#[test]
fn hsp_plans_are_statistics_free() {
    // The same query planned against both datasets yields the same plan —
    // HSP never looks at the data. (CDP generally does not.)
    let env = env();
    for q in workload() {
        let parsed = q.parse();
        let a = plan_query(PlannerKind::Hsp, &env.sp2b, &parsed).unwrap();
        let b = plan_query(PlannerKind::Hsp, &env.yago, &parsed).unwrap();
        assert_eq!(a.plan, b.plan, "{} HSP plan depends on the dataset", q.id);
    }
}

#[test]
fn sip_execution_agrees_on_whole_workload() {
    // Sideways information passing must not change any result, and must
    // never *increase* the intermediate-result footprint.
    let env = env();
    for q in workload() {
        let parsed = q.parse();
        let ds = env.dataset(q.dataset);
        let planned = plan_query(PlannerKind::Hsp, ds, &parsed).unwrap();
        let plain = execute(&planned.plan, ds, &ExecConfig::unlimited()).unwrap();
        let sip = execute(&planned.plan, ds, &ExecConfig::unlimited().with_sip()).unwrap();
        let proj: Vec<Var> = planned.query.projection.iter().map(|&(_, v)| v).collect();
        assert_eq!(
            sip.table.sorted_rows_for(&proj),
            plain.table.sorted_rows_for(&proj),
            "{}: SIP changed the result",
            q.id
        );
        assert!(
            sip.profile.total_intermediate_rows() <= plain.profile.total_intermediate_rows(),
            "{}: SIP increased intermediates",
            q.id
        );
    }
}

#[test]
fn modifiers_run_through_planned_queries() {
    // ORDER BY/LIMIT on a workload query, planned by HSP and by CDP.
    let env = env();
    let q = workload().into_iter().find(|q| q.id == "SP5").unwrap();
    let ds = env.dataset(q.dataset);
    let text = format!("{} ORDER BY ?isbn LIMIT 5", q.text.trim_end());
    let parsed = hsp_sparql::JoinQuery::parse(&text).expect("modified SP5 parses");
    for kind in [PlannerKind::Hsp, PlannerKind::Cdp] {
        let planned = plan_query(kind, ds, &parsed).unwrap();
        let out = execute(&planned.plan, ds, &ExecConfig::unlimited()).unwrap();
        assert!(out.table.len() <= 5, "{kind:?} ignored LIMIT");
    }
}

#[test]
fn profile_cardinalities_are_consistent() {
    // Each operator's recorded output equals its actual output; the root
    // profile row count equals the result size.
    let env = env();
    let q = workload().into_iter().find(|q| q.id == "Y3").unwrap();
    let ds = env.dataset(q.dataset);
    let planned = plan_query(PlannerKind::Hsp, ds, &q.parse()).unwrap();
    let out = execute(&planned.plan, ds, &ExecConfig::unlimited()).unwrap();
    assert_eq!(out.profile.output_rows, out.table.len());
    // Total intermediate rows bound the memory footprint measure.
    assert!(out.profile.total_intermediate_rows() >= out.table.len());
}
