//! Failure-injection integration tests: malformed inputs, planner
//! rejections, and execution guards behave as documented.

use hsp_baseline::cdp::CdpError;
use hsp_baseline::CdpPlanner;
use hsp_core::HspPlanner;
use hsp_datagen::{generate_sp2bench, Sp2BenchConfig};
use hsp_engine::{execute, ExecConfig, ExecError};
use hsp_sparql::JoinQuery;
use hsp_store::Dataset;

fn small_ds() -> Dataset {
    generate_sp2bench(Sp2BenchConfig {
        target_triples: 5_000,
        seed: 99,
    })
}

#[test]
fn malformed_ntriples_reports_line() {
    let doc = "<http://e/a> <http://e/p> <http://e/b> .\nthis is garbage\n";
    let err = Dataset::from_ntriples(doc).unwrap_err();
    assert_eq!(err.line, 2);
}

#[test]
fn malformed_sparql_reports_offset() {
    let err = JoinQuery::parse("SELECT ?x WHERE { ?x <http://e/p> }").unwrap_err();
    assert!(err.to_string().contains("parse error"), "{err}");
}

#[test]
fn unbound_projection_rejected_at_algebra_level() {
    let err = JoinQuery::parse("SELECT ?nope WHERE { ?x <http://e/p> ?y . }").unwrap_err();
    assert!(err.to_string().contains("nope"));
}

#[test]
fn cdp_rejects_disconnected_queries() {
    let ds = small_ds();
    let q = JoinQuery::parse("SELECT ?x ?a WHERE { ?x <http://e/p> ?y . ?a <http://e/q> ?b . }")
        .unwrap();
    assert_eq!(
        CdpPlanner::new().plan(&ds, &q).unwrap_err(),
        CdpError::CrossProduct
    );
}

#[test]
fn executor_budget_guards_cartesian_products() {
    let ds = small_ds();
    let q = JoinQuery::parse(
        "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
         PREFIX bench: <http://localhost/vocabulary/bench/>
         SELECT ?x ?y WHERE {
            ?x rdf:type bench:Article . ?y rdf:type bench:Inproceedings . }",
    )
    .unwrap();
    // HSP plans the cross product (it does not refuse); the budget stops it.
    let planned = HspPlanner::new().plan(&q).unwrap();
    let err = execute(&planned.plan, &ds, &ExecConfig::with_row_budget(100)).unwrap_err();
    assert!(matches!(err, ExecError::BudgetExceeded { .. }));
    // Without a budget it completes.
    let ok = execute(&planned.plan, &ds, &ExecConfig::unlimited()).unwrap();
    assert!(ok.table.len() > 100);
}

#[test]
fn queries_over_unknown_vocabulary_return_empty_not_error() {
    let ds = small_ds();
    let q =
        JoinQuery::parse("SELECT ?x WHERE { ?x <http://nowhere/p> <http://nowhere/o> . }").unwrap();
    let planned = HspPlanner::new().plan(&q).unwrap();
    let out = execute(&planned.plan, &ds, &ExecConfig::unlimited()).unwrap();
    assert!(out.table.is_empty());
}

#[test]
fn empty_dataset_executes_cleanly() {
    let ds = Dataset::from_ntriples("").unwrap();
    let q = JoinQuery::parse("SELECT ?x WHERE { ?x ?p ?o . ?o ?q ?z . }").unwrap();
    let planned = HspPlanner::new().plan(&q).unwrap();
    let out = execute(&planned.plan, &ds, &ExecConfig::unlimited()).unwrap();
    assert!(out.table.is_empty());
}

#[test]
fn filter_comparisons_execute() {
    let ds = small_ds();
    // Articles issued after 2005 (numeric comparison on literals).
    let q = JoinQuery::parse(
        "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
         PREFIX bench: <http://localhost/vocabulary/bench/>
         PREFIX dcterms: <http://purl.org/dc/terms/>
         SELECT ?x ?yr WHERE {
            ?x rdf:type bench:Article .
            ?x dcterms:issued ?yr .
            FILTER (?yr > 2005) }",
    )
    .unwrap();
    let planned = HspPlanner::new().plan(&q).unwrap();
    let out = execute(&planned.plan, &ds, &ExecConfig::unlimited()).unwrap();
    // Some articles are issued 2006–2010; all pass the filter.
    assert!(!out.table.is_empty());
    let yr_var = planned.query.projection[1].1;
    for i in 0..out.table.len() {
        let term = ds.dict().term(out.table.value(yr_var, i));
        let year: f64 = term.lexical().parse().unwrap();
        assert!(year > 2005.0);
    }
}

#[test]
fn distinct_deduplicates_end_to_end() {
    let ds = small_ds();
    let plain = JoinQuery::parse(
        "PREFIX dc: <http://purl.org/dc/elements/1.1/>
         SELECT ?c WHERE { ?x dc:creator ?c . }",
    )
    .unwrap();
    let distinct = JoinQuery::parse(
        "PREFIX dc: <http://purl.org/dc/elements/1.1/>
         SELECT DISTINCT ?c WHERE { ?x dc:creator ?c . }",
    )
    .unwrap();
    let p1 = HspPlanner::new().plan(&plain).unwrap();
    let p2 = HspPlanner::new().plan(&distinct).unwrap();
    let r1 = execute(&p1.plan, &ds, &ExecConfig::unlimited()).unwrap();
    let r2 = execute(&p2.plan, &ds, &ExecConfig::unlimited()).unwrap();
    assert!(r2.table.len() < r1.table.len());
    let mut unique = r1.table.sorted_rows();
    unique.dedup();
    assert_eq!(unique.len(), r2.table.len());
}

// --- failure modes of the post-paper extensions ---

#[test]
fn update_syntax_errors_are_reported() {
    use sparql_hsp::session::{Request, Session};
    let session = Session::new(small_ds());
    // Bare DELETE without DATA/WHERE.
    assert!(session
        .update(Request::new("DELETE { ?s ?p ?o . }"))
        .is_err());
    // INSERT WHERE is not an implemented form.
    assert!(session
        .update(Request::new("INSERT WHERE { ?s ?p ?o . }"))
        .is_err());
    // Variables in a DATA block.
    assert!(session
        .update(Request::new("INSERT DATA { ?x <http://e/p> \"v\" . }"))
        .is_err());
    // A failed update publishes nothing.
    assert_eq!(session.snapshot().len(), small_ds().len());
}

#[test]
fn regex_compile_error_in_filter_drops_all_rows() {
    // A REGEX with an invalid pattern is a per-row evaluation error, which
    // FILTER semantics turn into "keep nothing" — not a query failure.
    let ds = small_ds();
    let q = JoinQuery::parse(
        r#"SELECT ?x WHERE { ?x <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> ?c . FILTER regex(?x, "(") }"#,
    )
    .unwrap();
    let planned = HspPlanner::new().plan(&q).unwrap();
    let out = execute(&planned.plan, &ds, &ExecConfig::unlimited()).unwrap();
    assert!(out.table.is_empty());
}

#[test]
fn type_errors_in_filters_drop_rows_not_queries() {
    // LANG of an IRI is a type error per row, so all rows drop; the query
    // itself succeeds.
    let ds = small_ds();
    let q = JoinQuery::parse(
        r#"SELECT ?x WHERE { ?x <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> ?c . FILTER (lang(?c) = "en") }"#,
    )
    .unwrap();
    let planned = HspPlanner::new().plan(&q).unwrap();
    let out = execute(&planned.plan, &ds, &ExecConfig::unlimited()).unwrap();
    assert!(out.table.is_empty());
}

#[test]
fn row_budget_still_guards_under_sip() {
    // SIP shrinks intermediates but the budget guard must keep working.
    let ds = small_ds();
    let q = JoinQuery::parse("SELECT ?s ?p ?o WHERE { ?s ?p ?o . }").unwrap();
    let planned = HspPlanner::new().plan(&q).unwrap();
    let config = ExecConfig::with_row_budget(10).with_sip();
    let err = execute(&planned.plan, &ds, &config).unwrap_err();
    assert!(matches!(err, ExecError::BudgetExceeded { .. }));
}

#[test]
fn order_by_limit_zero_and_huge_offset() {
    let ds = small_ds();
    let q = JoinQuery::parse("SELECT ?s WHERE { ?s ?p ?o . } ORDER BY ?s LIMIT 0").unwrap();
    let planned = HspPlanner::new().plan(&q).unwrap();
    let out = execute(&planned.plan, &ds, &ExecConfig::unlimited()).unwrap();
    assert!(out.table.is_empty());

    let q = JoinQuery::parse("SELECT ?s WHERE { ?s ?p ?o . } OFFSET 99999999").unwrap();
    let planned = HspPlanner::new().plan(&q).unwrap();
    let out = execute(&planned.plan, &ds, &ExecConfig::unlimited()).unwrap();
    assert!(out.table.is_empty());
}

#[test]
fn stocker_on_empty_dataset_is_graceful() {
    use hsp_baseline::StockerPlanner;
    let ds = Dataset::from_ntriples("").unwrap();
    let q = JoinQuery::parse("SELECT ?s WHERE { ?s <http://e/p> ?o . }").unwrap();
    let plan = StockerPlanner::new().plan(&ds, &q).unwrap();
    let out = execute(&plan.plan, &ds, &ExecConfig::unlimited()).unwrap();
    assert!(out.table.is_empty());
}
