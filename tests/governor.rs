//! Fault injection through the query governor's `HSP_FAULT` hook
//! (enabled here by the root crate's `fault-inject` feature on
//! `hsp-engine`): each injected failure mode — `panic@<site>`,
//! `slow@<site>`, `alloc@<site>` — at each instrumented checkpoint site
//! converts to its typed [`ExecError`], the context drains (pool
//! counters balance, memory account at zero), and the next query on the
//! same context is byte-identical to a fresh run at forced thread
//! counts 1–4. A tiny-memory-budget battery at the bottom runs a
//! representative slice of the suite's query shapes under a 1 KiB
//! budget and asserts graceful `MemoryBudgetExceeded` errors, never an
//! abort — the pass CI runs as its "suite under a tiny budget" step.

use std::sync::Mutex;
use std::time::Duration;

use hsp_engine::exec::{execute_in, ExecConfig, ExecError, ExecStrategy};
use hsp_engine::{ExecContext, MorselConfig, PhysicalPlan};
use hsp_rdf::Term;
use hsp_sparql::{AggFunc, AggSpec, TermOrVar, TriplePattern, Var};
use hsp_store::{Dataset, Order};
use sparql_hsp::extended::{evaluate_extended_in, ExtendedError, ExtendedOutput};

/// `HSP_FAULT` is process-global: fault tests take this lock so
/// concurrently running tests never see each other's injected fault.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// The old `evaluate_extended_with` convenience, through the supported
/// context-taking entry point (the `_with` wrapper itself is deprecated
/// in favour of `Session::query`).
fn evaluate_extended_with(
    ds: &Dataset,
    text: &str,
    config: &ExecConfig,
) -> Result<ExtendedOutput, ExtendedError> {
    evaluate_extended_in(ds, text, config, &config.context())
}

/// Run `f` with `HSP_FAULT=spec` set, serialised against the other
/// fault tests; the variable is cleared afterwards even on panic.
fn with_fault<T>(spec: &str, f: impl FnOnce() -> T) -> T {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    struct Unset;
    impl Drop for Unset {
        fn drop(&mut self) {
            std::env::remove_var("HSP_FAULT");
        }
    }
    let _unset = Unset;
    std::env::set_var("HSP_FAULT", spec);
    f()
}

fn cv(name: &str) -> TermOrVar {
    TermOrVar::Const(Term::iri(format!("http://e/{name}")))
}

fn vv(i: u32) -> TermOrVar {
    TermOrVar::Var(Var(i))
}

fn scan(idx: usize, s: TermOrVar, p: TermOrVar, o: TermOrVar, order: Order) -> PhysicalPlan {
    PhysicalPlan::Scan {
        pattern_idx: idx,
        pattern: TriplePattern::new(s, p, o),
        order,
    }
}

/// The deterministic citation graph the governor tests share (see
/// `crates/engine/tests/governor_exec.rs`).
fn chain_doc() -> String {
    let mut doc = String::new();
    for i in 0..120u32 {
        let a = i % 40;
        let b = (i * 7 + 3) % 40;
        doc.push_str(&format!(
            "<http://e/art{a}> <http://e/cites> <http://e/art{b}> .\n"
        ));
    }
    for a in 0..40u32 {
        doc.push_str(&format!(
            "<http://e/art{a}> <http://e/year> \"{}\" .\n",
            1990 + (a % 25)
        ));
    }
    doc
}

/// `?a cites ?b . ?b cites ?c . ?b year ?y` — scan → probe → probe.
fn chain_plan() -> PhysicalPlan {
    PhysicalPlan::HashJoin {
        left: Box::new(PhysicalPlan::HashJoin {
            left: Box::new(scan(0, vv(0), cv("cites"), vv(1), Order::Pso)),
            right: Box::new(scan(1, vv(1), cv("cites"), vv(2), Order::Pso)),
            vars: vec![Var(1)],
        }),
        right: Box::new(scan(2, vv(1), cv("year"), vv(3), Order::Pso)),
        vars: vec![Var(1)],
    }
}

/// [`chain_plan`] under γ{?a} COUNT(?y): the γ fold's morsel claims are
/// the only `"aggregate"`-site checkpoints, so matrix entries targeting
/// that site need a plan that actually reaches the aggregate breaker.
fn agg_plan() -> PhysicalPlan {
    PhysicalPlan::HashAggregate {
        input: Box::new(chain_plan()),
        group_by: vec![Var(0)],
        aggs: vec![AggSpec {
            func: AggFunc::Count,
            distinct: false,
            arg: Some(Var(3)),
            out: Var(4),
            name: "n".into(),
        }],
        having: None,
    }
}

fn forced_ctx(threads: usize) -> ExecContext {
    ExecContext::with_morsel_config(
        MorselConfig::with_threads(threads)
            .with_morsel_rows(4)
            .with_min_parallel_rows(0),
    )
}

/// Drained-context invariants plus the byte-identical follow-up query:
/// after a fault, detach the governor, re-run on the warm context, and
/// compare against a fresh ungoverned run. Also asserts the detached
/// context's runtime metrics report no governor (metrics coherence).
fn assert_drained_and_rerun(mut ctx: ExecContext, ds: &Dataset) {
    let stats = ctx.pool.stats();
    assert_eq!(
        stats.hits + stats.misses,
        stats.returned,
        "pool imbalance after injected fault: {stats:?}"
    );
    assert_eq!(
        ctx.governor().expect("governor attached").mem_used(),
        0,
        "leaked memory accounting after injected fault"
    );
    ctx.set_governor(None);
    let plan = chain_plan();
    let config = ExecConfig::unlimited();
    let warm = execute_in(&plan, ds, &config, &ctx).expect("re-run on warm context succeeds");
    assert_eq!(
        warm.runtime.governor_checks, 0,
        "detached governor still counted"
    );
    let fresh = execute_in(&plan, ds, &config, &config.context()).expect("fresh run succeeds");
    assert_eq!(
        warm.table, fresh.table,
        "post-fault re-run diverges from a fresh run"
    );
}

/// Inject `spec`, execute the chain plan at forced `threads`, and return
/// the typed error plus the context for drain checks.
fn faulted_run(spec: &str, threads: usize, ds: &Dataset) -> (ExecError, ExecContext) {
    with_fault(spec, || {
        let config = ExecConfig::unlimited().with_fault_injection();
        let mut ctx = forced_ctx(threads);
        ctx.set_governor(Some(
            config.governor().expect("fault injection arms a governor"),
        ));
        let err = execute_in(&chain_plan(), ds, &config, &ctx)
            .expect_err("injected fault must surface as an error");
        (err, ctx)
    })
}

#[test]
fn panic_at_worker_converts_to_typed_error_and_context_recovers() {
    let ds = Dataset::from_ntriples(&chain_doc()).unwrap();
    for threads in 1..=4usize {
        let (err, ctx) = faulted_run("panic@worker", threads, &ds);
        assert!(
            matches!(err, ExecError::WorkerPanicked { site: "worker" }),
            "threads={threads}: expected WorkerPanicked at worker, got {err}"
        );
        assert_drained_and_rerun(ctx, &ds);
    }
}

#[test]
fn panic_at_breaker_converts_to_typed_error_and_context_recovers() {
    let ds = Dataset::from_ntriples(&chain_doc()).unwrap();
    for threads in 1..=4usize {
        let (err, ctx) = faulted_run("panic@breaker", threads, &ds);
        assert!(
            matches!(err, ExecError::WorkerPanicked { site: "breaker" }),
            "threads={threads}: expected WorkerPanicked at breaker, got {err}"
        );
        assert_drained_and_rerun(ctx, &ds);
    }
}

#[test]
fn alloc_fault_at_worker_and_breaker_trips_the_memory_budget_error() {
    let ds = Dataset::from_ntriples(&chain_doc()).unwrap();
    for site in ["worker", "breaker"] {
        for threads in 1..=4usize {
            let (err, ctx) = faulted_run(&format!("alloc@{site}"), threads, &ds);
            match &err {
                ExecError::MemoryBudgetExceeded {
                    budget: 0,
                    site: got,
                    ..
                } => {
                    assert_eq!(*got, site, "threads={threads}")
                }
                other => panic!(
                    "threads={threads} site={site}: expected MemoryBudgetExceeded, got {other}"
                ),
            }
            assert_drained_and_rerun(ctx, &ds);
        }
    }
}

#[test]
fn slow_fault_lets_a_short_deadline_fire_deterministically() {
    // `slow@<site>` sleeps ~25ms inside the checkpoint; with a 5ms
    // deadline the same checkpoint's poll then trips — no race.
    let ds = Dataset::from_ntriples(&chain_doc()).unwrap();
    for site in ["worker", "breaker"] {
        for threads in 1..=4usize {
            let (err, ctx) = with_fault(&format!("slow@{site}"), || {
                let config = ExecConfig::unlimited()
                    .with_fault_injection()
                    .with_timeout(Duration::from_millis(5));
                let mut ctx = forced_ctx(threads);
                ctx.set_governor(Some(config.governor().expect("governor armed")));
                let err = execute_in(&chain_plan(), &ds, &config, &ctx)
                    .expect_err("slowed-past-deadline run must fail");
                (err, ctx)
            });
            assert!(
                matches!(err, ExecError::DeadlineExceeded),
                "threads={threads} site={site}: expected DeadlineExceeded, got {err}"
            );
            assert_drained_and_rerun(ctx, &ds);
        }
    }
}

#[test]
fn faults_at_the_oracle_operator_site_convert_to_typed_errors() {
    let ds = Dataset::from_ntriples(&chain_doc()).unwrap();
    let run = |spec: &str, timeout: Option<Duration>| {
        with_fault(spec, || {
            let mut config = ExecConfig::unlimited()
                .with_strategy(ExecStrategy::OperatorAtATime)
                .with_fault_injection();
            if let Some(t) = timeout {
                config = config.with_timeout(t);
            }
            let mut ctx = ExecContext::new();
            ctx.set_governor(Some(config.governor().expect("governor armed")));
            let err = execute_in(&chain_plan(), &ds, &config, &ctx)
                .expect_err("injected fault must surface");
            (err, ctx)
        })
    };
    let (err, ctx) = run("panic@operator", None);
    assert!(
        matches!(err, ExecError::WorkerPanicked { site: "operator" }),
        "expected WorkerPanicked at operator, got {err}"
    );
    assert_drained_and_rerun(ctx, &ds);
    let (err, ctx) = run("alloc@operator", None);
    assert!(
        matches!(
            err,
            ExecError::MemoryBudgetExceeded {
                budget: 0,
                site: "operator",
                ..
            }
        ),
        "expected MemoryBudgetExceeded at operator, got {err}"
    );
    assert_drained_and_rerun(ctx, &ds);
    let (err, ctx) = run("slow@operator", Some(Duration::from_millis(5)));
    assert!(
        matches!(err, ExecError::DeadlineExceeded),
        "expected DeadlineExceeded, got {err}"
    );
    assert_drained_and_rerun(ctx, &ds);
}

#[test]
fn injected_faults_fire_identically_on_re_execution() {
    // Determinism: with the env var still set, a second governed run
    // arms a fresh governor and the fault fires again — same typed
    // error, same site, at every thread count.
    let ds = Dataset::from_ntriples(&chain_doc()).unwrap();
    for threads in 1..=4usize {
        let (first, _) = faulted_run("panic@worker", threads, &ds);
        let (second, _) = faulted_run("panic@worker", threads, &ds);
        assert_eq!(
            format!("{first}"),
            format!("{second}"),
            "threads={threads}: injected fault is not deterministic across runs"
        );
    }
}

#[test]
fn extended_evaluator_surfaces_faults_at_its_checkpoint_site() {
    let ds = Dataset::from_ntriples(&chain_doc()).unwrap();
    let query = "SELECT ?a ?y WHERE { { ?a <http://e/cites> ?b . } UNION \
                 { ?a <http://e/year> ?y . } }";
    // Inert governed run first: byte-identical to the ungoverned path.
    let governed = with_fault("alloc@nowhere", || {
        evaluate_extended_with(&ds, query, &ExecConfig::unlimited().with_fault_injection())
            .expect("fault aimed at an unused site must not fire")
    });
    let plain = evaluate_extended_with(&ds, query, &ExecConfig::unlimited()).unwrap();
    assert_eq!(governed.rows, plain.rows);
    let err = with_fault("alloc@extended", || {
        evaluate_extended_with(&ds, query, &ExecConfig::unlimited().with_fault_injection())
            .expect_err("fault at the extended checkpoint must surface")
    });
    match err {
        ExtendedError::Eval(msg) => assert!(
            msg.contains("memory budget exceeded at extended"),
            "unexpected message: {msg}"
        ),
        other => panic!("expected Eval error, got {other:?}"),
    }
    // The store is untouched: the same query still evaluates cleanly.
    let after = evaluate_extended_with(&ds, query, &ExecConfig::unlimited()).unwrap();
    assert_eq!(after.rows, plain.rows);
}

#[test]
#[allow(deprecated)] // pins the legacy in-place sequencing semantics
fn update_path_surfaces_faults_and_leaves_prior_ops_applied() {
    use sparql_hsp::update::apply_update_with;
    let mut ds = Dataset::from_ntriples("").unwrap();
    let text = r#"INSERT DATA { <http://e/s> <http://e/p> "v" . } ;
                  DELETE WHERE { ?s <http://e/p> ?o . }"#;
    let err = with_fault("alloc@update", || {
        apply_update_with(
            &mut ds,
            text,
            &ExecConfig::unlimited().with_fault_injection(),
        )
        .expect_err("fault at the update checkpoint must surface")
    });
    assert!(
        err.to_string().contains("memory budget exceeded at update"),
        "unexpected error: {err}"
    );
    // The fault fired at the *first* per-operation checkpoint: nothing
    // ran, the dataset is untouched, and the same request applies
    // cleanly afterwards.
    assert!(ds.is_empty());
    let stats = apply_update_with(&mut ds, text, &ExecConfig::unlimited()).unwrap();
    assert_eq!((stats.inserted, stats.deleted), (1, 1));
    assert!(ds.is_empty());
}

/// CI's fault-injection matrix entry point: honours an `HSP_FAULT` spec
/// set *outside* the process (every other test here sets and clears its
/// own). The workflow runs this test alone, once per
/// `mode@site` combination, under `HSP_FORCE_THREADS=4`. Without an
/// external spec it is a no-op, so plain `cargo test` is unaffected —
/// the env read happens under [`ENV_LOCK`], where a concurrent test's
/// own spec can never be visible.
#[test]
fn externally_injected_fault_converts_to_its_typed_error() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let Ok(spec) = std::env::var("HSP_FAULT") else {
        return;
    };
    let (mode, site) = spec
        .split_once('@')
        .expect("HSP_FAULT must be <mode>@<site>");
    let ds = Dataset::from_ntriples(&chain_doc()).unwrap();
    let mut config = ExecConfig::unlimited().with_fault_injection();
    if mode == "slow" {
        config = config.with_timeout(Duration::from_millis(5));
    }
    if site == "operator" {
        config = config.with_strategy(ExecStrategy::OperatorAtATime);
    }
    let plan = if site == "aggregate" {
        agg_plan()
    } else {
        chain_plan()
    };
    let mut ctx = forced_ctx(4);
    ctx.set_governor(Some(
        config.governor().expect("external fault arms a governor"),
    ));
    let err = execute_in(&plan, &ds, &config, &ctx)
        .expect_err("externally injected fault must surface as an error");
    match mode {
        "panic" => assert!(
            matches!(err, ExecError::WorkerPanicked { site: s } if s == site),
            "HSP_FAULT={spec}: expected WorkerPanicked at {site}, got {err}"
        ),
        "alloc" => assert!(
            matches!(err, ExecError::MemoryBudgetExceeded { budget: 0, site: s, .. } if s == site),
            "HSP_FAULT={spec}: expected MemoryBudgetExceeded at {site}, got {err}"
        ),
        "slow" => assert!(
            matches!(err, ExecError::DeadlineExceeded),
            "HSP_FAULT={spec}: expected DeadlineExceeded, got {err}"
        ),
        other => panic!("unknown fault mode {other:?} in HSP_FAULT={spec}"),
    }
    assert_drained_and_rerun(ctx, &ds);
}

/// The "suite under a tiny memory budget" battery: representative query
/// shapes from the integration suites, each run with a 1 KiB budget.
/// Every execution must either fit (tiny results) or fail with the
/// graceful typed error — never an abort, never a panic — and the same
/// query must succeed untouched right afterwards.
#[test]
fn tiny_budget_battery_degrades_gracefully_across_query_shapes() {
    const TINY: usize = 1024;
    let ds = Dataset::from_ntriples(&chain_doc()).unwrap();
    let tiny = ExecConfig::unlimited().with_mem_budget(TINY);

    // Pipeline chain and oracle walk of the same plan.
    for strategy in [ExecStrategy::Auto, ExecStrategy::OperatorAtATime] {
        let config = tiny.clone().with_strategy(strategy);
        match execute_in(&chain_plan(), &ds, &config, &config.context()) {
            Ok(out) => assert!(hsp_engine::table_bytes(&out.table) <= TINY),
            Err(ExecError::MemoryBudgetExceeded { used, budget, .. }) => {
                assert_eq!(budget, TINY);
                assert!(used > TINY);
            }
            Err(other) => panic!("expected a budget error, got {other}"),
        }
        let unlimited = ExecConfig::unlimited().with_strategy(strategy);
        execute_in(&chain_plan(), &ds, &unlimited, &unlimited.context())
            .expect("ungoverned run still succeeds after a budget trip");
    }

    // Extended evaluator shapes: UNION, OPTIONAL, FILTER.
    for query in [
        "SELECT ?a ?b WHERE { { ?a <http://e/cites> ?b . } UNION { ?a <http://e/year> ?b . } }",
        "SELECT ?a ?y WHERE { ?a <http://e/cites> ?b . OPTIONAL { ?a <http://e/year> ?y . } }",
        "SELECT ?a WHERE { ?a <http://e/year> ?y . FILTER(?y > 2000) }",
    ] {
        match evaluate_extended_with(&ds, query, &tiny) {
            Ok(_) => {}
            Err(ExtendedError::Eval(msg)) => assert!(
                msg.contains("memory budget exceeded"),
                "expected a budget message, got: {msg}"
            ),
            Err(other) => panic!("expected a budget Eval error, got {other:?}"),
        }
        evaluate_extended_with(&ds, query, &ExecConfig::unlimited())
            .expect("ungoverned evaluation still succeeds");
    }

    // DELETE WHERE rides the same execution path (through the session
    // front door, which is how updates reach it in production).
    let session = sparql_hsp::session::Session::new(Dataset::from_ntriples(&chain_doc()).unwrap());
    match session.update(
        sparql_hsp::session::Request::new(
            "DELETE WHERE { ?a <http://e/cites> ?b . ?b <http://e/cites> ?c . }",
        )
        .with_mem_budget(TINY),
    ) {
        Ok(_) => {}
        Err(e) => assert!(
            e.to_string().contains("memory budget exceeded"),
            "expected a budget error, got: {e}"
        ),
    }
}
