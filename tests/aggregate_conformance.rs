//! Differential SPARQL 1.1 aggregation conformance suite.
//!
//! Every query in the corpus runs twice per thread count:
//!
//! 1. through the default pipelined executor (the morsel-parallel two-phase
//!    γ breaker in `hsp_engine::pipeline`), at **forced** thread counts
//!    1–4 with tiny morsels so even this small dataset splits across
//!    workers, and
//! 2. through the row-at-a-time reference implementation
//!    (`hsp_engine::reference::hash_aggregate`, reached via
//!    `ExecStrategy::OperatorAtATime`),
//!
//! and the two must agree **byte-identically** — same rows, same order,
//! same serialised SPARQL-JSON document. On top of the differential check,
//! every case carries hand-checked expected rows verified against the
//! SPARQL 1.1 §18.5 aggregate definitions, so both arms can't be wrong
//! together.

use hsp_engine::exec::ExecStrategy;
use hsp_engine::{ExecConfig, ExecContext, MorselConfig};
use hsp_rdf::Term;
use hsp_store::Dataset;
use sparql_hsp::extended::{evaluate_extended_in, ExtendedOutput};
use sparql_hsp::results;

const XSD_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
const XSD_DECIMAL: &str = "http://www.w3.org/2001/XMLSchema#decimal";
const XSD_DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";

/// Nine employees over three departments, with duplicate salaries (DISTINCT
/// coverage), a sparse `bonus` predicate (join + group-size skew), a
/// mixed-numeric `score` predicate (integer/decimal/double promotion), and
/// a sparse string-valued `name` predicate.
fn dataset() -> Dataset {
    let mut nt = String::new();
    let dept = [
        ("e1", "d1"),
        ("e2", "d1"),
        ("e3", "d1"),
        ("e4", "d1"),
        ("e5", "d2"),
        ("e6", "d2"),
        ("e7", "d2"),
        ("e8", "d3"),
        ("e9", "d3"),
    ];
    let salary = [
        ("e1", 10),
        ("e2", 20),
        ("e3", 20),
        ("e4", 30),
        ("e5", 5),
        ("e6", 15),
        ("e7", 40),
        ("e8", 25),
        ("e9", 25),
    ];
    for (e, d) in dept {
        nt.push_str(&format!(
            "<http://e/{e}> <http://e/dept> <http://e/{d}> .\n"
        ));
    }
    for (e, s) in salary {
        nt.push_str(&format!(
            "<http://e/{e}> <http://e/salary> \"{s}\"^^<{XSD_INTEGER}> .\n"
        ));
    }
    for (e, b) in [("e1", 100), ("e2", 100), ("e5", 7)] {
        nt.push_str(&format!(
            "<http://e/{e}> <http://e/bonus> \"{b}\"^^<{XSD_INTEGER}> .\n"
        ));
    }
    nt.push_str(&format!(
        "<http://e/e1> <http://e/score> \"1\"^^<{XSD_INTEGER}> .\n"
    ));
    nt.push_str(&format!(
        "<http://e/e2> <http://e/score> \"2.5\"^^<{XSD_DECIMAL}> .\n"
    ));
    nt.push_str(&format!(
        "<http://e/e3> <http://e/score> \"4.0\"^^<{XSD_DOUBLE}> .\n"
    ));
    for (e, n) in [
        ("e1", "alice"),
        ("e2", "bob"),
        ("e3", "alice"),
        ("e4", "bob"),
    ] {
        nt.push_str(&format!("<http://e/{e}> <http://e/name> \"{n}\" .\n"));
    }
    Dataset::from_ntriples(&nt).expect("corpus dataset parses")
}

fn int(n: i64) -> Option<Term> {
    Some(Term::typed_literal(n.to_string(), XSD_INTEGER))
}

fn dec(lexical: &str) -> Option<Term> {
    Some(Term::typed_literal(lexical, XSD_DECIMAL))
}

fn dbl(lexical: &str) -> Option<Term> {
    Some(Term::typed_literal(lexical, XSD_DOUBLE))
}

fn iri(local: &str) -> Option<Term> {
    Some(Term::iri(format!("http://e/{local}")))
}

fn lit(s: &str) -> Option<Term> {
    Some(Term::literal(s))
}

struct Case {
    name: &'static str,
    query: &'static str,
    columns: &'static [&'static str],
    expected: Vec<Vec<Option<Term>>>,
}

/// The hand-checked corpus. Grouped queries carry `ORDER BY` on a group
/// key (or rely on the deterministic first-seen order of a single sorted
/// scan) so expected rows are stable by construction.
fn corpus() -> Vec<Case> {
    vec![
        // --- COUNT ---------------------------------------------------
        Case {
            name: "count_star_all_triples",
            query: "SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o . }",
            columns: &["n"],
            expected: vec![vec![int(28)]],
        },
        Case {
            name: "count_star_salaries",
            query: "SELECT (COUNT(*) AS ?n) WHERE { ?s <http://e/salary> ?sal . }",
            columns: &["n"],
            expected: vec![vec![int(9)]],
        },
        Case {
            name: "count_var_ungrouped",
            query: "SELECT (COUNT(?s) AS ?n) WHERE { ?s <http://e/salary> ?sal . }",
            columns: &["n"],
            expected: vec![vec![int(9)]],
        },
        Case {
            name: "count_star_by_dept",
            query: "SELECT ?d (COUNT(*) AS ?n) WHERE { ?s <http://e/dept> ?d . } \
                    GROUP BY ?d ORDER BY ?d",
            columns: &["d", "n"],
            expected: vec![
                vec![iri("d1"), int(4)],
                vec![iri("d2"), int(3)],
                vec![iri("d3"), int(2)],
            ],
        },
        Case {
            name: "count_var_by_dept",
            query: "SELECT ?d (COUNT(?sal) AS ?n) WHERE { \
                    ?s <http://e/dept> ?d . ?s <http://e/salary> ?sal . } \
                    GROUP BY ?d ORDER BY ?d",
            columns: &["d", "n"],
            expected: vec![
                vec![iri("d1"), int(4)],
                vec![iri("d2"), int(3)],
                vec![iri("d3"), int(2)],
            ],
        },
        // --- SUM / MIN / MAX / AVG ----------------------------------
        Case {
            name: "sum_ungrouped",
            query: "SELECT (SUM(?sal) AS ?t) WHERE { ?s <http://e/salary> ?sal . }",
            columns: &["t"],
            expected: vec![vec![int(190)]],
        },
        Case {
            name: "sum_by_dept",
            query: "SELECT ?d (SUM(?sal) AS ?t) WHERE { \
                    ?s <http://e/dept> ?d . ?s <http://e/salary> ?sal . } \
                    GROUP BY ?d ORDER BY ?d",
            columns: &["d", "t"],
            expected: vec![
                vec![iri("d1"), int(80)],
                vec![iri("d2"), int(60)],
                vec![iri("d3"), int(50)],
            ],
        },
        Case {
            name: "min_ungrouped",
            query: "SELECT (MIN(?sal) AS ?lo) WHERE { ?s <http://e/salary> ?sal . }",
            columns: &["lo"],
            expected: vec![vec![int(5)]],
        },
        Case {
            name: "max_ungrouped",
            query: "SELECT (MAX(?sal) AS ?hi) WHERE { ?s <http://e/salary> ?sal . }",
            columns: &["hi"],
            expected: vec![vec![int(40)]],
        },
        Case {
            name: "min_by_dept",
            query: "SELECT ?d (MIN(?sal) AS ?lo) WHERE { \
                    ?s <http://e/dept> ?d . ?s <http://e/salary> ?sal . } \
                    GROUP BY ?d ORDER BY ?d",
            columns: &["d", "lo"],
            expected: vec![
                vec![iri("d1"), int(10)],
                vec![iri("d2"), int(5)],
                vec![iri("d3"), int(25)],
            ],
        },
        Case {
            name: "max_by_dept",
            query: "SELECT ?d (MAX(?sal) AS ?hi) WHERE { \
                    ?s <http://e/dept> ?d . ?s <http://e/salary> ?sal . } \
                    GROUP BY ?d ORDER BY ?d",
            columns: &["d", "hi"],
            expected: vec![
                vec![iri("d1"), int(30)],
                vec![iri("d2"), int(40)],
                vec![iri("d3"), int(25)],
            ],
        },
        Case {
            name: "avg_filtered_ungrouped",
            query: "SELECT (AVG(?sal) AS ?a) WHERE { \
                    ?s <http://e/dept> <http://e/d1> . ?s <http://e/salary> ?sal . }",
            columns: &["a"],
            expected: vec![vec![dec("20.0")]],
        },
        Case {
            name: "avg_by_dept",
            query: "SELECT ?d (AVG(?sal) AS ?a) WHERE { \
                    ?s <http://e/dept> ?d . ?s <http://e/salary> ?sal . } \
                    GROUP BY ?d ORDER BY ?d",
            columns: &["d", "a"],
            expected: vec![
                vec![iri("d1"), dec("20.0")],
                vec![iri("d2"), dec("20.0")],
                vec![iri("d3"), dec("25.0")],
            ],
        },
        // --- DISTINCT inside aggregates ------------------------------
        Case {
            name: "count_distinct_ungrouped",
            query: "SELECT (COUNT(DISTINCT ?sal) AS ?n) WHERE { ?s <http://e/salary> ?sal . }",
            columns: &["n"],
            expected: vec![vec![int(7)]],
        },
        Case {
            name: "count_distinct_by_dept",
            query: "SELECT ?d (COUNT(DISTINCT ?sal) AS ?n) WHERE { \
                    ?s <http://e/dept> ?d . ?s <http://e/salary> ?sal . } \
                    GROUP BY ?d ORDER BY ?d",
            columns: &["d", "n"],
            expected: vec![
                vec![iri("d1"), int(3)],
                vec![iri("d2"), int(3)],
                vec![iri("d3"), int(1)],
            ],
        },
        Case {
            name: "sum_distinct_ungrouped",
            query: "SELECT (SUM(DISTINCT ?sal) AS ?t) WHERE { ?s <http://e/salary> ?sal . }",
            columns: &["t"],
            expected: vec![vec![int(145)]],
        },
        Case {
            name: "sum_distinct_by_dept",
            query: "SELECT ?d (SUM(DISTINCT ?sal) AS ?t) WHERE { \
                    ?s <http://e/dept> ?d . ?s <http://e/salary> ?sal . } \
                    GROUP BY ?d ORDER BY ?d",
            columns: &["d", "t"],
            expected: vec![
                vec![iri("d1"), int(60)],
                vec![iri("d2"), int(60)],
                vec![iri("d3"), int(25)],
            ],
        },
        Case {
            name: "avg_distinct_by_dept",
            query: "SELECT ?d (AVG(DISTINCT ?sal) AS ?a) WHERE { \
                    ?s <http://e/dept> ?d . ?s <http://e/salary> ?sal . } \
                    GROUP BY ?d ORDER BY ?d",
            columns: &["d", "a"],
            expected: vec![
                vec![iri("d1"), dec("20.0")],
                vec![iri("d2"), dec("20.0")],
                vec![iri("d3"), dec("25.0")],
            ],
        },
        Case {
            name: "count_distinct_names",
            query: "SELECT (COUNT(DISTINCT ?n) AS ?c) WHERE { ?s <http://e/name> ?n . }",
            columns: &["c"],
            expected: vec![vec![int(2)]],
        },
        Case {
            name: "min_distinct_same_as_min",
            query: "SELECT (MIN(DISTINCT ?sal) AS ?lo) WHERE { ?s <http://e/salary> ?sal . }",
            columns: &["lo"],
            expected: vec![vec![int(5)]],
        },
        // --- Non-numeric arguments ----------------------------------
        Case {
            name: "min_string",
            query: "SELECT (MIN(?n) AS ?first) WHERE { ?s <http://e/name> ?n . }",
            columns: &["first"],
            expected: vec![vec![lit("alice")]],
        },
        Case {
            name: "min_iri",
            query: "SELECT (MIN(?d) AS ?firstDept) WHERE { ?s <http://e/dept> ?d . }",
            columns: &["firstDept"],
            expected: vec![vec![iri("d1")]],
        },
        // --- HAVING --------------------------------------------------
        Case {
            name: "having_count",
            query: "SELECT ?d (COUNT(*) AS ?n) WHERE { ?s <http://e/dept> ?d . } \
                    GROUP BY ?d HAVING (COUNT(*) > 2) ORDER BY ?d",
            columns: &["d", "n"],
            expected: vec![vec![iri("d1"), int(4)], vec![iri("d2"), int(3)]],
        },
        Case {
            name: "having_sum",
            query: "SELECT ?d (SUM(?sal) AS ?t) WHERE { \
                    ?s <http://e/dept> ?d . ?s <http://e/salary> ?sal . } \
                    GROUP BY ?d HAVING (SUM(?sal) >= 60) ORDER BY ?d",
            columns: &["d", "t"],
            expected: vec![vec![iri("d1"), int(80)], vec![iri("d2"), int(60)]],
        },
        Case {
            name: "having_avg",
            query: "SELECT ?d (AVG(?sal) AS ?a) WHERE { \
                    ?s <http://e/dept> ?d . ?s <http://e/salary> ?sal . } \
                    GROUP BY ?d HAVING (AVG(?sal) > 20) ORDER BY ?d",
            columns: &["d", "a"],
            expected: vec![vec![iri("d3"), dec("25.0")]],
        },
        Case {
            name: "having_on_unprojected_aggregate",
            query: "SELECT ?d (COUNT(*) AS ?n) WHERE { \
                    ?s <http://e/dept> ?d . ?s <http://e/salary> ?sal . } \
                    GROUP BY ?d HAVING (MAX(?sal) > 29) ORDER BY ?d",
            columns: &["d", "n"],
            expected: vec![vec![iri("d1"), int(4)], vec![iri("d2"), int(3)]],
        },
        // --- Empty input: COUNT 0 (ungrouped) vs no group (grouped) --
        Case {
            name: "empty_count_var",
            query: "SELECT (COUNT(?o) AS ?n) WHERE { ?s <http://e/missing> ?o . }",
            columns: &["n"],
            expected: vec![vec![int(0)]],
        },
        Case {
            name: "empty_count_star",
            query: "SELECT (COUNT(*) AS ?n) WHERE { ?s <http://e/missing> ?o . }",
            columns: &["n"],
            expected: vec![vec![int(0)]],
        },
        Case {
            name: "empty_sum_is_zero",
            query: "SELECT (SUM(?o) AS ?t) WHERE { ?s <http://e/missing> ?o . }",
            columns: &["t"],
            expected: vec![vec![int(0)]],
        },
        Case {
            name: "empty_min_is_unbound",
            query: "SELECT (MIN(?o) AS ?lo) WHERE { ?s <http://e/missing> ?o . }",
            columns: &["lo"],
            expected: vec![vec![None]],
        },
        Case {
            name: "empty_grouped_has_no_groups",
            query: "SELECT ?s (COUNT(?o) AS ?n) WHERE { ?s <http://e/missing> ?o . } \
                    GROUP BY ?s",
            columns: &["s", "n"],
            expected: vec![],
        },
        // --- Grouping shapes ----------------------------------------
        Case {
            name: "group_by_two_keys",
            query: "SELECT ?d ?sal (COUNT(*) AS ?n) WHERE { \
                    ?s <http://e/dept> ?d . ?s <http://e/salary> ?sal . } \
                    GROUP BY ?d ?sal ORDER BY ?d ?sal",
            columns: &["d", "sal", "n"],
            expected: vec![
                vec![iri("d1"), int(10), int(1)],
                vec![iri("d1"), int(20), int(2)],
                vec![iri("d1"), int(30), int(1)],
                vec![iri("d2"), int(5), int(1)],
                vec![iri("d2"), int(15), int(1)],
                vec![iri("d2"), int(40), int(1)],
                vec![iri("d3"), int(25), int(2)],
            ],
        },
        Case {
            name: "group_by_duplicate_values",
            query: "SELECT ?sal (COUNT(*) AS ?n) WHERE { ?s <http://e/salary> ?sal . } \
                    GROUP BY ?sal ORDER BY ?sal",
            columns: &["sal", "n"],
            expected: vec![
                vec![int(5), int(1)],
                vec![int(10), int(1)],
                vec![int(15), int(1)],
                vec![int(20), int(2)],
                vec![int(25), int(2)],
                vec![int(30), int(1)],
                vec![int(40), int(1)],
            ],
        },
        Case {
            name: "group_key_not_projected",
            query: "SELECT (SUM(?sal) AS ?t) WHERE { \
                    ?s <http://e/dept> ?d . ?s <http://e/salary> ?sal . } \
                    GROUP BY ?d ORDER BY ?t",
            columns: &["t"],
            expected: vec![vec![int(50)], vec![int(60)], vec![int(80)]],
        },
        // --- Aggregation above a join / filter ----------------------
        Case {
            name: "join_count_by_dept",
            query: "SELECT ?d (COUNT(*) AS ?n) WHERE { \
                    ?s <http://e/dept> ?d . ?s <http://e/bonus> ?b . } \
                    GROUP BY ?d ORDER BY ?d",
            columns: &["d", "n"],
            expected: vec![vec![iri("d1"), int(2)], vec![iri("d2"), int(1)]],
        },
        Case {
            name: "join_sum_distinct_bonus",
            query: "SELECT ?d (SUM(DISTINCT ?b) AS ?t) WHERE { \
                    ?s <http://e/dept> ?d . ?s <http://e/bonus> ?b . } \
                    GROUP BY ?d ORDER BY ?d",
            columns: &["d", "t"],
            expected: vec![vec![iri("d1"), int(100)], vec![iri("d2"), int(7)]],
        },
        Case {
            name: "filter_then_sum",
            query: "SELECT ?d (SUM(?sal) AS ?t) WHERE { \
                    ?s <http://e/dept> ?d . ?s <http://e/salary> ?sal . \
                    FILTER(?sal > 10) } GROUP BY ?d ORDER BY ?d",
            columns: &["d", "t"],
            expected: vec![
                vec![iri("d1"), int(70)],
                vec![iri("d2"), int(55)],
                vec![iri("d3"), int(50)],
            ],
        },
        // --- Solution modifiers over aggregate output ----------------
        Case {
            name: "order_by_aggregate_output",
            query: "SELECT ?d (SUM(?sal) AS ?t) WHERE { \
                    ?s <http://e/dept> ?d . ?s <http://e/salary> ?sal . } \
                    GROUP BY ?d ORDER BY ?t",
            columns: &["d", "t"],
            expected: vec![
                vec![iri("d3"), int(50)],
                vec![iri("d2"), int(60)],
                vec![iri("d1"), int(80)],
            ],
        },
        Case {
            name: "order_by_aggregate_desc_limit",
            query: "SELECT ?d (SUM(?sal) AS ?t) WHERE { \
                    ?s <http://e/dept> ?d . ?s <http://e/salary> ?sal . } \
                    GROUP BY ?d ORDER BY DESC(?t) LIMIT 2",
            columns: &["d", "t"],
            expected: vec![vec![iri("d1"), int(80)], vec![iri("d2"), int(60)]],
        },
        // --- Mixed numeric promotion (integer + decimal + double) ----
        Case {
            name: "mixed_numeric_sum",
            query: "SELECT (SUM(?x) AS ?t) WHERE { ?s <http://e/score> ?x . }",
            columns: &["t"],
            expected: vec![vec![dbl("7.5E0")]],
        },
        Case {
            name: "mixed_numeric_avg",
            query: "SELECT (AVG(?x) AS ?a) WHERE { ?s <http://e/score> ?x . }",
            columns: &["a"],
            expected: vec![vec![dbl("2.5E0")]],
        },
        Case {
            name: "mixed_numeric_min_max_keep_original_terms",
            query: "SELECT (MIN(?x) AS ?lo) (MAX(?x) AS ?hi) WHERE { ?s <http://e/score> ?x . }",
            columns: &["lo", "hi"],
            expected: vec![vec![int(1), dbl("4.0")]],
        },
        // --- Everything at once --------------------------------------
        Case {
            name: "all_aggregates_by_dept",
            query: "SELECT ?d (COUNT(*) AS ?n) (SUM(?sal) AS ?t) (MIN(?sal) AS ?lo) \
                    (MAX(?sal) AS ?hi) (AVG(?sal) AS ?a) WHERE { \
                    ?s <http://e/dept> ?d . ?s <http://e/salary> ?sal . } \
                    GROUP BY ?d ORDER BY ?d",
            columns: &["d", "n", "t", "lo", "hi", "a"],
            expected: vec![
                vec![iri("d1"), int(4), int(80), int(10), int(30), dec("20.0")],
                vec![iri("d2"), int(3), int(60), int(5), int(40), dec("20.0")],
                vec![iri("d3"), int(2), int(50), int(25), int(25), dec("25.0")],
            ],
        },
    ]
}

/// Evaluate through the default pipelined executor at a forced thread
/// count (tiny morsels, no row threshold — real splitting even on this
/// dataset).
fn pipelined(ds: &Dataset, query: &str, threads: usize) -> Result<ExtendedOutput, String> {
    let config = ExecConfig::unlimited();
    let ctx = ExecContext::with_morsel_config(
        MorselConfig::with_threads(threads)
            .with_morsel_rows(3)
            .with_min_parallel_rows(0),
    );
    evaluate_extended_in(ds, query, &config, &ctx).map_err(|e| e.to_string())
}

/// Evaluate through the operator-at-a-time oracle (row-at-a-time
/// `reference::hash_aggregate`).
fn reference(ds: &Dataset, query: &str) -> Result<ExtendedOutput, String> {
    let config = ExecConfig::unlimited().with_strategy(ExecStrategy::OperatorAtATime);
    let ctx = config.context();
    evaluate_extended_in(ds, query, &config, &ctx).map_err(|e| e.to_string())
}

#[test]
fn corpus_is_large_enough() {
    assert!(
        corpus().len() >= 30,
        "conformance corpus shrank below 30 queries ({})",
        corpus().len()
    );
}

/// The tentpole assertion: reference output equals the hand-checked
/// SPARQL 1.1 expectation, and the pipelined executor reproduces it
/// byte-identically at forced thread counts 1–4.
#[test]
fn corpus_matches_reference_and_spec() {
    let ds = dataset();
    for case in corpus() {
        let oracle = reference(&ds, case.query)
            .unwrap_or_else(|e| panic!("{}: reference failed: {e}", case.name));
        assert_eq!(
            oracle.columns, case.columns,
            "{}: projected columns",
            case.name
        );
        assert_eq!(
            oracle.rows, case.expected,
            "{}: reference disagrees with the hand-checked expectation",
            case.name
        );
        let oracle_json = results::to_sparql_json(&oracle);
        for threads in 1..=4 {
            let out = pipelined(&ds, case.query, threads)
                .unwrap_or_else(|e| panic!("{}: pipelined t={threads} failed: {e}", case.name));
            assert_eq!(
                out.rows, oracle.rows,
                "{}: pipelined rows diverge from reference at threads={threads}",
                case.name
            );
            assert_eq!(
                results::to_sparql_json(&out),
                oracle_json,
                "{}: serialised JSON diverges at threads={threads}",
                case.name
            );
        }
    }
}

/// SUM over a non-numeric argument is a typed error — on both arms, at
/// every thread count, never a panic.
#[test]
fn sum_over_strings_is_a_typed_error_on_both_arms() {
    let ds = dataset();
    let query = "SELECT (SUM(?n) AS ?t) WHERE { ?s <http://e/name> ?n . }";
    let oracle = reference(&ds, query).expect_err("reference must reject SUM over strings");
    assert!(
        oracle.contains("SUM"),
        "error should name the aggregate: {oracle}"
    );
    for threads in 1..=4 {
        let err = pipelined(&ds, query, threads)
            .expect_err("pipelined executor must reject SUM over strings");
        assert_eq!(err, oracle, "error text diverges at threads={threads}");
    }
}

/// AVG over a dataset mixing numbers and strings errors too (the fold hits
/// the string), with the aggregate named in the message.
#[test]
fn avg_over_mixed_name_and_number_errors() {
    let ds = dataset();
    // ?v spans both numeric salaries and string names via the predicate
    // variable — a type error per SPARQL's op:numeric-add.
    let query = "SELECT (AVG(?v) AS ?a) WHERE { ?s ?p ?v . }";
    let oracle = reference(&ds, query).expect_err("reference must reject AVG over mixed terms");
    for threads in 1..=4 {
        let err = pipelined(&ds, query, threads).expect_err("pipelined must reject too");
        assert_eq!(err, oracle, "error text diverges at threads={threads}");
    }
}

/// OPTIONAL cannot be combined with aggregation (typed error, not a
/// silent drop of the GROUP BY).
#[test]
fn optional_plus_aggregate_is_rejected() {
    let ds = dataset();
    let query = "SELECT ?d (COUNT(?b) AS ?n) WHERE { \
                 ?s <http://e/dept> ?d . OPTIONAL { ?s <http://e/bonus> ?b . } } \
                 GROUP BY ?d";
    let err = reference(&ds, query).expect_err("OPTIONAL + aggregates must be rejected");
    assert!(
        err.contains("OPTIONAL"),
        "error should name the feature: {err}"
    );
}

/// COUNT(*) vs COUNT(?x) over rows with genuinely unbound values: a
/// hand-built plan puts the γ breaker above a left-outer join (the
/// OPTIONAL operator), so `?b` is unbound for employees without a bonus.
/// COUNT(*) counts every group row, COUNT(?b)/SUM(?b)/MIN(?b) skip the
/// unbound ones — and the pipelined breaker agrees with the reference
/// byte-for-byte at forced thread counts 1–4.
#[test]
fn count_star_vs_count_var_over_unbound_rows() {
    use hsp_engine::{execute_in, PhysicalPlan};
    use hsp_sparql::algebra::{AggFunc, AggSpec};
    use hsp_sparql::{TermOrVar, TriplePattern, Var};
    use hsp_store::Order;

    let ds = dataset();
    let scan = |idx: usize, pred: &str, s: Var, o: Var| PhysicalPlan::Scan {
        pattern_idx: idx,
        pattern: TriplePattern::new(
            TermOrVar::Var(s),
            TermOrVar::Const(Term::iri(format!("http://e/{pred}"))),
            TermOrVar::Var(o),
        ),
        order: Order::Pso,
    };
    // ?s dept ?d LEFT JOIN ?s bonus ?b, then γ{?d} COUNT(*), COUNT(?b),
    // SUM(?b), MIN(?b).
    let (s, d, b) = (Var(0), Var(1), Var(2));
    let agg = |func: AggFunc, arg: Option<Var>, out: Var, name: &str| AggSpec {
        func,
        distinct: false,
        arg,
        out,
        name: name.to_string(),
    };
    let plan = PhysicalPlan::Project {
        input: Box::new(PhysicalPlan::HashAggregate {
            input: Box::new(PhysicalPlan::LeftOuterHashJoin {
                left: Box::new(scan(0, "dept", s, d)),
                right: Box::new(scan(1, "bonus", s, b)),
                vars: vec![s],
            }),
            group_by: vec![d],
            aggs: vec![
                agg(AggFunc::Count, None, Var(3), "n"),
                agg(AggFunc::Count, Some(b), Var(4), "nb"),
                agg(AggFunc::Sum, Some(b), Var(5), "sb"),
                agg(AggFunc::Min, Some(b), Var(6), "lo"),
            ],
            having: None,
        }),
        projection: vec![
            ("d".into(), d),
            ("n".into(), Var(3)),
            ("nb".into(), Var(4)),
            ("sb".into(), Var(5)),
            ("lo".into(), Var(6)),
        ],
        distinct: false,
    };

    let oracle_config = ExecConfig::unlimited().with_strategy(ExecStrategy::OperatorAtATime);
    let oracle =
        execute_in(&plan, &ds, &oracle_config, &oracle_config.context()).expect("oracle executes");
    // Hand-check: d1 has 4 employees / 2 bonuses (100+100), d2 has 3 / 1
    // (7), d3 has 2 / 0 (SUM over no bound values is 0, MIN is unbound).
    let resolve = |out: &hsp_engine::ExecOutput, row: usize, col: Var| {
        out.term(&ds, out.table.value(col, row))
    };
    assert_eq!(oracle.table.len(), 3);
    let expect = [
        ("d1", 4, 2, 200, int(100)),
        ("d2", 3, 1, 7, int(7)),
        ("d3", 2, 0, 0, None),
    ];
    for (row, (dept, n, nb, sb, lo)) in expect.into_iter().enumerate() {
        assert_eq!(resolve(&oracle, row, d), iri(dept), "group key row {row}");
        assert_eq!(resolve(&oracle, row, Var(3)), int(n), "COUNT(*) for {dept}");
        assert_eq!(
            resolve(&oracle, row, Var(4)),
            int(nb),
            "COUNT(?b) for {dept}"
        );
        assert_eq!(resolve(&oracle, row, Var(5)), int(sb), "SUM(?b) for {dept}");
        assert_eq!(resolve(&oracle, row, Var(6)), lo, "MIN(?b) for {dept}");
    }

    let pipeline_config = ExecConfig::unlimited();
    for threads in 1..=4usize {
        let ctx = ExecContext::with_morsel_config(
            MorselConfig::with_threads(threads)
                .with_morsel_rows(2)
                .with_min_parallel_rows(0),
        );
        let out = execute_in(&plan, &ds, &pipeline_config, &ctx).expect("pipeline executes");
        assert_eq!(
            &out.table, &oracle.table,
            "tables diverge at threads={threads}"
        );
        assert_eq!(
            out.computed, oracle.computed,
            "computed-term overlays diverge at threads={threads}"
        );
    }
}
