//! Session-level tests of the copy-on-write storage path: updates
//! publish O(delta) snapshots (base runs stay `Arc`-shared), readers
//! stay untorn across concurrent publications, results are
//! byte-identical across thread budgets and compaction thresholds, and
//! the storage counters flow through [`sparql_hsp::session::Response`]
//! metrics.

use sparql_hsp::session::{Request, Session, SessionOptions};

use hsp_store::Dataset;

/// A small person graph: names to scan, `knows` edges to join over.
fn base_dataset() -> Dataset {
    let mut nt = String::new();
    for i in 0..48 {
        nt.push_str(&format!(
            "<http://e/p{i}> <http://e/name> \"Person {i}\" .\n\
             <http://e/p{i}> <http://e/knows> <http://e/p{next}> .\n",
            next = (i + 1) % 48,
        ));
    }
    Dataset::from_ntriples(&nt).expect("base dataset parses")
}

/// The update sequence every variant applies: growth, churn on existing
/// subjects, and a pattern delete — enough to leave both live delta
/// inserts and tombstones behind on the low-threshold variants.
fn updates() -> Vec<String> {
    let mut ops = Vec::new();
    for b in 0..6 {
        let mut text = String::from("INSERT DATA {\n");
        for i in 0..12 {
            text.push_str(&format!(
                "<http://e/x{b}u{i}> <http://e/issued> \"19{b}{i}\" .\n"
            ));
        }
        text.push('}');
        ops.push(text);
    }
    ops.push(
        "DELETE DATA { <http://e/x0u0> <http://e/issued> \"1900\" . \
         <http://e/x1u1> <http://e/issued> \"1911\" . }"
            .to_string(),
    );
    ops.push("DELETE WHERE { ?s <http://e/knows> <http://e/p0> . }".to_string());
    ops
}

const QUERIES: &[&str] = &[
    "SELECT ?s ?o WHERE { ?s <http://e/issued> ?o . } ORDER BY ?s",
    "SELECT ?a ?n WHERE { ?a <http://e/knows> ?b . ?b <http://e/name> ?n . } ORDER BY ?a",
    "SELECT ?s WHERE { ?s <http://e/name> \"Person 3\" . }",
];

fn session_with(threshold: Option<usize>) -> Session {
    Session::with_options(
        base_dataset(),
        SessionOptions {
            // Tiny morsels + no sequential-below threshold so even this
            // small dataset schedules real parallel work at threads > 1.
            morsel_rows: Some(8),
            min_parallel_rows: Some(0),
            compaction_threshold: threshold,
            ..SessionOptions::default()
        },
    )
}

/// Every (compaction threshold, thread budget) combination returns the
/// same rows after the same update sequence — merged base+delta scans,
/// freshly compacted runs, and the pre-delta single-run shape are
/// indistinguishable to queries.
#[test]
fn results_identical_across_threads_and_compaction_thresholds() {
    let mut reference: Option<Vec<Vec<Vec<Option<hsp_rdf::Term>>>>> = None;
    // usize::MAX never compacts (pure delta), 1 compacts every update,
    // 8 compacts mid-sequence; None uses the default (env-overridable).
    for threshold in [Some(usize::MAX), Some(1), Some(8), None] {
        let session = session_with(threshold);
        for op in updates() {
            session.update(Request::new(op)).expect("update applies");
        }
        for threads in 1..=4 {
            let got: Vec<_> = QUERIES
                .iter()
                .map(|q| {
                    session
                        .query(Request::new(*q).with_threads(threads).without_cache())
                        .expect("query runs")
                        .output
                        .rows
                })
                .collect();
            match &reference {
                None => reference = Some(got),
                Some(want) => assert_eq!(
                    want, &got,
                    "threshold {threshold:?} threads {threads} diverged"
                ),
            }
        }
    }
    // Sanity: the reference saw the updates (72 inserts - 2 deletes).
    assert_eq!(reference.expect("ran")[0].len(), 70);
}

/// A reader querying while a writer publishes batch after batch must
/// only ever observe whole batches: its snapshot is taken atomically
/// and scans over it never see a half-applied update.
#[test]
fn concurrent_publication_keeps_readers_untorn() {
    const BATCH: usize = 8;
    const BATCHES: usize = 24;
    let session = session_with(Some(4)); // compact often, mid-traffic
    let writer = {
        let session = session.clone();
        std::thread::spawn(move || {
            for b in 0..BATCHES {
                let mut text = String::from("INSERT DATA {\n");
                for i in 0..BATCH {
                    text.push_str(&format!("<http://e/w{b}x{i}> <http://e/marker> \"m\" .\n"));
                }
                text.push('}');
                session.update(Request::new(text)).expect("update applies");
            }
        })
    };
    let query = "SELECT ?s WHERE { ?s <http://e/marker> ?o . }";
    let mut seen = 0usize;
    while !writer.is_finished() {
        let out = session
            .query(Request::new(query).without_cache())
            .expect("reader query runs");
        let n = out.output.rows.len();
        assert_eq!(n % BATCH, 0, "torn read: {n} marker rows");
        assert!(n >= seen, "snapshot went backwards: {n} < {seen}");
        seen = n;
    }
    writer.join().expect("writer thread");
    let out = session
        .query(Request::new(query).without_cache())
        .expect("final query runs");
    assert_eq!(out.output.rows.len(), BATCH * BATCHES);
}

/// The storage counters the session stamps on each response: version
/// advances per publication, a never-compacting session accumulates
/// delta rows and reports merged scans, a compact-every-update session
/// reports compactions and an empty delta.
#[test]
fn storage_metrics_flow_through_responses() {
    // Per-store threshold overrides beat the HSP_COMPACT_THRESHOLD env
    // var, so these assertions hold under the CI threshold-1 pass too.
    let delta_only = session_with(Some(usize::MAX));
    let v0 = delta_only
        .query(Request::new(QUERIES[0]).without_cache())
        .expect("query runs")
        .metrics
        .store_version;
    for op in updates() {
        delta_only.update(Request::new(op)).expect("update applies");
    }
    let out = delta_only
        .query(Request::new(QUERIES[0]).without_cache())
        .expect("query runs");
    assert!(out.metrics.store_version > v0, "version never advanced");
    assert!(out.metrics.store_delta_rows > 0, "delta was folded away");
    assert!(
        out.metrics.merged_scans > 0,
        "scan over a delta-resident predicate did not merge"
    );
    assert_eq!(out.metrics.store_compactions, 0);

    let compact_every = session_with(Some(1));
    for op in updates() {
        compact_every
            .update(Request::new(op))
            .expect("update applies");
    }
    let out = compact_every
        .query(Request::new(QUERIES[0]).without_cache())
        .expect("query runs");
    assert_eq!(out.metrics.store_delta_rows, 0, "threshold 1 left a delta");
    assert!(out.metrics.store_compactions > 0, "never compacted");
    assert_eq!(out.metrics.merged_scans, 0, "compacted scan still merged");
}

/// Publication is O(delta): the published snapshot keeps sharing the
/// previous snapshot's base runs instead of rebuilding (or cloning)
/// them, for both the store and the dictionary.
#[test]
fn publication_shares_base_runs_with_previous_snapshot() {
    let session = session_with(Some(usize::MAX));
    let before = session.snapshot();
    session
        .update(Request::new(
            "INSERT DATA { <http://e/fresh> <http://e/issued> \"2026\" . }",
        ))
        .expect("update applies");
    let after = session.snapshot();
    assert!(
        after.store().shares_base_runs_with(before.store()),
        "publication rebuilt the base runs for a 1-triple delta"
    );
    assert_eq!(after.len(), before.len() + 1);
}
