//! Pipeline executor vs operator-at-a-time oracle at query level: all 14
//! workload queries on the generated SP2Bench-like and YAGO-like datasets
//! must come out byte-identical under both strategies at thread budgets
//! 1–4, and OPTIONAL/UNION queries — which reach the engine through
//! `execute_in` on the extended evaluator's shared context — must agree
//! too.

use std::sync::OnceLock;

use hsp_bench::planners::{plan_query, PlannerKind};
use hsp_bench::{BenchEnv, EnvConfig};
use hsp_datagen::workload;
use hsp_engine::{execute, ExecConfig, ExecStrategy};
use sparql_hsp::extended::evaluate_extended_with;

fn env() -> &'static BenchEnv {
    static ENV: OnceLock<BenchEnv> = OnceLock::new();
    ENV.get_or_init(|| BenchEnv::load(EnvConfig::small()))
}

#[test]
fn workload_queries_pipeline_matches_oracle_at_all_thread_counts() {
    let env = env();
    for q in workload() {
        let parsed = q.parse();
        let ds = env.dataset(q.dataset);
        let planned = plan_query(PlannerKind::Hsp, ds, &parsed)
            .unwrap_or_else(|e| panic!("{} failed to plan: {e}", q.id));
        let oracle = execute(
            &planned.plan,
            ds,
            &ExecConfig::unlimited().with_strategy(ExecStrategy::OperatorAtATime),
        )
        .unwrap_or_else(|e| panic!("{} oracle failed: {e}", q.id));
        for threads in 1..=4usize {
            let out = execute(
                &planned.plan,
                ds,
                &ExecConfig::unlimited().with_threads(threads),
            )
            .unwrap_or_else(|e| panic!("{} pipeline (t={threads}) failed: {e}", q.id));
            assert_eq!(
                out.table, oracle.table,
                "{} diverges from the oracle at threads={threads}",
                q.id
            );
            assert_eq!(
                out.profile.total_intermediate_rows(),
                oracle.profile.total_intermediate_rows(),
                "{} profile cardinalities diverge at threads={threads}",
                q.id
            );
        }
    }
}

#[test]
fn optional_union_blocks_pipeline_matches_oracle() {
    let env = env();
    let ds = env.dataset(hsp_datagen::DatasetKind::Sp2Bench);
    // OPTIONAL and UNION evaluate block-by-block through `execute_in` on
    // one shared context; each block plan takes the pipeline path.
    let queries = [
        "SELECT ?a ?y WHERE { ?a <http://purl.org/dc/elements/1.1/creator> ?b . \
         OPTIONAL { ?a <http://purl.org/dc/terms/issued> ?y . } }",
        "SELECT ?a WHERE { { ?a <http://purl.org/dc/elements/1.1/creator> ?b . } UNION \
         { ?a <http://purl.org/dc/terms/issued> ?y . } }",
        "SELECT ?a ?j ?y WHERE { ?a <http://swrc.ontoware.org/ontology#journal> ?j . \
         OPTIONAL { ?j <http://purl.org/dc/terms/issued> ?y . } \
         FILTER (?a != ?j) }",
    ];
    for text in queries {
        let oracle = evaluate_extended_with(
            ds,
            text,
            &ExecConfig::unlimited().with_strategy(ExecStrategy::OperatorAtATime),
        )
        .unwrap_or_else(|e| panic!("oracle failed for {text}: {e}"));
        for threads in 1..=4usize {
            let out =
                evaluate_extended_with(ds, text, &ExecConfig::unlimited().with_threads(threads))
                    .unwrap_or_else(|e| panic!("pipeline (t={threads}) failed for {text}: {e}"));
            assert_eq!(out.columns, oracle.columns, "columns diverge for {text}");
            assert_eq!(
                out.rows, oracle.rows,
                "rows diverge for {text} at threads={threads}"
            );
        }
    }
}
