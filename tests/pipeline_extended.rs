//! Pipeline executor vs operator-at-a-time oracle at query level: all 14
//! workload queries on the generated SP2Bench-like and YAGO-like datasets
//! must come out byte-identical under both strategies at thread budgets
//! 1–4, and OPTIONAL/UNION queries — which reach the engine through
//! `execute_in` on the extended evaluator's shared context — must agree
//! too.

use std::sync::OnceLock;

use hsp_bench::planners::{plan_query, PlannerKind};
use hsp_bench::{BenchEnv, EnvConfig};
use hsp_datagen::workload;
use hsp_engine::{execute, ExecConfig, ExecStrategy, RuntimeMetrics};
use sparql_hsp::extended::{evaluate_extended_in, ExtendedError, ExtendedOutput};

fn env() -> &'static BenchEnv {
    static ENV: OnceLock<BenchEnv> = OnceLock::new();
    ENV.get_or_init(|| BenchEnv::load(EnvConfig::small()))
}

/// The old `evaluate_extended_with` convenience, through the supported
/// context-taking entry point (the `_with` wrapper itself is deprecated
/// in favour of `Session::query`).
fn evaluate_extended_with(
    ds: &hsp_store::Dataset,
    text: &str,
    config: &ExecConfig,
) -> Result<ExtendedOutput, ExtendedError> {
    evaluate_extended_in(ds, text, config, &config.context())
}

#[test]
fn workload_queries_pipeline_matches_oracle_at_all_thread_counts() {
    let env = env();
    for q in workload() {
        let parsed = q.parse();
        let ds = env.dataset(q.dataset);
        let planned = plan_query(PlannerKind::Hsp, ds, &parsed)
            .unwrap_or_else(|e| panic!("{} failed to plan: {e}", q.id));
        let oracle = execute(
            &planned.plan,
            ds,
            &ExecConfig::unlimited().with_strategy(ExecStrategy::OperatorAtATime),
        )
        .unwrap_or_else(|e| panic!("{} oracle failed: {e}", q.id));
        for threads in 1..=4usize {
            let out = execute(
                &planned.plan,
                ds,
                &ExecConfig::unlimited().with_threads(threads),
            )
            .unwrap_or_else(|e| panic!("{} pipeline (t={threads}) failed: {e}", q.id));
            assert_eq!(
                out.table, oracle.table,
                "{} diverges from the oracle at threads={threads}",
                q.id
            );
            assert_eq!(
                out.profile.total_intermediate_rows(),
                oracle.profile.total_intermediate_rows(),
                "{} profile cardinalities diverge at threads={threads}",
                q.id
            );
        }
    }
}

#[test]
fn optional_union_blocks_pipeline_matches_oracle() {
    let env = env();
    let ds = env.dataset(hsp_datagen::DatasetKind::Sp2Bench);
    // OPTIONAL and UNION evaluate block-by-block through `execute_in` on
    // one shared context; each block plan takes the pipeline path.
    let queries = [
        "SELECT ?a ?y WHERE { ?a <http://purl.org/dc/elements/1.1/creator> ?b . \
         OPTIONAL { ?a <http://purl.org/dc/terms/issued> ?y . } }",
        "SELECT ?a WHERE { { ?a <http://purl.org/dc/elements/1.1/creator> ?b . } UNION \
         { ?a <http://purl.org/dc/terms/issued> ?y . } }",
        "SELECT ?a ?j ?y WHERE { ?a <http://swrc.ontoware.org/ontology#journal> ?j . \
         OPTIONAL { ?j <http://purl.org/dc/terms/issued> ?y . } \
         FILTER (?a != ?j) }",
    ];
    for text in queries {
        let oracle = evaluate_extended_with(
            ds,
            text,
            &ExecConfig::unlimited().with_strategy(ExecStrategy::OperatorAtATime),
        )
        .unwrap_or_else(|e| panic!("oracle failed for {text}: {e}"));
        for threads in 1..=4usize {
            let out =
                evaluate_extended_with(ds, text, &ExecConfig::unlimited().with_threads(threads))
                    .unwrap_or_else(|e| panic!("pipeline (t={threads}) failed for {text}: {e}"));
            assert_eq!(out.columns, oracle.columns, "columns diverge for {text}");
            assert_eq!(
                out.rows, oracle.rows,
                "rows diverge for {text} at threads={threads}"
            );
        }
    }
}

/// OPTIONAL-heavy queries compose into one plan whose left-outer probes
/// *stream*: byte-identical rows vs the operator-at-a-time oracle at
/// forced threads 1–4, with the pipeline/outer-probe counters proving the
/// pipelined path actually ran end to end.
#[test]
fn optional_queries_stream_through_outer_probe_pipelines() {
    let env = env();
    let ds = env.dataset(hsp_datagen::DatasetKind::Sp2Bench);
    // swrc:month is sparse by construction, so OPTIONAL blocks over it pad
    // a real fraction of rows with UNBOUND.
    let queries = [
        // Core + two OPTIONAL blocks.
        "SELECT ?a ?y ?m WHERE { ?a <http://purl.org/dc/elements/1.1/creator> ?b . \
         OPTIONAL { ?a <http://purl.org/dc/terms/issued> ?y . } \
         OPTIONAL { ?a <http://swrc.ontoware.org/ontology#month> ?m . } }",
        // OPTIONAL with a FILTER inside the block.
        "SELECT ?a ?p WHERE { ?a <http://purl.org/dc/elements/1.1/creator> ?b . \
         OPTIONAL { ?a <http://swrc.ontoware.org/ontology#pages> ?p . FILTER (?p > \"50\") } }",
        // Group FILTER over the OPTIONAL's (possibly UNBOUND) variable.
        "SELECT ?a ?y WHERE { ?a <http://swrc.ontoware.org/ontology#journal> ?j . \
         OPTIONAL { ?a <http://purl.org/dc/terms/issued> ?y . } \
         FILTER (?a != ?j) }",
    ];
    for text in queries {
        let oracle = evaluate_extended_with(
            ds,
            text,
            &ExecConfig::unlimited().with_strategy(ExecStrategy::OperatorAtATime),
        )
        .unwrap_or_else(|e| panic!("oracle failed for {text}: {e}"));
        for threads in 1..=4usize {
            let config = ExecConfig::unlimited().with_threads(threads);
            let ctx = config.context();
            let out = evaluate_extended_in(ds, text, &config, &ctx)
                .unwrap_or_else(|e| panic!("pipeline (t={threads}) failed for {text}: {e}"));
            assert_eq!(out.columns, oracle.columns, "columns diverge for {text}");
            assert_eq!(
                out.rows, oracle.rows,
                "rows diverge for {text} at threads={threads}"
            );
            let metrics = RuntimeMetrics::of(&ctx);
            assert!(
                metrics.pipelines > 0,
                "{text} (t={threads}) should run pipelined: {metrics:?}"
            );
            assert!(
                metrics.pipeline_outer_probes > 0,
                "{text} (t={threads}) should stream its OPTIONAL probe: {metrics:?}"
            );
        }
    }
}

/// The oracle strategy must drive the composed OPTIONAL plan through the
/// operator-at-a-time evaluator — no pipelines — while producing the same
/// rows; the per-operator profile cardinalities of the two executors agree
/// (checked through `execute` on the same composed shape in
/// `engine/tests/pipeline_exec.rs`; here we pin the counter contract).
#[test]
fn oracle_strategy_runs_optional_queries_without_pipelines() {
    let env = env();
    let ds = env.dataset(hsp_datagen::DatasetKind::Sp2Bench);
    let text = "SELECT ?a ?y WHERE { ?a <http://purl.org/dc/elements/1.1/creator> ?b . \
         OPTIONAL { ?a <http://purl.org/dc/terms/issued> ?y . } }";
    let config = ExecConfig::unlimited().with_strategy(ExecStrategy::OperatorAtATime);
    let ctx = config.context();
    let out = evaluate_extended_in(ds, text, &config, &ctx).expect("oracle runs");
    assert!(!out.rows.is_empty());
    let metrics = RuntimeMetrics::of(&ctx);
    assert_eq!(metrics.pipelines, 0);
    assert_eq!(metrics.pipeline_outer_probes, 0);
}
