//! Plan evaluation with per-operator profiling, a row budget, optional
//! sideways information passing, and the morsel/pool runtime layer: every
//! execution owns an [`ExecContext`] whose thread budget drives the
//! parallel kernels and whose [`BufferPool`](crate::pool::BufferPool)
//! recycles the columns of consumed intermediates.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hsp_rdf::TermId;
use hsp_sparql::Var;
use hsp_store::Dataset;

use crate::aggregate::AggError;
use crate::binding::BindingTable;
use crate::govern::{CancelToken, GovernorError, QueryGovernor};
use crate::metrics::RuntimeMetrics;
use crate::ops;
use crate::plan::{PhysicalPlan, PlanError};
use crate::pool::ExecContext;

/// Which evaluator [`execute`] uses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ExecStrategy {
    /// Lower the plan into morsel-driven pipelines with explicit breakers
    /// ([`crate::pipeline`]) whenever the configuration allows it — the
    /// default. SIP and row-budget executions fall back to the
    /// operator-at-a-time evaluator, because both features are defined in
    /// terms of materialised intermediates (domain narrowing reads them,
    /// the budget counts them).
    #[default]
    Auto,
    /// Always the operator-at-a-time tree evaluator — every operator
    /// materialises its full output. Retained as the byte-identity oracle
    /// for the pipeline executor (and as the measured baseline of the
    /// `pipeline_chain_*` bench rows).
    OperatorAtATime,
}

/// Execution configuration.
#[derive(Debug, Clone, Default)]
pub struct ExecConfig {
    /// Abort if any single operator produces more than this many rows.
    /// Used to guard against runaway Cartesian products (the SQL baseline's
    /// SP4a plan) — the paper marks those runs "XXX".
    pub max_intermediate_rows: Option<usize>,
    /// Enable **sideways information passing** (SIP): when a join's first
    /// input has been materialised, the distinct values of the join
    /// variable are pushed into the evaluation of the other input, where
    /// scans drop non-qualifying rows immediately. This is the run-time
    /// optimization Neumann et al. added to RDF-3X (the paper's §2 notes
    /// the extension); results are identical, intermediate results only
    /// shrink.
    pub sip: bool,
    /// Thread budget for the morsel-parallel kernels. `None` (the default)
    /// detects it via `available_parallelism` (or the `HSP_FORCE_THREADS`
    /// environment override — see [`crate::morsel::MorselConfig::auto`]);
    /// `Some(1)` forces sequential execution; `Some(n > 1)` forces a
    /// worker pool even on one core (results are identical either way —
    /// parallel kernels stitch their per-morsel outputs
    /// deterministically).
    pub threads: Option<usize>,
    /// Which evaluator runs the plan (pipeline by default; the
    /// operator-at-a-time oracle on request, or automatically for SIP /
    /// row-budget executions).
    pub strategy: ExecStrategy,
    /// Wall-clock deadline, measured from [`ExecConfig::context`]: past
    /// it, the next governor checkpoint surfaces
    /// [`ExecError::DeadlineExceeded`]. Latency is bounded by one morsel
    /// or breaker step, not by total plan work.
    pub timeout: Option<Duration>,
    /// Per-query memory budget in **bytes** of live materialised columns
    /// (see [`crate::govern`] for what is and isn't accounted); exceeding
    /// it surfaces [`ExecError::MemoryBudgetExceeded`] instead of an OOM
    /// abort.
    pub mem_budget: Option<usize>,
    /// A caller-held cancellation token; [`CancelToken::cancel`] from any
    /// thread converts the execution into [`ExecError::Cancelled`] at the
    /// next checkpoint.
    pub cancel: Option<Arc<CancelToken>>,
    /// Arm the `HSP_FAULT` fault-injection hook for this execution (only
    /// effective under `cfg(any(test, feature = "fault-inject"))`).
    pub inject_faults: bool,
    /// Override the rows-per-morsel of the parallel kernels (`None` keeps
    /// [`MorselConfig`](crate::morsel::MorselConfig)'s default). Serving
    /// sessions lower this so small interactive datasets still split into
    /// enough morsels to interleave on the shared pool.
    pub morsel_rows: Option<usize>,
    /// Override the rows threshold below which kernels stay sequential
    /// (`None` keeps the default).
    pub min_parallel_rows: Option<usize>,
}

impl ExecConfig {
    /// Unlimited execution.
    pub fn unlimited() -> Self {
        ExecConfig::default()
    }

    /// Execution with a row budget.
    pub fn with_row_budget(rows: usize) -> Self {
        ExecConfig {
            max_intermediate_rows: Some(rows),
            ..ExecConfig::default()
        }
    }

    /// Enable sideways information passing.
    pub fn with_sip(mut self) -> Self {
        self.sip = true;
        self
    }

    /// Force a thread budget for the parallel kernels.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Select the evaluator (see [`ExecStrategy`]).
    pub fn with_strategy(mut self, strategy: ExecStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Give the execution a wall-clock deadline.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Cap the live materialised bytes of the execution.
    pub fn with_mem_budget(mut self, bytes: usize) -> Self {
        self.mem_budget = Some(bytes);
        self
    }

    /// Attach a caller-held cancellation token.
    pub fn with_cancel_token(mut self, token: Arc<CancelToken>) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Arm the `HSP_FAULT` fault-injection hook (tests / CI only).
    pub fn with_fault_injection(mut self) -> Self {
        self.inject_faults = true;
        self
    }

    /// Override the rows-per-morsel of the parallel kernels.
    pub fn with_morsel_rows(mut self, rows: usize) -> Self {
        self.morsel_rows = Some(rows);
        self
    }

    /// Override the rows threshold below which kernels stay sequential.
    pub fn with_min_parallel_rows(mut self, rows: usize) -> Self {
        self.min_parallel_rows = Some(rows);
        self
    }

    /// The governor this configuration asks for, or `None` when the
    /// execution is unlimited (so ungoverned queries pay nothing). The
    /// deadline starts counting here.
    pub fn governor(&self) -> Option<QueryGovernor> {
        if self.timeout.is_none()
            && self.mem_budget.is_none()
            && self.cancel.is_none()
            && !self.inject_faults
        {
            return None;
        }
        let mut gov = QueryGovernor::new();
        if let Some(timeout) = self.timeout {
            gov = gov.with_deadline_in(timeout);
        }
        if let Some(bytes) = self.mem_budget {
            gov = gov.with_mem_budget(bytes);
        }
        if let Some(token) = &self.cancel {
            gov = gov.with_token(token.clone());
        }
        if self.inject_faults {
            gov = gov.with_fault_from_env();
        }
        Some(gov)
    }

    /// The execution context this configuration asks for — also used by
    /// evaluators outside this crate (e.g. the extended OPTIONAL/UNION
    /// evaluator) that drive individual operators rather than whole plans,
    /// so one thread budget (and one governor) governs every operator of a
    /// query.
    pub fn context(&self) -> ExecContext {
        let ctx = if self.morsel_rows.is_some() || self.min_parallel_rows.is_some() {
            let mut morsel = match self.threads {
                Some(n) => crate::morsel::MorselConfig::with_threads(n),
                None => crate::morsel::MorselConfig::auto(),
            };
            if let Some(rows) = self.morsel_rows {
                morsel = morsel.with_morsel_rows(rows);
            }
            if let Some(rows) = self.min_parallel_rows {
                morsel = morsel.with_min_parallel_rows(rows);
            }
            ExecContext::with_morsel_config(morsel)
        } else {
            match self.threads {
                Some(n) => ExecContext::with_threads(n),
                None => ExecContext::new(),
            }
        };
        match self.governor() {
            Some(gov) => ctx.with_governor(gov),
            None => ctx,
        }
    }
}

impl std::str::FromStr for ExecStrategy {
    type Err = String;

    /// Parse the CLI/server spelling of a strategy: `auto` (pipelines
    /// when possible) or `operator` / `operator-at-a-time` (the
    /// materialising oracle).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" | "pipeline" => Ok(ExecStrategy::Auto),
            "operator" | "operator-at-a-time" | "oaat" => Ok(ExecStrategy::OperatorAtATime),
            other => Err(format!("unknown strategy `{other}` (auto|operator)")),
        }
    }
}

/// The variable domains a SIP-enabled execution threads down the plan:
/// a scan output binding `v` may drop every row whose value is outside
/// `domains[v]`.
type Domains = HashMap<Var, Rc<HashSet<TermId>>>;

/// An execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The plan violated a structural invariant.
    InvalidPlan(PlanError),
    /// An operator exceeded [`ExecConfig::max_intermediate_rows`].
    BudgetExceeded {
        /// The operator that tripped the budget.
        operator: String,
        /// Rows it produced when aborted (the full output size).
        rows: usize,
        /// The configured budget.
        budget: usize,
    },
    /// The caller's [`CancelToken`] fired; the execution stopped at the
    /// next checkpoint with workers joined and buffers recycled.
    Cancelled,
    /// The [`ExecConfig::timeout`] deadline passed.
    DeadlineExceeded,
    /// Live materialised bytes exceeded [`ExecConfig::mem_budget`].
    MemoryBudgetExceeded {
        /// Bytes accounted when the budget tripped.
        used: usize,
        /// The configured budget in bytes.
        budget: usize,
        /// The materialisation site that tripped it.
        site: &'static str,
    },
    /// A morsel worker or breaker step panicked; the unwind was caught,
    /// the scoped pool joined cleanly, and the context remains usable.
    WorkerPanicked {
        /// The checkpoint site whose work panicked.
        site: &'static str,
    },
    /// An aggregate could not be evaluated — `SUM`/`AVG` over a value
    /// outside the numeric promotion ladder (IRI, plain string, …).
    Aggregate(AggError),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::InvalidPlan(e) => write!(f, "{e}"),
            ExecError::BudgetExceeded {
                operator,
                rows,
                budget,
            } => write!(
                f,
                "row budget exceeded: {operator} produced {rows} rows (budget {budget})"
            ),
            ExecError::Cancelled => write!(f, "{}", GovernorError::Cancelled),
            ExecError::DeadlineExceeded => write!(f, "{}", GovernorError::DeadlineExceeded),
            ExecError::MemoryBudgetExceeded { used, budget, site } => write!(
                f,
                "{}",
                GovernorError::MemoryBudgetExceeded {
                    used: *used,
                    budget: *budget,
                    site,
                }
            ),
            ExecError::WorkerPanicked { site } => {
                write!(f, "{}", GovernorError::WorkerPanicked { site })
            }
            ExecError::Aggregate(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<PlanError> for ExecError {
    fn from(e: PlanError) -> Self {
        ExecError::InvalidPlan(e)
    }
}

impl From<AggError> for ExecError {
    fn from(e: AggError) -> Self {
        ExecError::Aggregate(e)
    }
}

impl From<GovernorError> for ExecError {
    fn from(e: GovernorError) -> Self {
        match e {
            GovernorError::Cancelled => ExecError::Cancelled,
            GovernorError::DeadlineExceeded => ExecError::DeadlineExceeded,
            GovernorError::MemoryBudgetExceeded { used, budget, site } => {
                ExecError::MemoryBudgetExceeded { used, budget, site }
            }
            GovernorError::WorkerPanicked { site } => ExecError::WorkerPanicked { site },
        }
    }
}

/// Per-operator execution statistics, mirroring the plan tree.
///
/// This is the raw material for the paper's Figures 2–3 (plans annotated
/// with intermediate-result sizes) and Table 3 (plan costs computed from
/// those sizes).
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Operator label, e.g. `mergejoin(?a)` or `scan(pos) [tp2]`.
    pub label: String,
    /// Output cardinality.
    pub output_rows: usize,
    /// Wall-clock time spent in this operator alone (excluding children).
    pub nanos: u128,
    /// Child profiles (0 for scans, 1 for filter/project, 2 for joins).
    pub children: Vec<Profile>,
}

impl Profile {
    /// Total rows produced by all operators (a coarse memory-footprint
    /// measure the paper argues heuristics should minimise).
    pub fn total_intermediate_rows(&self) -> usize {
        self.output_rows
            + self
                .children
                .iter()
                .map(Profile::total_intermediate_rows)
                .sum::<usize>()
    }

    /// Walk the profile tree (pre-order).
    pub fn visit(&self, f: &mut impl FnMut(&Profile)) {
        f(self);
        for c in &self.children {
            c.visit(f);
        }
    }
}

/// The result of executing a plan.
#[derive(Debug, Clone)]
pub struct ExecOutput {
    /// The final binding table.
    pub table: BindingTable,
    /// Per-operator statistics.
    pub profile: Profile,
    /// Morsel/pool runtime counters for the whole execution.
    pub runtime: RuntimeMetrics,
    /// Snapshot of the computed-term overlay (aggregate outputs), indexed
    /// by `id -` [`COMPUTED_BASE`](crate::pool::COMPUTED_BASE). Empty for
    /// non-aggregate plans. Lets results outlive the [`ExecContext`] that
    /// interned them — resolve ids through [`ExecOutput::term`].
    pub computed: Vec<hsp_rdf::Term>,
}

impl ExecOutput {
    /// Resolve a result id to a term: dictionary ids through `ds`,
    /// computed (aggregate) ids through this execution's overlay snapshot.
    /// `None` for the unbound sentinel.
    pub fn term(&self, ds: &Dataset, id: TermId) -> Option<hsp_rdf::Term> {
        if id.is_unbound() {
            None
        } else if crate::pool::is_computed(id) {
            self.computed
                .get((id.0 - crate::pool::COMPUTED_BASE) as usize)
                .cloned()
        } else {
            Some(ds.dict().term(id).clone())
        }
    }
}

/// Validate and execute `plan` against `ds`.
pub fn execute(
    plan: &PhysicalPlan,
    ds: &Dataset,
    config: &ExecConfig,
) -> Result<ExecOutput, ExecError> {
    execute_in(plan, ds, config, &config.context())
}

/// [`execute`] inside a caller-owned [`ExecContext`]: the caller's buffer
/// pool serves (and receives) this execution's columns and the runtime
/// counters accumulate across executions — how the extended
/// (OPTIONAL/UNION) evaluator runs its per-block plans under one pool.
/// The reported [`ExecOutput::runtime`] snapshots the context's cumulative
/// counters at completion.
///
/// Under the default [`ExecStrategy::Auto`] the plan is lowered into
/// morsel-driven pipelines ([`crate::pipeline`]) and only breaker
/// boundaries materialise; SIP and row-budget executions (and
/// [`ExecStrategy::OperatorAtATime`]) take the operator-at-a-time tree
/// walk, which materialises every intermediate. Both paths produce
/// byte-identical tables and identical per-operator cardinalities.
pub fn execute_in(
    plan: &PhysicalPlan,
    ds: &Dataset,
    config: &ExecConfig,
    ctx: &ExecContext,
) -> Result<ExecOutput, ExecError> {
    plan.validate()?;
    let pipelined = config.strategy == ExecStrategy::Auto
        && !config.sip
        && config.max_intermediate_rows.is_none();
    let (table, profile) = if pipelined {
        crate::pipeline::lower(plan).run(ds, ctx)?
    } else {
        run(plan, ds, config, ctx, &Domains::new())?
    };
    Ok(ExecOutput {
        table,
        profile,
        runtime: RuntimeMetrics::of(ctx),
        computed: ctx.computed_overlay(),
    })
}

/// The profile label of a plan node — shared by the operator-at-a-time
/// evaluator and the pipeline executor so their [`Profile`] trees are
/// indistinguishable (the oracle appends `+sip` to scan labels itself).
pub(crate) fn plan_label(plan: &PhysicalPlan) -> String {
    match plan {
        PhysicalPlan::Scan {
            pattern_idx, order, ..
        } => format!("scan({}) [tp{pattern_idx}]", order.name()),
        PhysicalPlan::MergeJoin { var, .. } => format!("mergejoin({var})"),
        PhysicalPlan::HashJoin { vars, .. } => format!(
            "hashjoin({})",
            vars.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(",")
        ),
        PhysicalPlan::LeftOuterHashJoin { vars, .. } => format!(
            "leftouterjoin({})",
            vars.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(",")
        ),
        PhysicalPlan::CrossProduct { .. } => "crossproduct".into(),
        PhysicalPlan::Sort { var, .. } => format!("sort({var})"),
        PhysicalPlan::Filter { .. } => "filter".into(),
        PhysicalPlan::Project {
            projection,
            distinct,
            ..
        } => {
            let names: Vec<&str> = projection.iter().map(|(n, _)| n.as_str()).collect();
            if *distinct {
                format!("project-distinct({})", names.join(","))
            } else {
                format!("project({})", names.join(","))
            }
        }
        PhysicalPlan::HashAggregate {
            group_by,
            aggs,
            having,
            ..
        } => {
            let keys: Vec<String> = group_by.iter().map(|v| v.to_string()).collect();
            let specs: Vec<String> = aggs.iter().map(crate::aggregate::describe).collect();
            let mut label = format!("hashaggregate({}; {})", keys.join(","), specs.join(","));
            if having.is_some() {
                label.push_str("+having");
            }
            label
        }
        PhysicalPlan::OrderBy { keys, .. } => format!("orderby({} keys)", keys.len()),
        PhysicalPlan::Slice { offset, limit, .. } => match limit {
            Some(n) => format!("slice(offset={offset}, limit={n})"),
            None => format!("slice(offset={offset})"),
        },
    }
}

/// The distinct values of `vars` in `table`, merged (intersected) into a
/// copy of `domains` — what a SIP join passes into its second input.
fn narrowed(domains: &Domains, table: &BindingTable, vars: &[Var]) -> Domains {
    let mut out = domains.clone();
    for &v in vars {
        let values: HashSet<TermId> = table.column(v).iter().copied().collect();
        let merged = match out.get(&v) {
            Some(existing) => Rc::new(existing.intersection(&values).copied().collect()),
            None => Rc::new(values),
        };
        out.insert(v, merged);
    }
    out
}

fn run(
    plan: &PhysicalPlan,
    ds: &Dataset,
    config: &ExecConfig,
    ctx: &ExecContext,
    domains: &Domains,
) -> Result<(BindingTable, Profile), ExecError> {
    // The oracle's cooperative checkpoint: once per operator, before its
    // kernel runs (the recursion visits every node, so a cancellation or
    // deadline surfaces within one operator of being requested). Panic
    // isolation mirrors the morsel workers': a checkpoint panic (the
    // `panic@operator` injected fault) converts to `WorkerPanicked`
    // instead of unwinding through the recursion.
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ctx.checkpoint("operator"))) {
        Ok(result) => result?,
        Err(payload) => match ctx.governor() {
            Some(gov) => return Err(gov.note_panic("operator").into()),
            // invariant: checkpoints only run fault hooks (the sole panic
            // source here) when a governor is attached.
            None => std::panic::resume_unwind(payload),
        },
    }
    // Recycle an already-materialised sibling before propagating a child
    // error, so failed executions leave the pool balanced and the memory
    // accounting at zero.
    // invariant: the join arms below wrap the first child's table in
    // `Some` and only `take` it here on the error path — on success the
    // later `expect("… retained on success")` unwraps always hold.
    fn try_second(
        result: Result<(BindingTable, Profile), ExecError>,
        first: &mut Option<BindingTable>,
        ctx: &ExecContext,
    ) -> Result<(BindingTable, Profile), ExecError> {
        if result.is_err() {
            if let Some(t) = first.take() {
                ctx.recycle(t);
            }
        }
        result
    }
    match plan {
        PhysicalPlan::Scan { pattern, order, .. } => {
            let start = Instant::now();
            let mut table = ops::scan_in(ctx, ds, pattern, *order);
            let mut label = plan_label(plan);
            if config.sip && table.vars().iter().any(|v| domains.contains_key(v)) {
                let unfiltered = table;
                table = ops::domain_filter_in(ctx, &unfiltered, domains);
                // Plain pool recycle: `unfiltered` was never charged (only
                // `finish` charges), so there are no bytes to release.
                ctx.pool.recycle(unfiltered);
                label.push_str("+sip");
            }
            finish(table, label, start, Vec::new(), config, ctx)
        }
        PhysicalPlan::MergeJoin { left, right, var } => {
            let (lt, lp) = run(left, ds, config, ctx, domains)?;
            // SIP: the right side only needs rows whose join key occurs on
            // the (already materialised) left side.
            let mut lt = Some(lt);
            let right_result = if config.sip {
                let narrowed = narrowed(domains, lt.as_ref().expect("left just ran"), &[*var]);
                run(right, ds, config, ctx, &narrowed)
            } else {
                run(right, ds, config, ctx, domains)
            };
            let (rt, rp) = try_second(right_result, &mut lt, ctx)?;
            let lt = lt.expect("left retained on success");
            let start = Instant::now();
            let table = ops::merge_join_in(ctx, &lt, &rt, *var);
            ctx.recycle(lt);
            ctx.recycle(rt);
            finish(table, plan_label(plan), start, vec![lp, rp], config, ctx)
        }
        PhysicalPlan::HashJoin { left, right, vars } => {
            // Evaluate the build (right) side first so SIP can pass its
            // join-key domain into the probe side's subtree.
            let (rt, rp) = run(right, ds, config, ctx, domains)?;
            let mut rt = Some(rt);
            let left_result = if config.sip {
                let narrowed = narrowed(domains, rt.as_ref().expect("right just ran"), vars);
                run(left, ds, config, ctx, &narrowed)
            } else {
                run(left, ds, config, ctx, domains)
            };
            let (lt, lp) = try_second(left_result, &mut rt, ctx)?;
            let rt = rt.expect("right retained on success");
            let start = Instant::now();
            let table = ops::hash_join_in(ctx, &lt, &rt, vars);
            ctx.recycle(lt);
            ctx.recycle(rt);
            finish(table, plan_label(plan), start, vec![lp, rp], config, ctx)
        }
        PhysicalPlan::LeftOuterHashJoin { left, right, vars } => {
            // No SIP narrowing across an outer join: narrowing the probe
            // (left) side would drop rows that must survive, and narrowing
            // the build side would turn matched rows into UNBOUND-padded
            // ones — changing values, not just dropping rows. The right
            // subtree therefore runs domain-free; the left subtree may
            // still apply the ambient domains (a left row outside a domain
            // can never survive the enclosing inner join that produced it).
            let (rt, rp) = run(right, ds, config, ctx, &Domains::new())?;
            let mut rt = Some(rt);
            let left_result = run(left, ds, config, ctx, domains);
            let (lt, lp) = try_second(left_result, &mut rt, ctx)?;
            let rt = rt.expect("right retained on success");
            let start = Instant::now();
            let table = ops::left_outer_hash_join_in(ctx, &lt, &rt, vars);
            ctx.recycle(lt);
            ctx.recycle(rt);
            finish(table, plan_label(plan), start, vec![lp, rp], config, ctx)
        }
        PhysicalPlan::CrossProduct { left, right } => {
            let (lt, lp) = run(left, ds, config, ctx, domains)?;
            let mut lt = Some(lt);
            let right_result = run(right, ds, config, ctx, domains);
            let (rt, rp) = try_second(right_result, &mut lt, ctx)?;
            let lt = lt.expect("left retained on success");
            // Check the budgets *before* materialising the product: this is
            // the guard that makes Cartesian plans fail fast instead of
            // exhausting memory.
            let rows = lt.len().saturating_mul(rt.len());
            if let Some(budget) = config.max_intermediate_rows {
                if rows > budget {
                    ctx.recycle(lt);
                    ctx.recycle(rt);
                    return Err(ExecError::BudgetExceeded {
                        operator: "crossproduct".into(),
                        rows,
                        budget,
                    });
                }
            }
            let out_bytes = rows
                .saturating_mul(lt.vars().len() + rt.vars().len())
                .saturating_mul(std::mem::size_of::<TermId>());
            if let Err(e) = ctx.reserve_check(out_bytes, "crossproduct") {
                ctx.recycle(lt);
                ctx.recycle(rt);
                return Err(e.into());
            }
            let start = Instant::now();
            let table = ops::cross_product_in(ctx, &lt, &rt);
            ctx.recycle(lt);
            ctx.recycle(rt);
            finish(table, plan_label(plan), start, vec![lp, rp], config, ctx)
        }
        PhysicalPlan::Sort { input, var } => {
            let (it, ip) = run(input, ds, config, ctx, domains)?;
            let start = Instant::now();
            let table = ops::sort_by_in(ctx, &it, *var);
            ctx.recycle(it);
            finish(table, plan_label(plan), start, vec![ip], config, ctx)
        }
        PhysicalPlan::Filter { input, expr } => {
            let (it, ip) = run(input, ds, config, ctx, domains)?;
            let start = Instant::now();
            let table = ops::filter_in(ctx, ds, &it, expr);
            ctx.recycle(it);
            finish(table, plan_label(plan), start, vec![ip], config, ctx)
        }
        PhysicalPlan::Project {
            input,
            projection,
            distinct,
        } => {
            let (it, ip) = run(input, ds, config, ctx, domains)?;
            let start = Instant::now();
            let table = ops::project_in(ctx, &it, projection, *distinct);
            ctx.recycle(it);
            finish(table, plan_label(plan), start, vec![ip], config, ctx)
        }
        PhysicalPlan::HashAggregate {
            input,
            group_by,
            aggs,
            having,
        } => {
            let (it, ip) = run(input, ds, config, ctx, domains)?;
            let start = Instant::now();
            let result =
                crate::reference::hash_aggregate(ctx, ds, &it, group_by, aggs, having.as_ref());
            ctx.recycle(it);
            let table = result?;
            finish(table, plan_label(plan), start, vec![ip], config, ctx)
        }
        PhysicalPlan::OrderBy { input, keys } => {
            let (it, ip) = run(input, ds, config, ctx, domains)?;
            let start = Instant::now();
            let table = ops::order_by_in(ctx, ds, &it, keys);
            ctx.recycle(it);
            finish(table, plan_label(plan), start, vec![ip], config, ctx)
        }
        PhysicalPlan::Slice {
            input,
            offset,
            limit,
        } => {
            let (it, ip) = run(input, ds, config, ctx, domains)?;
            let start = Instant::now();
            let table = ops::slice_in(ctx, &it, *offset, *limit);
            ctx.recycle(it);
            finish(table, plan_label(plan), start, vec![ip], config, ctx)
        }
    }
}

fn finish(
    table: BindingTable,
    label: String,
    start: Instant,
    children: Vec<Profile>,
    config: &ExecConfig,
    ctx: &ExecContext,
) -> Result<(BindingTable, Profile), ExecError> {
    if let Some(budget) = config.max_intermediate_rows {
        if table.len() > budget {
            let rows = table.len();
            // Not yet charged against the memory budget: plain pool recycle.
            ctx.pool.recycle(table);
            return Err(ExecError::BudgetExceeded {
                operator: label,
                rows,
                budget,
            });
        }
    }
    // A kernel that bailed out early on `governor_poll` (the cross
    // product) returns an empty placeholder table — surface the trip and
    // drop the placeholder (its columns never came from the pool).
    if let Some(e) = ctx.governor().and_then(QueryGovernor::trip_error) {
        drop(table);
        return Err(e.into());
    }
    // Account the freshly materialised output; its matching release is the
    // `ctx.recycle` call of whichever parent operator consumes it.
    if let Err(e) = ctx.charge_table(&table, "operator") {
        ctx.recycle(table);
        return Err(e.into());
    }
    let profile = Profile {
        label,
        output_rows: table.len(),
        nanos: start.elapsed().as_nanos(),
        children,
    };
    Ok((table, profile))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsp_rdf::Term;
    use hsp_sparql::{TermOrVar, TriplePattern, Var};
    use hsp_store::Order;

    fn dataset() -> Dataset {
        Dataset::from_ntriples(
            r#"<http://e/a1> <http://e/p> <http://e/b1> .
<http://e/a1> <http://e/p> <http://e/b2> .
<http://e/a2> <http://e/p> <http://e/b1> .
<http://e/a1> <http://e/q> "5" .
<http://e/a2> <http://e/q> "7" .
<http://e/b1> <http://e/r> "x" .
"#,
        )
        .unwrap()
    }

    fn cv(name: &str) -> TermOrVar {
        TermOrVar::Const(Term::iri(format!("http://e/{name}")))
    }

    fn vv(i: u32) -> TermOrVar {
        TermOrVar::Var(Var(i))
    }

    fn scan(idx: usize, s: TermOrVar, p: TermOrVar, o: TermOrVar, order: Order) -> PhysicalPlan {
        PhysicalPlan::Scan {
            pattern_idx: idx,
            pattern: TriplePattern::new(s, p, o),
            order,
        }
    }

    #[test]
    fn executes_merge_join_plan_with_profile() {
        let ds = dataset();
        let plan = PhysicalPlan::MergeJoin {
            left: Box::new(scan(0, vv(0), cv("p"), vv(1), Order::Pso)),
            right: Box::new(scan(1, vv(0), cv("q"), vv(2), Order::Pso)),
            var: Var(0),
        };
        let out = execute(&plan, &ds, &ExecConfig::unlimited()).unwrap();
        assert_eq!(out.table.len(), 3);
        assert_eq!(out.profile.output_rows, 3);
        assert_eq!(out.profile.children.len(), 2);
        assert!(out.profile.label.starts_with("mergejoin"));
        assert_eq!(out.profile.children[0].output_rows, 3);
        assert_eq!(out.profile.children[1].output_rows, 2);
        assert_eq!(out.profile.total_intermediate_rows(), 3 + 3 + 2);
    }

    #[test]
    fn invalid_plan_is_rejected_before_running() {
        let ds = dataset();
        // Merge join whose right side is sorted by the wrong variable.
        let plan = PhysicalPlan::MergeJoin {
            left: Box::new(scan(0, vv(0), cv("p"), vv(1), Order::Pso)),
            right: Box::new(scan(1, vv(0), cv("q"), vv(2), Order::Pos)),
            var: Var(0),
        };
        let err = execute(&plan, &ds, &ExecConfig::unlimited()).unwrap_err();
        assert!(matches!(err, ExecError::InvalidPlan(_)));
    }

    #[test]
    fn budget_trips_on_cross_product_before_materialising() {
        let ds = dataset();
        let plan = PhysicalPlan::CrossProduct {
            left: Box::new(scan(0, vv(0), cv("p"), vv(1), Order::Pso)),
            right: Box::new(scan(1, vv(2), cv("q"), vv(3), Order::Pso)),
        };
        let err = execute(&plan, &ds, &ExecConfig::with_row_budget(5)).unwrap_err();
        match err {
            ExecError::BudgetExceeded { rows, budget, .. } => {
                assert_eq!(rows, 6);
                assert_eq!(budget, 5);
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn budget_allows_small_results() {
        let ds = dataset();
        let plan = scan(0, vv(0), cv("q"), vv(1), Order::Pso);
        let out = execute(&plan, &ds, &ExecConfig::with_row_budget(100)).unwrap();
        assert_eq!(out.table.len(), 2);
    }

    #[test]
    fn project_distinct_at_root() {
        let ds = dataset();
        let plan = PhysicalPlan::Project {
            input: Box::new(scan(0, vv(0), cv("p"), vv(1), Order::Pso)),
            projection: vec![("s".into(), Var(0))],
            distinct: true,
        };
        let out = execute(&plan, &ds, &ExecConfig::unlimited()).unwrap();
        assert_eq!(out.table.len(), 2);
        assert!(out.profile.label.contains("distinct"));
    }

    #[test]
    fn sip_reduces_intermediates_and_preserves_results() {
        // A selective filter on one side: the ?0 q-scan returns one row
        // ("5"), SIP pushes its subject into the p-scan.
        let ds = dataset();
        let plan = PhysicalPlan::HashJoin {
            left: Box::new(scan(0, vv(0), cv("p"), vv(1), Order::Pso)),
            right: Box::new(scan(
                1,
                vv(0),
                cv("q"),
                TermOrVar::Const(Term::literal("5")),
                Order::Pos,
            )),
            vars: vec![Var(0)],
        };
        let plain = execute(&plan, &ds, &ExecConfig::unlimited()).unwrap();
        let sip = execute(&plan, &ds, &ExecConfig::unlimited().with_sip()).unwrap();
        // Identical results…
        assert_eq!(sip.table.sorted_rows(), plain.table.sorted_rows());
        // …with strictly fewer intermediate rows (the a2 row never leaves
        // the probe scan), and the profile says SIP fired.
        assert!(
            sip.profile.total_intermediate_rows() < plain.profile.total_intermediate_rows(),
            "sip {} vs plain {}",
            sip.profile.total_intermediate_rows(),
            plain.profile.total_intermediate_rows()
        );
        let mut fired = false;
        sip.profile
            .visit(&mut |p| fired |= p.label.contains("+sip"));
        assert!(fired);
    }

    #[test]
    fn sip_on_merge_join_keeps_sortedness() {
        let ds = dataset();
        let plan = PhysicalPlan::MergeJoin {
            left: Box::new(scan(0, vv(0), cv("q"), vv(2), Order::Pso)),
            right: Box::new(scan(1, vv(0), cv("p"), vv(1), Order::Pso)),
            var: Var(0),
        };
        let plain = execute(&plan, &ds, &ExecConfig::unlimited()).unwrap();
        let sip = execute(&plan, &ds, &ExecConfig::unlimited().with_sip()).unwrap();
        assert_eq!(sip.table.sorted_rows(), plain.table.sorted_rows());
        assert!(sip.table.check_sortedness());
    }

    #[test]
    fn sip_noop_when_domains_irrelevant() {
        // A cross product shares no variables: SIP must change nothing.
        let ds = dataset();
        let plan = PhysicalPlan::CrossProduct {
            left: Box::new(scan(0, cv("a1"), cv("q"), vv(0), Order::Spo)),
            right: Box::new(scan(1, cv("b1"), cv("r"), vv(1), Order::Spo)),
        };
        let plain = execute(&plan, &ds, &ExecConfig::unlimited()).unwrap();
        let sip = execute(&plan, &ds, &ExecConfig::unlimited().with_sip()).unwrap();
        assert_eq!(sip.table.sorted_rows(), plain.table.sorted_rows());
        assert_eq!(
            sip.profile.total_intermediate_rows(),
            plain.profile.total_intermediate_rows()
        );
    }

    #[test]
    fn forced_threads_give_identical_results_and_report_runtime() {
        let ds = dataset();
        let plan = PhysicalPlan::HashJoin {
            left: Box::new(scan(0, vv(0), cv("p"), vv(1), Order::Pso)),
            right: Box::new(scan(1, vv(0), cv("q"), vv(2), Order::Pso)),
            vars: vec![Var(0)],
        };
        let sequential = execute(&plan, &ds, &ExecConfig::unlimited().with_threads(1)).unwrap();
        let parallel = execute(&plan, &ds, &ExecConfig::unlimited().with_threads(3)).unwrap();
        assert_eq!(parallel.table, sequential.table);
        assert_eq!(sequential.runtime.threads, 1);
        assert_eq!(parallel.runtime.threads, 3);
        // This input is far below the morsel threshold, so even the forced
        // budget runs sequentially — but the pool still recycles the two
        // scan intermediates into the join's output columns.
        assert!(sequential.runtime.pool_recycled > 0);
        assert!(sequential.runtime.pool_misses > 0);
    }

    #[test]
    fn pool_recycling_preserves_results_across_a_deep_plan() {
        // project(filter(join(scan, scan))): every operator consumes its
        // child, so the pool sees several recycle/checkout cycles.
        use hsp_sparql::{CmpOp, FilterExpr, Operand};
        let ds = dataset();
        let plan = PhysicalPlan::Project {
            input: Box::new(PhysicalPlan::Filter {
                input: Box::new(PhysicalPlan::MergeJoin {
                    left: Box::new(scan(0, vv(0), cv("p"), vv(1), Order::Pso)),
                    right: Box::new(scan(1, vv(0), cv("q"), vv(2), Order::Pso)),
                    var: Var(0),
                }),
                expr: FilterExpr::Cmp {
                    op: CmpOp::Gt,
                    lhs: Operand::Var(Var(2)),
                    rhs: Operand::Const(Term::literal("4")),
                },
            }),
            projection: vec![("s".into(), Var(0)), ("o".into(), Var(1))],
            distinct: false,
        };
        let out = execute(&plan, &ds, &ExecConfig::unlimited()).unwrap();
        assert_eq!(out.table.len(), 3);
        assert!(
            out.runtime.pool_hits > 0,
            "deep plan should hit the pool: {:?}",
            out.runtime
        );
    }

    #[test]
    fn filter_node_runs() {
        use hsp_sparql::{CmpOp, FilterExpr, Operand};
        let ds = dataset();
        let plan = PhysicalPlan::Filter {
            input: Box::new(scan(0, vv(0), cv("q"), vv(1), Order::Pso)),
            expr: FilterExpr::Cmp {
                op: CmpOp::Lt,
                lhs: Operand::Var(Var(1)),
                rhs: Operand::Const(Term::literal("6")),
            },
        };
        let out = execute(&plan, &ds, &ExecConfig::unlimited()).unwrap();
        assert_eq!(out.table.len(), 1);
    }
}
