//! Morsel-driven parallelism for the vectorized kernels.
//!
//! Following Leis et al.'s morsel-driven execution model, a kernel's input
//! index range is cut into fixed-size **morsels** (~32k rows). A scoped
//! worker pool pulls morsels from a shared atomic cursor — so a slow morsel
//! (one probe row with a huge match fan-out, say) never stalls the other
//! workers — and every worker emits into its own thread-local buffer. The
//! per-morsel results are then stitched back together *in morsel order*,
//! which makes the parallel output byte-identical to the sequential one:
//! a morsel's rows are produced in probe order within the morsel, and the
//! morsels tile the input range in order.
//!
//! Parallelism is gated the same way the six-order store build gates it:
//! the input must clear a row threshold (below it, thread spawns cost more
//! than they save) and the machine must report more than one core via
//! [`std::thread::available_parallelism`]. Both gates can be overridden
//! with a forced thread count, which is how the single-core CI container
//! still exercises the parallel path in unit tests.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::govern::{GovernorError, QueryGovernor};

/// Rows per morsel. Large enough that the per-morsel bookkeeping (one
/// atomic fetch-add, one mutex lock to park the result) is noise; small
/// enough that a skewed morsel cannot dominate the schedule.
pub const DEFAULT_MORSEL_ROWS: usize = 32 * 1024;

/// Below this many input rows a kernel stays sequential: the work fits in
/// cache and thread spawns would dominate. Matches the spirit of the store
/// build's `PARALLEL_THRESHOLD`.
pub const DEFAULT_MIN_PARALLEL_ROWS: usize = 32 * 1024;

/// Morsel size under the `HSP_FORCE_THREADS` override: small enough that
/// even unit-test-sized inputs split across several workers.
pub const FORCED_ENV_MORSEL_ROWS: usize = 256;

/// How a kernel splits work: thread budget, morsel size, and the row
/// threshold under which it stays sequential.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MorselConfig {
    threads: usize,
    morsel_rows: usize,
    min_parallel_rows: usize,
}

impl MorselConfig {
    /// Thread budget from [`std::thread::available_parallelism`] — the
    /// production configuration.
    ///
    /// The `HSP_FORCE_THREADS` environment variable overrides core
    /// detection, drops the row threshold to zero, **and** shrinks
    /// morsels to [`FORCED_ENV_MORSEL_ROWS`], so every kernel takes its
    /// parallel path even on unit-test-sized inputs (the worker count is
    /// capped at one worker per morsel, so forcing the threshold alone
    /// would leave sub-morsel inputs sequential). This is the CI knob
    /// that exercises the morsel pool on small runners (parallel output
    /// is byte-identical to sequential by construction, so forcing it
    /// globally is always safe — just slower on tiny inputs).
    pub fn auto() -> Self {
        if let Some(forced) = parse_forced_threads(std::env::var("HSP_FORCE_THREADS").ok()) {
            return MorselConfig::with_threads(forced)
                .with_min_parallel_rows(0)
                .with_morsel_rows(FORCED_ENV_MORSEL_ROWS);
        }
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        MorselConfig::with_threads(threads)
    }

    /// Always sequential (a one-thread budget).
    pub fn sequential() -> Self {
        MorselConfig::with_threads(1)
    }

    /// A forced thread count, bypassing core detection (used by tests and
    /// benchmarks on single-core machines). The row threshold still
    /// applies; lower it with [`MorselConfig::with_min_parallel_rows`] to
    /// force-parallelize tiny inputs.
    pub fn with_threads(threads: usize) -> Self {
        MorselConfig {
            threads: threads.max(1),
            morsel_rows: DEFAULT_MORSEL_ROWS,
            min_parallel_rows: DEFAULT_MIN_PARALLEL_ROWS,
        }
    }

    /// Override the morsel size (clamped to ≥ 1).
    pub fn with_morsel_rows(mut self, rows: usize) -> Self {
        self.morsel_rows = rows.max(1);
        self
    }

    /// Override the sequential-below threshold.
    pub fn with_min_parallel_rows(mut self, rows: usize) -> Self {
        self.min_parallel_rows = rows;
        self
    }

    /// The configured thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Rows per morsel.
    pub fn morsel_rows(&self) -> usize {
        self.morsel_rows
    }

    /// Worker count for an input of `rows`: 1 when the input is under the
    /// threshold or the budget is one thread, otherwise at most one worker
    /// per morsel.
    pub fn workers_for(&self, rows: usize) -> usize {
        if rows < self.min_parallel_rows {
            return 1;
        }
        self.threads.min(rows.div_ceil(self.morsel_rows)).max(1)
    }
}

impl Default for MorselConfig {
    /// The production default: [`MorselConfig::auto`].
    fn default() -> Self {
        MorselConfig::auto()
    }
}

/// Parse the `HSP_FORCE_THREADS` value (factored out of [`MorselConfig::auto`]
/// so it is testable without mutating process-global environment state).
/// `0`, negative, overflowing, and non-numeric values all return `None`,
/// so [`MorselConfig::auto`] falls back to core detection instead of
/// configuring a zero-worker pool.
fn parse_forced_threads(value: Option<String>) -> Option<usize> {
    value?.trim().parse().ok().filter(|&n: &usize| n >= 1)
}

/// What one [`run_morsels`] call did — feeds the engine's runtime counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MorselRun {
    /// Number of morsels the range was cut into (0 when run sequentially
    /// as one undivided range).
    pub morsels: usize,
    /// Worker threads used (1 = sequential).
    pub threads: usize,
}

/// Cut `0..rows` into morsels, run `worker` over every morsel on a scoped
/// worker pool, and return the per-morsel results **in morsel order**
/// (deterministic regardless of scheduling). Falls back to a single
/// sequential `worker(0..rows)` call when [`MorselConfig::workers_for`]
/// says parallelism cannot win.
pub fn run_morsels<T: Send>(
    rows: usize,
    config: &MorselConfig,
    worker: impl Fn(Range<usize>) -> T + Sync,
) -> (Vec<T>, MorselRun) {
    let threads = config.workers_for(rows);
    if threads <= 1 {
        return (
            vec![worker(0..rows)],
            MorselRun {
                morsels: 0,
                threads: 1,
            },
        );
    }
    // A morsel run is a task run whose task `m` is the m-th morsel range
    // (`workers_for` already capped `threads` at the morsel count).
    let morsel_rows = config.morsel_rows;
    let morsels = rows.div_ceil(morsel_rows);
    let (results, _) = run_tasks(morsels, threads, |m| {
        let start = m * morsel_rows;
        worker(start..(start + morsel_rows).min(rows))
    });
    (results, MorselRun { morsels, threads })
}

/// Run `count` independent tasks on a scoped worker pool of at most
/// `threads` workers (an atomic cursor hands out task indices, so a slow
/// task never stalls the others) and return the results **in task order**.
/// With one worker — or one task — everything runs inline on the caller's
/// thread.
///
/// This is the one scheduling loop of the module: [`run_morsels`]
/// delegates here with one task per morsel, [`fill_stripes`] with one
/// task per stripe, and *partitioned* work — the range-partitioned merge
/// join, the partitioned counting sort of the parallel hash-join build,
/// whose per-task ranges are data-dependent and non-uniform — calls it
/// directly.
///
/// When the calling thread has a [`SharedPool`] installed (the serving
/// path — see [`SharedPool::install`]), the tasks are dispatched to that
/// long-lived pool instead of spawning scoped threads; results and their
/// order are identical either way.
pub fn run_tasks<T: Send>(
    count: usize,
    threads: usize,
    task: impl Fn(usize) -> T + Sync,
) -> (Vec<T>, MorselRun) {
    let threads = threads.min(count).max(1);
    if threads <= 1 {
        return (
            (0..count).map(&task).collect(),
            MorselRun {
                morsels: 0,
                threads: 1,
            },
        );
    }
    if let Some(result) = shared_pool_run(count, None, "worker", &task) {
        // invariant: an ungoverned shared-pool run cannot trip a governor
        // (a panicking task re-panics on the submitter instead).
        return result.expect("ungoverned shared-pool run cannot trip");
    }
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let t = cursor.fetch_add(1, Ordering::Relaxed);
                if t >= count {
                    break;
                }
                let result = task(t);
                // Poison-tolerant: the lock only guards the slot store, and
                // a panic on a sibling worker must not cascade here.
                *slots[t]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(result);
            });
        }
    });
    let results = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                // invariant: the scope joined, so every index the cursor
                // handed out has stored its result.
                .expect("every task produced a result")
        })
        .collect();
    (
        results,
        MorselRun {
            morsels: count,
            threads,
        },
    )
}

/// [`run_tasks`] under a [`QueryGovernor`]: every task claim is a
/// cooperative checkpoint for `site`, and each task body runs under
/// [`catch_unwind`] so a panicking kernel trips the governor instead of
/// unwinding through [`std::thread::scope`]. On a trip the remaining
/// tasks are never claimed, the workers drain, the scoped pool joins
/// cleanly, and the partial per-task results are dropped. With no
/// governor this *is* [`run_tasks`] — zero overhead on the ungoverned
/// path.
pub(crate) fn try_run_tasks<T: Send>(
    count: usize,
    threads: usize,
    gov: Option<&QueryGovernor>,
    site: &'static str,
    task: impl Fn(usize) -> T + Sync,
) -> Result<(Vec<T>, MorselRun), GovernorError> {
    let Some(gov) = gov else {
        return Ok(run_tasks(count, threads, task));
    };
    let threads = threads.min(count).max(1);
    if threads <= 1 {
        let mut results = Vec::with_capacity(count);
        for t in 0..count {
            // The checkpoint runs inside the unwind guard too: an injected
            // `panic@site` fault is indistinguishable from a kernel panic.
            match catch_unwind(AssertUnwindSafe(|| -> Result<T, GovernorError> {
                gov.check(site)?;
                Ok(task(t))
            })) {
                Ok(Ok(result)) => results.push(result),
                Ok(Err(e)) => return Err(e),
                Err(_) => return Err(gov.note_panic(site)),
            }
        }
        return Ok((
            results,
            MorselRun {
                morsels: 0,
                threads: 1,
            },
        ));
    }
    if let Some(result) = shared_pool_run(count, Some(gov), site, &task) {
        return result;
    }
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // One unwind guard around the whole claim loop: a panic in
                // `task` (or an injected fault in `check`) lands here, trips
                // the governor, and the *other* workers stop claiming at
                // their next checkpoint.
                let worker = || loop {
                    if gov.check(site).is_err() {
                        break;
                    }
                    let t = cursor.fetch_add(1, Ordering::Relaxed);
                    if t >= count {
                        break;
                    }
                    let result = task(t);
                    *slots[t]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(result);
                };
                if catch_unwind(AssertUnwindSafe(worker)).is_err() {
                    gov.note_panic(site);
                }
            });
        }
    });
    if let Some(e) = gov.trip_error() {
        return Err(e);
    }
    // invariant: no trip means every task index was claimed and its worker
    // reached the slot store (the only early exits trip the governor).
    let results = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("every task produced a result")
        })
        .collect();
    Ok((
        results,
        MorselRun {
            morsels: count,
            threads,
        },
    ))
}

/// [`run_morsels`] under a [`QueryGovernor`] (see [`try_run_tasks`]).
/// The governed *sequential* path still cuts the input into morsels —
/// instead of one undivided `worker(0..rows)` call — so deadline and
/// cancellation latency stay bounded by one morsel even on a one-thread
/// budget. Callers must therefore be prepared to stitch multiple parts
/// on any governed run.
pub(crate) fn try_run_morsels<T: Send>(
    rows: usize,
    config: &MorselConfig,
    gov: Option<&QueryGovernor>,
    site: &'static str,
    worker: impl Fn(Range<usize>) -> T + Sync,
) -> Result<(Vec<T>, MorselRun), GovernorError> {
    let Some(gov) = gov else {
        return Ok(run_morsels(rows, config, worker));
    };
    let threads = config.workers_for(rows);
    let morsel_rows = config.morsel_rows;
    // At least one (possibly empty) morsel, mirroring the ungoverned
    // sequential path's unconditional `worker(0..rows)` call.
    let morsels = rows.div_ceil(morsel_rows).max(1);
    let (results, _) = try_run_tasks(morsels, threads, Some(gov), site, |m| {
        let start = m * morsel_rows;
        worker(start..(start + morsel_rows).min(rows))
    })?;
    Ok((
        results,
        MorselRun {
            morsels: if threads > 1 { morsels } else { 0 },
            threads: threads.max(1),
        },
    ))
}

/// The governed sequential morsel loop for workers that are not `Sync`
/// (the pipeline's main-thread path borrows the single-threaded buffer
/// pool and a `RefCell`-cached evaluator). Identical semantics to
/// [`try_run_morsels`] on one thread: morsel-granular checkpoints, each
/// morsel under [`catch_unwind`].
pub(crate) fn try_run_morsels_seq<T>(
    rows: usize,
    config: &MorselConfig,
    gov: &QueryGovernor,
    site: &'static str,
    worker: impl Fn(Range<usize>) -> T,
) -> Result<(Vec<T>, MorselRun), GovernorError> {
    let morsel_rows = config.morsel_rows;
    let morsels = rows.div_ceil(morsel_rows).max(1);
    let mut results = Vec::with_capacity(morsels);
    for m in 0..morsels {
        let start = m * morsel_rows;
        match catch_unwind(AssertUnwindSafe(|| -> Result<T, GovernorError> {
            gov.check(site)?;
            Ok(worker(start..(start + morsel_rows).min(rows)))
        })) {
            Ok(Ok(result)) => results.push(result),
            Ok(Err(e)) => return Err(e),
            Err(_) => return Err(gov.note_panic(site)),
        }
    }
    Ok((
        results,
        MorselRun {
            morsels: 0,
            threads: 1,
        },
    ))
}

/// Fill `out` by applying `fill(offset, chunk)` to contiguous stripes, in
/// parallel when the config allows it — the shape of the scan fast path's
/// column gather, where the output length is known up front. Each worker
/// owns a disjoint stripe of roughly `len / workers` rows (rounded up to
/// whole morsels), so the result is position-deterministic by
/// construction.
/// A claim-once slot transferring one output stripe — `(offset, chunk)` —
/// into the task that takes it.
type StripeSlot<'a, T> = Mutex<Option<(usize, &'a mut [T])>>;

pub fn fill_stripes<T: Send>(
    out: &mut [T],
    config: &MorselConfig,
    fill: impl Fn(usize, &mut [T]) + Sync,
) -> MorselRun {
    let rows = out.len();
    let threads = config.workers_for(rows);
    if threads <= 1 {
        fill(0, out);
        return MorselRun {
            morsels: 0,
            threads: 1,
        };
    }
    // Stripe size: whole morsels, spread across the worker budget.
    let stripe = stripe_rows(rows, threads, config.morsel_rows);
    let mut stripes: Vec<StripeSlot<'_, T>> = Vec::new();
    let mut rest = out;
    let mut offset = 0;
    while !rest.is_empty() {
        let take = stripe.min(rest.len());
        let (head, tail) = rest.split_at_mut(take);
        stripes.push(Mutex::new(Some((offset, head))));
        offset += take;
        rest = tail;
    }
    let count = stripes.len();
    // One task per stripe through the common scheduling loop — so striped
    // fills dispatch to the shared pool on the serving path too. Slots
    // only transfer stripe ownership *into* the tasks; each task index
    // maps to a distinct slot, claimed exactly once.
    let (_, run) = run_tasks(count, threads, |s| {
        let (offset, chunk) = stripes[s]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
            .expect("each stripe is claimed exactly once");
        fill(offset, chunk);
    });
    MorselRun {
        morsels: count,
        threads: run.threads,
    }
}

/// Stable parallel merge sort: cut `items` into contiguous per-worker
/// runs, sort each run on the task pool, then merge the runs pairwise —
/// each merge round runs its pairs as parallel tasks — until one run
/// remains. Ties keep input order (a run is a contiguous input range,
/// runs merge in range order, and the pairwise merge takes from the
/// earlier run on equal elements), so the result is element-for-element
/// identical to a sequential stable `sort_by`. Below the config's
/// parallel threshold (or on a one-thread budget) this *is* a sequential
/// stable sort.
///
/// This is the comparison-sort counterpart of the partition-stitch
/// kernels: the serial stage the ORDER BY / sort-enforcer path was left
/// with after its key extraction went morsel-parallel.
pub fn merge_sort<T: Send>(
    items: Vec<T>,
    config: &MorselConfig,
    cmp: impl Fn(&T, &T) -> std::cmp::Ordering + Sync,
) -> (Vec<T>, MorselRun) {
    let workers = config.workers_for(items.len());
    if workers <= 1 {
        let mut items = items;
        items.sort_by(&cmp);
        return (
            items,
            MorselRun {
                morsels: 0,
                threads: 1,
            },
        );
    }

    // Per-worker sorted runs over contiguous, morsel-aligned stripes.
    let ranges = stripe_ranges(items.len(), workers, config.morsel_rows());
    let initial_runs = ranges.len();
    let mut source = items;
    let mut runs: Vec<Vec<T>> = Vec::with_capacity(initial_runs);
    // Carve the input into owned runs back-to-front (split_off keeps the
    // prefix in place, so ranges pop off the tail in reverse).
    for range in ranges.iter().rev() {
        let run = source.split_off(range.start);
        runs.push(run);
    }
    runs.reverse();
    // Slots only transfer run ownership *into* the tasks; sorted/merged
    // runs come back as `run_tasks` return values, already in task order.
    let take = |slots: &[Mutex<Option<Vec<T>>>], i: usize| -> Vec<T> {
        slots[i]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
            // invariant: each slot is filled once above and taken once —
            // every task index maps to a distinct slot.
            .expect("run present")
    };
    let slots: Vec<Mutex<Option<Vec<T>>>> = runs.into_iter().map(|r| Mutex::new(Some(r))).collect();
    let (mut runs, sort_run) = run_tasks(slots.len(), workers, |s| {
        let mut run = take(&slots, s);
        run.sort_by(&cmp);
        run
    });
    let mut threads = sort_run.threads;

    // Merge rounds: adjacent runs pair up (preserving range order); an odd
    // trailing run carries into the next round unmerged.
    while runs.len() > 1 {
        let pairs = runs.len() / 2;
        let leftover = if runs.len() % 2 == 1 {
            runs.pop()
        } else {
            None
        };
        let slots: Vec<Mutex<Option<Vec<T>>>> =
            runs.into_iter().map(|r| Mutex::new(Some(r))).collect();
        let (merged, merge_run) = run_tasks(pairs, workers, |p| {
            merge_two(take(&slots, 2 * p), take(&slots, 2 * p + 1), &cmp)
        });
        threads = threads.max(merge_run.threads);
        runs = merged;
        runs.extend(leftover);
    }
    (
        runs.pop().unwrap_or_default(),
        MorselRun {
            morsels: initial_runs,
            threads,
        },
    )
}

/// Merge two sorted runs, taking from `a` (the earlier input range) on
/// ties — the stability invariant of [`merge_sort`].
fn merge_two<T>(a: Vec<T>, b: Vec<T>, cmp: &impl Fn(&T, &T) -> std::cmp::Ordering) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut bi = b.into_iter().peekable();
    for x in a {
        while let Some(y) = bi.peek() {
            if cmp(y, &x) == std::cmp::Ordering::Less {
                // invariant: `peek` just returned `Some`.
                out.push(bi.next().expect("peeked"));
            } else {
                break;
            }
        }
        out.push(x);
    }
    out.extend(bi);
    out
}

/// Rows per stripe when `rows` are spread over `workers` contiguous
/// stripes: whole morsels, rounded up, at least one morsel.
fn stripe_rows(rows: usize, workers: usize, morsel_rows: usize) -> usize {
    rows.div_ceil(workers).div_ceil(morsel_rows).max(1) * morsel_rows
}

/// Cut `0..rows` into at most `workers` contiguous, morsel-aligned stripes
/// (the [`fill_stripes`] decomposition, exposed for two-pass kernels that
/// must visit the *same* stripes twice — the parallel hash-join build's
/// histogram and scatter passes).
pub fn stripe_ranges(rows: usize, workers: usize, morsel_rows: usize) -> Vec<Range<usize>> {
    if rows == 0 {
        return Vec::new();
    }
    let stripe = stripe_rows(rows, workers.max(1), morsel_rows.max(1));
    let mut ranges = Vec::new();
    let mut start = 0;
    while start < rows {
        let end = (start + stripe).min(rows);
        ranges.push(start..end);
        start = end;
    }
    ranges
}

// ---------------------------------------------------------------------------
// The shared, long-lived morsel pool — the serving path's scheduler.
//
// One process-wide pool serves *many concurrent queries*: each parallel
// kernel invocation becomes a tagged **batch** of tasks on a round-robin
// queue, and the pool's workers interleave claims across batches — so a
// long scan of one query never starves the morsels of another (Leis et
// al.'s elasticity argument). The submitting thread installs the pool in
// thread-local storage ([`SharedPool::install`]); [`run_tasks`] and its
// governed twin consult that TLS and dispatch there instead of spawning
// scoped threads. Pool workers carry no TLS installation themselves, so
// a nested parallel kernel inside a task safely falls back to the scoped
// path.
// ---------------------------------------------------------------------------

/// Snapshot of a [`SharedPool`]'s lifetime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads the pool was built with.
    pub threads: usize,
    /// Task batches (one per parallel kernel invocation) dispatched.
    pub batches: u64,
    /// Individual tasks (morsels / partitions / stripes) dispatched.
    pub tasks: u64,
    /// Times a worker's consecutive claims came from *different* queries
    /// — direct evidence of cross-query morsel scheduling on one pool.
    pub cross_query_switches: u64,
}

/// Lifetime-erased pointer to a batch's task closure.
///
/// Safety contract (upheld by [`SharedPool::run_erased`]): the submitter
/// does not return until every claimed task index has completed, and an
/// exhausted cursor means later claims never dereference the pointer —
/// so the pointee outlives every dereference.
struct TaskRef(*const (dyn Fn(usize) + Sync + 'static));

// SAFETY: the pointee is `Sync` (concurrent `&`-calls from many workers
// are fine) and `run_erased` keeps it alive for the batch's whole
// lifetime, so handing the pointer to pool workers is safe.
unsafe impl Send for TaskRef {}
unsafe impl Sync for TaskRef {}

/// One parallel kernel invocation queued on the shared pool: `count`
/// independent tasks claimed through an atomic cursor, tagged with the
/// owning query.
struct Batch {
    /// The submitting query (from [`SharedPool::install`]) — only used
    /// to count cross-query switches.
    tag: u64,
    task: TaskRef,
    count: usize,
    cursor: AtomicUsize,
    completed: AtomicUsize,
    panicked: AtomicBool,
    done: Mutex<bool>,
    done_cv: Condvar,
}

impl Batch {
    /// Claim the next unclaimed task index, if any.
    fn claim(&self) -> Option<usize> {
        // Opportunistic read first, so an exhausted batch parked in the
        // queue does not grow its cursor unboundedly while it waits to
        // be dropped.
        if self.exhausted() {
            return None;
        }
        let t = self.cursor.fetch_add(1, Ordering::Relaxed);
        (t < self.count).then_some(t)
    }

    /// Execute a claimed task index and account its completion.
    fn run_claimed(&self, t: usize) {
        // SAFETY: `t` came from `claim`, so the submitter is still parked
        // in `run_erased` and the closure behind the pointer is alive.
        let task = unsafe { &*self.task.0 };
        if catch_unwind(AssertUnwindSafe(|| task(t))).is_err() {
            self.panicked.store(true, Ordering::Release);
        }
        if self.completed.fetch_add(1, Ordering::AcqRel) + 1 == self.count {
            *self
                .done
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = true;
            self.done_cv.notify_all();
        }
    }

    fn exhausted(&self) -> bool {
        self.cursor.load(Ordering::Relaxed) >= self.count
    }
}

struct PoolInner {
    /// Round-robin batch queue: a worker pops the front batch, rotates it
    /// to the back, and claims ONE task — so concurrent queries make
    /// interleaved progress instead of running back-to-back.
    queue: Mutex<VecDeque<Arc<Batch>>>,
    available: Condvar,
    shutdown: AtomicBool,
    threads: usize,
    batches: AtomicU64,
    tasks: AtomicU64,
    cross_query_switches: AtomicU64,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

fn worker_loop(inner: &PoolInner) {
    let mut last_tag: Option<u64> = None;
    loop {
        let batch = {
            let mut queue = inner
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                // Drop fully-claimed batches as they surface (completion
                // is the submitter's business, not the queue's).
                while queue.front().is_some_and(|b| b.exhausted()) {
                    queue.pop_front();
                }
                if let Some(front) = queue.pop_front() {
                    queue.push_back(Arc::clone(&front));
                    break front;
                }
                queue = inner
                    .available
                    .wait(queue)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        if let Some(t) = batch.claim() {
            if last_tag != Some(batch.tag) {
                if last_tag.is_some() {
                    inner.cross_query_switches.fetch_add(1, Ordering::Relaxed);
                }
                last_tag = Some(batch.tag);
            }
            batch.run_claimed(t);
        }
    }
}

/// A shared, long-lived morsel worker pool (cheaply clonable handle).
///
/// Create once per server/session, [`SharedPool::install`] per query on
/// the thread that drives the query, and every parallel kernel of that
/// query schedules its morsels here. Call [`SharedPool::shutdown`] to
/// join the workers; a pool that is never shut down parks its workers on
/// a condvar until process exit. Submissions to a shut-down pool are
/// refused, and the caller falls back to scoped threads.
#[derive(Clone)]
pub struct SharedPool {
    inner: Arc<PoolInner>,
}

impl std::fmt::Debug for SharedPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedPool")
            .field("threads", &self.inner.threads)
            .field("stats", &self.stats())
            .finish()
    }
}

impl SharedPool {
    /// Spawn a pool of `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let inner = Arc::new(PoolInner {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            threads,
            batches: AtomicU64::new(0),
            tasks: AtomicU64::new(0),
            cross_query_switches: AtomicU64::new(0),
            workers: Mutex::new(Vec::new()),
        });
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let worker_inner = Arc::clone(&inner);
            let handle = std::thread::Builder::new()
                .name(format!("hsp-pool-{i}"))
                .spawn(move || worker_loop(&worker_inner))
                .expect("spawn shared-pool worker");
            workers.push(handle);
        }
        *inner
            .workers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = workers;
        SharedPool { inner }
    }

    /// The worker-thread count the pool was built with.
    pub fn threads(&self) -> usize {
        self.inner.threads
    }

    /// Lifetime counters (batches, tasks, cross-query switches).
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            threads: self.inner.threads,
            batches: self.inner.batches.load(Ordering::Relaxed),
            tasks: self.inner.tasks.load(Ordering::Relaxed),
            cross_query_switches: self.inner.cross_query_switches.load(Ordering::Relaxed),
        }
    }

    /// Refuse new batches and join the workers (idempotent). In-flight
    /// batches still complete: their submitters help on their own batch
    /// until the cursor is exhausted, whether or not any worker remains.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.available.notify_all();
        let workers = std::mem::take(
            &mut *self
                .inner
                .workers
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for handle in workers {
            let _ = handle.join();
        }
    }

    /// Install this pool on the calling thread for the duration of the
    /// returned guard: every [`run_tasks`]-family call on this thread
    /// with parallel work dispatches to the pool, tagged with `tag` (one
    /// distinct tag per query). Nested installs stack; the guard restores
    /// the previous installation on drop and reports how many batches the
    /// query dispatched ([`SharedPoolGuard::batches`]).
    pub fn install(&self, tag: u64) -> SharedPoolGuard {
        let batches = Rc::new(Cell::new(0));
        let installed = Installed {
            pool: self.clone(),
            tag,
            batches: Rc::clone(&batches),
        };
        let prev = INSTALLED.with(|slot| slot.borrow_mut().replace(installed));
        SharedPoolGuard {
            prev,
            batches,
            _single_thread: std::marker::PhantomData,
        }
    }

    /// Enqueue a lifetime-erased batch, help on it exclusively until its
    /// cursor is exhausted, then wait for straggling workers. Returns
    /// `None` if the pool is shut down (caller falls back to scoped
    /// threads), otherwise whether any task panicked.
    ///
    /// Because the submitter helps on its *own* batch, a saturated — or
    /// even concurrently shut-down — pool can never deadlock a request:
    /// worst case the submitter runs the whole batch itself, exactly like
    /// the scoped path on one thread.
    fn run_erased(&self, tag: u64, count: usize, task: &(dyn Fn(usize) + Sync)) -> Option<bool> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return None;
        }
        if count == 0 {
            return Some(false);
        }
        // SAFETY: lifetime erasure only — see the `TaskRef` contract.
        let task: *const (dyn Fn(usize) + Sync + 'static) =
            unsafe { std::mem::transmute(task as *const (dyn Fn(usize) + Sync)) };
        let batch = Arc::new(Batch {
            tag,
            task: TaskRef(task),
            count,
            cursor: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        self.inner
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push_back(Arc::clone(&batch));
        self.inner.available.notify_all();
        self.inner.batches.fetch_add(1, Ordering::Relaxed);
        self.inner.tasks.fetch_add(count as u64, Ordering::Relaxed);
        while let Some(t) = batch.claim() {
            batch.run_claimed(t);
        }
        let mut done = batch
            .done
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while !*done {
            done = batch
                .done_cv
                .wait(done)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        Some(batch.panicked.load(Ordering::Acquire))
    }

    /// The typed batch run: governor checkpoints before every task (a
    /// trip drains the remaining claims cheaply), results in task order.
    /// `None` means the pool refused the batch (shut down).
    fn run_governed<T: Send>(
        &self,
        tag: u64,
        count: usize,
        gov: Option<&QueryGovernor>,
        site: &'static str,
        task: &(impl Fn(usize) -> T + Sync),
    ) -> Option<Result<(Vec<T>, MorselRun), GovernorError>> {
        let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
        let erased = |t: usize| {
            if let Some(gov) = gov {
                if gov.check(site).is_err() {
                    // Tripped: claims keep draining, work stops. The
                    // batch completes quickly and the pool stays clean
                    // for the next query.
                    return;
                }
            }
            let result = task(t);
            *slots[t]
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(result);
        };
        let panicked = self.run_erased(tag, count, &erased)?;
        let run = MorselRun {
            morsels: count,
            // The submitter helps alongside the pool's workers.
            threads: (self.inner.threads + 1).min(count.max(1)),
        };
        if panicked {
            let Some(gov) = gov else {
                // Mirror the scoped path, where a worker panic unwinds
                // through `std::thread::scope` into the submitter.
                panic!("morsel task panicked on the shared pool at {site}");
            };
            return Some(Err(gov.note_panic(site)));
        }
        if let Some(e) = gov.and_then(QueryGovernor::trip_error) {
            return Some(Err(e));
        }
        let results = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    // invariant: no trip and no panic means every claimed
                    // index stored its result before completing.
                    .expect("every task produced a result")
            })
            .collect();
        Some(Ok((results, run)))
    }
}

/// What [`SharedPool::install`] places in thread-local storage.
struct Installed {
    pool: SharedPool,
    tag: u64,
    /// Batches this query dispatched — shared with the guard.
    batches: Rc<Cell<u64>>,
}

thread_local! {
    static INSTALLED: RefCell<Option<Installed>> = const { RefCell::new(None) };
}

/// RAII guard of a [`SharedPool::install`]: restores the previous
/// installation (if any) on drop. `!Send` by construction — it must drop
/// on the thread that installed it.
pub struct SharedPoolGuard {
    prev: Option<Installed>,
    batches: Rc<Cell<u64>>,
    _single_thread: std::marker::PhantomData<*const ()>,
}

impl SharedPoolGuard {
    /// Batches this installation dispatched to the shared pool so far —
    /// the per-query counter surfaced as
    /// `RuntimeMetrics::shared_pool_batches`.
    pub fn batches(&self) -> u64 {
        self.batches.get()
    }
}

impl Drop for SharedPoolGuard {
    fn drop(&mut self) {
        INSTALLED.with(|slot| *slot.borrow_mut() = self.prev.take());
    }
}

/// Dispatch to the thread's installed [`SharedPool`], if any. `None`
/// (no installation, or the pool is shut down) sends the caller down the
/// scoped-thread path. The TLS borrow is released before the batch runs,
/// so nested `run_tasks` calls from inside a task body re-enter safely.
fn shared_pool_run<T: Send>(
    count: usize,
    gov: Option<&QueryGovernor>,
    site: &'static str,
    task: &(impl Fn(usize) -> T + Sync),
) -> Option<Result<(Vec<T>, MorselRun), GovernorError>> {
    let (pool, tag, batches) = INSTALLED.with(|slot| {
        slot.borrow()
            .as_ref()
            .map(|i| (i.pool.clone(), i.tag, Rc::clone(&i.batches)))
    })?;
    let result = pool.run_governed(tag, count, gov, site, task)?;
    batches.set(batches.get() + 1);
    Some(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_below_threshold() {
        let config = MorselConfig::with_threads(4);
        assert_eq!(config.workers_for(10), 1);
        let (results, run) = run_morsels(10, &config, |r| r.len());
        assert_eq!(results, vec![10]);
        assert_eq!(run.threads, 1);
    }

    #[test]
    fn workers_capped_by_morsel_count() {
        let config = MorselConfig::with_threads(8)
            .with_morsel_rows(100)
            .with_min_parallel_rows(0);
        // 250 rows = 3 morsels: no point in 8 workers.
        assert_eq!(config.workers_for(250), 3);
    }

    #[test]
    fn morsel_results_come_back_in_range_order() {
        for threads in 2..=4 {
            let config = MorselConfig::with_threads(threads)
                .with_morsel_rows(7)
                .with_min_parallel_rows(0);
            let (results, run) = run_morsels(100, &config, |r| r.clone());
            assert_eq!(run.morsels, 100usize.div_ceil(7));
            assert_eq!(run.threads, threads.min(run.morsels));
            let flat: Vec<usize> = results.into_iter().flatten().collect();
            let expected: Vec<usize> = (0..100).collect();
            assert_eq!(flat, expected);
        }
    }

    #[test]
    fn zero_rows_is_fine() {
        let config = MorselConfig::with_threads(3).with_min_parallel_rows(0);
        let (results, _) = run_morsels(0, &config, |r| r.len());
        assert_eq!(results.iter().sum::<usize>(), 0);
    }

    #[test]
    fn fill_stripes_is_position_deterministic() {
        for threads in 1..=4 {
            let config = MorselConfig::with_threads(threads)
                .with_morsel_rows(8)
                .with_min_parallel_rows(0);
            let mut out = vec![0usize; 100];
            fill_stripes(&mut out, &config, |offset, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = offset + i;
                }
            });
            let expected: Vec<usize> = (0..100).collect();
            assert_eq!(out, expected);
        }
    }

    #[test]
    fn run_tasks_returns_results_in_task_order() {
        for threads in 1..=4 {
            let (results, run) = run_tasks(9, threads, |t| t * 10);
            assert_eq!(results, (0..9).map(|t| t * 10).collect::<Vec<_>>());
            assert_eq!(run.threads, threads.clamp(1, 9));
        }
        let (empty, run) = run_tasks(0, 4, |t| t);
        assert!(empty.is_empty());
        assert_eq!(run.threads, 1);
    }

    #[test]
    fn stripe_ranges_tile_the_input_exactly() {
        for rows in [0usize, 1, 7, 64, 100, 129] {
            for workers in 1..=4 {
                let ranges = stripe_ranges(rows, workers, 8);
                let flat: Vec<usize> = ranges.iter().cloned().flatten().collect();
                assert_eq!(
                    flat,
                    (0..rows).collect::<Vec<_>>(),
                    "rows={rows} workers={workers}"
                );
                assert!(ranges.len() <= workers.max(1).max(rows));
                for r in &ranges {
                    assert!(r.start < r.end);
                }
            }
        }
    }

    #[test]
    fn merge_sort_matches_sequential_stable_sort() {
        // Keys with heavy duplication + a payload that records input order:
        // the parallel sort must keep ties in input order, exactly like the
        // sequential stable sort.
        let items: Vec<(u32, usize)> = (0..1000)
            .map(|i| ((i as u32).wrapping_mul(2654435761) % 7, i))
            .collect();
        let mut expected = items.clone();
        expected.sort_by_key(|item| item.0);
        for threads in 1..=4 {
            let config = MorselConfig::with_threads(threads)
                .with_morsel_rows(16)
                .with_min_parallel_rows(0);
            let (sorted, run) = merge_sort(items.clone(), &config, |a, b| a.0.cmp(&b.0));
            assert_eq!(sorted, expected, "threads={threads}");
            if threads > 1 {
                assert!(run.threads > 1);
                assert!(run.morsels > 1);
            }
        }
    }

    #[test]
    fn merge_sort_handles_empty_and_tiny_inputs() {
        let config = MorselConfig::with_threads(3)
            .with_morsel_rows(4)
            .with_min_parallel_rows(0);
        let (empty, _) = merge_sort(Vec::<u32>::new(), &config, |a, b| a.cmp(b));
        assert!(empty.is_empty());
        let (one, _) = merge_sort(vec![5u32], &config, |a, b| a.cmp(b));
        assert_eq!(one, vec![5]);
        let (two, _) = merge_sort(vec![9u32, 2], &config, |a, b| a.cmp(b));
        assert_eq!(two, vec![2, 9]);
    }

    #[test]
    fn forced_threads_env_parsing() {
        // Garbage and zero fall back to auto-detection (`None`) instead of
        // configuring a zero-worker pool.
        assert_eq!(parse_forced_threads(None), None);
        assert_eq!(parse_forced_threads(Some("".into())), None);
        assert_eq!(parse_forced_threads(Some("abc".into())), None);
        assert_eq!(parse_forced_threads(Some("0".into())), None);
        assert_eq!(parse_forced_threads(Some(" 0 ".into())), None);
        assert_eq!(parse_forced_threads(Some("-3".into())), None);
        assert_eq!(parse_forced_threads(Some("4x".into())), None);
        assert_eq!(parse_forced_threads(Some("3.5".into())), None);
        // Larger than usize::MAX: the parse overflows and is rejected.
        assert_eq!(
            parse_forced_threads(Some("99999999999999999999999999".into())),
            None
        );
        assert_eq!(parse_forced_threads(Some("4".into())), Some(4));
        assert_eq!(parse_forced_threads(Some(" 2 ".into())), Some(2));
        assert_eq!(parse_forced_threads(Some("1".into())), Some(1));
    }

    #[test]
    fn forced_threads_bypass_core_detection() {
        // Even on a single-core machine, a forced budget parallelizes.
        let config = MorselConfig::with_threads(3)
            .with_morsel_rows(10)
            .with_min_parallel_rows(0);
        let (results, run) = run_morsels(35, &config, |r| r.len());
        assert!(run.threads > 1);
        assert_eq!(results.iter().sum::<usize>(), 35);
    }

    #[test]
    fn governed_tasks_match_ungoverned_when_nothing_trips() {
        let gov = QueryGovernor::new();
        for threads in 1..=4 {
            let (results, _) = try_run_tasks(9, threads, Some(&gov), "worker", |t| t * 10).unwrap();
            assert_eq!(results, (0..9).map(|t| t * 10).collect::<Vec<_>>());
        }
        assert!(gov.checks() > 0);
    }

    #[test]
    fn governed_tasks_without_governor_delegate() {
        let (results, run) = try_run_tasks(5, 2, None, "worker", |t| t + 1).unwrap();
        assert_eq!(results, vec![1, 2, 3, 4, 5]);
        assert_eq!(run.threads, 2);
    }

    #[test]
    fn cancelled_tasks_stop_early_and_join() {
        use crate::govern::CancelToken;
        use std::sync::Arc;
        for threads in 1..=4 {
            let token = Arc::new(CancelToken::new());
            let gov = QueryGovernor::new().with_token(token.clone());
            let done = AtomicUsize::new(0);
            let err = try_run_tasks(1000, threads, Some(&gov), "worker", |t| {
                if t == 3 {
                    token.cancel();
                }
                done.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap_err();
            assert_eq!(err, GovernorError::Cancelled, "threads={threads}");
            // The pool joined without running everything.
            assert!(
                done.load(Ordering::Relaxed) < 1000,
                "threads={threads} ran all tasks despite cancellation"
            );
        }
    }

    #[test]
    fn panicking_task_converts_to_worker_panicked() {
        for threads in 1..=4 {
            let gov = QueryGovernor::new();
            let err = try_run_tasks(100, threads, Some(&gov), "worker", |t| {
                assert!(t != 7, "injected kernel panic");
                t
            })
            .unwrap_err();
            assert_eq!(
                err,
                GovernorError::WorkerPanicked { site: "worker" },
                "threads={threads}"
            );
        }
    }

    #[test]
    fn governed_sequential_morsels_checkpoint_per_morsel() {
        let config = MorselConfig::with_threads(1).with_morsel_rows(10);
        let gov = QueryGovernor::new();
        let (parts, run) = try_run_morsels(35, &config, Some(&gov), "worker", |r| r.len()).unwrap();
        // Sequential but still chunked: four morsels, four checkpoints.
        assert_eq!(parts, vec![10, 10, 10, 5]);
        assert_eq!(run.threads, 1);
        assert_eq!(gov.checks(), 4);
    }

    #[test]
    fn governed_zero_rows_still_produce_one_part() {
        let config = MorselConfig::with_threads(3).with_min_parallel_rows(0);
        let gov = QueryGovernor::new();
        let (parts, _) = try_run_morsels(0, &config, Some(&gov), "worker", |r| r.len()).unwrap();
        assert_eq!(parts, vec![0]);
    }

    #[test]
    fn governed_morsels_come_back_in_range_order() {
        let gov = QueryGovernor::new();
        for threads in 2..=4 {
            let config = MorselConfig::with_threads(threads)
                .with_morsel_rows(7)
                .with_min_parallel_rows(0);
            let (results, _) =
                try_run_morsels(100, &config, Some(&gov), "worker", |r| r.clone()).unwrap();
            let flat: Vec<usize> = results.into_iter().flatten().collect();
            assert_eq!(flat, (0..100).collect::<Vec<_>>());
        }
    }

    // -----------------------------------------------------------------
    // Shared pool
    // -----------------------------------------------------------------

    #[test]
    fn shared_pool_results_match_scoped_path() {
        let pool = SharedPool::new(3);
        let scoped: Vec<usize> = run_tasks(64, 4, |t| t * 3).0;
        {
            let guard = pool.install(1);
            let (results, run) = run_tasks(64, 4, |t| t * 3);
            assert_eq!(results, scoped);
            assert!(run.threads > 1);
            assert_eq!(run.morsels, 64);
            assert_eq!(guard.batches(), 1);
        }
        assert_eq!(pool.stats().batches, 1);
        assert_eq!(pool.stats().tasks, 64);
        pool.shutdown();
    }

    #[test]
    fn shared_pool_serves_morsels_and_stripes() {
        let pool = SharedPool::new(2);
        let config = MorselConfig::with_threads(4)
            .with_morsel_rows(8)
            .with_min_parallel_rows(0);
        let guard = pool.install(7);
        let (results, _) = run_morsels(100, &config, |r| r.clone());
        let flat: Vec<usize> = results.into_iter().flatten().collect();
        assert_eq!(flat, (0..100).collect::<Vec<_>>());
        let mut out = vec![0usize; 100];
        fill_stripes(&mut out, &config, |offset, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = offset + i;
            }
        });
        assert_eq!(out, (0..100).collect::<Vec<_>>());
        assert!(guard.batches() >= 2);
        drop(guard);
        pool.shutdown();
    }

    #[test]
    fn shared_pool_shutdown_falls_back_to_scoped_threads() {
        let pool = SharedPool::new(2);
        pool.shutdown();
        let _guard = pool.install(1);
        let (results, run) = run_tasks(16, 3, |t| t + 1);
        assert_eq!(results, (1..=16).collect::<Vec<_>>());
        assert_eq!(run.threads, 3);
        assert_eq!(pool.stats().batches, 0);
    }

    #[test]
    fn shared_pool_guard_restores_previous_installation() {
        let outer = SharedPool::new(1);
        let inner = SharedPool::new(1);
        let outer_guard = outer.install(1);
        {
            let inner_guard = inner.install(2);
            run_tasks(8, 2, |t| t);
            assert_eq!(inner_guard.batches(), 1);
        }
        run_tasks(8, 2, |t| t);
        assert_eq!(outer_guard.batches(), 1);
        assert_eq!(outer.stats().batches, 1);
        assert_eq!(inner.stats().batches, 1);
        drop(outer_guard);
        outer.shutdown();
        inner.shutdown();
    }

    #[test]
    fn shared_pool_cancellation_drains_and_pool_survives() {
        use crate::govern::CancelToken;
        let pool = SharedPool::new(2);
        let guard = pool.install(1);
        let token = Arc::new(CancelToken::new());
        let gov = QueryGovernor::new().with_token(token.clone());
        let done = AtomicUsize::new(0);
        let err = try_run_tasks(1000, 4, Some(&gov), "worker", |t| {
            if t == 3 {
                token.cancel();
            }
            done.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap_err();
        assert_eq!(err, GovernorError::Cancelled);
        assert!(done.load(Ordering::Relaxed) < 1000, "trip did not drain");
        // The pool is not poisoned: the next (governed) query succeeds.
        let fresh = QueryGovernor::new();
        let (results, _) = try_run_tasks(32, 4, Some(&fresh), "worker", |t| t).unwrap();
        assert_eq!(results, (0..32).collect::<Vec<_>>());
        drop(guard);
        pool.shutdown();
    }

    #[test]
    fn shared_pool_panic_converts_to_worker_panicked_and_pool_survives() {
        let pool = SharedPool::new(2);
        let guard = pool.install(1);
        let gov = QueryGovernor::new();
        let err = try_run_tasks(100, 4, Some(&gov), "worker", |t| {
            assert!(t != 7, "injected kernel panic");
            t
        })
        .unwrap_err();
        assert_eq!(err, GovernorError::WorkerPanicked { site: "worker" });
        let (results, _) = run_tasks(16, 4, |t| t);
        assert_eq!(results, (0..16).collect::<Vec<_>>());
        drop(guard);
        pool.shutdown();
    }

    #[test]
    fn shared_pool_ungoverned_panic_propagates_to_submitter() {
        let pool = SharedPool::new(2);
        let guard = pool.install(1);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_tasks(64, 4, |t| assert!(t != 9, "injected kernel panic"));
        }));
        assert!(caught.is_err());
        // Still usable afterwards.
        let (results, _) = run_tasks(8, 4, |t| t);
        assert_eq!(results, (0..8).collect::<Vec<_>>());
        drop(guard);
        pool.shutdown();
    }

    #[test]
    fn shared_pool_interleaves_concurrent_queries() {
        // Two submitter threads, each tagged differently, firing many
        // small batches at a two-worker pool: the round-robin queue must
        // interleave their morsels (cross_query_switches > 0). Retries
        // bound the (tiny) chance that one query drains before the other
        // arrives.
        for _attempt in 0..5 {
            let pool = SharedPool::new(2);
            std::thread::scope(|scope| {
                for tag in [1u64, 2u64] {
                    let pool = pool.clone();
                    scope.spawn(move || {
                        let _guard = pool.install(tag);
                        for _ in 0..50 {
                            let (results, _) = run_tasks(16, 4, |t| {
                                std::thread::sleep(std::time::Duration::from_micros(200));
                                t
                            });
                            assert_eq!(results, (0..16).collect::<Vec<_>>());
                        }
                    });
                }
            });
            let stats = pool.stats();
            pool.shutdown();
            assert_eq!(stats.batches, 100);
            if stats.cross_query_switches > 0 {
                return;
            }
        }
        panic!("no cross-query switches in 5 attempts");
    }
}
