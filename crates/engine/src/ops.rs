//! The physical operators: scan-select, merge join, hash join, cross
//! product, filter, projection, distinct.
//!
//! All operators are *operator-at-a-time*: they consume and produce fully
//! materialised [`BindingTable`]s, mirroring MonetDB's execution model —
//! and since the vectorization rework they are also *late-materializing*:
//! joins and selections first produce compact row-index (or index-pair)
//! vectors, then build their output **column at a time** through the bulk
//! gather primitives on [`BindingTable`] ([`BindingTable::gather`] /
//! [`BindingTable::from_join_pairs`]) instead of per-value `push_row`
//! appends. The previous row-at-a-time kernels live on in
//! [`crate::reference`] as the benchmark baseline and differential-testing
//! oracle.
//!
//! Every operator comes in two spellings: a `*_in` variant taking an
//! [`ExecContext`] — which supplies the [`crate::morsel`] thread budget for
//! the parallel fast paths (hash-join build and probe, the
//! range-partitioned merge join, scan gather/selection, FILTER evaluation
//! and ORDER BY key extraction) and the [`crate::pool::BufferPool`] the
//! gather phase checks output columns out of — and a plain variant that
//! runs in a fresh default context (auto-detected parallelism, private
//! pool), kept for call sites that evaluate a single operator.

use std::collections::HashSet;

use hsp_rdf::{Term, TermId, TermKind};
use hsp_sparql::{CmpOp, FilterExpr, Operand, TermOrVar, TriplePattern, Var};
use hsp_store::{Dataset, Order, StorageBackend};

use crate::binding::BindingTable;
use crate::kernel::{BuildTable, FxBuildHasher};
use crate::morsel;
use crate::plan::{consts_form_prefix, scan_sort_var};
use crate::pool::ExecContext;

/// Upper bound on input-table sizes for the `u32` row indices the
/// vectorized kernels exchange.
fn check_indexable(table: &BindingTable) {
    assert!(
        table.len() < u32::MAX as usize,
        "binding table exceeds u32 row indexing"
    );
}

/// Scan one ordered relation for the rows matching `pattern`'s constants.
///
/// The output has one column per distinct pattern variable and is sorted by
/// the first variable in key order (see [`scan_sort_var`]). If the pattern
/// repeats a variable (e.g. `?x p ?x`), rows violating the implied equality
/// are dropped.
///
/// # Panics
/// Panics if the pattern's constants do not form a prefix of `order`'s key
/// ([`PhysicalPlan::validate`](crate::plan::PhysicalPlan::validate) catches
/// this earlier).
pub fn scan(ds: &Dataset, pattern: &TriplePattern, order: Order) -> BindingTable {
    scan_in(&ExecContext::new(), ds, pattern, order)
}

/// [`scan`] in an execution context: the no-repeated-variable fast path
/// gathers each output column in parallel stripes when the range clears the
/// morsel threshold, the repeated-variable path selects qualifying rows
/// morsel-at-a-time, and all output columns come from the context's pool.
pub fn scan_in(
    ctx: &ExecContext,
    ds: &Dataset,
    pattern: &TriplePattern,
    order: Order,
) -> BindingTable {
    assert!(
        consts_form_prefix(pattern, order),
        "scan constants must form a key prefix of {order}"
    );
    let out_vars = pattern.vars();

    // Resolve constants; a constant unknown to the dictionary matches nothing.
    let mut prefix: Vec<TermId> = Vec::with_capacity(3);
    for pos in order.positions() {
        match pattern.slot(pos) {
            TermOrVar::Const(term) => match ds.dict().id(term) {
                Some(id) => prefix.push(id),
                None => return BindingTable::empty(out_vars),
            },
            TermOrVar::Var(_) => break,
        }
    }

    let scan = ds.store().scan(order, &prefix);
    if !scan.is_contiguous() {
        ctx.note_merged_scan();
    }
    let rows = scan.as_slice();

    // A fully ground pattern is a containment check: zero columns, but the
    // row count (0 or 1) still matters to joins and cross products.
    if out_vars.is_empty() {
        return BindingTable::unit(rows.len());
    }

    // Key indices of each output variable's (first) slot.
    let var_key_idx: Vec<usize> = out_vars
        .iter()
        .map(|&v| {
            let pos = pattern.positions_of(v)[0];
            order.key_index(pos)
        })
        .collect();

    // Repeated-variable equality constraints: (key index a, key index b).
    let mut equalities: Vec<(usize, usize)> = Vec::new();
    for &v in &out_vars {
        let positions = pattern.positions_of(v);
        for pair in positions.windows(2) {
            equalities.push((order.key_index(pair[0]), order.key_index(pair[1])));
        }
    }

    let mut cols: Vec<Vec<TermId>> = Vec::with_capacity(out_vars.len());
    if equalities.is_empty() {
        // Fast path (no repeated variables): bulk-gather each output column
        // straight out of the key-coordinate rows, one column at a time —
        // in parallel stripes when the range is large enough.
        let parallel = ctx.morsel.workers_for(rows.len()) > 1;
        let mut morsels = 0;
        let mut threads_used = 1;
        for &k in &var_key_idx {
            let mut col = ctx.pool.take_col(rows.len());
            if parallel {
                col.resize(rows.len(), TermId(0));
                let run = morsel::fill_stripes(&mut col, &ctx.morsel, |offset, chunk| {
                    for (i, v) in chunk.iter_mut().enumerate() {
                        *v = rows[offset + i][k];
                    }
                });
                morsels += run.morsels;
                threads_used = threads_used.max(run.threads);
            } else {
                col.extend(rows.iter().map(|row| row[k]));
            }
            cols.push(col);
        }
        if morsels > 0 {
            // One counter entry for the whole scan (all columns together),
            // reporting the worker count the stripes actually used.
            ctx.note_run(morsel::MorselRun {
                morsels,
                threads: threads_used,
            });
        }
    } else {
        // Late materialisation: select qualifying row indices first
        // (morsel-at-a-time, stitched in morsel order), then gather the
        // columns.
        assert!(
            rows.len() < u32::MAX as usize,
            "scan range exceeds u32 row indexing"
        );
        let (parts, run) = morsel::run_morsels(rows.len(), &ctx.morsel, |range| {
            let mut sel: Vec<u32> = Vec::new();
            for i in range {
                if equalities.iter().all(|&(a, b)| rows[i][a] == rows[i][b]) {
                    sel.push(i as u32);
                }
            }
            sel
        });
        ctx.note_run(run);
        let total: usize = parts.iter().map(Vec::len).sum();
        let mut sel = ctx.pool.take_idx(total);
        for part in parts {
            sel.extend_from_slice(&part);
        }
        for &k in &var_key_idx {
            let mut col = ctx.pool.take_col(sel.len());
            col.extend(sel.iter().map(|&i| rows[i as usize][k]));
            cols.push(col);
        }
        ctx.pool.put_idx(sel);
    }
    let sorted = scan_sort_var(pattern, order);
    BindingTable::from_columns(out_vars, cols, sorted)
}

/// Sort-merge join on `var`. Both inputs must be sorted by `var`; equality
/// on any further shared variables is enforced pairwise. The output carries
/// the left table's variables followed by the right table's non-shared
/// variables, and stays sorted by `var`.
///
/// # Panics
/// Panics if an input is not sorted by `var`.
pub fn merge_join(left: &BindingTable, right: &BindingTable, var: Var) -> BindingTable {
    merge_join_in(&ExecContext::new(), left, right, var)
}

/// [`merge_join`] in an execution context — the **range-partitioned
/// parallel merge join**.
///
/// When the combined input size clears the context's morsel threshold
/// (and the thread budget allows), both sorted inputs are split at
/// *common key boundaries*: partition `k`'s target position on the left
/// is binary-searched back to the start of its key group, and the right
/// split gallops to the same key — so no equal-key group ever spans two
/// partitions. Each partition then runs an independent cursor pair (the
/// same scan as the sequential join, see
/// [`crate::kernel::merge_join_pairs`]) and the per-partition pair
/// vectors are stitched in partition order, which reproduces the
/// sequential output byte-for-byte: merge-join output is ordered by key
/// group, and the partitions tile the key space in order. Below the
/// threshold the single cursor pair runs sequentially into pooled
/// buffers; either way the gather phase draws from the context's pool.
pub fn merge_join_in(
    ctx: &ExecContext,
    left: &BindingTable,
    right: &BindingTable,
    var: Var,
) -> BindingTable {
    assert_eq!(
        left.sorted_by(),
        Some(var),
        "merge join: left not sorted by {var}"
    );
    assert_eq!(
        right.sorted_by(),
        Some(var),
        "merge join: right not sorted by {var}"
    );

    check_indexable(left);
    check_indexable(right);
    let (_, right_extra, extra_shared) = join_layout(left, right, &[var]);
    let lcol = left.column(var);
    let rcol = right.column(var);
    let extra_pairs: Vec<(&[TermId], &[TermId])> = extra_shared
        .iter()
        .map(|&v| (left.column(v), right.column(v)))
        .collect();

    // Phase 1: emit compact (left_row, right_row) index pairs — one
    // cursor pair per key-range partition when parallelism can win.
    let workers = ctx.morsel.workers_for(lcol.len() + rcol.len());
    let (lidx, ridx) = if workers > 1 && !lcol.is_empty() && !rcol.is_empty() {
        merge_pairs_partitioned(ctx, lcol, rcol, &extra_pairs, workers)
    } else {
        let mut lidx: Vec<u32> = ctx.pool.take_idx(lcol.len().min(rcol.len()));
        let mut ridx: Vec<u32> = ctx.pool.take_idx(lcol.len().min(rcol.len()));
        crate::kernel::merge_join_pairs(
            lcol,
            rcol,
            &extra_pairs,
            0..lcol.len(),
            0..rcol.len(),
            &mut lidx,
            &mut ridx,
        );
        (lidx, ridx)
    };

    // Phase 2: gather the output column at a time.
    let mut out =
        BindingTable::from_join_pairs_in(left, right, &right_extra, &lidx, &ridx, &ctx.pool);
    ctx.pool.put_idx(lidx);
    ctx.pool.put_idx(ridx);
    out.set_sorted_by(Some(var));
    out
}

/// The parallel phase 1 of [`merge_join_in`]: cut both sorted key columns
/// at (up to) `workers − 1` common key boundaries and run an independent
/// cursor-pair scan per partition on the morsel task pool, returning the
/// pair vectors stitched in partition order (checked out of the pool;
/// the caller returns them after the gather).
fn merge_pairs_partitioned(
    ctx: &ExecContext,
    lcol: &[TermId],
    rcol: &[TermId],
    extra_pairs: &[(&[TermId], &[TermId])],
    workers: usize,
) -> (Vec<u32>, Vec<u32>) {
    // Partition boundaries: aim for even left shares, then snap each
    // boundary back to the start of its key group on the left and find
    // the matching position on the right. Boundaries are non-decreasing
    // by construction; duplicates (a giant key group swallowing several
    // targets) collapse via dedup.
    let mut bounds: Vec<(usize, usize)> = Vec::with_capacity(workers + 1);
    bounds.push((0, 0));
    for k in 1..workers {
        let key = lcol[k * lcol.len() / workers];
        let ls = lcol.partition_point(|&x| x < key);
        let rs = rcol.partition_point(|&x| x < key);
        bounds.push((ls, rs));
    }
    bounds.push((lcol.len(), rcol.len()));
    bounds.dedup();

    let parts: Vec<((usize, usize), (usize, usize))> =
        bounds.windows(2).map(|w| (w[0], w[1])).collect();
    let (results, run) = morsel::run_tasks(parts.len(), workers, |p| {
        let ((ls, rs), (le, re)) = parts[p];
        // Thread-local pair buffers, sized for ~1 match per left row.
        let mut l: Vec<u32> = Vec::with_capacity(le - ls);
        let mut r: Vec<u32> = Vec::with_capacity(le - ls);
        crate::kernel::merge_join_pairs(lcol, rcol, extra_pairs, ls..le, rs..re, &mut l, &mut r);
        (l, r)
    });
    ctx.note_merge(run);
    let total: usize = results.iter().map(|(l, _)| l.len()).sum();
    let mut lidx = ctx.pool.take_idx(total);
    let mut ridx = ctx.pool.take_idx(total);
    for (l, r) in results {
        lidx.extend_from_slice(&l);
        ridx.extend_from_slice(&r);
    }
    (lidx, ridx)
}

/// Hash join on `vars`: builds a table over the smaller conceptual side —
/// here always `right` (planners put the build side on the right, mirroring
/// the cost model's convention) — and probes with `left`, so the output
/// preserves the left side's ordering.
///
/// The build side is an Fx-hashed flat table over packed `u64` keys for
/// one- and two-variable joins (the dominant case), falling back to a
/// CSR-style bucket directory verified against the key columns for wider
/// keys — no per-probe key allocation either way (see
/// [`crate::kernel::BuildTable`]). Matching index pairs are gathered
/// column-at-a-time.
///
/// # Panics
/// Panics if `vars` is empty or not shared by both inputs.
pub fn hash_join(left: &BindingTable, right: &BindingTable, vars: &[Var]) -> BindingTable {
    hash_join_in(&ExecContext::new(), left, right, vars)
}

/// [`hash_join`] in an execution context — the **morsel-driven probe**.
///
/// When the probe side clears the context's morsel threshold (and the
/// thread budget allows), the probe index range is cut into fixed-size
/// morsels; a scoped worker pool pulls morsels from a shared cursor and
/// probes the shared read-only [`BuildTable`], each worker emitting into
/// thread-local pair buffers. The buffers are stitched back in morsel
/// order, so the output is byte-identical to the sequential probe and the
/// left ordering still survives. Below the threshold the probe runs
/// sequentially into pooled buffers; either way the gather phase checks
/// its output columns out of the context's pool.
pub fn hash_join_in(
    ctx: &ExecContext,
    left: &BindingTable,
    right: &BindingTable,
    vars: &[Var],
) -> BindingTable {
    assert!(!vars.is_empty(), "hash join needs at least one variable");
    for &v in vars {
        assert!(
            left.vars().contains(&v),
            "hash join var {v} missing from left"
        );
        assert!(
            right.vars().contains(&v),
            "hash join var {v} missing from right"
        );
    }
    check_indexable(left);
    check_indexable(right);
    let (_, right_extra, extra_shared) = join_layout(left, right, vars);

    // Build on the right (morsel-parallel hashing + partitioned counting
    // sort when the build side clears the threshold — byte-identical to
    // the sequential build either way).
    let build_cols: Vec<&[TermId]> = vars.iter().map(|&v| right.column(v)).collect();
    let probe_cols: Vec<&[TermId]> = vars.iter().map(|&v| left.column(v)).collect();
    let (table, build_run) = BuildTable::build_par(&build_cols, right.len(), &ctx.morsel);
    ctx.note_build(build_run);
    let extra_pairs: Vec<(&[TermId], &[TermId])> = extra_shared
        .iter()
        .map(|&v| (left.column(v), right.column(v)))
        .collect();

    // Probe, emitting index pairs (morsel-parallel over the probe side).
    let (lidx, ridx) = probe_pairs(ctx, left.len(), |range, l, r| {
        table.probe_range(&build_cols, &probe_cols, &extra_pairs, range, l, r)
    });

    let mut out =
        BindingTable::from_join_pairs_in(left, right, &right_extra, &lidx, &ridx, &ctx.pool);
    ctx.pool.put_idx(lidx);
    ctx.pool.put_idx(ridx);
    // Probe order is preserved, so the left ordering survives.
    out.set_sorted_by(left.sorted_by());
    out
}

/// Shared probe driver of the two hash joins: run `probe` over the probe
/// index range — morsel-driven on a scoped worker pool when `ctx` allows,
/// sequentially into pooled buffers otherwise — and return the stitched
/// `(left, right)` pair vectors (checked out of the pool; callers return
/// them after the gather).
///
/// `probe` must append, for any subrange, the same pairs in the same order
/// the full sequential probe would produce over that subrange; stitching
/// the per-morsel buffers in morsel order then reproduces the sequential
/// output exactly, which is what keeps parallel results deterministic.
fn probe_pairs(
    ctx: &ExecContext,
    probe_rows: usize,
    probe: impl Fn(std::ops::Range<usize>, &mut Vec<u32>, &mut Vec<u32>) + Sync,
) -> (Vec<u32>, Vec<u32>) {
    if ctx.morsel.workers_for(probe_rows) > 1 {
        let (parts, run) = morsel::run_morsels(probe_rows, &ctx.morsel, |range| {
            // Thread-local pair buffers; sized for the common ~1 match per
            // probe row so most morsels never reallocate.
            let mut l = Vec::with_capacity(range.len());
            let mut r = Vec::with_capacity(range.len());
            probe(range, &mut l, &mut r);
            (l, r)
        });
        ctx.note_run(run);
        let total: usize = parts.iter().map(|(l, _)| l.len()).sum();
        let mut lidx = ctx.pool.take_idx(total);
        let mut ridx = ctx.pool.take_idx(total);
        for (l, r) in parts {
            lidx.extend_from_slice(&l);
            ridx.extend_from_slice(&r);
        }
        (lidx, ridx)
    } else {
        let mut lidx = ctx.pool.take_idx(probe_rows);
        let mut ridx = ctx.pool.take_idx(probe_rows);
        probe(0..probe_rows, &mut lidx, &mut ridx);
        (lidx, ridx)
    }
}

/// Cartesian product (left-major order, so the left ordering survives).
///
/// # Panics
/// Panics if the inputs share a variable.
pub fn cross_product(left: &BindingTable, right: &BindingTable) -> BindingTable {
    cross_product_in(&ExecContext::new(), left, right)
}

/// [`cross_product`] in an execution context (pooled output columns).
pub fn cross_product_in(
    ctx: &ExecContext,
    left: &BindingTable,
    right: &BindingTable,
) -> BindingTable {
    let shared: Vec<Var> = left
        .vars()
        .iter()
        .copied()
        .filter(|v| right.vars().contains(v))
        .collect();
    assert!(shared.is_empty(), "cross product inputs share {shared:?}");

    let mut out_vars = left.vars().to_vec();
    out_vars.extend_from_slice(right.vars());
    let rows = left.len() * right.len();
    if out_vars.is_empty() {
        // Two unit tables: the product is a unit table with the row product.
        return BindingTable::unit(rows);
    }

    // Pure bulk copies: each left column repeats every value `right.len()`
    // times; each right column is tiled `left.len()` times.
    //
    // This is the one kernel whose output is quadratically larger than its
    // inputs, so it polls the governor every `POLL_STRIDE` copied values:
    // on a trip (deadline, cancellation) it returns the checked-out
    // columns to the pool and hands back an empty *placeholder* table
    // (plain never-pooled columns) — the caller's trip check surfaces the
    // error and drops the placeholder.
    const POLL_STRIDE: usize = 1 << 16;
    let mut since_poll = 0usize;
    let mut tripped = false;
    let mut cols: Vec<Vec<TermId>> = Vec::with_capacity(out_vars.len());
    'left: for col in left.columns() {
        let mut out = ctx.pool.take_col(rows);
        for &v in col {
            out.extend(std::iter::repeat_n(v, right.len()));
            since_poll += right.len();
            if since_poll >= POLL_STRIDE {
                since_poll = 0;
                if ctx.governor_poll() {
                    tripped = true;
                    ctx.pool.put_col(out);
                    break 'left;
                }
            }
        }
        cols.push(out);
    }
    if !tripped {
        'right: for col in right.columns() {
            let mut out = ctx.pool.take_col(rows);
            for _ in 0..left.len() {
                out.extend_from_slice(col);
                since_poll += col.len();
                if since_poll >= POLL_STRIDE {
                    since_poll = 0;
                    if ctx.governor_poll() {
                        tripped = true;
                        ctx.pool.put_col(out);
                        break 'right;
                    }
                }
            }
            cols.push(out);
        }
    }
    if tripped {
        for col in cols {
            ctx.pool.put_col(col);
        }
        let placeholder = out_vars.iter().map(|_| Vec::new()).collect();
        return BindingTable::from_columns(out_vars, placeholder, None);
    }
    let mut out = BindingTable::from_columns(out_vars, cols, None);
    if !right.is_empty() {
        out.set_sorted_by(left.sorted_by());
    }
    out
}

/// Sort a table by `var` (stable), producing an order-enforced copy.
///
/// # Panics
/// Panics if `var` is not a variable of the table.
pub fn sort_by(input: &BindingTable, var: Var) -> BindingTable {
    sort_by_in(&ExecContext::new(), input, var)
}

/// [`sort_by`] in an execution context (pooled sort index and output).
/// When the input clears the morsel threshold the comparison sort runs as
/// a **parallel merge sort** ([`morsel::merge_sort`]): per-worker sorted
/// runs, then parallel pairwise run merges. An explicit
/// `(key, original index)` order makes the permutation unique, so the
/// parallel result is element-for-element the sequential stable sort.
pub fn sort_by_in(ctx: &ExecContext, input: &BindingTable, var: Var) -> BindingTable {
    check_indexable(input);
    let key = input.column(var);
    let mut index = ctx.pool.take_idx(input.len());
    index.extend(0..input.len() as u32);
    if ctx.morsel.workers_for(input.len()) > 1 {
        let (sorted, run) =
            morsel::merge_sort(std::mem::take(&mut index), &ctx.morsel, |&a, &b| {
                key[a as usize].cmp(&key[b as usize]).then(a.cmp(&b))
            });
        ctx.note_sort(run);
        index = sorted;
    } else {
        index.sort_by_key(|&i| key[i as usize]); // stable
    }
    let mut out = input.gather_in(&index, &ctx.pool);
    ctx.pool.put_idx(index);
    out.set_sorted_by(Some(var));
    out
}

/// Left-outer hash join on `vars` (the OPTIONAL operator of the engine's
/// extended evaluator): every left row survives; unmatched rows carry
/// [`TermId::UNBOUND`] in the right-only columns.
///
/// # Panics
/// Panics if `vars` is empty or not shared by both inputs.
pub fn left_outer_hash_join(
    left: &BindingTable,
    right: &BindingTable,
    vars: &[Var],
) -> BindingTable {
    left_outer_hash_join_in(&ExecContext::new(), left, right, vars)
}

/// [`left_outer_hash_join`] in an execution context: same morsel-driven
/// probe as [`hash_join_in`] — the unmatched-row sentinel is emitted per
/// probe row, so per-morsel outputs still stitch deterministically.
pub fn left_outer_hash_join_in(
    ctx: &ExecContext,
    left: &BindingTable,
    right: &BindingTable,
    vars: &[Var],
) -> BindingTable {
    assert!(!vars.is_empty(), "outer join needs at least one variable");
    for &v in vars {
        assert!(
            left.vars().contains(&v),
            "outer join var {v} missing from left"
        );
        assert!(
            right.vars().contains(&v),
            "outer join var {v} missing from right"
        );
    }
    check_indexable(left);
    check_indexable(right);
    let (_, right_extra, extra_shared) = join_layout(left, right, vars);

    let build_cols: Vec<&[TermId]> = vars.iter().map(|&v| right.column(v)).collect();
    let probe_cols: Vec<&[TermId]> = vars.iter().map(|&v| left.column(v)).collect();
    let (table, build_run) = BuildTable::build_par(&build_cols, right.len(), &ctx.morsel);
    ctx.note_build(build_run);
    let extra_pairs: Vec<(&[TermId], &[TermId])> = extra_shared
        .iter()
        .map(|&v| (left.column(v), right.column(v)))
        .collect();

    // Index pairs; an unmatched left row pairs with the `u32::MAX` sentinel,
    // which the gather turns into UNBOUND padding.
    let (lidx, ridx) = probe_pairs(ctx, left.len(), |range, l, r| {
        table.probe_range_outer(&build_cols, &probe_cols, &extra_pairs, range, l, r)
    });

    let mut out =
        BindingTable::from_join_pairs_in(left, right, &right_extra, &lidx, &ridx, &ctx.pool);
    ctx.pool.put_idx(lidx);
    ctx.pool.put_idx(ridx);
    out.set_sorted_by(None); // UNBOUND sentinels may break the left order
    out
}

/// Concatenate two tables over the union of their variables (the UNION
/// operator): columns missing from a branch are padded with
/// [`TermId::UNBOUND`].
pub fn union_all(a: &BindingTable, b: &BindingTable) -> BindingTable {
    union_all_in(&ExecContext::new(), a, b)
}

/// [`union_all`] in an execution context (pooled output columns).
pub fn union_all_in(ctx: &ExecContext, a: &BindingTable, b: &BindingTable) -> BindingTable {
    let mut out_vars = a.vars().to_vec();
    for &v in b.vars() {
        if !out_vars.contains(&v) {
            out_vars.push(v);
        }
    }
    let rows = a.len() + b.len();
    if out_vars.is_empty() {
        return BindingTable::unit(rows);
    }
    // Column at a time: each branch contributes either a bulk column copy
    // or a run of UNBOUND padding.
    let mut cols: Vec<Vec<TermId>> = Vec::with_capacity(out_vars.len());
    for &v in &out_vars {
        let mut col = ctx.pool.take_col(rows);
        for side in [a, b] {
            match side.col_index(v) {
                Some(c) => col.extend_from_slice(&side.columns()[c]),
                None => col.extend(std::iter::repeat_n(TermId::UNBOUND, side.len())),
            }
        }
        cols.push(col);
    }
    BindingTable::from_columns(out_vars, cols, None)
}

/// Evaluate a residual FILTER, keeping the rows satisfying `expr`.
///
/// Simple (in)equality shapes compare interned ids directly; full-grammar
/// [`FilterExpr::Complex`] expressions are evaluated with the SPARQL typed
/// value semantics of [`hsp_sparql::expr`], one
/// [`Evaluator`](hsp_sparql::Evaluator) (and hence one compiled-regex
/// cache) per worker thread.
pub fn filter(ds: &Dataset, input: &BindingTable, expr: &FilterExpr) -> BindingTable {
    filter_in(&ExecContext::new(), ds, input, expr)
}

thread_local! {
    /// The per-worker expression evaluator of the parallel FILTER /
    /// ORDER BY paths. A morsel worker may process many morsels, and
    /// constructing a fresh [`Evaluator`](hsp_sparql::Evaluator) per
    /// *morsel* would recompile every cached regex once per morsel — so
    /// the evaluator lives in a thread-local instead: one per worker
    /// thread, created lazily on the worker's first morsel. The kernels'
    /// worker threads are *scoped* (they end with the kernel), so these
    /// evaluators — and their regex caches — are dropped at kernel exit;
    /// the sequential paths deliberately use a plain local evaluator so
    /// the long-lived main thread never accretes a process-lifetime
    /// cache.
    pub(crate) static WORKER_EVALUATOR: hsp_sparql::Evaluator = hsp_sparql::Evaluator::new();
}

/// [`filter`] in an execution context — the **morsel-parallel FILTER**.
///
/// When the input clears the context's morsel threshold, rows are
/// evaluated morsel-at-a-time on the worker pool, each worker owning its
/// own thread-local [`Evaluator`](hsp_sparql::Evaluator) — the
/// compiled-regex cache is deliberately single-threaded, see the
/// `Evaluator` docs. Per-morsel selection vectors are stitched in morsel
/// order, so the output is byte-identical to the sequential evaluation.
/// Below the threshold one evaluator scans all rows sequentially; either
/// way the selection vector and the output columns come from the
/// context's pool.
pub fn filter_in(
    ctx: &ExecContext,
    ds: &Dataset,
    input: &BindingTable,
    expr: &FilterExpr,
) -> BindingTable {
    check_indexable(input);
    let sel = if ctx.morsel.workers_for(input.len()) > 1 {
        let (parts, run) = morsel::run_morsels(input.len(), &ctx.morsel, |range| {
            WORKER_EVALUATOR.with(|evaluator| {
                let mut part: Vec<u32> = Vec::new();
                for i in range {
                    if eval_expr(ds, input, expr, i, evaluator) {
                        part.push(i as u32);
                    }
                }
                part
            })
        });
        ctx.note_filter(run);
        let total: usize = parts.iter().map(Vec::len).sum();
        let mut sel = ctx.pool.take_idx(total);
        for part in parts {
            sel.extend_from_slice(&part);
        }
        sel
    } else {
        let evaluator = hsp_sparql::Evaluator::new();
        let mut sel = ctx.pool.take_idx(input.len());
        sel.extend(
            (0..input.len())
                .filter(|&i| eval_expr(ds, input, expr, i, &evaluator))
                .map(|i| i as u32),
        );
        sel
    };
    let mut out = input.gather_in(&sel, &ctx.pool);
    ctx.pool.put_idx(sel);
    out.set_sorted_by(input.sorted_by());
    out
}

/// Sideways-information-passing reducer: keep only the rows whose value
/// for every domain-constrained variable lies inside that variable's
/// domain (a semi-join against already-materialised join inputs).
/// Row order — and hence sortedness — is preserved.
pub fn domain_filter(
    input: &BindingTable,
    domains: &std::collections::HashMap<Var, std::rc::Rc<std::collections::HashSet<TermId>>>,
) -> BindingTable {
    domain_filter_in(&ExecContext::new(), input, domains)
}

/// [`domain_filter`] in an execution context (pooled selection vector and
/// output columns).
pub fn domain_filter_in(
    ctx: &ExecContext,
    input: &BindingTable,
    domains: &std::collections::HashMap<Var, std::rc::Rc<std::collections::HashSet<TermId>>>,
) -> BindingTable {
    let constrained: Vec<(usize, &std::collections::HashSet<TermId>)> = input
        .vars()
        .iter()
        .enumerate()
        .filter_map(|(i, v)| domains.get(v).map(|set| (i, set.as_ref())))
        .collect();
    if constrained.is_empty() {
        return input.clone();
    }
    check_indexable(input);
    let mut sel = ctx.pool.take_idx(input.len());
    sel.extend(
        (0..input.len())
            .filter(|&i| {
                constrained
                    .iter()
                    .all(|&(c, set)| set.contains(&input.columns()[c][i]))
            })
            .map(|i| i as u32),
    );
    let mut out = input.gather_in(&sel, &ctx.pool);
    ctx.pool.put_idx(sel);
    out.set_sorted_by(input.sorted_by());
    out
}

/// `ORDER BY`: stable sort by the given keys under the SPARQL §9.1 value
/// order (see [`hsp_sparql::expr::compare_for_order`]). Key expressions
/// that error evaluate as unbound (sorting first), matching the usual
/// engine behaviour for, e.g., `ORDER BY` over a variable that is unbound
/// in some rows.
pub fn order_by(ds: &Dataset, input: &BindingTable, keys: &[hsp_sparql::SortKey]) -> BindingTable {
    order_by_in(&ExecContext::new(), ds, input, keys)
}

/// [`order_by`] in an execution context (pooled selection vector and
/// output columns). The decorate phase — evaluating every key expression
/// for every row — runs morsel-parallel with per-worker evaluators, like
/// [`filter_in`]; per-morsel decorations stitch back in row order. The
/// comparison sort then runs as a **parallel merge sort**
/// ([`morsel::merge_sort`]) over per-worker sorted runs when the input
/// clears the morsel threshold; an original-row-index tie-break makes the
/// order total, so the parallel output is byte-identical to the
/// sequential stable sort.
pub fn order_by_in(
    ctx: &ExecContext,
    ds: &Dataset,
    input: &BindingTable,
    keys: &[hsp_sparql::SortKey],
) -> BindingTable {
    use hsp_sparql::expr::compare_for_order;
    check_indexable(input);

    // Snapshot the computed-term overlay once: aggregate outputs above
    // this ORDER BY may carry computed ids, and the snapshot (unlike the
    // `ExecContext`) is shareable with the parallel decorate workers.
    let overlay = ctx.computed_overlay();
    // Evaluate every key for every row once (decorate-sort-undecorate).
    let decorate = |range: std::ops::Range<usize>, evaluator: &hsp_sparql::Evaluator| {
        range
            .map(|i| {
                let bindings = RowBindings {
                    ds,
                    overlay: &overlay,
                    table: input,
                    row: i,
                };
                let key_vals = keys
                    .iter()
                    .map(|k| evaluator.eval(&k.expr, &bindings).ok())
                    .collect::<Vec<_>>();
                (i, key_vals)
            })
            .collect::<Vec<_>>()
    };
    let mut decorated: Vec<(usize, Vec<Option<hsp_sparql::Value>>)> =
        if ctx.morsel.workers_for(input.len()) > 1 {
            let (parts, run) = morsel::run_morsels(input.len(), &ctx.morsel, |range| {
                WORKER_EVALUATOR.with(|evaluator| decorate(range, evaluator))
            });
            ctx.note_filter(run);
            parts.into_iter().flatten().collect()
        } else {
            decorate(0..input.len(), &hsp_sparql::Evaluator::new())
        };
    let by_keys = |(ia, ka): &(usize, Vec<Option<hsp_sparql::Value>>),
                   (ib, kb): &(usize, Vec<Option<hsp_sparql::Value>>)| {
        for (key, (va, vb)) in keys.iter().zip(ka.iter().zip(kb.iter())) {
            let ord = compare_for_order(va.as_ref(), vb.as_ref());
            let ord = if key.descending { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        // Tie-break on the original row index: equal-key rows keep input
        // order (what the sequential stable sort guarantees implicitly),
        // and the total order makes the parallel merge sort's output
        // unique.
        ia.cmp(ib)
    };
    if ctx.morsel.workers_for(decorated.len()) > 1 {
        let (sorted, run) = morsel::merge_sort(decorated, &ctx.morsel, by_keys);
        ctx.note_sort(run);
        decorated = sorted;
    } else {
        decorated.sort_by(by_keys);
    }

    let mut sel = ctx.pool.take_idx(decorated.len());
    sel.extend(decorated.iter().map(|&(i, _)| i as u32));
    // The ORDER BY value order is not the TermId order merge joins need,
    // so the gathered output's default of no sortedness is correct.
    let out = input.gather_in(&sel, &ctx.pool);
    ctx.pool.put_idx(sel);
    out
}

/// `OFFSET`/`LIMIT`: keep `limit` rows starting at `offset`.
pub fn slice(input: &BindingTable, offset: usize, limit: Option<usize>) -> BindingTable {
    slice_in(&ExecContext::new(), input, offset, limit)
}

/// [`fn@slice`] in an execution context (pooled output columns).
pub fn slice_in(
    ctx: &ExecContext,
    input: &BindingTable,
    offset: usize,
    limit: Option<usize>,
) -> BindingTable {
    let start = offset.min(input.len());
    let end = match limit {
        Some(n) => (start + n).min(input.len()),
        None => input.len(),
    };
    if input.vars().is_empty() {
        return BindingTable::unit(end - start);
    }
    // A slice is a contiguous bulk copy per column.
    let cols: Vec<Vec<TermId>> = input
        .columns()
        .iter()
        .map(|c| {
            let mut out = ctx.pool.take_col(end - start);
            out.extend_from_slice(&c[start..end]);
            out
        })
        .collect();
    let mut out = BindingTable::from_columns(input.vars().to_vec(), cols, None);
    out.set_sorted_by(input.sorted_by());
    out
}

/// Project to the given `(name, var)` list, optionally deduplicating.
/// Duplicated projection entries referring to the same variable (after
/// FILTER unification) share one column in the output's variable list.
pub fn project(input: &BindingTable, projection: &[(String, Var)], distinct: bool) -> BindingTable {
    project_in(&ExecContext::new(), input, projection, distinct)
}

/// [`project`] in an execution context (pooled output columns).
pub fn project_in(
    ctx: &ExecContext,
    input: &BindingTable,
    projection: &[(String, Var)],
    distinct: bool,
) -> BindingTable {
    if projection.is_empty() {
        // ASK-style degenerate projection: keep only the row count.
        let rows = if distinct {
            input.len().min(1)
        } else {
            input.len()
        };
        return BindingTable::unit(rows);
    }
    let mut out_vars: Vec<Var> = Vec::new();
    for &(_, v) in projection {
        if !out_vars.contains(&v) {
            out_vars.push(v);
        }
    }
    let src: Vec<&[TermId]> = out_vars
        .iter()
        .map(|&v| {
            input
                .col_index(v)
                .map(|c| input.columns()[c].as_slice())
                // invariant: `PhysicalPlan::validate` rejects projections
                // over variables the input does not bind.
                .expect("validated projection")
        })
        .collect();

    let cols: Vec<Vec<TermId>> = if !distinct {
        // Plain projection is a bulk column copy.
        src.iter()
            .map(|c| {
                let mut col = ctx.pool.take_col(c.len());
                col.extend_from_slice(c);
                col
            })
            .collect()
    } else {
        check_indexable(input);
        let sel = distinct_first_occurrences(&src, input.len());
        src.iter()
            .map(|c| crate::binding::gather_column(c, &sel, Some(&ctx.pool)))
            .collect()
    };
    let keep_sort = input.sorted_by().filter(|v| out_vars.contains(v));
    BindingTable::from_columns(out_vars, cols, keep_sort)
}

/// Row indices of the first occurrence of each distinct row of the given
/// columns, ascending — the selection vector of `project(distinct = true)`.
///
/// Rows of one or two columns deduplicate through a packed-`u64` Fx hash
/// set; wider rows go through a sort index and keep each equal group's
/// smallest original index — neither path allocates per row.
pub(crate) fn distinct_first_occurrences(cols: &[&[TermId]], rows: usize) -> Vec<u32> {
    let mut sel: Vec<u32> = Vec::new();
    match cols {
        // invariant: the caller routes empty projections through the
        // unit-table fast path before reaching this kernel.
        [] => unreachable!("zero-column projection handled by the unit path"),
        [a] => {
            let mut seen: HashSet<u64, FxBuildHasher> = HashSet::default();
            for i in 0..rows {
                if seen.insert(crate::kernel::pack2(a[i], TermId(0))) {
                    sel.push(i as u32);
                }
            }
        }
        [a, b] => {
            let mut seen: HashSet<u64, FxBuildHasher> = HashSet::default();
            for i in 0..rows {
                if seen.insert(crate::kernel::pack2(a[i], b[i])) {
                    sel.push(i as u32);
                }
            }
        }
        _ => {
            let mut order: Vec<u32> = (0..rows as u32).collect();
            order.sort_unstable_by(|&x, &y| {
                crate::binding::cmp_rows_at(cols, x as usize, y as usize)
            });
            let mut k = 0;
            while k < order.len() {
                let mut end = k + 1;
                while end < order.len()
                    && cols
                        .iter()
                        .all(|c| c[order[end] as usize] == c[order[k] as usize])
                {
                    end += 1;
                }
                // invariant: `end > k`, so the group slice is non-empty.
                sel.push(*order[k..end].iter().min().expect("nonempty group"));
                k = end;
            }
            sel.sort_unstable();
        }
    }
    sel
}

/// Shared layout computation for joins: output variables, the right-side
/// extra (non-shared) variables, and the shared variables *not* already used
/// as join keys (checked pairwise).
pub(crate) fn join_layout(
    left: &BindingTable,
    right: &BindingTable,
    join_vars: &[Var],
) -> (Vec<Var>, Vec<Var>, Vec<Var>) {
    let mut out_vars = left.vars().to_vec();
    let mut right_extra = Vec::new();
    for &v in right.vars() {
        if !out_vars.contains(&v) {
            out_vars.push(v);
            right_extra.push(v);
        }
    }
    let extra_shared: Vec<Var> = left
        .vars()
        .iter()
        .copied()
        .filter(|v| right.vars().contains(v) && !join_vars.contains(v))
        .collect();
    (out_vars, right_extra, extra_shared)
}

/// Row-addressed variable lookup — the surface FILTER evaluation reads
/// values through. Implemented by [`BindingTable`] (materialised rows,
/// the operator-at-a-time case) and by the pipeline executor's composed
/// index-tuple rows ([`crate::pipeline`]), so one expression evaluator
/// serves both execution models. A variable missing from the row reads
/// as [`TermId::UNBOUND`].
pub(crate) trait RowValues {
    /// The value bound to `v` in row `row` (UNBOUND when absent).
    fn row_value(&self, v: Var, row: usize) -> TermId;
}

impl RowValues for BindingTable {
    fn row_value(&self, v: Var, row: usize) -> TermId {
        match self.col_index(v) {
            Some(c) => self.columns()[c][row],
            None => TermId::UNBOUND,
        }
    }
}

/// Evaluate a FILTER expression on one row of any [`RowValues`] view.
pub(crate) fn eval_expr<V: RowValues>(
    ds: &Dataset,
    table: &V,
    expr: &FilterExpr,
    row: usize,
    evaluator: &hsp_sparql::Evaluator,
) -> bool {
    match expr {
        FilterExpr::And(a, b) => {
            eval_expr(ds, table, a, row, evaluator) && eval_expr(ds, table, b, row, evaluator)
        }
        FilterExpr::Or(a, b) => {
            eval_expr(ds, table, a, row, evaluator) || eval_expr(ds, table, b, row, evaluator)
        }
        FilterExpr::Cmp { op, lhs, rhs } => {
            let l = operand_value(ds, table, lhs, row);
            let r = operand_value(ds, table, rhs, row);
            compare(ds, *op, l, r)
        }
        FilterExpr::Complex(e) => {
            // Filters sit below aggregation in planned trees, so their rows
            // never carry computed ids — no overlay needed here.
            let bindings = RowBindings {
                ds,
                overlay: &[],
                table,
                row,
            };
            evaluator.matches(e, &bindings)
        }
    }
}

/// [`hsp_sparql::Bindings`] over one row of a dictionary-encoded row view:
/// decodes ids back to terms on demand; the UNBOUND sentinel (and a
/// variable missing from the view entirely) reads as unbound. `overlay`
/// is a snapshot of the execution's computed-term overlay (aggregate
/// outputs like an `AVG` that is not in the dictionary) — a plain slice
/// rather than the `ExecContext` so the parallel ORDER BY workers can
/// share it.
struct RowBindings<'a, V> {
    ds: &'a Dataset,
    overlay: &'a [Term],
    table: &'a V,
    row: usize,
}

impl<V: RowValues> hsp_sparql::Bindings for RowBindings<'_, V> {
    fn term(&self, v: Var) -> Option<Term> {
        let id = self.table.row_value(v, self.row);
        if id.is_unbound() {
            None
        } else if crate::pool::is_computed(id) {
            self.overlay
                .get((id.0 - crate::pool::COMPUTED_BASE) as usize)
                .cloned()
        } else {
            Some(self.ds.dict().term(id).clone())
        }
    }
}

/// An operand resolved against a row: an interned id or an out-of-dictionary
/// constant term.
enum Value<'a> {
    Id(TermId),
    Foreign(&'a Term),
}

fn operand_value<'a, V: RowValues>(
    ds: &'a Dataset,
    table: &V,
    operand: &'a Operand,
    row: usize,
) -> Value<'a> {
    match operand {
        Operand::Var(v) => Value::Id(table.row_value(*v, row)),
        Operand::Const(t) => match ds.dict().id(t) {
            Some(id) => Value::Id(id),
            None => Value::Foreign(t),
        },
    }
}

fn compare(ds: &Dataset, op: CmpOp, l: Value<'_>, r: Value<'_>) -> bool {
    // Comparing an unbound value is a SPARQL type error: the filter
    // condition is simply false (OPTIONAL rows carry UNBOUND sentinels).
    if matches!(l, Value::Id(id) if id.is_unbound())
        || matches!(r, Value::Id(id) if id.is_unbound())
    {
        return false;
    }
    // Equality/inequality can use ids directly (interning is injective).
    if let (Value::Id(a), Value::Id(b)) = (&l, &r) {
        match op {
            CmpOp::Eq => return a == b,
            CmpOp::Ne => return a != b,
            _ => {}
        }
    }
    let lt = term_of(ds, &l);
    let rt = term_of(ds, &r);
    let ord = compare_terms(lt, rt);
    match op {
        CmpOp::Eq => ord == std::cmp::Ordering::Equal && lt == rt,
        CmpOp::Ne => !(ord == std::cmp::Ordering::Equal && lt == rt),
        CmpOp::Lt => ord == std::cmp::Ordering::Less,
        CmpOp::Le => ord != std::cmp::Ordering::Greater,
        CmpOp::Gt => ord == std::cmp::Ordering::Greater,
        CmpOp::Ge => ord != std::cmp::Ordering::Less,
    }
}

fn term_of<'a>(ds: &'a Dataset, v: &'a Value<'a>) -> &'a Term {
    match v {
        Value::Id(id) => ds.dict().term(*id),
        Value::Foreign(t) => t,
    }
}

/// SPARQL-ish value comparison: numbers numerically when both literals parse
/// as numbers, otherwise lexical-form comparison (IRIs before literals when
/// kinds differ, for a stable total order).
fn compare_terms(a: &Term, b: &Term) -> std::cmp::Ordering {
    if a.kind() != b.kind() {
        return if a.kind() == TermKind::Iri {
            std::cmp::Ordering::Less
        } else {
            std::cmp::Ordering::Greater
        };
    }
    if let (Some(x), Some(y)) = (a.numeric_value(), b.numeric_value()) {
        return x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal);
    }
    a.lexical().cmp(b.lexical())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsp_rdf::Term;

    fn dataset() -> Dataset {
        Dataset::from_ntriples(
            r#"<http://e/a1> <http://e/p> <http://e/b1> .
<http://e/a1> <http://e/p> <http://e/b2> .
<http://e/a2> <http://e/p> <http://e/b1> .
<http://e/a1> <http://e/q> "5" .
<http://e/a2> <http://e/q> "7" .
<http://e/b1> <http://e/r> "x" .
"#,
        )
        .unwrap()
    }

    fn cv(name: &str) -> TermOrVar {
        TermOrVar::Const(Term::iri(format!("http://e/{name}")))
    }

    fn vv(i: u32) -> TermOrVar {
        TermOrVar::Var(Var(i))
    }

    #[test]
    fn scan_bound_predicate() {
        let ds = dataset();
        let pat = TriplePattern::new(vv(0), cv("p"), vv(1));
        let t = scan(&ds, &pat, Order::Pso);
        assert_eq!(t.len(), 3);
        assert_eq!(t.sorted_by(), Some(Var(0)));
        assert!(t.check_sortedness());
    }

    #[test]
    fn scan_sorted_by_object_side() {
        let ds = dataset();
        let pat = TriplePattern::new(vv(0), cv("p"), vv(1));
        let t = scan(&ds, &pat, Order::Pos);
        assert_eq!(t.len(), 3);
        assert_eq!(t.sorted_by(), Some(Var(1)));
        assert!(t.check_sortedness());
    }

    #[test]
    fn scan_unknown_constant_is_empty() {
        let ds = dataset();
        let pat = TriplePattern::new(vv(0), cv("nope"), vv(1));
        let t = scan(&ds, &pat, Order::Pso);
        assert!(t.is_empty());
    }

    #[test]
    fn scan_full_relation() {
        let ds = dataset();
        let pat = TriplePattern::new(vv(0), vv(1), vv(2));
        let t = scan(&ds, &pat, Order::Spo);
        assert_eq!(t.len(), 6);
        assert_eq!(t.sorted_by(), Some(Var(0)));
    }

    #[test]
    fn scan_repeated_variable_filters() {
        // ?x ?p ?x — no subject equals its object in the fixture.
        let ds = dataset();
        let pat = TriplePattern::new(vv(0), vv(1), vv(0));
        let t = scan(&ds, &pat, Order::Spo);
        assert_eq!(t.len(), 0);
        assert_eq!(t.vars(), &[Var(0), Var(1)]);
    }

    #[test]
    fn merge_join_basic() {
        let ds = dataset();
        let l = scan(&ds, &TriplePattern::new(vv(0), cv("p"), vv(1)), Order::Pso);
        let r = scan(&ds, &TriplePattern::new(vv(0), cv("q"), vv(2)), Order::Pso);
        let j = merge_join(&l, &r, Var(0));
        // a1 has 2 p-edges and 1 q-edge, a2 has 1 and 1: 3 rows.
        assert_eq!(j.len(), 3);
        assert_eq!(j.vars(), &[Var(0), Var(1), Var(2)]);
        assert_eq!(j.sorted_by(), Some(Var(0)));
        assert!(j.check_sortedness());
    }

    #[test]
    fn merge_join_equals_hash_join() {
        let ds = dataset();
        let l = scan(&ds, &TriplePattern::new(vv(0), cv("p"), vv(1)), Order::Pso);
        let r = scan(&ds, &TriplePattern::new(vv(0), cv("q"), vv(2)), Order::Pso);
        let mj = merge_join(&l, &r, Var(0));
        let hj = hash_join(&l, &r, &[Var(0)]);
        assert_eq!(mj.sorted_rows(), hj.sorted_rows());
    }

    #[test]
    fn hash_join_on_chain() {
        let ds = dataset();
        // ?a p ?b  ⋈  ?b r ?c  (s=o join on ?b)
        let l = scan(&ds, &TriplePattern::new(vv(0), cv("p"), vv(1)), Order::Pso);
        let r = scan(&ds, &TriplePattern::new(vv(1), cv("r"), vv(2)), Order::Pso);
        let j = hash_join(&l, &r, &[Var(1)]);
        // b1 has one r-edge; two p-edges end in b1.
        assert_eq!(j.len(), 2);
    }

    #[test]
    #[should_panic(expected = "not sorted by")]
    fn merge_join_rejects_unsorted_input() {
        let ds = dataset();
        let l = scan(&ds, &TriplePattern::new(vv(0), cv("p"), vv(1)), Order::Pso);
        let r = scan(&ds, &TriplePattern::new(vv(0), cv("q"), vv(2)), Order::Pos);
        merge_join(&l, &r, Var(0));
    }

    #[test]
    fn cross_product_counts() {
        let ds = dataset();
        let l = scan(&ds, &TriplePattern::new(vv(0), cv("q"), vv(1)), Order::Pso);
        let r = scan(&ds, &TriplePattern::new(vv(2), cv("r"), vv(3)), Order::Pso);
        let x = cross_product(&l, &r);
        assert_eq!(x.len(), l.len() * r.len());
        assert_eq!(x.vars().len(), 4);
    }

    #[test]
    fn filter_numeric_comparison() {
        let ds = dataset();
        let t = scan(&ds, &TriplePattern::new(vv(0), cv("q"), vv(1)), Order::Pso);
        let expr = FilterExpr::Cmp {
            op: CmpOp::Gt,
            lhs: Operand::Var(Var(1)),
            rhs: Operand::Const(Term::literal("6")),
        };
        let f = filter(&ds, &t, &expr);
        assert_eq!(f.len(), 1); // only "7" > "6"
    }

    #[test]
    fn filter_equality_on_foreign_constant() {
        let ds = dataset();
        let t = scan(&ds, &TriplePattern::new(vv(0), cv("q"), vv(1)), Order::Pso);
        let expr = FilterExpr::Cmp {
            op: CmpOp::Eq,
            lhs: Operand::Var(Var(1)),
            rhs: Operand::Const(Term::literal("not in dict")),
        };
        assert!(filter(&ds, &t, &expr).is_empty());
        let ne = FilterExpr::Cmp {
            op: CmpOp::Ne,
            lhs: Operand::Var(Var(1)),
            rhs: Operand::Const(Term::literal("not in dict")),
        };
        assert_eq!(filter(&ds, &t, &ne).len(), t.len());
    }

    #[test]
    fn project_plain_and_distinct() {
        let ds = dataset();
        let t = scan(&ds, &TriplePattern::new(vv(0), cv("p"), vv(1)), Order::Pso);
        let p = project(&t, &[("s".into(), Var(0))], false);
        assert_eq!(p.len(), 3);
        let d = project(&t, &[("s".into(), Var(0))], true);
        assert_eq!(d.len(), 2); // a1, a2
        assert_eq!(d.sorted_by(), Some(Var(0)));
    }

    #[test]
    fn project_duplicate_entries_share_column() {
        let ds = dataset();
        let t = scan(&ds, &TriplePattern::new(vv(0), cv("p"), vv(1)), Order::Pso);
        let p = project(&t, &[("a".into(), Var(0)), ("b".into(), Var(0))], false);
        assert_eq!(p.vars(), &[Var(0)]);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn sort_by_enforces_order() {
        let ds = dataset();
        // POS scan is sorted by the object; re-sort by the subject.
        let t = scan(&ds, &TriplePattern::new(vv(0), cv("p"), vv(1)), Order::Pos);
        assert_eq!(t.sorted_by(), Some(Var(1)));
        let sorted = sort_by(&t, Var(0));
        assert_eq!(sorted.sorted_by(), Some(Var(0)));
        assert!(sorted.check_sortedness());
        assert_eq!(sorted.len(), t.len());
        assert_eq!(sorted.sorted_rows(), t.sorted_rows());
    }

    #[test]
    fn sort_enables_merge_join() {
        let ds = dataset();
        let l = scan(&ds, &TriplePattern::new(vv(0), cv("p"), vv(1)), Order::Pso);
        let r_wrong_order = scan(&ds, &TriplePattern::new(vv(0), cv("q"), vv(2)), Order::Pos);
        let r = sort_by(&r_wrong_order, Var(0));
        let mj = merge_join(&l, &r, Var(0));
        let hj = hash_join(&l, &r_wrong_order, &[Var(0)]);
        assert_eq!(mj.sorted_rows(), hj.sorted_rows());
    }

    #[test]
    fn left_outer_join_keeps_unmatched_rows() {
        let ds = dataset();
        // ?a p ?b  LEFT OUTER  ?b r ?c: only b1 has an r-edge.
        let l = scan(&ds, &TriplePattern::new(vv(0), cv("p"), vv(1)), Order::Pso);
        let r = scan(&ds, &TriplePattern::new(vv(1), cv("r"), vv(2)), Order::Pso);
        let j = left_outer_hash_join(&l, &r, &[Var(1)]);
        assert_eq!(j.len(), 3); // every p-edge survives
        let c_col = j.column(Var(2));
        let unbound = c_col.iter().filter(|id| id.is_unbound()).count();
        assert_eq!(unbound, 1); // the b2 edge has no r-match
    }

    #[test]
    fn left_outer_join_equals_inner_when_all_match() {
        let ds = dataset();
        let l = scan(&ds, &TriplePattern::new(vv(0), cv("q"), vv(1)), Order::Pso);
        let r = scan(&ds, &TriplePattern::new(vv(0), cv("p"), vv(2)), Order::Pso);
        let outer = left_outer_hash_join(&l, &r, &[Var(0)]);
        let inner = hash_join(&l, &r, &[Var(0)]);
        assert_eq!(outer.sorted_rows(), inner.sorted_rows());
    }

    #[test]
    fn union_all_pads_missing_columns() {
        let ds = dataset();
        let a = scan(&ds, &TriplePattern::new(vv(0), cv("q"), vv(1)), Order::Pso);
        let b = scan(&ds, &TriplePattern::new(vv(0), cv("r"), vv(2)), Order::Pso);
        let u = union_all(&a, &b);
        assert_eq!(u.len(), a.len() + b.len());
        assert_eq!(u.vars(), &[Var(0), Var(1), Var(2)]);
        // Rows from `a` have UNBOUND in ?2; rows from `b` in ?1.
        assert!(u.column(Var(2))[..a.len()].iter().all(|id| id.is_unbound()));
        assert!(u.column(Var(1))[a.len()..].iter().all(|id| id.is_unbound()));
    }

    #[test]
    fn filter_on_unbound_is_false() {
        let ds = dataset();
        let l = scan(&ds, &TriplePattern::new(vv(0), cv("p"), vv(1)), Order::Pso);
        let r = scan(&ds, &TriplePattern::new(vv(1), cv("r"), vv(2)), Order::Pso);
        let j = left_outer_hash_join(&l, &r, &[Var(1)]);
        // ?c = "x" keeps matched rows only; ?c != "x" keeps NO unbound rows
        // either (type error semantics).
        let eq = FilterExpr::Cmp {
            op: CmpOp::Eq,
            lhs: Operand::Var(Var(2)),
            rhs: Operand::Const(Term::literal("x")),
        };
        assert_eq!(filter(&ds, &j, &eq).len(), 2);
        let ne = FilterExpr::Cmp {
            op: CmpOp::Ne,
            lhs: Operand::Var(Var(2)),
            rhs: Operand::Const(Term::literal("x")),
        };
        assert_eq!(filter(&ds, &j, &ne).len(), 0);
    }

    #[test]
    fn scan_fully_ground_pattern_is_unit() {
        let ds = dataset();
        let present = TriplePattern::new(cv("a1"), cv("p"), cv("b1"));
        let t = scan(&ds, &present, Order::Spo);
        assert_eq!(t.len(), 1);
        assert!(t.vars().is_empty());
        let absent = TriplePattern::new(cv("a1"), cv("p"), cv("b9"));
        assert_eq!(scan(&ds, &absent, Order::Spo).len(), 0);
    }

    #[test]
    fn cross_product_with_unit_table_keeps_rows() {
        let ds = dataset();
        let l = scan(
            &ds,
            &TriplePattern::new(cv("a1"), cv("p"), cv("b1")),
            Order::Spo,
        );
        let r = scan(&ds, &TriplePattern::new(vv(0), cv("q"), vv(1)), Order::Pso);
        let x = cross_product(&l, &r);
        assert_eq!(x.len(), 2); // 1 unit row × 2 q-rows
        assert_eq!(x.vars(), &[Var(0), Var(1)]);
        // An absent ground pattern annihilates the product.
        let l0 = scan(
            &ds,
            &TriplePattern::new(cv("a1"), cv("p"), cv("b9")),
            Order::Spo,
        );
        assert_eq!(cross_product(&l0, &r).len(), 0);
    }

    #[test]
    fn empty_projection_keeps_row_count() {
        let ds = dataset();
        let t = scan(&ds, &TriplePattern::new(vv(0), cv("p"), vv(1)), Order::Pso);
        let p = project(&t, &[], false);
        assert_eq!(p.len(), 3);
        assert!(p.vars().is_empty());
        assert_eq!(project(&t, &[], true).len(), 1);
    }

    #[test]
    fn complex_filter_regex() {
        let ds = Dataset::from_ntriples(
            r#"<http://e/j1> <http://e/title> "Journal 1 (1940)" .
<http://e/j2> <http://e/title> "Journal 1 (1952)" .
<http://e/j3> <http://e/title> "Article 9" .
"#,
        )
        .unwrap();
        // Scan all titles, keep those matching \(19\d\d\).
        let t = scan(
            &ds,
            &TriplePattern::new(vv(0), TermOrVar::Const(Term::iri("http://e/title")), vv(1)),
            Order::Pso,
        );
        assert_eq!(t.len(), 3);
        let expr = FilterExpr::Complex(Box::new(hsp_sparql::Expr::Call {
            func: hsp_sparql::Func::Regex,
            args: vec![
                hsp_sparql::Expr::Var(Var(1)),
                hsp_sparql::Expr::Const(Term::literal(r"\(19\d\d\)")),
            ],
        }));
        let out = filter(&ds, &t, &expr);
        assert_eq!(out.len(), 2);
        // Sortedness is preserved by filtering.
        assert_eq!(out.sorted_by(), t.sorted_by());
    }

    #[test]
    fn complex_filter_arithmetic_on_typed_literals() {
        let ds = Dataset::from_ntriples(
            r#"<http://e/a> <http://e/pages> "10"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://e/b> <http://e/pages> "25"^^<http://www.w3.org/2001/XMLSchema#integer> .
"#,
        )
        .unwrap();
        let t = scan(
            &ds,
            &TriplePattern::new(vv(0), TermOrVar::Const(Term::iri("http://e/pages")), vv(1)),
            Order::Pso,
        );
        // FILTER (?pages * 2 > 30)
        let expr = FilterExpr::Complex(Box::new(hsp_sparql::Expr::Cmp {
            op: CmpOp::Gt,
            lhs: Box::new(hsp_sparql::Expr::Arith {
                op: hsp_sparql::ArithOp::Mul,
                lhs: Box::new(hsp_sparql::Expr::Var(Var(1))),
                rhs: Box::new(hsp_sparql::Expr::Const(Term::typed_literal(
                    "2",
                    hsp_rdf::vocab::XSD_INTEGER,
                ))),
            }),
            rhs: Box::new(hsp_sparql::Expr::Const(Term::typed_literal(
                "30",
                hsp_rdf::vocab::XSD_INTEGER,
            ))),
        }));
        let out = filter(&ds, &t, &expr);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn complex_filter_unbound_var_drops_row() {
        let ds = dataset();
        let t = scan(&ds, &TriplePattern::new(vv(0), cv("p"), vv(1)), Order::Pso);
        // FILTER on a variable not in the table: every row errors → empty.
        let expr = FilterExpr::Complex(Box::new(hsp_sparql::Expr::Cmp {
            op: CmpOp::Eq,
            lhs: Box::new(hsp_sparql::Expr::Var(Var(9))),
            rhs: Box::new(hsp_sparql::Expr::Const(Term::literal("x"))),
        }));
        assert_eq!(filter(&ds, &t, &expr).len(), 0);
        // …but BOUND(?v9) = false keeps them all.
        let expr = FilterExpr::Complex(Box::new(hsp_sparql::Expr::Not(Box::new(
            hsp_sparql::Expr::Call {
                func: hsp_sparql::Func::Bound,
                args: vec![hsp_sparql::Expr::Var(Var(9))],
            },
        ))));
        assert_eq!(filter(&ds, &t, &expr).len(), t.len());
    }

    #[test]
    fn order_by_sparql_value_order() {
        let ds = Dataset::from_ntriples(
            r#"<http://e/a> <http://e/n> "10"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://e/b> <http://e/n> "9"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://e/c> <http://e/n> "100"^^<http://www.w3.org/2001/XMLSchema#integer> .
"#,
        )
        .unwrap();
        let t = scan(
            &ds,
            &TriplePattern::new(vv(0), TermOrVar::Const(Term::iri("http://e/n")), vv(1)),
            Order::Pso,
        );
        let keys = vec![hsp_sparql::SortKey {
            expr: hsp_sparql::Expr::Var(Var(1)),
            descending: false,
        }];
        let sorted = order_by(&ds, &t, &keys);
        // Numeric order 9 < 10 < 100, not lexicographic "10" < "100" < "9".
        let vals: Vec<String> = (0..sorted.len())
            .map(|i| {
                ds.dict()
                    .term(sorted.value(Var(1), i))
                    .lexical()
                    .to_string()
            })
            .collect();
        assert_eq!(vals, vec!["9", "10", "100"]);
        // Descending reverses.
        let keys = vec![hsp_sparql::SortKey {
            expr: hsp_sparql::Expr::Var(Var(1)),
            descending: true,
        }];
        let sorted = order_by(&ds, &t, &keys);
        assert_eq!(ds.dict().term(sorted.value(Var(1), 0)).lexical(), "100");
    }

    #[test]
    fn order_by_is_stable_on_ties() {
        let ds = dataset();
        let t = scan(&ds, &TriplePattern::new(vv(0), cv("p"), vv(1)), Order::Pso);
        // Sort by a constant key: every row ties, order must be unchanged.
        let keys = vec![hsp_sparql::SortKey {
            expr: hsp_sparql::Expr::Const(Term::literal("same")),
            descending: false,
        }];
        let sorted = order_by(&ds, &t, &keys);
        assert_eq!(sorted.sorted_rows(), t.sorted_rows());
        for i in 0..t.len() {
            assert_eq!(sorted.row(i), t.row(i));
        }
    }

    #[test]
    fn slice_bounds() {
        let ds = dataset();
        let t = scan(&ds, &TriplePattern::new(vv(0), cv("p"), vv(1)), Order::Pso);
        assert_eq!(t.len(), 3);
        assert_eq!(slice(&t, 0, Some(2)).len(), 2);
        assert_eq!(slice(&t, 1, Some(2)).len(), 2);
        assert_eq!(slice(&t, 2, Some(2)).len(), 1);
        assert_eq!(slice(&t, 5, Some(2)).len(), 0);
        assert_eq!(slice(&t, 0, None).len(), 3);
        assert_eq!(slice(&t, 1, None).len(), 2);
        // offset+limit partition the input.
        let a = slice(&t, 0, Some(1));
        let b = slice(&t, 1, None);
        assert_eq!(a.len() + b.len(), t.len());
        assert_eq!(a.row(0), t.row(0));
        assert_eq!(b.row(0), t.row(1));
        // Slicing preserves sortedness metadata.
        assert_eq!(slice(&t, 1, Some(1)).sorted_by(), t.sorted_by());
    }

    /// A forced-parallel context: tiny morsels, no row threshold, so even
    /// unit-test-sized inputs cross several morsels per worker.
    fn forced_ctx(threads: usize) -> ExecContext {
        ExecContext::with_morsel_config(
            crate::morsel::MorselConfig::with_threads(threads)
                .with_morsel_rows(64)
                .with_min_parallel_rows(0),
        )
    }

    /// Deterministic pseudo-random tables big enough to span many morsels.
    fn big_join_inputs(n: usize) -> (BindingTable, BindingTable) {
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move |m: u32| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 33) as u32 % m
        };
        let keys = (n / 4).max(1) as u32;
        let lk: Vec<TermId> = (0..n).map(|_| TermId(next(keys))).collect();
        let rk: Vec<TermId> = (0..n).map(|_| TermId(next(keys))).collect();
        let lp: Vec<TermId> = (0..n as u32).map(|i| TermId(1_000_000 + i)).collect();
        let rp: Vec<TermId> = (0..n as u32).map(|i| TermId(2_000_000 + i)).collect();
        (
            BindingTable::from_columns(vec![Var(0), Var(1)], vec![lk, lp], None),
            BindingTable::from_columns(vec![Var(0), Var(2)], vec![rk, rp], None),
        )
    }

    #[test]
    fn morsel_probe_is_byte_identical_to_sequential() {
        let (l, r) = big_join_inputs(3_000);
        let sequential = hash_join_in(&ExecContext::with_threads(1), &l, &r, &[Var(0)]);
        for threads in 2..=4 {
            let ctx = forced_ctx(threads);
            let parallel = hash_join_in(&ctx, &l, &r, &[Var(0)]);
            // Full structural equality: same columns, same row order, same
            // metadata — not just the same row multiset.
            assert_eq!(parallel, sequential, "threads={threads}");
            // Two parallel kernels: the build phase and the probe.
            assert_eq!(ctx.parallel_kernels(), 2);
            assert_eq!(ctx.parallel_builds(), 1);
            assert!(ctx.morsels_run() > 1);
        }
    }

    #[test]
    fn morsel_outer_probe_is_byte_identical_to_sequential() {
        let (l, r) = big_join_inputs(2_000);
        let sequential = left_outer_hash_join_in(&ExecContext::with_threads(1), &l, &r, &[Var(0)]);
        for threads in 2..=4 {
            let parallel = left_outer_hash_join_in(&forced_ctx(threads), &l, &r, &[Var(0)]);
            assert_eq!(parallel, sequential, "threads={threads}");
        }
    }

    #[test]
    fn morsel_probe_with_extra_shared_var_is_identical() {
        // Shared non-key column ?1 on both sides: the extra-pair check runs
        // inside every worker.
        let n = 1_500;
        let (l0, r0) = big_join_inputs(n);
        let shared: Vec<TermId> = (0..n as u32).map(|i| TermId(i % 7)).collect();
        let l = BindingTable::from_columns(
            vec![Var(0), Var(1)],
            vec![l0.column(Var(0)).to_vec(), shared.clone()],
            None,
        );
        let r = BindingTable::from_columns(
            vec![Var(0), Var(1)],
            vec![r0.column(Var(0)).to_vec(), shared],
            None,
        );
        let sequential = hash_join_in(&ExecContext::with_threads(1), &l, &r, &[Var(0)]);
        for threads in 2..=4 {
            let parallel = hash_join_in(&forced_ctx(threads), &l, &r, &[Var(0)]);
            assert_eq!(parallel, sequential, "threads={threads}");
        }
    }

    #[test]
    fn parallel_scan_is_byte_identical_to_sequential() {
        // 300 triples: several 64-row morsels under the forced config.
        let mut doc = String::new();
        for i in 0..300 {
            doc.push_str(&format!(
                "<http://e/s{}> <http://e/p> <http://e/o{i}> .\n",
                i % 40
            ));
        }
        let ds = Dataset::from_ntriples(&doc).unwrap();
        let pat = TriplePattern::new(vv(0), cv("p"), vv(1));
        let sequential = scan_in(&ExecContext::with_threads(1), &ds, &pat, Order::Pso);
        for threads in 2..=4 {
            let parallel = scan_in(&forced_ctx(threads), &ds, &pat, Order::Pso);
            assert_eq!(parallel, sequential, "threads={threads}");
        }
        // Repeated-variable path (morsel-at-a-time selection): ?x p ?x.
        let pat = TriplePattern::new(vv(0), cv("p"), vv(0));
        let sequential = scan_in(&ExecContext::with_threads(1), &ds, &pat, Order::Pso);
        for threads in 2..=4 {
            let parallel = scan_in(&forced_ctx(threads), &ds, &pat, Order::Pso);
            assert_eq!(parallel, sequential, "threads={threads}");
        }
    }

    /// Sorted variants of [`big_join_inputs`] for the merge-join tests.
    fn big_sorted_inputs(n: usize) -> (BindingTable, BindingTable) {
        let (l, r) = big_join_inputs(n);
        (sort_by(&l, Var(0)), sort_by(&r, Var(0)))
    }

    #[test]
    fn parallel_build_table_join_is_byte_identical_to_sequential() {
        // Both sides large: the *build* side (right) clears the forced
        // threshold, so the partitioned counting sort runs.
        let (l, r) = big_join_inputs(3_000);
        let sequential = hash_join_in(&ExecContext::with_threads(1), &l, &r, &[Var(0)]);
        for threads in 2..=4 {
            let ctx = forced_ctx(threads);
            let parallel = hash_join_in(&ctx, &l, &r, &[Var(0)]);
            assert_eq!(parallel, sequential, "threads={threads}");
            assert_eq!(ctx.parallel_builds(), 1, "threads={threads}");
        }
    }

    #[test]
    fn parallel_merge_join_is_byte_identical_to_sequential() {
        let (l, r) = big_sorted_inputs(3_000);
        let sequential = merge_join_in(&ExecContext::with_threads(1), &l, &r, Var(0));
        for threads in 2..=4 {
            let ctx = forced_ctx(threads);
            let parallel = merge_join_in(&ctx, &l, &r, Var(0));
            assert_eq!(parallel, sequential, "threads={threads}");
            assert!(ctx.merge_partitions() >= 1, "threads={threads}");
            assert_eq!(ctx.parallel_kernels(), 1, "threads={threads}");
        }
    }

    #[test]
    fn parallel_merge_join_with_extra_shared_var_is_identical() {
        // Shared non-key column ?1: the extra-pair check runs inside every
        // partition's cursor pair.
        let n = 2_000;
        let (l0, r0) = big_join_inputs(n);
        let shared: Vec<TermId> = (0..n as u32).map(|i| TermId(i % 5)).collect();
        let mut lk = l0.column(Var(0)).to_vec();
        let mut rk = r0.column(Var(0)).to_vec();
        lk.sort_unstable();
        rk.sort_unstable();
        let l = BindingTable::from_columns(
            vec![Var(0), Var(1)],
            vec![lk, shared.clone()],
            Some(Var(0)),
        );
        let r = BindingTable::from_columns(vec![Var(0), Var(1)], vec![rk, shared], Some(Var(0)));
        let sequential = merge_join_in(&ExecContext::with_threads(1), &l, &r, Var(0));
        for threads in 2..=4 {
            let parallel = merge_join_in(&forced_ctx(threads), &l, &r, Var(0));
            assert_eq!(parallel, sequential, "threads={threads}");
        }
    }

    #[test]
    fn parallel_merge_join_single_giant_key_group_degenerates() {
        // Every key equal: all split targets snap to position 0, so the
        // dedup leaves one partition and the join runs as a single task.
        let n = 1_000;
        let keys = vec![TermId(7); n];
        let lp: Vec<TermId> = (0..n as u32).map(|i| TermId(1_000 + i)).collect();
        let rp: Vec<TermId> = (0..n as u32).map(|i| TermId(50_000 + i)).collect();
        let l =
            BindingTable::from_columns(vec![Var(0), Var(1)], vec![keys.clone(), lp], Some(Var(0)));
        let r = BindingTable::from_columns(vec![Var(0), Var(2)], vec![keys, rp], Some(Var(0)));
        let sequential = merge_join_in(&ExecContext::with_threads(1), &l, &r, Var(0));
        assert_eq!(sequential.len(), n * n);
        for threads in 2..=4 {
            let parallel = merge_join_in(&forced_ctx(threads), &l, &r, Var(0));
            assert_eq!(parallel, sequential, "threads={threads}");
        }
    }

    /// A dataset of `n` title triples, roughly half matching `\(19\d\d\)`.
    fn titles_dataset(n: usize) -> Dataset {
        let mut doc = String::new();
        for i in 0..n {
            let year = 1900 + (i % 200); // 19xx and 20xx alternate by century
            doc.push_str(&format!(
                "<http://e/j{i}> <http://e/title> \"Journal {i} ({year})\" .\n"
            ));
        }
        Dataset::from_ntriples(&doc).unwrap()
    }

    #[test]
    fn parallel_filter_is_byte_identical_to_sequential() {
        let ds = titles_dataset(800);
        let pat = TriplePattern::new(vv(0), TermOrVar::Const(Term::iri("http://e/title")), vv(1));
        let t = scan(&ds, &pat, Order::Pso);
        // A REGEX filter: every worker compiles the pattern into its own
        // evaluator's cache.
        let expr = FilterExpr::Complex(Box::new(hsp_sparql::Expr::Call {
            func: hsp_sparql::Func::Regex,
            args: vec![
                hsp_sparql::Expr::Var(Var(1)),
                hsp_sparql::Expr::Const(Term::literal(r"\(19\d\d\)")),
            ],
        }));
        let sequential = filter_in(&ExecContext::with_threads(1), &ds, &t, &expr);
        assert!(!sequential.is_empty() && sequential.len() < t.len());
        for threads in 2..=4 {
            let ctx = forced_ctx(threads);
            let parallel = filter_in(&ctx, &ds, &t, &expr);
            assert_eq!(parallel, sequential, "threads={threads}");
            assert_eq!(ctx.parallel_filters(), 1, "threads={threads}");
        }
    }

    #[test]
    fn parallel_order_by_is_byte_identical_to_sequential() {
        let ds = titles_dataset(500);
        let pat = TriplePattern::new(vv(0), TermOrVar::Const(Term::iri("http://e/title")), vv(1));
        let t = scan(&ds, &pat, Order::Pso);
        for descending in [false, true] {
            let keys = vec![hsp_sparql::SortKey {
                expr: hsp_sparql::Expr::Var(Var(1)),
                descending,
            }];
            let sequential = order_by_in(&ExecContext::with_threads(1), &ds, &t, &keys);
            for threads in 2..=4 {
                let ctx = forced_ctx(threads);
                let parallel = order_by_in(&ctx, &ds, &t, &keys);
                assert_eq!(parallel, sequential, "threads={threads} desc={descending}");
                assert_eq!(ctx.parallel_filters(), 1);
            }
        }
    }

    #[test]
    fn pooled_join_reuses_buffers_across_operators() {
        let (l, r) = big_join_inputs(500);
        let ctx = ExecContext::with_threads(1);
        let first = hash_join_in(&ctx, &l, &r, &[Var(0)]);
        ctx.pool.recycle(first.clone());
        let second = hash_join_in(&ctx, &l, &r, &[Var(0)]);
        assert_eq!(first, second);
        let stats = ctx.pool.stats();
        assert!(
            stats.hits > 0,
            "second join should reuse recycled buffers: {stats:?}"
        );
    }

    #[test]
    fn merge_join_with_extra_shared_var() {
        // Both inputs bind ?0 and ?1; join on ?0, ?1 must match too.
        let l = BindingTable::from_columns(
            vec![Var(0), Var(1)],
            vec![
                vec![TermId(1), TermId(1), TermId(2)],
                vec![TermId(5), TermId(6), TermId(7)],
            ],
            Some(Var(0)),
        );
        let r = BindingTable::from_columns(
            vec![Var(0), Var(1)],
            vec![vec![TermId(1), TermId(2)], vec![TermId(6), TermId(9)]],
            Some(Var(0)),
        );
        let j = merge_join(&l, &r, Var(0));
        assert_eq!(j.len(), 1); // only (1, 6) matches on both columns
        assert_eq!(j.row(0), vec![TermId(1), TermId(6)]);
    }
}
