//! The scalar, row-at-a-time join kernels the engine shipped with before
//! the vectorized rework, plus a naive nested-loop join.
//!
//! These are kept as the **differential-testing oracle** (the property
//! tests assert the vectorized kernels in [`crate::ops`] produce identical
//! row-sets) and as the **baseline side of the kernel benchmarks**
//! (`benches/operators.rs` reports vectorized speedup against them). They
//! are correct and simple, but they pay a per-value `col_index` lookup in
//! `value()`, a per-probe `Vec<TermId>` key allocation, and a per-row
//! `push_row`; do not use them on hot paths.

use std::collections::HashMap;

use hsp_rdf::TermId;
use hsp_sparql::Var;

use crate::binding::BindingTable;
use crate::ops::join_layout;

/// Row-at-a-time sort-merge join on `var` (the pre-vectorization kernel).
///
/// # Panics
/// Panics if an input is not sorted by `var`.
pub fn merge_join(left: &BindingTable, right: &BindingTable, var: Var) -> BindingTable {
    assert_eq!(
        left.sorted_by(),
        Some(var),
        "merge join: left not sorted by {var}"
    );
    assert_eq!(
        right.sorted_by(),
        Some(var),
        "merge join: right not sorted by {var}"
    );

    let (out_vars, right_extra, extra_shared) = join_layout(left, right, &[var]);
    let lcol = left.column(var);
    let rcol = right.column(var);
    let extra_pairs: Vec<(&[TermId], &[TermId])> = extra_shared
        .iter()
        .map(|&v| (left.column(v), right.column(v)))
        .collect();

    let mut out = BindingTable::empty(out_vars.clone());
    let (mut i, mut j) = (0usize, 0usize);
    let mut row_buf: Vec<TermId> = Vec::with_capacity(out_vars.len());
    while i < lcol.len() && j < rcol.len() {
        let (a, b) = (lcol[i], rcol[j]);
        if a < b {
            i += 1;
        } else if b < a {
            j += 1;
        } else {
            let i_end = i + lcol[i..].partition_point(|&x| x == a);
            let j_end = j + rcol[j..].partition_point(|&x| x == a);
            for li in i..i_end {
                for rj in j..j_end {
                    if !extra_pairs.iter().all(|(lc, rc)| lc[li] == rc[rj]) {
                        continue;
                    }
                    row_buf.clear();
                    for &v in left.vars() {
                        row_buf.push(left.value(v, li));
                    }
                    for &v in &right_extra {
                        row_buf.push(right.value(v, rj));
                    }
                    out.push_row(&row_buf);
                }
            }
            i = i_end;
            j = j_end;
        }
    }
    out.set_sorted_by(Some(var));
    out
}

/// Row-at-a-time hash join on `vars` over a SipHash `HashMap` keyed by
/// per-row `Vec<TermId>` keys (the pre-vectorization kernel).
///
/// # Panics
/// Panics if `vars` is empty or not shared by both inputs.
pub fn hash_join(left: &BindingTable, right: &BindingTable, vars: &[Var]) -> BindingTable {
    assert!(!vars.is_empty(), "hash join needs at least one variable");
    for &v in vars {
        assert!(
            left.vars().contains(&v),
            "hash join var {v} missing from left"
        );
        assert!(
            right.vars().contains(&v),
            "hash join var {v} missing from right"
        );
    }
    let (out_vars, right_extra, extra_shared) = join_layout(left, right, vars);

    let mut table: HashMap<Vec<TermId>, Vec<usize>> = HashMap::new();
    for j in 0..right.len() {
        let key: Vec<TermId> = vars.iter().map(|&v| right.value(v, j)).collect();
        table.entry(key).or_default().push(j);
    }

    let mut out = BindingTable::empty(out_vars.clone());
    let mut key_buf: Vec<TermId> = Vec::with_capacity(vars.len());
    let mut row_buf: Vec<TermId> = Vec::with_capacity(out_vars.len());
    for i in 0..left.len() {
        key_buf.clear();
        key_buf.extend(vars.iter().map(|&v| left.value(v, i)));
        let Some(matches) = table.get(key_buf.as_slice()) else {
            continue;
        };
        for &j in matches {
            if !extra_shared
                .iter()
                .all(|&v| left.value(v, i) == right.value(v, j))
            {
                continue;
            }
            row_buf.clear();
            for &v in left.vars() {
                row_buf.push(left.value(v, i));
            }
            for &v in &right_extra {
                row_buf.push(right.value(v, j));
            }
            out.push_row(&row_buf);
        }
    }
    out.set_sorted_by(left.sorted_by());
    out
}

/// Row-at-a-time Cartesian product (the pre-vectorization kernel).
///
/// # Panics
/// Panics if the inputs share a variable.
pub fn cross_product(left: &BindingTable, right: &BindingTable) -> BindingTable {
    let shared: Vec<Var> = left
        .vars()
        .iter()
        .copied()
        .filter(|v| right.vars().contains(v))
        .collect();
    assert!(shared.is_empty(), "cross product inputs share {shared:?}");

    let mut out_vars = left.vars().to_vec();
    out_vars.extend_from_slice(right.vars());
    let mut out = BindingTable::empty(out_vars.clone());
    let mut row_buf: Vec<TermId> = Vec::with_capacity(out_vars.len());
    for i in 0..left.len() {
        for j in 0..right.len() {
            row_buf.clear();
            for &v in left.vars() {
                row_buf.push(left.value(v, i));
            }
            for &v in right.vars() {
                row_buf.push(right.value(v, j));
            }
            out.push_row(&row_buf);
        }
    }
    if !right.is_empty() {
        out.set_sorted_by(left.sorted_by());
    }
    out
}

/// Nested-loop inner join on **all** shared variables — the simplest
/// possible oracle: for every `(left row, right row)` pair, emit the
/// combined row iff the shared variables agree. Output rows come back as a
/// sorted row-set over `left.vars() ++ right-only vars`, ready to compare
/// with `sorted_rows()` of any join kernel's output.
pub fn nested_loop_join_rows(left: &BindingTable, right: &BindingTable) -> Vec<Vec<TermId>> {
    let shared: Vec<Var> = left
        .vars()
        .iter()
        .copied()
        .filter(|v| right.vars().contains(v))
        .collect();
    let right_extra: Vec<Var> = right
        .vars()
        .iter()
        .copied()
        .filter(|v| !left.vars().contains(v))
        .collect();
    let mut rows = Vec::new();
    for i in 0..left.len() {
        for j in 0..right.len() {
            if !shared
                .iter()
                .all(|&v| left.value(v, i) == right.value(v, j))
            {
                continue;
            }
            let mut row: Vec<TermId> = left.vars().iter().map(|&v| left.value(v, i)).collect();
            row.extend(right_extra.iter().map(|&v| right.value(v, j)));
            rows.push(row);
        }
    }
    rows.sort();
    rows
}
