//! The scalar, row-at-a-time join kernels the engine shipped with before
//! the vectorized rework, plus a naive nested-loop join.
//!
//! These are kept as the **differential-testing oracle** (the property
//! tests assert the vectorized kernels in [`crate::ops`] produce identical
//! row-sets) and as the **baseline side of the kernel benchmarks**
//! (`benches/operators.rs` reports vectorized speedup against them). They
//! are correct and simple, but they pay a per-value `col_index` lookup in
//! `value()`, a per-probe `Vec<TermId>` key allocation, and a per-row
//! `push_row`; do not use them on hot paths.

use std::collections::{HashMap, HashSet};

use hsp_rdf::TermId;
use hsp_sparql::expr::{arith, compare_for_order};
use hsp_sparql::{AggFunc, AggSpec, ArithOp, Value, Var};
use hsp_store::Dataset;

use crate::aggregate::{apply_having, describe, AggError};
use crate::binding::BindingTable;
use crate::ops::join_layout;
use crate::pool::ExecContext;

/// Row-at-a-time sort-merge join on `var` (the pre-vectorization kernel).
///
/// # Panics
/// Panics if an input is not sorted by `var`.
pub fn merge_join(left: &BindingTable, right: &BindingTable, var: Var) -> BindingTable {
    assert_eq!(
        left.sorted_by(),
        Some(var),
        "merge join: left not sorted by {var}"
    );
    assert_eq!(
        right.sorted_by(),
        Some(var),
        "merge join: right not sorted by {var}"
    );

    let (out_vars, right_extra, extra_shared) = join_layout(left, right, &[var]);
    let lcol = left.column(var);
    let rcol = right.column(var);
    let extra_pairs: Vec<(&[TermId], &[TermId])> = extra_shared
        .iter()
        .map(|&v| (left.column(v), right.column(v)))
        .collect();

    let mut out = BindingTable::empty(out_vars.clone());
    let (mut i, mut j) = (0usize, 0usize);
    let mut row_buf: Vec<TermId> = Vec::with_capacity(out_vars.len());
    while i < lcol.len() && j < rcol.len() {
        let (a, b) = (lcol[i], rcol[j]);
        if a < b {
            i += 1;
        } else if b < a {
            j += 1;
        } else {
            let i_end = i + lcol[i..].partition_point(|&x| x == a);
            let j_end = j + rcol[j..].partition_point(|&x| x == a);
            for li in i..i_end {
                for rj in j..j_end {
                    if !extra_pairs.iter().all(|(lc, rc)| lc[li] == rc[rj]) {
                        continue;
                    }
                    row_buf.clear();
                    for &v in left.vars() {
                        row_buf.push(left.value(v, li));
                    }
                    for &v in &right_extra {
                        row_buf.push(right.value(v, rj));
                    }
                    out.push_row(&row_buf);
                }
            }
            i = i_end;
            j = j_end;
        }
    }
    out.set_sorted_by(Some(var));
    out
}

/// Row-at-a-time hash join on `vars` over a SipHash `HashMap` keyed by
/// per-row `Vec<TermId>` keys (the pre-vectorization kernel).
///
/// # Panics
/// Panics if `vars` is empty or not shared by both inputs.
pub fn hash_join(left: &BindingTable, right: &BindingTable, vars: &[Var]) -> BindingTable {
    assert!(!vars.is_empty(), "hash join needs at least one variable");
    for &v in vars {
        assert!(
            left.vars().contains(&v),
            "hash join var {v} missing from left"
        );
        assert!(
            right.vars().contains(&v),
            "hash join var {v} missing from right"
        );
    }
    let (out_vars, right_extra, extra_shared) = join_layout(left, right, vars);

    let mut table: HashMap<Vec<TermId>, Vec<usize>> = HashMap::new();
    for j in 0..right.len() {
        let key: Vec<TermId> = vars.iter().map(|&v| right.value(v, j)).collect();
        table.entry(key).or_default().push(j);
    }

    let mut out = BindingTable::empty(out_vars.clone());
    let mut key_buf: Vec<TermId> = Vec::with_capacity(vars.len());
    let mut row_buf: Vec<TermId> = Vec::with_capacity(out_vars.len());
    for i in 0..left.len() {
        key_buf.clear();
        key_buf.extend(vars.iter().map(|&v| left.value(v, i)));
        let Some(matches) = table.get(key_buf.as_slice()) else {
            continue;
        };
        for &j in matches {
            if !extra_shared
                .iter()
                .all(|&v| left.value(v, i) == right.value(v, j))
            {
                continue;
            }
            row_buf.clear();
            for &v in left.vars() {
                row_buf.push(left.value(v, i));
            }
            for &v in &right_extra {
                row_buf.push(right.value(v, j));
            }
            out.push_row(&row_buf);
        }
    }
    out.set_sorted_by(left.sorted_by());
    out
}

/// Row-at-a-time Cartesian product (the pre-vectorization kernel).
///
/// # Panics
/// Panics if the inputs share a variable.
pub fn cross_product(left: &BindingTable, right: &BindingTable) -> BindingTable {
    let shared: Vec<Var> = left
        .vars()
        .iter()
        .copied()
        .filter(|v| right.vars().contains(v))
        .collect();
    assert!(shared.is_empty(), "cross product inputs share {shared:?}");

    let mut out_vars = left.vars().to_vec();
    out_vars.extend_from_slice(right.vars());
    let mut out = BindingTable::empty(out_vars.clone());
    let mut row_buf: Vec<TermId> = Vec::with_capacity(out_vars.len());
    for i in 0..left.len() {
        for j in 0..right.len() {
            row_buf.clear();
            for &v in left.vars() {
                row_buf.push(left.value(v, i));
            }
            for &v in right.vars() {
                row_buf.push(right.value(v, j));
            }
            out.push_row(&row_buf);
        }
    }
    if !right.is_empty() {
        out.set_sorted_by(left.sorted_by());
    }
    out
}

/// Row-at-a-time grouped aggregation — the operator-at-a-time evaluator's
/// implementation and the differential oracle for the morsel-parallel
/// two-phase breaker in [`crate::aggregate`]. One pass collects each
/// group's row indices (first-seen order); a second pass walks each
/// group's rows *in input order* computing every aggregate the naive way.
/// Output layout, empty-input semantics, computed-term interning order
/// (row-major), and `HAVING` application match the pipeline breaker
/// exactly — the conformance suite asserts byte-identical tables.
pub fn hash_aggregate(
    ctx: &ExecContext,
    ds: &Dataset,
    input: &BindingTable,
    group_by: &[Var],
    aggs: &[AggSpec],
    having: Option<&hsp_sparql::Expr>,
) -> Result<BindingTable, AggError> {
    let mut keys: Vec<Vec<TermId>> = Vec::new();
    let mut index: HashMap<Vec<TermId>, usize> = HashMap::new();
    let mut rows_of: Vec<Vec<usize>> = Vec::new();
    for i in 0..input.len() {
        let key: Vec<TermId> = group_by.iter().map(|&v| input.value(v, i)).collect();
        let g = *index.entry(key.clone()).or_insert_with(|| {
            keys.push(key);
            rows_of.push(Vec::new());
            keys.len() - 1
        });
        rows_of[g].push(i);
    }
    // Ungrouped empty input: one implicit empty group (COUNT 0, SUM 0,
    // AVG 0, MIN/MAX unbound); grouped empty input: zero rows.
    if keys.is_empty() && group_by.is_empty() {
        keys.push(Vec::new());
        rows_of.push(Vec::new());
    }

    let mut out_vars: Vec<Var> = group_by.to_vec();
    out_vars.extend(aggs.iter().map(|a| a.out));
    let mut out = BindingTable::empty(out_vars);
    let mut row_buf: Vec<TermId> = Vec::new();
    for (key, rows) in keys.iter().zip(&rows_of) {
        row_buf.clear();
        row_buf.extend_from_slice(key);
        for spec in aggs {
            row_buf.push(reference_agg(ctx, ds, input, spec, rows)?);
        }
        out.push_row(&row_buf);
    }
    match having {
        Some(h) => Ok(apply_having(out, h, ctx, ds)),
        None => Ok(out),
    }
}

/// One aggregate over one group's rows, the naive way.
fn reference_agg(
    ctx: &ExecContext,
    ds: &Dataset,
    input: &BindingTable,
    spec: &AggSpec,
    rows: &[usize],
) -> Result<TermId, AggError> {
    // The group's bound argument values, in input row order, deduplicated
    // when the spec says DISTINCT. `None` only for `COUNT(*)`.
    let args: Option<Vec<TermId>> = spec.arg.map(|v| {
        let mut seen: HashSet<TermId> = HashSet::new();
        rows.iter()
            .map(|&i| input.value(v, i))
            .filter(|id| !id.is_unbound())
            .filter(|&id| !spec.distinct || seen.insert(id))
            .collect()
    });
    let type_err = |e: hsp_sparql::ExprError| AggError {
        agg: describe(spec),
        detail: e.to_string(),
    };
    let value = match (spec.func, &args) {
        (AggFunc::Count, None) => Value::Integer(rows.len() as i64),
        (AggFunc::Count, Some(args)) => Value::Integer(args.len() as i64),
        (AggFunc::Sum | AggFunc::Avg, None) => {
            unreachable!("the algebra only parses `*` under COUNT")
        }
        (AggFunc::Sum, Some(args)) => {
            let mut sum = Value::Integer(0);
            for &id in args {
                sum = arith(ArithOp::Add, &sum, &Value::from_term(ds.dict().term(id)))
                    .map_err(type_err)?;
            }
            sum
        }
        (AggFunc::Avg, Some(args)) => {
            if args.is_empty() {
                Value::Integer(0)
            } else {
                let mut sum = Value::Integer(0);
                for &id in args {
                    sum = arith(ArithOp::Add, &sum, &Value::from_term(ds.dict().term(id)))
                        .map_err(type_err)?;
                }
                arith(ArithOp::Div, &sum, &Value::Integer(args.len() as i64)).map_err(type_err)?
            }
        }
        (AggFunc::Min | AggFunc::Max, None) => {
            unreachable!("the algebra only parses `*` under COUNT")
        }
        (AggFunc::Min | AggFunc::Max, Some(args)) => {
            let mut best: Option<(Value, TermId)> = None;
            for &id in args {
                let v = Value::from_term(ds.dict().term(id));
                let better = match &best {
                    None => true,
                    Some((cur, _)) => {
                        let ord = compare_for_order(Some(&v), Some(cur));
                        if spec.func == AggFunc::Min {
                            ord == std::cmp::Ordering::Less
                        } else {
                            ord == std::cmp::Ordering::Greater
                        }
                    }
                };
                if better {
                    best = Some((v, id));
                }
            }
            // MIN/MAX output the *original* id of the winning row (unbound
            // for an empty group, the spec's error-as-unbound rule).
            return Ok(best.map_or(TermId::UNBOUND, |(_, id)| id));
        }
    };
    let term = value.to_term();
    Ok(ds
        .dict()
        .id(&term)
        .unwrap_or_else(|| ctx.intern_computed(term)))
}

/// Nested-loop inner join on **all** shared variables — the simplest
/// possible oracle: for every `(left row, right row)` pair, emit the
/// combined row iff the shared variables agree. Output rows come back as a
/// sorted row-set over `left.vars() ++ right-only vars`, ready to compare
/// with `sorted_rows()` of any join kernel's output.
pub fn nested_loop_join_rows(left: &BindingTable, right: &BindingTable) -> Vec<Vec<TermId>> {
    let shared: Vec<Var> = left
        .vars()
        .iter()
        .copied()
        .filter(|v| right.vars().contains(v))
        .collect();
    let right_extra: Vec<Var> = right
        .vars()
        .iter()
        .copied()
        .filter(|v| !left.vars().contains(v))
        .collect();
    let mut rows = Vec::new();
    for i in 0..left.len() {
        for j in 0..right.len() {
            if !shared
                .iter()
                .all(|&v| left.value(v, i) == right.value(v, j))
            {
                continue;
            }
            let mut row: Vec<TermId> = left.vars().iter().map(|&v| left.value(v, i)).collect();
            row.extend(right_extra.iter().map(|&v| right.value(v, j)));
            rows.push(row);
        }
    }
    rows.sort();
    rows
}
