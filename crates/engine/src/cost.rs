//! The RDF-3X cost model the paper uses to compare plan quality (Table 3).
//!
//! From Section 6.2:
//!
//! ```text
//! cost_mergejoin(lc, rc) = (lc + rc) / 100,000
//! cost_hashjoin(lc, rc)  = 300,000 + lc/100 + rc/10
//! ```
//!
//! "where `lc` and `rc` are the cardinality of two join input relations,
//! with the `lc` being the smallest one". Selection cost is excluded — the
//! paper argues it is asymptotically identical in both systems (binary
//! search vs B+-tree descent).

use crate::exec::Profile;
use crate::plan::PhysicalPlan;

/// Merge-join cost for input cardinalities `lc` and `rc`.
pub fn cost_mergejoin(lc: f64, rc: f64) -> f64 {
    (lc + rc) / 100_000.0
}

/// Hash-join cost for input cardinalities (order-insensitive: the smaller
/// input is charged the build rate).
pub fn cost_hashjoin(a: f64, b: f64) -> f64 {
    let (lc, rc) = if a <= b { (a, b) } else { (b, a) };
    300_000.0 + lc / 100.0 + rc / 10.0
}

/// Cross products have no formula in the paper (CDP refuses to plan them);
/// we charge them like a worst-case hash join over the product cardinality
/// so that cost comparisons still rank them last.
pub fn cost_crossproduct(a: f64, b: f64) -> f64 {
    300_000.0 + (a * b) / 10.0
}

/// The cost of one plan measured on its *actual* intermediate-result sizes
/// (the paper's Table 3 methodology: "we focus on the estimation of
/// intermediate results of joins").
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PlanCost {
    /// Total cost of merge joins (printed bold in the paper's Table 3).
    pub merge_cost: f64,
    /// Total cost of hash joins.
    pub hash_cost: f64,
    /// Total cost of cross products (zero for all paper plans).
    pub cross_cost: f64,
    /// Per-join breakdown: `(label, cost, is_merge)` in plan pre-order.
    pub joins: Vec<(String, f64, bool)>,
}

impl PlanCost {
    /// Total plan cost.
    pub fn total(&self) -> f64 {
        self.merge_cost + self.hash_cost + self.cross_cost
    }

    /// Format like the paper's Table 3 rows: merge cost, then `+ hash cost`
    /// when hash joins exist (e.g. `354+953,381`).
    pub fn table3_cell(&self) -> String {
        let merge = format_cost(self.merge_cost);
        if self.hash_cost + self.cross_cost > 0.0 {
            format!("{merge}+{}", format_cost(self.hash_cost + self.cross_cost))
        } else {
            merge
        }
    }
}

fn format_cost(c: f64) -> String {
    if c >= 100.0 {
        // Group thousands the way the paper prints them.
        let v = c.round() as u64;
        let s = v.to_string();
        let mut out = String::new();
        for (i, ch) in s.chars().enumerate() {
            if i > 0 && (s.len() - i).is_multiple_of(3) {
                out.push(',');
            }
            out.push(ch);
        }
        out
    } else {
        format!("{c:.2}")
    }
}

/// Compute the RDF-3X-model cost of an executed plan from its profile.
///
/// The plan tree and profile tree have identical shapes (the profile is
/// produced by executing the plan), so we walk them in lockstep and charge
/// each join node with its children's output cardinalities.
pub fn plan_cost(plan: &PhysicalPlan, profile: &Profile) -> PlanCost {
    let mut cost = PlanCost::default();
    accumulate(plan, profile, &mut cost);
    cost
}

fn accumulate(plan: &PhysicalPlan, profile: &Profile, cost: &mut PlanCost) {
    match plan {
        PhysicalPlan::Scan { .. } => {}
        PhysicalPlan::MergeJoin { left, right, var } => {
            let lc = profile.children[0].output_rows as f64;
            let rc = profile.children[1].output_rows as f64;
            let c = cost_mergejoin(lc, rc);
            cost.merge_cost += c;
            cost.joins.push((format!("mergejoin({var})"), c, true));
            accumulate(left, &profile.children[0], cost);
            accumulate(right, &profile.children[1], cost);
        }
        PhysicalPlan::HashJoin { left, right, .. } => {
            let lc = profile.children[0].output_rows as f64;
            let rc = profile.children[1].output_rows as f64;
            let c = cost_hashjoin(lc, rc);
            cost.hash_cost += c;
            cost.joins.push(("hashjoin".into(), c, false));
            accumulate(left, &profile.children[0], cost);
            accumulate(right, &profile.children[1], cost);
        }
        // An OPTIONAL's left-outer probe does the same build + probe work
        // as an inner hash join (plus one sentinel per unmatched row):
        // charge it the hash-join rate. Paper plans never contain it.
        PhysicalPlan::LeftOuterHashJoin { left, right, .. } => {
            let lc = profile.children[0].output_rows as f64;
            let rc = profile.children[1].output_rows as f64;
            let c = cost_hashjoin(lc, rc);
            cost.hash_cost += c;
            cost.joins.push(("leftouterjoin".into(), c, false));
            accumulate(left, &profile.children[0], cost);
            accumulate(right, &profile.children[1], cost);
        }
        PhysicalPlan::CrossProduct { left, right } => {
            let lc = profile.children[0].output_rows as f64;
            let rc = profile.children[1].output_rows as f64;
            let c = cost_crossproduct(lc, rc);
            cost.cross_cost += c;
            cost.joins.push(("crossproduct".into(), c, false));
            accumulate(left, &profile.children[0], cost);
            accumulate(right, &profile.children[1], cost);
        }
        PhysicalPlan::Sort { input, .. }
        | PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::Project { input, .. }
        // Aggregation and solution modifiers are outside the paper's
        // Table-3 join cost model.
        | PhysicalPlan::HashAggregate { input, .. }
        | PhysicalPlan::OrderBy { input, .. }
        | PhysicalPlan::Slice { input, .. } => {
            accumulate(input, &profile.children[0], cost);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formulas_match_the_paper() {
        // cost_mergejoin(lc, rc) = (lc+rc)/100,000
        assert_eq!(cost_mergejoin(50_000.0, 50_000.0), 1.0);
        // cost_hashjoin(lc, rc) = 300,000 + lc/100 + rc/10, lc the smaller.
        assert_eq!(cost_hashjoin(1_000.0, 10_000.0), 300_000.0 + 10.0 + 1_000.0);
        // Order-insensitive.
        assert_eq!(
            cost_hashjoin(10_000.0, 1_000.0),
            cost_hashjoin(1_000.0, 10_000.0)
        );
    }

    #[test]
    fn merge_joins_are_far_cheaper_than_hash_joins() {
        // The asymmetry that drives the whole paper: maximise merge joins.
        assert!(cost_mergejoin(100_000.0, 100_000.0) < cost_hashjoin(1.0, 1.0));
    }

    #[test]
    fn table3_cell_formats() {
        let c = PlanCost {
            merge_cost: 354.0,
            hash_cost: 953_381.0,
            ..Default::default()
        };
        assert_eq!(c.table3_cell(), "354+953,381");
        let m = PlanCost {
            merge_cost: 32.0,
            ..Default::default()
        };
        assert_eq!(m.table3_cell(), "32.00");
    }

    #[test]
    fn plan_cost_walks_profile() {
        use crate::exec::Profile;
        use hsp_rdf::Term;
        use hsp_sparql::{TermOrVar, TriplePattern, Var};
        use hsp_store::Order;

        let scan = |idx| PhysicalPlan::Scan {
            pattern_idx: idx,
            pattern: TriplePattern::new(
                TermOrVar::Var(Var(0)),
                TermOrVar::Const(Term::iri("http://e/p")),
                TermOrVar::Var(Var(idx as u32 + 1)),
            ),
            order: Order::Pso,
        };
        let plan = PhysicalPlan::MergeJoin {
            left: Box::new(scan(0)),
            right: Box::new(scan(1)),
            var: Var(0),
        };
        let leaf = |rows| Profile {
            label: "scan".into(),
            output_rows: rows,
            nanos: 0,
            children: vec![],
        };
        let profile = Profile {
            label: "mergejoin(?v0)".into(),
            output_rows: 10,
            nanos: 0,
            children: vec![leaf(60_000), leaf(40_000)],
        };
        let cost = plan_cost(&plan, &profile);
        assert_eq!(cost.merge_cost, 1.0);
        assert_eq!(cost.hash_cost, 0.0);
        assert_eq!(cost.joins.len(), 1);
        assert!(cost.joins[0].2);
    }
}
