//! The physical plan tree shared by HSP and the baseline planners.

use std::fmt;

use hsp_sparql::{AggSpec, FilterExpr, TriplePattern, Var};
use hsp_store::Order;

/// A physical execution plan.
///
/// Leaves are scan-selects over one of the six ordered relations; inner
/// nodes are merge joins, hash joins, cross products, filters, and a final
/// projection. The tree is engine-agnostic data — validation and evaluation
/// live in [`crate::exec`].
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalPlan {
    /// Scan one ordered relation for the rows matching a triple pattern's
    /// constants; emits one column per pattern variable.
    Scan {
        /// Index of the pattern in the source query (for explain output).
        pattern_idx: usize,
        /// The pattern itself.
        pattern: TriplePattern,
        /// Which of the six sorted relations to read.
        order: Order,
    },
    /// Sort-merge join on `var`; both inputs must be sorted by `var`.
    /// If the inputs share further variables, equality on them is enforced
    /// as part of the join.
    MergeJoin {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
        /// The (sorted) join variable.
        var: Var,
    },
    /// Hash join on `vars` (all variables shared by the two inputs). The
    /// right side is built into the hash table, the left side probes, so
    /// the output inherits the left side's ordering.
    HashJoin {
        /// Probe input.
        left: Box<PhysicalPlan>,
        /// Build input.
        right: Box<PhysicalPlan>,
        /// Join variables (non-empty).
        vars: Vec<Var>,
    },
    /// Left-outer hash join on `vars` — the OPTIONAL operator. Every left
    /// (probe) row survives; rows without a build match carry
    /// `TermId::UNBOUND` in the right-only columns. Like [`Self::HashJoin`]
    /// the right side builds and the left side streams through the probe,
    /// so the pipeline executor lowers it as a probe *stage* (the
    /// unmatched-row sentinel is emitted per probe row, which keeps morsel
    /// stitching deterministic).
    LeftOuterHashJoin {
        /// Probe input (preserved in full).
        left: Box<PhysicalPlan>,
        /// Build input (optional side).
        right: Box<PhysicalPlan>,
        /// Join variables (non-empty, shared by both inputs).
        vars: Vec<Var>,
    },
    /// Cartesian product (no shared variables).
    CrossProduct {
        /// Left input (major order).
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
    },
    /// Order enforcer: sort the input by `var` so a merge join becomes
    /// possible where no native scan order provides it. HSP and CDP never
    /// emit it (the paper's plans only merge-join on native orders); it is
    /// available for enforcer-style planning experiments.
    Sort {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// The variable to sort by.
        var: Var,
    },
    /// Residual FILTER evaluation.
    Filter {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// The predicate.
        expr: FilterExpr,
    },
    /// Final projection (and optional DISTINCT).
    Project {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// `(output name, variable)` pairs.
        projection: Vec<(String, Var)>,
        /// Deduplicate rows?
        distinct: bool,
    },
    /// Grouped aggregation (`GROUP BY` + aggregate select items + optional
    /// `HAVING`). Consumes its whole input, folds rows into a grouped hash
    /// state, and emits one row per group: the group-key columns first (in
    /// `group_by` order), then one column per aggregate output (in `aggs`
    /// order). Group rows are emitted in **first-seen input order**, which
    /// keeps the output deterministic across morsel parallelism (partial
    /// states merge in morsel order). With `group_by` empty the node
    /// computes one implicit all-rows group (which for an empty input still
    /// yields a single row: `COUNT` = 0, `SUM` = 0, `MIN`/`MAX` unbound —
    /// the SPARQL 1.1 §18.5 semantics).
    HashAggregate {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// `GROUP BY` variables, in source order (may be empty).
        group_by: Vec<Var>,
        /// Aggregate specifications, in SELECT order (hidden HAVING-only
        /// aggregates trail the projected ones).
        aggs: Vec<AggSpec>,
        /// `HAVING` predicate, evaluated per finalised group row; group
        /// rows where it does not evaluate to true are dropped.
        having: Option<hsp_sparql::Expr>,
    },
    /// `ORDER BY` over the final result — a solution modifier; planners
    /// wrap it around the projection via [`PhysicalPlan::with_modifiers`].
    OrderBy {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Sort keys in priority order.
        keys: Vec<hsp_sparql::SortKey>,
    },
    /// `LIMIT`/`OFFSET` over the final result.
    Slice {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Rows to skip.
        offset: usize,
        /// Rows to keep after the offset.
        limit: Option<usize>,
    },
}

impl PhysicalPlan {
    /// Wrap this (projection-topped) plan with the query's solution
    /// modifiers: `ORDER BY` first, then `OFFSET`/`LIMIT` — the SPARQL §9
    /// application order. A no-op for modifier-free queries, so the paper's
    /// workload plans are unchanged.
    pub fn with_modifiers(self, modifiers: &hsp_sparql::Modifiers) -> PhysicalPlan {
        let mut plan = self;
        if !modifiers.order_by.is_empty() {
            plan = PhysicalPlan::OrderBy {
                input: Box::new(plan),
                keys: modifiers.order_by.clone(),
            };
        }
        if modifiers.limit.is_some() || modifiers.offset > 0 {
            plan = PhysicalPlan::Slice {
                input: Box::new(plan),
                offset: modifiers.offset,
                limit: modifiers.limit,
            };
        }
        plan
    }
    /// The distinct variables produced by this plan, in a deterministic
    /// order (left depth-first).
    pub fn output_vars(&self) -> Vec<Var> {
        match self {
            PhysicalPlan::Scan { pattern, .. } => pattern.vars(),
            PhysicalPlan::MergeJoin { left, right, .. }
            | PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::LeftOuterHashJoin { left, right, .. }
            | PhysicalPlan::CrossProduct { left, right } => {
                let mut vars = left.output_vars();
                for v in right.output_vars() {
                    if !vars.contains(&v) {
                        vars.push(v);
                    }
                }
                vars
            }
            PhysicalPlan::Sort { input, .. } | PhysicalPlan::Filter { input, .. } => {
                input.output_vars()
            }
            PhysicalPlan::Project { projection, .. } => {
                let mut vars = Vec::new();
                for &(_, v) in projection {
                    if !vars.contains(&v) {
                        vars.push(v);
                    }
                }
                vars
            }
            PhysicalPlan::HashAggregate { group_by, aggs, .. } => {
                let mut vars = group_by.clone();
                for a in aggs {
                    if !vars.contains(&a.out) {
                        vars.push(a.out);
                    }
                }
                vars
            }
            PhysicalPlan::OrderBy { input, .. } | PhysicalPlan::Slice { input, .. } => {
                input.output_vars()
            }
        }
    }

    /// The variable this plan's output is sorted by, if any.
    ///
    /// * A scan is sorted by the first variable in its order's key after the
    ///   pattern's constants (provided the constants occupy a key prefix).
    /// * A merge join is sorted by its join variable.
    /// * A hash join / cross product inherits the probe (left) side.
    /// * Filters and projections preserve order (a projection loses the
    ///   property if it drops the sort variable).
    pub fn sorted_by(&self) -> Option<Var> {
        match self {
            PhysicalPlan::Scan { pattern, order, .. } => scan_sort_var(pattern, *order),
            PhysicalPlan::MergeJoin { var, .. } => Some(*var),
            PhysicalPlan::HashJoin { left, .. } | PhysicalPlan::CrossProduct { left, .. } => {
                left.sorted_by()
            }
            // Probe order is preserved, but unmatched rows pad right-only
            // columns with UNBOUND sentinels — the operator conservatively
            // advertises no sortedness (matching `ops::left_outer_hash_join`).
            PhysicalPlan::LeftOuterHashJoin { .. } => None,
            PhysicalPlan::Sort { var, .. } => Some(*var),
            PhysicalPlan::Filter { input, .. } => input.sorted_by(),
            PhysicalPlan::Project {
                input, projection, ..
            } => input
                .sorted_by()
                .filter(|v| projection.iter().any(|&(_, p)| p == *v)),
            // Group rows come out in first-seen order, not TermId order.
            PhysicalPlan::HashAggregate { .. } => None,
            // ORDER BY sorts by SPARQL value order, not TermId order.
            PhysicalPlan::OrderBy { .. } => None,
            PhysicalPlan::Slice { input, .. } => input.sorted_by(),
        }
    }

    /// `true` if this operator is a **pipeline breaker**: it must consume
    /// its whole input (or one whole side) before emitting a row, so the
    /// pipeline executor ([`crate::pipeline`]) materialises at its
    /// boundary. The breaker table:
    ///
    /// | operator            | breaks because                                  |
    /// |---------------------|--------------------------------------------------|
    /// | `MergeJoin`         | both inputs must be complete and sorted          |
    /// | `HashJoin`          | the build (right) side must be fully hashed — the probe side streams |
    /// | `LeftOuterHashJoin` | same as `HashJoin`: build side breaks, the probe side streams (unmatched rows emit a sentinel per probe row) |
    /// | `CrossProduct`      | tiles one whole side over the other              |
    /// | `Sort`              | order enforcement sees every row                 |
    /// | `OrderBy`           | solution-modifier sort sees every row            |
    /// | `HashAggregate`     | folds every row into the grouped hash state      |
    /// | `Slice`             | OFFSET counts rows globally                      |
    ///
    /// `Scan` and `Filter` stream and are never breakers, and neither is
    /// `Project` — plain **or** DISTINCT. A plain projection is a pure
    /// layout change (a column subset/reorder with no per-row work), so
    /// the pipeline executor folds it into the stage chain (and, at the
    /// root, into the sink gather itself). A DISTINCT projection runs as a
    /// **two-phase streaming dedup**: each morsel worker drops duplicates
    /// within its morsel against a thread-local set (phase one), and the
    /// sink applies a global first-occurrence pass over the already-thinned
    /// rows (phase two) — no global materialisation before the sink, so
    /// dedup no longer breaks the pipeline.
    pub fn is_pipeline_breaker(&self) -> bool {
        match self {
            PhysicalPlan::Scan { .. } | PhysicalPlan::Filter { .. } => false,
            PhysicalPlan::Project { .. } => false,
            PhysicalPlan::MergeJoin { .. }
            | PhysicalPlan::HashJoin { .. }
            | PhysicalPlan::LeftOuterHashJoin { .. }
            | PhysicalPlan::CrossProduct { .. }
            | PhysicalPlan::Sort { .. }
            | PhysicalPlan::HashAggregate { .. }
            | PhysicalPlan::OrderBy { .. }
            | PhysicalPlan::Slice { .. } => true,
        }
    }

    /// Indices of the patterns scanned by this plan, in leaf order.
    pub fn scanned_patterns(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.visit(&mut |p| {
            if let PhysicalPlan::Scan { pattern_idx, .. } = p {
                out.push(*pattern_idx);
            }
        });
        out
    }

    /// A copy with cached-plan parameters rebound: every constant `t`
    /// where `term(t)` is `Some` is replaced by the mapped term, and
    /// every output name `n` (projection columns, aggregate aliases)
    /// where `name(n)` is `Some` is replaced. The session plan cache
    /// uses this to instantiate a cached plan for a shape-equal query
    /// with different constants and SELECT names — the tree structure,
    /// scan orders, and join choices are untouched, so no planning runs.
    pub fn instantiate(
        &self,
        term: &impl Fn(&hsp_rdf::Term) -> Option<hsp_rdf::Term>,
        name: &impl Fn(&str) -> Option<String>,
    ) -> PhysicalPlan {
        match self {
            PhysicalPlan::Scan {
                pattern_idx,
                pattern,
                order,
            } => PhysicalPlan::Scan {
                pattern_idx: *pattern_idx,
                pattern: pattern.map_consts(term),
                order: *order,
            },
            PhysicalPlan::MergeJoin { left, right, var } => PhysicalPlan::MergeJoin {
                left: Box::new(left.instantiate(term, name)),
                right: Box::new(right.instantiate(term, name)),
                var: *var,
            },
            PhysicalPlan::HashJoin { left, right, vars } => PhysicalPlan::HashJoin {
                left: Box::new(left.instantiate(term, name)),
                right: Box::new(right.instantiate(term, name)),
                vars: vars.clone(),
            },
            PhysicalPlan::LeftOuterHashJoin { left, right, vars } => {
                PhysicalPlan::LeftOuterHashJoin {
                    left: Box::new(left.instantiate(term, name)),
                    right: Box::new(right.instantiate(term, name)),
                    vars: vars.clone(),
                }
            }
            PhysicalPlan::CrossProduct { left, right } => PhysicalPlan::CrossProduct {
                left: Box::new(left.instantiate(term, name)),
                right: Box::new(right.instantiate(term, name)),
            },
            PhysicalPlan::Sort { input, var } => PhysicalPlan::Sort {
                input: Box::new(input.instantiate(term, name)),
                var: *var,
            },
            PhysicalPlan::Filter { input, expr } => PhysicalPlan::Filter {
                input: Box::new(input.instantiate(term, name)),
                expr: expr.map_consts(term),
            },
            PhysicalPlan::Project {
                input,
                projection,
                distinct,
            } => PhysicalPlan::Project {
                input: Box::new(input.instantiate(term, name)),
                projection: projection
                    .iter()
                    .map(|(n, v)| (name(n).unwrap_or_else(|| n.clone()), *v))
                    .collect(),
                distinct: *distinct,
            },
            PhysicalPlan::HashAggregate {
                input,
                group_by,
                aggs,
                having,
            } => PhysicalPlan::HashAggregate {
                input: Box::new(input.instantiate(term, name)),
                group_by: group_by.clone(),
                aggs: aggs
                    .iter()
                    .map(|a| AggSpec {
                        name: name(&a.name).unwrap_or_else(|| a.name.clone()),
                        ..a.clone()
                    })
                    .collect(),
                having: having.as_ref().map(|h| h.map_consts(term)),
            },
            PhysicalPlan::OrderBy { input, keys } => PhysicalPlan::OrderBy {
                input: Box::new(input.instantiate(term, name)),
                keys: keys
                    .iter()
                    .map(|k| hsp_sparql::SortKey {
                        expr: k.expr.map_consts(term),
                        descending: k.descending,
                    })
                    .collect(),
            },
            PhysicalPlan::Slice {
                input,
                offset,
                limit,
            } => PhysicalPlan::Slice {
                input: Box::new(input.instantiate(term, name)),
                offset: *offset,
                limit: *limit,
            },
        }
    }

    /// Walk the tree depth-first (pre-order), calling `f` on every node.
    pub fn visit(&self, f: &mut impl FnMut(&PhysicalPlan)) {
        f(self);
        match self {
            PhysicalPlan::Scan { .. } => {}
            PhysicalPlan::MergeJoin { left, right, .. }
            | PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::LeftOuterHashJoin { left, right, .. }
            | PhysicalPlan::CrossProduct { left, right } => {
                left.visit(f);
                right.visit(f);
            }
            PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::HashAggregate { input, .. }
            | PhysicalPlan::OrderBy { input, .. }
            | PhysicalPlan::Slice { input, .. } => input.visit(f),
        }
    }

    /// Validate structural invariants, returning a description of the first
    /// violation:
    ///
    /// * scan constants occupy a prefix of the scan order's key;
    /// * merge-join inputs are sorted on the join variable;
    /// * hash-join variables are shared by both inputs and non-empty;
    /// * cross-product inputs share no variables;
    /// * filter/projection variables are produced by their input.
    pub fn validate(&self) -> Result<(), PlanError> {
        match self {
            PhysicalPlan::Scan { pattern, order, .. } => {
                if !consts_form_prefix(pattern, *order) {
                    return Err(PlanError(format!(
                        "scan order {order} does not place the pattern's constants in a key prefix"
                    )));
                }
                Ok(())
            }
            PhysicalPlan::MergeJoin { left, right, var } => {
                left.validate()?;
                right.validate()?;
                if left.sorted_by() != Some(*var) {
                    return Err(PlanError(format!(
                        "merge join on {var}: left input sorted by {:?}",
                        left.sorted_by()
                    )));
                }
                if right.sorted_by() != Some(*var) {
                    return Err(PlanError(format!(
                        "merge join on {var}: right input sorted by {:?}",
                        right.sorted_by()
                    )));
                }
                Ok(())
            }
            PhysicalPlan::HashJoin { left, right, vars }
            | PhysicalPlan::LeftOuterHashJoin { left, right, vars } => {
                let kind = if matches!(self, PhysicalPlan::HashJoin { .. }) {
                    "hash join"
                } else {
                    "left-outer hash join"
                };
                left.validate()?;
                right.validate()?;
                if vars.is_empty() {
                    return Err(PlanError(format!("{kind} with no join variables")));
                }
                let lv = left.output_vars();
                let rv = right.output_vars();
                for v in vars {
                    if !lv.contains(v) || !rv.contains(v) {
                        return Err(PlanError(format!(
                            "{kind} variable {v} not shared by both inputs"
                        )));
                    }
                }
                Ok(())
            }
            PhysicalPlan::CrossProduct { left, right } => {
                left.validate()?;
                right.validate()?;
                let lv = left.output_vars();
                if right.output_vars().iter().any(|v| lv.contains(v)) {
                    return Err(PlanError(
                        "cross product over inputs that share variables".into(),
                    ));
                }
                Ok(())
            }
            PhysicalPlan::Sort { input, var } => {
                input.validate()?;
                if !input.output_vars().contains(var) {
                    return Err(PlanError(format!("sort variable {var} not bound")));
                }
                Ok(())
            }
            PhysicalPlan::Filter { input, expr } => {
                input.validate()?;
                let iv = input.output_vars();
                for v in expr.vars() {
                    if !iv.contains(&v) {
                        return Err(PlanError(format!("filter variable {v} not bound")));
                    }
                }
                Ok(())
            }
            PhysicalPlan::Project {
                input, projection, ..
            } => {
                input.validate()?;
                let iv = input.output_vars();
                for &(ref name, v) in projection {
                    if !iv.contains(&v) {
                        return Err(PlanError(format!(
                            "projected variable ?{name} ({v}) not bound"
                        )));
                    }
                }
                Ok(())
            }
            PhysicalPlan::HashAggregate {
                input,
                group_by,
                aggs,
                having,
            } => {
                input.validate()?;
                let iv = input.output_vars();
                for v in group_by {
                    if !iv.contains(v) {
                        return Err(PlanError(format!("GROUP BY variable {v} not bound")));
                    }
                }
                if aggs.is_empty() && group_by.is_empty() {
                    return Err(PlanError(
                        "aggregation with no GROUP BY variables and no aggregates".into(),
                    ));
                }
                for a in aggs {
                    if let Some(arg) = a.arg {
                        if !iv.contains(&arg) {
                            return Err(PlanError(format!(
                                "aggregate {} argument {arg} not bound",
                                a.func.name()
                            )));
                        }
                    }
                    if group_by.contains(&a.out) {
                        return Err(PlanError(format!(
                            "aggregate output {} collides with a GROUP BY variable",
                            a.out
                        )));
                    }
                }
                if let Some(h) = having {
                    let out = self.output_vars();
                    for v in h.vars() {
                        if !out.contains(&v) {
                            return Err(PlanError(format!(
                                "HAVING variable {v} is neither grouped nor aggregated"
                            )));
                        }
                    }
                }
                Ok(())
            }
            PhysicalPlan::OrderBy { input, keys } => {
                input.validate()?;
                let iv = input.output_vars();
                for key in keys {
                    for v in key.expr.vars() {
                        if !iv.contains(&v) {
                            return Err(PlanError(format!("ORDER BY variable {v} not bound")));
                        }
                    }
                }
                Ok(())
            }
            PhysicalPlan::Slice { input, .. } => input.validate(),
        }
    }
}

/// A plan invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError(pub String);

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid plan: {}", self.0)
    }
}

impl std::error::Error for PlanError {}

/// The variable a scan's output is sorted by: the first variable slot in key
/// order after the constant prefix (`None` for a fully ground pattern).
pub fn scan_sort_var(pattern: &TriplePattern, order: Order) -> Option<Var> {
    if !consts_form_prefix(pattern, order) {
        return None;
    }
    for pos in order.positions() {
        if let Some(v) = pattern.slot(pos).as_var() {
            return Some(v);
        }
    }
    None
}

/// `true` if the pattern's constant slots occupy a prefix of `order`'s key.
pub fn consts_form_prefix(pattern: &TriplePattern, order: Order) -> bool {
    let mut seen_var = false;
    for pos in order.positions() {
        if pattern.slot(pos).is_const() {
            if seen_var {
                return false;
            }
        } else {
            seen_var = true;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsp_rdf::Term;
    use hsp_sparql::TermOrVar;

    fn pat(s: TermOrVar, p: TermOrVar, o: TermOrVar) -> TriplePattern {
        TriplePattern::new(s, p, o)
    }

    fn c(name: &str) -> TermOrVar {
        TermOrVar::Const(Term::iri(format!("http://e/{name}")))
    }

    fn v(i: u32) -> TermOrVar {
        TermOrVar::Var(Var(i))
    }

    fn scan(idx: usize, pattern: TriplePattern, order: Order) -> PhysicalPlan {
        PhysicalPlan::Scan {
            pattern_idx: idx,
            pattern,
            order,
        }
    }

    #[test]
    fn scan_sort_var_examples() {
        // (?x, p, o) scanned via OPS: constants o, p are the prefix; sorted by ?x at s.
        let p1 = pat(v(0), c("p"), c("o"));
        assert_eq!(scan_sort_var(&p1, Order::Ops), Some(Var(0)));
        assert_eq!(scan_sort_var(&p1, Order::Pos), Some(Var(0)));
        // SPO puts the variable first: constants not a prefix → invalid.
        assert_eq!(scan_sort_var(&p1, Order::Spo), None);

        // (?x, p, ?y) via PSO: sorted by ?x; via POS: sorted by ?y.
        let p2 = pat(v(0), c("p"), v(1));
        assert_eq!(scan_sort_var(&p2, Order::Pso), Some(Var(0)));
        assert_eq!(scan_sort_var(&p2, Order::Pos), Some(Var(1)));

        // All-variable pattern: any order works, sorted by its first key var.
        let p3 = pat(v(0), v(1), v(2));
        assert_eq!(scan_sort_var(&p3, Order::Osp), Some(Var(2)));
    }

    #[test]
    fn consts_prefix_check() {
        let p = pat(c("s"), v(0), c("o"));
        assert!(consts_form_prefix(&p, Order::Sop)); // s, o, p
        assert!(consts_form_prefix(&p, Order::Osp)); // o, s, p
        assert!(!consts_form_prefix(&p, Order::Spo)); // s, p, o — var in middle
    }

    #[test]
    fn output_vars_dedup_across_children() {
        let left = scan(0, pat(v(0), c("p"), v(1)), Order::Pso);
        let right = scan(1, pat(v(0), c("q"), v(2)), Order::Pso);
        let join = PhysicalPlan::MergeJoin {
            left: Box::new(left),
            right: Box::new(right),
            var: Var(0),
        };
        assert_eq!(join.output_vars(), vec![Var(0), Var(1), Var(2)]);
        assert_eq!(join.sorted_by(), Some(Var(0)));
    }

    #[test]
    fn validate_accepts_good_merge_join() {
        let left = scan(0, pat(v(0), c("p"), v(1)), Order::Pso);
        let right = scan(1, pat(v(0), c("q"), v(2)), Order::Pso);
        let join = PhysicalPlan::MergeJoin {
            left: Box::new(left),
            right: Box::new(right),
            var: Var(0),
        };
        assert!(join.validate().is_ok());
    }

    #[test]
    fn validate_rejects_unsorted_merge_join() {
        // Right side sorted by ?2 (POS), not the join var ?0.
        let left = scan(0, pat(v(0), c("p"), v(1)), Order::Pso);
        let right = scan(1, pat(v(0), c("q"), v(2)), Order::Pos);
        let join = PhysicalPlan::MergeJoin {
            left: Box::new(left),
            right: Box::new(right),
            var: Var(0),
        };
        let err = join.validate().unwrap_err();
        assert!(err.to_string().contains("right input sorted by"));
    }

    #[test]
    fn validate_rejects_bad_scan_order() {
        let plan = scan(0, pat(v(0), c("p"), c("o")), Order::Spo);
        assert!(plan.validate().is_err());
    }

    #[test]
    fn validate_rejects_unshared_hash_var() {
        let left = scan(0, pat(v(0), c("p"), v(1)), Order::Pso);
        let right = scan(1, pat(v(2), c("q"), v(3)), Order::Pso);
        let join = PhysicalPlan::HashJoin {
            left: Box::new(left),
            right: Box::new(right),
            vars: vec![Var(1)],
        };
        assert!(join.validate().is_err());
    }

    #[test]
    fn validate_rejects_overlapping_cross_product() {
        let left = scan(0, pat(v(0), c("p"), v(1)), Order::Pso);
        let right = scan(1, pat(v(0), c("q"), v(2)), Order::Pso);
        let cross = PhysicalPlan::CrossProduct {
            left: Box::new(left),
            right: Box::new(right),
        };
        assert!(cross.validate().is_err());
    }

    #[test]
    fn hash_join_inherits_left_order() {
        let left = scan(0, pat(v(0), c("p"), v(1)), Order::Pso); // sorted by ?0
        let right = scan(1, pat(v(1), c("q"), v(2)), Order::Pso); // sorted by ?1
        let join = PhysicalPlan::HashJoin {
            left: Box::new(left),
            right: Box::new(right),
            vars: vec![Var(1)],
        };
        assert_eq!(join.sorted_by(), Some(Var(0)));
    }

    #[test]
    fn project_keeps_or_loses_sortedness() {
        let input = scan(0, pat(v(0), c("p"), v(1)), Order::Pso); // sorted by ?0
        let keep = PhysicalPlan::Project {
            input: Box::new(input.clone()),
            projection: vec![("x".into(), Var(0))],
            distinct: false,
        };
        assert_eq!(keep.sorted_by(), Some(Var(0)));
        let lose = PhysicalPlan::Project {
            input: Box::new(input),
            projection: vec![("y".into(), Var(1))],
            distinct: false,
        };
        assert_eq!(lose.sorted_by(), None);
    }

    #[test]
    fn breaker_classification() {
        let s = scan(0, pat(v(0), c("p"), v(1)), Order::Pso);
        assert!(!s.is_pipeline_breaker());
        let f = PhysicalPlan::Filter {
            input: Box::new(s.clone()),
            expr: hsp_sparql::FilterExpr::Cmp {
                op: hsp_sparql::CmpOp::Eq,
                lhs: hsp_sparql::Operand::Var(Var(0)),
                rhs: hsp_sparql::Operand::Var(Var(1)),
            },
        };
        assert!(!f.is_pipeline_breaker());
        let hj = PhysicalPlan::HashJoin {
            left: Box::new(s.clone()),
            right: Box::new(scan(1, pat(v(0), c("q"), v(2)), Order::Pso)),
            vars: vec![Var(0)],
        };
        assert!(hj.is_pipeline_breaker());
        let oj = PhysicalPlan::LeftOuterHashJoin {
            left: Box::new(s.clone()),
            right: Box::new(scan(1, pat(v(0), c("q"), v(2)), Order::Pso)),
            vars: vec![Var(0)],
        };
        assert!(oj.is_pipeline_breaker());
        // Projection streams either way: plain is a layout change, DISTINCT
        // is a two-phase streaming dedup (morsel-local + sink pass).
        let plain = PhysicalPlan::Project {
            input: Box::new(s.clone()),
            projection: vec![("x".into(), Var(0))],
            distinct: false,
        };
        assert!(!plain.is_pipeline_breaker());
        let distinct = PhysicalPlan::Project {
            input: Box::new(s.clone()),
            projection: vec![("x".into(), Var(0))],
            distinct: true,
        };
        assert!(!distinct.is_pipeline_breaker());
        let agg = PhysicalPlan::HashAggregate {
            input: Box::new(s.clone()),
            group_by: vec![Var(0)],
            aggs: vec![hsp_sparql::AggSpec {
                func: hsp_sparql::AggFunc::Count,
                distinct: false,
                arg: Some(Var(1)),
                out: Var(2),
                name: "n".into(),
            }],
            having: None,
        };
        assert!(agg.is_pipeline_breaker());
        let sort = PhysicalPlan::Sort {
            input: Box::new(s),
            var: Var(0),
        };
        assert!(sort.is_pipeline_breaker());
    }

    #[test]
    fn hash_aggregate_shape_and_validation() {
        let s = scan(0, pat(v(0), c("p"), v(1)), Order::Pso);
        let count = hsp_sparql::AggSpec {
            func: hsp_sparql::AggFunc::Count,
            distinct: false,
            arg: Some(Var(1)),
            out: Var(2),
            name: "n".into(),
        };
        let agg = PhysicalPlan::HashAggregate {
            input: Box::new(s.clone()),
            group_by: vec![Var(0)],
            aggs: vec![count.clone()],
            having: None,
        };
        assert!(agg.validate().is_ok());
        // Group keys first, then aggregate outputs; no order claim.
        assert_eq!(agg.output_vars(), vec![Var(0), Var(2)]);
        assert_eq!(agg.sorted_by(), None);

        // Unbound GROUP BY variable / aggregate argument are rejected.
        let bad_group = PhysicalPlan::HashAggregate {
            input: Box::new(s.clone()),
            group_by: vec![Var(9)],
            aggs: vec![count.clone()],
            having: None,
        };
        assert!(bad_group.validate().is_err());
        let bad_arg = PhysicalPlan::HashAggregate {
            input: Box::new(s.clone()),
            group_by: vec![Var(0)],
            aggs: vec![hsp_sparql::AggSpec {
                arg: Some(Var(9)),
                ..count.clone()
            }],
            having: None,
        };
        assert!(bad_arg.validate().is_err());
        // HAVING may only mention grouped or aggregated variables.
        let bad_having = PhysicalPlan::HashAggregate {
            input: Box::new(s),
            group_by: vec![Var(0)],
            aggs: vec![count],
            having: Some(hsp_sparql::Expr::Var(Var(1))),
        };
        assert!(bad_having.validate().is_err());
    }

    #[test]
    fn left_outer_join_validates_like_hash_join() {
        let left = scan(0, pat(v(0), c("p"), v(1)), Order::Pso);
        let right = scan(1, pat(v(0), c("q"), v(2)), Order::Pso);
        let good = PhysicalPlan::LeftOuterHashJoin {
            left: Box::new(left.clone()),
            right: Box::new(right.clone()),
            vars: vec![Var(0)],
        };
        assert!(good.validate().is_ok());
        assert_eq!(good.output_vars(), vec![Var(0), Var(1), Var(2)]);
        // UNBOUND padding may break any ordering: no sortedness claim.
        assert_eq!(good.sorted_by(), None);
        let unshared = PhysicalPlan::LeftOuterHashJoin {
            left: Box::new(left.clone()),
            right: Box::new(right.clone()),
            vars: vec![Var(1)],
        };
        let err = unshared.validate().unwrap_err();
        assert!(err.to_string().contains("left-outer hash join"));
        let empty = PhysicalPlan::LeftOuterHashJoin {
            left: Box::new(left),
            right: Box::new(right),
            vars: vec![],
        };
        assert!(empty.validate().is_err());
    }

    #[test]
    fn scanned_patterns_in_leaf_order() {
        let left = scan(3, pat(v(0), c("p"), v(1)), Order::Pso);
        let right = scan(7, pat(v(0), c("q"), v(2)), Order::Pso);
        let join = PhysicalPlan::MergeJoin {
            left: Box::new(left),
            right: Box::new(right),
            var: Var(0),
        };
        assert_eq!(join.scanned_patterns(), vec![3, 7]);
    }
}
