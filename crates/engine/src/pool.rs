//! Per-execution recycling of intermediate columns, plus the execution
//! context that threads the pool and the morsel configuration through the
//! operators.
//!
//! Operator-at-a-time plans materialise every intermediate result: a
//! five-join plan allocates (and immediately frees) dozens of column
//! vectors. The [`BufferPool`] is an arena of reusable `Vec<TermId>` /
//! `Vec<u32>` buffers: the gather primitives check columns out instead of
//! calling the allocator, and the tree evaluator returns a consumed
//! intermediate's columns to the pool the moment its parent operator has
//! produced its output. Hit/miss/recycle counters surface through
//! [`crate::metrics::RuntimeMetrics`].
//!
//! The pool is deliberately single-threaded (`RefCell`): the evaluator
//! walks the plan tree sequentially, and parallelism lives *inside* a
//! kernel (see [`crate::morsel`]), where workers use thread-local buffers
//! and never touch the pool.
//!
//! Under concurrent serving the same shape holds per query: every
//! in-flight request owns one [`ExecContext`] (buffers, governor,
//! computed-term overlay) pinned to its coordinating thread, while the
//! morsel batches those contexts spawn are all scheduled on one
//! process-wide [`SharedPool`](crate::morsel::SharedPool). Contexts are
//! `!Send` and never shared, so many of them coexisting above one pool
//! needs no locking here — the pool's workers only ever run the kernel
//! closures, never the tree evaluator that touches the [`BufferPool`].

use std::cell::{Cell, RefCell};
use std::collections::HashMap;

use hsp_rdf::{Term, TermId};

use crate::binding::BindingTable;
use crate::govern::{GovernorError, QueryGovernor};
use crate::morsel::MorselConfig;

/// First id of the **computed-term** range. Aggregation produces values
/// (counts, sums, averages) that usually have no entry in the dataset's
/// immutable dictionary; they are interned into a per-execution overlay on
/// the [`ExecContext`] instead, and their ids start here. The dictionary
/// would need two billion distinct terms before its ids could collide with
/// the range — `Dataset` construction is nowhere near that — and
/// [`TermId::UNBOUND`] (`u32::MAX`) stays reserved.
pub const COMPUTED_BASE: u32 = 0x8000_0000;

/// `true` if `id` refers to the per-execution computed-term overlay
/// rather than the dataset dictionary.
pub fn is_computed(id: TermId) -> bool {
    id.0 >= COMPUTED_BASE && id != TermId::UNBOUND
}

/// Keep at most this many free buffers per kind; beyond it, returned
/// buffers are simply dropped. Bounds the *number* of parked buffers.
const MAX_FREE_BUFFERS: usize = 64;

/// Buffers whose capacity exceeds this many elements are dropped instead
/// of pooled, so a one-off huge intermediate (a runaway cross product,
/// say) cannot pin its memory for the rest of the execution. Together
/// with [`MAX_FREE_BUFFERS`] this caps the pool's worst-case footprint at
/// `2 × 64 × 4 MiB`. Checkout is capacity-blind LIFO — a reused buffer may
/// still need to grow for a larger gather (`reserve` handles it), which
/// counts as a hit because the allocation was still elided in the common
/// same-shape-plan case.
const MAX_POOLED_CAPACITY: usize = 1 << 20;

/// An arena of recyclable column buffers, scoped to one execution.
#[derive(Debug, Default)]
pub struct BufferPool {
    term_cols: RefCell<Vec<Vec<TermId>>>,
    idx_bufs: RefCell<Vec<Vec<u32>>>,
    hits: Cell<usize>,
    misses: Cell<usize>,
    recycled: Cell<usize>,
    returned: Cell<usize>,
}

/// Pool counters (cumulative over one execution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Checkouts served from the free lists.
    pub hits: usize,
    /// Checkouts that fell through to the allocator.
    pub misses: usize,
    /// Buffers returned to the pool (columns of consumed intermediates
    /// plus returned index vectors).
    pub recycled: usize,
    /// Every buffer *handed back* to the pool, whether parked or dropped
    /// by the pooling policy (zero-capacity / oversized / full free list).
    /// `hits + misses == returned` after an execution whose error paths
    /// drained everything they checked out — the balance the governor
    /// tests assert.
    pub returned: usize,
}

impl BufferPool {
    /// A fresh, empty pool.
    pub fn new() -> Self {
        BufferPool::default()
    }

    /// Check out a cleared `TermId` column with at least `capacity` spare.
    pub fn take_col(&self, capacity: usize) -> Vec<TermId> {
        match self.term_cols.borrow_mut().pop() {
            Some(mut col) => {
                self.hits.set(self.hits.get() + 1);
                col.clear();
                col.reserve(capacity);
                col
            }
            None => {
                self.misses.set(self.misses.get() + 1);
                Vec::with_capacity(capacity)
            }
        }
    }

    /// Return a `TermId` column to the pool.
    pub fn put_col(&self, col: Vec<TermId>) {
        self.returned.set(self.returned.get() + 1);
        if col.capacity() == 0 || col.capacity() > MAX_POOLED_CAPACITY {
            return; // nothing worth keeping / too big to pin
        }
        let mut free = self.term_cols.borrow_mut();
        if free.len() < MAX_FREE_BUFFERS {
            free.push(col);
            self.recycled.set(self.recycled.get() + 1);
        }
    }

    /// Check out a cleared `u32` index buffer with at least `capacity`
    /// spare (selection vectors and join-pair vectors).
    pub fn take_idx(&self, capacity: usize) -> Vec<u32> {
        match self.idx_bufs.borrow_mut().pop() {
            Some(mut buf) => {
                self.hits.set(self.hits.get() + 1);
                buf.clear();
                buf.reserve(capacity);
                buf
            }
            None => {
                self.misses.set(self.misses.get() + 1);
                Vec::with_capacity(capacity)
            }
        }
    }

    /// Return an index buffer to the pool.
    pub fn put_idx(&self, buf: Vec<u32>) {
        self.returned.set(self.returned.get() + 1);
        if buf.capacity() == 0 || buf.capacity() > MAX_POOLED_CAPACITY {
            return;
        }
        let mut free = self.idx_bufs.borrow_mut();
        if free.len() < MAX_FREE_BUFFERS {
            free.push(buf);
            self.recycled.set(self.recycled.get() + 1);
        }
    }

    /// Consume a no-longer-needed intermediate table, moving its columns
    /// into the pool for the next gather to reuse.
    pub fn recycle(&self, table: BindingTable) {
        for col in table.into_columns() {
            self.put_col(col);
        }
    }

    /// Cumulative counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            recycled: self.recycled.get(),
            returned: self.returned.get(),
        }
    }

    /// Free buffers currently parked (both kinds).
    pub fn free_buffers(&self) -> usize {
        self.term_cols.borrow().len() + self.idx_bufs.borrow().len()
    }
}

/// Bytes a materialised table's columns occupy — the unit of the
/// governor's memory accounting (`rows × columns × 4`; `TermId` is 32
/// bits). Deliberately shape-based rather than capacity-based so a
/// charge and its matching release always agree.
pub fn table_bytes(table: &BindingTable) -> usize {
    table
        .vars()
        .len()
        .saturating_mul(table.len())
        .saturating_mul(std::mem::size_of::<TermId>())
}

/// Everything an operator needs beyond its inputs: the morsel/thread
/// configuration, the column pool, the optional query governor, and the
/// runtime counters the execution reports afterwards.
#[derive(Debug, Default)]
pub struct ExecContext {
    /// How kernels split work across threads.
    pub morsel: MorselConfig,
    /// The per-execution column arena.
    pub pool: BufferPool,
    /// Resource limits for this execution, if any (see [`crate::govern`]).
    governor: Option<QueryGovernor>,
    morsels: Cell<usize>,
    parallel_kernels: Cell<usize>,
    parallel_builds: Cell<usize>,
    merge_partitions: Cell<usize>,
    parallel_filters: Cell<usize>,
    parallel_sorts: Cell<usize>,
    pipelines: Cell<usize>,
    pipeline_morsels: Cell<usize>,
    pipeline_outer_probes: Cell<usize>,
    breaker_handoffs: Cell<usize>,
    pipeline_rows_avoided: Cell<usize>,
    parallel_aggregates: Cell<usize>,
    aggregate_groups: Cell<usize>,
    distinct_streamed: Cell<usize>,
    merged_scans: Cell<usize>,
    /// Computed-term overlay: terms produced by aggregation, indexed by
    /// `id - COMPUTED_BASE`. Single-threaded by design (finalisation runs
    /// on the coordinating thread after the morsel barrier).
    computed_terms: RefCell<Vec<Term>>,
    computed_ids: RefCell<HashMap<Term, TermId>>,
}

impl ExecContext {
    /// Production context: thread budget from `available_parallelism`,
    /// fresh pool.
    pub fn new() -> Self {
        ExecContext::default()
    }

    /// A context with a forced thread budget (tests, benchmarks, the CLI's
    /// `--threads` flag).
    pub fn with_threads(threads: usize) -> Self {
        ExecContext {
            morsel: MorselConfig::with_threads(threads),
            ..ExecContext::default()
        }
    }

    /// A context with an explicit morsel configuration.
    pub fn with_morsel_config(morsel: MorselConfig) -> Self {
        ExecContext {
            morsel,
            ..ExecContext::default()
        }
    }

    /// Attach a query governor: every checkpoint in the execution now
    /// consults it.
    pub fn with_governor(mut self, governor: QueryGovernor) -> Self {
        self.governor = Some(governor);
        self
    }

    /// The attached governor, if any.
    pub fn governor(&self) -> Option<&QueryGovernor> {
        self.governor.as_ref()
    }

    /// Replace (or remove) the attached governor. A context outlives one
    /// query — its buffer pool keeps warming across executions — but each
    /// query brings its own limits, and a tripped governor stays tripped.
    pub fn set_governor(&mut self, governor: Option<QueryGovernor>) {
        self.governor = governor;
    }

    /// Cooperative checkpoint: a no-op without a governor, otherwise the
    /// full token/deadline/fault check for `site`.
    pub fn checkpoint(&self, site: &'static str) -> Result<(), GovernorError> {
        match &self.governor {
            Some(gov) => gov.check(site),
            None => Ok(()),
        }
    }

    /// Cheap poll for long-running operator loops: `true` once the
    /// governor has tripped (always `false` without one).
    pub fn governor_poll(&self) -> bool {
        self.governor.as_ref().is_some_and(|gov| gov.poll())
    }

    /// Charge a freshly materialised table's bytes against the memory
    /// budget (no-op without a governor).
    pub fn charge_table(
        &self,
        table: &BindingTable,
        site: &'static str,
    ) -> Result<(), GovernorError> {
        match &self.governor {
            Some(gov) => gov.charge(table_bytes(table), site),
            None => Ok(()),
        }
    }

    /// Pre-materialisation budget guard: would `bytes` more exceed the
    /// budget? Errors (and trips) without charging.
    pub fn reserve_check(&self, bytes: usize, site: &'static str) -> Result<(), GovernorError> {
        match &self.governor {
            Some(gov) => gov.would_exceed(bytes, site),
            None => Ok(()),
        }
    }

    /// Release previously charged table bytes without recycling columns
    /// (for tables consumed by column moves rather than
    /// [`recycle`](Self::recycle)).
    pub fn release_bytes(&self, bytes: usize) {
        if let Some(gov) = &self.governor {
            gov.release(bytes);
        }
    }

    /// Recycle a consumed intermediate: release its bytes from the memory
    /// budget and park its columns in the pool.
    pub fn recycle(&self, table: BindingTable) {
        if let Some(gov) = &self.governor {
            gov.release(table_bytes(&table));
        }
        self.pool.recycle(table);
    }

    /// Record a kernel's morsel run in the execution-wide counters.
    pub(crate) fn note_run(&self, run: crate::morsel::MorselRun) {
        if run.threads > 1 {
            self.morsels.set(self.morsels.get() + run.morsels);
            self.parallel_kernels.set(self.parallel_kernels.get() + 1);
        }
    }

    /// Record a hash-join build phase ([`note_run`](Self::note_run) plus
    /// the parallel-build counter).
    pub(crate) fn note_build(&self, run: crate::morsel::MorselRun) {
        if run.threads > 1 {
            self.parallel_builds.set(self.parallel_builds.get() + 1);
        }
        self.note_run(run);
    }

    /// Record a range-partitioned merge join: `run.morsels` carries the
    /// partition count.
    pub(crate) fn note_merge(&self, run: crate::morsel::MorselRun) {
        if run.threads > 1 {
            self.merge_partitions
                .set(self.merge_partitions.get() + run.morsels);
            self.parallel_kernels.set(self.parallel_kernels.get() + 1);
        }
    }

    /// Record a FILTER / ORDER BY key-extraction run ([`note_run`](Self::note_run)
    /// plus the parallel-filter counter).
    pub(crate) fn note_filter(&self, run: crate::morsel::MorselRun) {
        if run.threads > 1 {
            self.parallel_filters.set(self.parallel_filters.get() + 1);
        }
        self.note_run(run);
    }

    /// Record a parallel merge sort (`run.morsels` carries the initial
    /// sorted-run count) — the comparison-sort stage of ORDER BY and the
    /// sort order-enforcer.
    pub(crate) fn note_sort(&self, run: crate::morsel::MorselRun) {
        if run.threads > 1 {
            self.parallel_sorts.set(self.parallel_sorts.get() + 1);
        }
        self.note_run(run);
    }

    /// Record one executed pipeline: its morsel run (morsels pushed
    /// end-to-end through the stage chain) and the intermediate rows the
    /// operator-at-a-time evaluator would have materialised between the
    /// pipeline's operators but the pipeline kept as thread-local index
    /// vectors.
    pub(crate) fn note_pipeline(&self, run: crate::morsel::MorselRun, rows_avoided: usize) {
        self.pipelines.set(self.pipelines.get() + 1);
        // A sequential pipeline pushes its whole source as one morsel.
        self.pipeline_morsels
            .set(self.pipeline_morsels.get() + run.morsels.max(1));
        self.pipeline_rows_avoided
            .set(self.pipeline_rows_avoided.get() + rows_avoided);
        self.note_run(run);
    }

    /// Record `count` left-outer (OPTIONAL) probe stages executed inside
    /// one pipeline run.
    pub(crate) fn note_outer_probes(&self, count: usize) {
        self.pipeline_outer_probes
            .set(self.pipeline_outer_probes.get() + count);
    }

    /// Record one breaker output handed directly to its single consuming
    /// pipeline (no slot round-trip).
    pub(crate) fn note_handoff(&self) {
        self.breaker_handoffs.set(self.breaker_handoffs.get() + 1);
    }

    /// Record one hash-aggregation: the partial-fold morsel run and the
    /// number of finalised groups (counted whether or not the fold ran
    /// parallel; the parallel-aggregate counter only when it did).
    pub(crate) fn note_aggregate(&self, run: crate::morsel::MorselRun, groups: usize) {
        if run.threads > 1 {
            self.parallel_aggregates
                .set(self.parallel_aggregates.get() + 1);
        }
        self.aggregate_groups
            .set(self.aggregate_groups.get() + groups);
        self.note_run(run);
    }

    /// Record one DISTINCT deduplicated as a streaming pipeline stage
    /// (morsel-local pre-dedup + sink first-occurrence pass) instead of a
    /// materialising breaker.
    pub(crate) fn note_distinct_stream(&self) {
        self.distinct_streamed.set(self.distinct_streamed.get() + 1);
    }

    /// Record one scan that had to merge the storage delta overlay with
    /// the base run (no contiguous-slice fast path).
    pub(crate) fn note_merged_scan(&self) {
        self.merged_scans.set(self.merged_scans.get() + 1);
    }

    /// Intern a term produced by aggregation into the per-execution
    /// computed-term overlay, returning its id (≥ [`COMPUTED_BASE`]).
    /// Idempotent: equal terms get equal ids, and the first-intern order
    /// determines the id sequence — both executors intern finalised groups
    /// in output order, so their overlays (and tables) match exactly.
    pub fn intern_computed(&self, term: Term) -> TermId {
        if let Some(&id) = self.computed_ids.borrow().get(&term) {
            return id;
        }
        let mut terms = self.computed_terms.borrow_mut();
        let id = TermId(COMPUTED_BASE + u32::try_from(terms.len()).expect("overlay overflow"));
        terms.push(term.clone());
        self.computed_ids.borrow_mut().insert(term, id);
        id
    }

    /// Resolve a computed-term id against the overlay (`None` for
    /// dictionary ids, unbound, or an id from a different execution).
    pub fn computed_term(&self, id: TermId) -> Option<Term> {
        if !is_computed(id) {
            return None;
        }
        let idx = (id.0 - COMPUTED_BASE) as usize;
        self.computed_terms.borrow().get(idx).cloned()
    }

    /// Snapshot of the computed-term overlay (indexed by
    /// `id - COMPUTED_BASE`), for results that outlive the context.
    pub fn computed_overlay(&self) -> Vec<Term> {
        self.computed_terms.borrow().clone()
    }

    /// Reset the computed-term overlay. A context outlives one query (the
    /// buffer pool keeps warming across executions), but computed ids are
    /// positional — reusing a warm context for a new query must start the
    /// overlay fresh so both differential arms intern from id zero.
    pub fn clear_computed(&self) {
        self.computed_terms.borrow_mut().clear();
        self.computed_ids.borrow_mut().clear();
    }

    /// Morsels processed by parallel kernels so far.
    pub fn morsels_run(&self) -> usize {
        self.morsels.get()
    }

    /// Kernels that actually ran parallel so far.
    pub fn parallel_kernels(&self) -> usize {
        self.parallel_kernels.get()
    }

    /// Hash-join build phases that ran parallel so far.
    pub fn parallel_builds(&self) -> usize {
        self.parallel_builds.get()
    }

    /// Partitions processed by range-partitioned parallel merge joins.
    pub fn merge_partitions(&self) -> usize {
        self.merge_partitions.get()
    }

    /// FILTER / ORDER BY key extractions that ran parallel so far.
    pub fn parallel_filters(&self) -> usize {
        self.parallel_filters.get()
    }

    /// Comparison sorts (ORDER BY / sort enforcer) that ran parallel so far.
    pub fn parallel_sorts(&self) -> usize {
        self.parallel_sorts.get()
    }

    /// Pipelines executed so far.
    pub fn pipelines(&self) -> usize {
        self.pipelines.get()
    }

    /// Morsels pushed end-to-end through executed pipelines so far.
    pub fn pipeline_morsels(&self) -> usize {
        self.pipeline_morsels.get()
    }

    /// Left-outer (OPTIONAL) probe stages executed inside pipelines so far.
    pub fn pipeline_outer_probes(&self) -> usize {
        self.pipeline_outer_probes.get()
    }

    /// Breaker outputs handed directly to their single consuming pipeline
    /// so far.
    pub fn breaker_handoffs(&self) -> usize {
        self.breaker_handoffs.get()
    }

    /// Intermediate rows pipelines kept as thread-local index vectors
    /// instead of materialising (what the operator-at-a-time evaluator
    /// would have written between the pipeline's operators).
    pub fn pipeline_rows_avoided(&self) -> usize {
        self.pipeline_rows_avoided.get()
    }

    /// Hash aggregations whose partial fold ran parallel so far.
    pub fn parallel_aggregates(&self) -> usize {
        self.parallel_aggregates.get()
    }

    /// Groups finalised by hash aggregations so far.
    pub fn aggregate_groups(&self) -> usize {
        self.aggregate_groups.get()
    }

    /// DISTINCTs deduplicated as streaming pipeline stages so far.
    pub fn distinct_streamed(&self) -> usize {
        self.distinct_streamed.get()
    }

    /// Scans that merged the storage delta overlay with the base run.
    pub fn merged_scans(&self) -> usize {
        self.merged_scans.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsp_sparql::Var;

    #[test]
    fn take_put_cycle_hits_after_first_miss() {
        let pool = BufferPool::new();
        let col = pool.take_col(16);
        assert_eq!(
            pool.stats(),
            PoolStats {
                hits: 0,
                misses: 1,
                recycled: 0,
                returned: 0
            }
        );
        pool.put_col(col);
        let col2 = pool.take_col(8);
        assert!(col2.capacity() >= 8);
        assert_eq!(
            pool.stats(),
            PoolStats {
                hits: 1,
                misses: 1,
                recycled: 1,
                returned: 1
            }
        );
    }

    #[test]
    fn recycled_column_comes_back_cleared() {
        let pool = BufferPool::new();
        let mut col = pool.take_col(4);
        col.extend([TermId(1), TermId(2), TermId(3)]);
        pool.put_col(col);
        let col = pool.take_col(2);
        assert!(col.is_empty());
        assert!(col.capacity() >= 2);
    }

    #[test]
    fn recycle_table_parks_all_columns() {
        let pool = BufferPool::new();
        let table = BindingTable::from_columns(
            vec![Var(0), Var(1)],
            vec![vec![TermId(1)], vec![TermId(2)]],
            None,
        );
        pool.recycle(table);
        assert_eq!(pool.free_buffers(), 2);
        assert_eq!(pool.stats().recycled, 2);
    }

    #[test]
    fn zero_capacity_buffers_are_not_pooled() {
        let pool = BufferPool::new();
        pool.put_col(Vec::new());
        pool.put_idx(Vec::new());
        assert_eq!(pool.free_buffers(), 0);
        // …but they still count as returned: the balance counter tracks
        // hand-backs, not parking decisions.
        assert_eq!(pool.stats().returned, 2);
    }

    #[test]
    fn governed_context_checkpoints_and_charges() {
        use crate::govern::QueryGovernor;
        use std::time::Duration;

        let ungoverned = ExecContext::new();
        ungoverned.checkpoint("worker").unwrap();
        assert!(!ungoverned.governor_poll());

        let ctx = ExecContext::new()
            .with_governor(QueryGovernor::new().with_deadline_in(Duration::from_secs(3600)));
        ctx.checkpoint("worker").unwrap();
        assert_eq!(ctx.governor().unwrap().checks(), 1);

        let table = BindingTable::from_columns(
            vec![Var(0), Var(1)],
            vec![vec![TermId(1), TermId(2)], vec![TermId(3), TermId(4)]],
            None,
        );
        assert_eq!(table_bytes(&table), 2 * 2 * 4);
        ctx.charge_table(&table, "sink").unwrap();
        assert_eq!(ctx.governor().unwrap().mem_used(), 16);
        ctx.recycle(table);
        assert_eq!(ctx.governor().unwrap().mem_used(), 0);
        assert_eq!(ctx.pool.free_buffers(), 2);
    }

    #[test]
    fn oversized_buffers_are_not_pooled() {
        let pool = BufferPool::new();
        pool.put_col(Vec::with_capacity(MAX_POOLED_CAPACITY + 1));
        pool.put_idx(Vec::with_capacity(MAX_POOLED_CAPACITY + 1));
        assert_eq!(pool.free_buffers(), 0);
        pool.put_col(Vec::with_capacity(16));
        assert_eq!(pool.free_buffers(), 1);
    }

    #[test]
    fn free_list_is_bounded() {
        let pool = BufferPool::new();
        for _ in 0..(MAX_FREE_BUFFERS + 10) {
            pool.put_idx(Vec::with_capacity(4));
        }
        assert_eq!(pool.free_buffers(), MAX_FREE_BUFFERS);
    }

    #[test]
    fn context_counts_only_parallel_runs() {
        let ctx = ExecContext::with_threads(4);
        ctx.note_run(crate::morsel::MorselRun {
            morsels: 0,
            threads: 1,
        });
        assert_eq!(ctx.parallel_kernels(), 0);
        ctx.note_run(crate::morsel::MorselRun {
            morsels: 5,
            threads: 2,
        });
        assert_eq!(ctx.parallel_kernels(), 1);
        assert_eq!(ctx.morsels_run(), 5);
    }

    #[test]
    fn context_counts_builds_merges_and_filters() {
        let ctx = ExecContext::with_threads(4);
        // Sequential runs count nothing.
        ctx.note_build(crate::morsel::MorselRun {
            morsels: 0,
            threads: 1,
        });
        ctx.note_merge(crate::morsel::MorselRun {
            morsels: 0,
            threads: 1,
        });
        ctx.note_filter(crate::morsel::MorselRun {
            morsels: 0,
            threads: 1,
        });
        assert_eq!(ctx.parallel_builds(), 0);
        assert_eq!(ctx.merge_partitions(), 0);
        assert_eq!(ctx.parallel_filters(), 0);
        assert_eq!(ctx.parallel_kernels(), 0);
        // Parallel runs count in their own counter and as kernels.
        ctx.note_build(crate::morsel::MorselRun {
            morsels: 3,
            threads: 2,
        });
        ctx.note_merge(crate::morsel::MorselRun {
            morsels: 4,
            threads: 2,
        });
        ctx.note_filter(crate::morsel::MorselRun {
            morsels: 2,
            threads: 3,
        });
        assert_eq!(ctx.parallel_builds(), 1);
        assert_eq!(ctx.merge_partitions(), 4);
        assert_eq!(ctx.parallel_filters(), 1);
        assert_eq!(ctx.parallel_kernels(), 3);
        assert_eq!(ctx.morsels_run(), 3 + 2); // merge partitions are not morsels
    }
}
