//! The query governor: deadlines, cooperative cancellation, memory
//! budgets, and panic isolation for one execution.
//!
//! Morsel-driven execution (Leis et al.) makes resource governance cheap:
//! because all work is chunked into morsels, every morsel claim — and
//! every breaker step and operator boundary — is a natural cooperative
//! checkpoint. A [`QueryGovernor`] rides along in the
//! [`ExecContext`](crate::pool::ExecContext) and is consulted at those
//! checkpoints:
//!
//! * **Cancellation** — an [`Arc<CancelToken>`] shared with the caller;
//!   flipping it converts the execution into
//!   [`ExecError::Cancelled`](crate::exec::ExecError::Cancelled) at the
//!   next checkpoint.
//! * **Deadline** — an absolute [`Instant`]; once passed, the next
//!   checkpoint surfaces
//!   [`ExecError::DeadlineExceeded`](crate::exec::ExecError::DeadlineExceeded).
//!   Latency to surface is bounded by one morsel / one breaker step, not
//!   by total plan work.
//! * **Memory budget** — materialisation points (operator outputs,
//!   breaker tables, pipeline sinks) charge their column bytes here and
//!   release them when the table recycles; exceeding the budget surfaces
//!   [`ExecError::MemoryBudgetExceeded`](crate::exec::ExecError::MemoryBudgetExceeded)
//!   instead of aborting the process. The accounting is *approximate by
//!   design*: it tracks live materialised column bytes (`rows × columns ×
//!   4`), not allocator truth — index vectors and the bounded buffer-pool
//!   free lists are excluded.
//! * **Panic isolation** — morsel workers and breaker steps run under
//!   [`std::panic::catch_unwind`] when a governor is present; a panicking
//!   kernel trips the governor and surfaces as
//!   [`ExecError::WorkerPanicked`](crate::exec::ExecError::WorkerPanicked)
//!   after the scoped pool joins cleanly.
//!
//! The governor trips **once**: the first failure is recorded and every
//! later checkpoint returns the same error, so a multi-worker execution
//! reports one coherent cause. Operators themselves stay infallible —
//! long-running ones ([`crate::ops::cross_product_in`]) merely *poll*
//! [`QueryGovernor::poll`] and bail early with a discarded partial
//! output; the surrounding executor converts the trip into the typed
//! error and recycles everything it had materialised.
//!
//! # One governor per request on a shared pool
//!
//! Governance is strictly per-query even when many queries execute at
//! once: each request carries its own governor inside its own
//! [`ExecContext`](crate::pool::ExecContext), while their morsel batches
//! interleave on one [`SharedPool`](crate::morsel::SharedPool). A trip
//! (deadline, cancel, budget, panic) therefore drains only the tripped
//! query's remaining morsels — workers see the trip at the next claim
//! and skip the work — and the pool itself carries no per-query state
//! that could poison the *next* query scheduled on it. The serving
//! layer's admission control decides how many governed requests are in
//! flight; the governor never throttles anything but its own query.
//!
//! # Fault injection
//!
//! Under `cfg(any(test, feature = "fault-inject"))` a governor built with
//! [`QueryGovernor::with_fault_from_env`] arms itself from the
//! `HSP_FAULT` environment variable (`panic@<site>`, `slow@<site>`,
//! `alloc@<site>`). The fault fires deterministically — once per
//! governor, at the first checkpoint of the matching site — so tests can
//! assert that every instrumented site converts every failure mode into
//! its typed error and that a subsequent query on the same store is
//! byte-identical to a fresh run. Sites: `worker` (morsel workers),
//! `breaker` (pipeline breaker steps, including the γ aggregate merge),
//! `aggregate` (the γ fold's morsel claims and grouped-state memory
//! charges), `operator` (the operator-at-a-time oracle), `extended` (the
//! OPTIONAL/UNION evaluator), `update` (the SPARQL Update path).

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A shared cancellation flag: the caller keeps one clone of the
/// [`Arc`], the execution polls the other at every checkpoint.
#[derive(Debug, Default)]
pub struct CancelToken {
    cancelled: AtomicBool,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Request cancellation (idempotent; safe from any thread).
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

/// Why the governor stopped an execution. Converted into the matching
/// [`ExecError`](crate::exec::ExecError) variant at the executor surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GovernorError {
    /// The caller's [`CancelToken`] fired.
    Cancelled,
    /// The deadline passed.
    DeadlineExceeded,
    /// Live materialised bytes exceeded the budget.
    MemoryBudgetExceeded {
        /// Bytes accounted when the budget tripped.
        used: usize,
        /// The configured budget in bytes.
        budget: usize,
        /// The materialisation site that tripped it.
        site: &'static str,
    },
    /// A worker (or breaker) panicked; the pool joined cleanly.
    WorkerPanicked {
        /// The checkpoint site whose work panicked.
        site: &'static str,
    },
}

impl fmt::Display for GovernorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GovernorError::Cancelled => write!(f, "query cancelled"),
            GovernorError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            GovernorError::MemoryBudgetExceeded { used, budget, site } => write!(
                f,
                "memory budget exceeded at {site}: {used} bytes used (budget {budget})"
            ),
            GovernorError::WorkerPanicked { site } => {
                write!(f, "worker panicked at {site} (pool joined cleanly)")
            }
        }
    }
}

impl std::error::Error for GovernorError {}

/// An injected failure mode (see the module docs).
#[cfg(any(test, feature = "fault-inject"))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultMode {
    /// `panic@<site>`: panic at the site's checkpoint — exercises the
    /// `catch_unwind` isolation.
    Panic,
    /// `slow@<site>`: sleep ~25ms at the site's checkpoint — lets a short
    /// deadline fire deterministically.
    Slow,
    /// `alloc@<site>`: simulate an allocation failure — trips the memory
    /// budget at the site.
    Alloc,
}

#[cfg(any(test, feature = "fault-inject"))]
#[derive(Debug)]
struct Fault {
    mode: FaultMode,
    site: String,
    /// Fires once per governor: re-runs on the same process (with the env
    /// var still set) behave identically.
    fired: AtomicBool,
}

#[cfg(any(test, feature = "fault-inject"))]
fn parse_fault(spec: &str) -> Option<Fault> {
    let (mode, site) = spec.split_once('@')?;
    let mode = match mode.trim() {
        "panic" => FaultMode::Panic,
        "slow" => FaultMode::Slow,
        "alloc" => FaultMode::Alloc,
        _ => return None,
    };
    let site = site.trim();
    if site.is_empty() {
        return None;
    }
    Some(Fault {
        mode,
        site: site.to_string(),
        fired: AtomicBool::new(false),
    })
}

/// Per-query resource governor (see the module docs). Shared by reference
/// with every morsel worker — all state is atomic.
#[derive(Debug, Default)]
pub struct QueryGovernor {
    token: Option<Arc<CancelToken>>,
    deadline: Option<Instant>,
    mem_budget: Option<usize>,
    mem_used: AtomicUsize,
    mem_peak: AtomicUsize,
    checks: AtomicUsize,
    /// Fast-path flag: set (with [`Ordering::Release`]) after the first
    /// error is recorded in `trip`.
    tripped: AtomicBool,
    /// The first failure — later checkpoints return a clone of it.
    trip: Mutex<Option<GovernorError>>,
    #[cfg(any(test, feature = "fault-inject"))]
    fault: Option<Fault>,
}

impl QueryGovernor {
    /// A governor with no limits — checkpoints are near-free counter
    /// bumps (what the `governed_chain_100k` bench row measures).
    pub fn new() -> Self {
        QueryGovernor::default()
    }

    /// Trip the governor `timeout` from now.
    pub fn with_deadline_in(mut self, timeout: Duration) -> Self {
        self.deadline = Instant::now().checked_add(timeout);
        self
    }

    /// Trip the governor when live materialised bytes exceed `bytes`.
    pub fn with_mem_budget(mut self, bytes: usize) -> Self {
        self.mem_budget = Some(bytes);
        self
    }

    /// Poll `token` at every checkpoint.
    pub fn with_token(mut self, token: Arc<CancelToken>) -> Self {
        self.token = Some(token);
        self
    }

    /// Arm the fault-injection hook from the `HSP_FAULT` environment
    /// variable. A no-op unless compiled under
    /// `cfg(any(test, feature = "fault-inject"))`, and a no-op when the
    /// variable is unset or malformed — so production builds and plain
    /// test runs are unaffected.
    pub fn with_fault_from_env(self) -> Self {
        #[cfg(any(test, feature = "fault-inject"))]
        {
            let mut this = self;
            this.fault = std::env::var("HSP_FAULT")
                .ok()
                .and_then(|s| parse_fault(&s));
            this
        }
        #[cfg(not(any(test, feature = "fault-inject")))]
        self
    }

    /// Record the first failure (later failures are ignored) and return
    /// the winning error.
    fn trip_with(&self, e: GovernorError) -> GovernorError {
        let mut slot = self.trip.lock().unwrap_or_else(|p| p.into_inner());
        if slot.is_none() {
            *slot = Some(e);
        }
        self.tripped.store(true, Ordering::Release);
        // invariant: the slot was filled above if it was empty.
        slot.clone().expect("trip slot just filled")
    }

    /// The recorded failure, if the governor has tripped.
    pub fn trip_error(&self) -> Option<GovernorError> {
        if !self.tripped.load(Ordering::Acquire) {
            return None;
        }
        self.trip.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    /// Has any checkpoint failed?
    pub fn is_tripped(&self) -> bool {
        self.tripped.load(Ordering::Acquire)
    }

    /// The full cooperative checkpoint: count the check, fire an armed
    /// fault for this `site`, then poll token and deadline. Returns the
    /// first-recorded error forever once tripped.
    pub fn check(&self, site: &'static str) -> Result<(), GovernorError> {
        self.checks.fetch_add(1, Ordering::Relaxed);
        if let Some(e) = self.trip_error() {
            return Err(e);
        }
        self.fault_point(site)?;
        if self.poll() {
            return Err(self.trip_error().unwrap_or(GovernorError::Cancelled));
        }
        Ok(())
    }

    /// The cheap poll long-running operators use: `true` once the
    /// governor has tripped (recording a token/deadline trip if that is
    /// what happened). No fault injection, no check accounting.
    pub fn poll(&self) -> bool {
        if self.tripped.load(Ordering::Acquire) {
            return true;
        }
        if let Some(token) = &self.token {
            if token.is_cancelled() {
                self.trip_with(GovernorError::Cancelled);
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.trip_with(GovernorError::DeadlineExceeded);
                return true;
            }
        }
        false
    }

    /// Account `bytes` of freshly materialised columns against the
    /// budget. The bytes are charged either way (the allocation already
    /// happened); an over-budget charge trips the governor.
    pub fn charge(&self, bytes: usize, site: &'static str) -> Result<(), GovernorError> {
        if bytes == 0 {
            return Ok(());
        }
        let used = self.mem_used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.mem_peak.fetch_max(used, Ordering::Relaxed);
        if let Some(budget) = self.mem_budget {
            if used > budget {
                return Err(self.trip_with(GovernorError::MemoryBudgetExceeded {
                    used,
                    budget,
                    site,
                }));
            }
        }
        Ok(())
    }

    /// Would charging `bytes` exceed the budget? Trips (and errors)
    /// **without charging** — the pre-materialisation guard that lets a
    /// Cartesian product fail before allocating its output.
    pub fn would_exceed(&self, bytes: usize, site: &'static str) -> Result<(), GovernorError> {
        if let Some(budget) = self.mem_budget {
            let used = self.mem_used.load(Ordering::Relaxed).saturating_add(bytes);
            if used > budget {
                return Err(self.trip_with(GovernorError::MemoryBudgetExceeded {
                    used,
                    budget,
                    site,
                }));
            }
        }
        Ok(())
    }

    /// Release `bytes` previously charged (a materialised table was
    /// recycled). Saturating: release is driven by table shape, and a
    /// handful of tables (clones, unit tables) are recycled without ever
    /// having been charged.
    pub fn release(&self, bytes: usize) {
        let _ = self
            .mem_used
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |used| {
                Some(used.saturating_sub(bytes))
            });
    }

    /// Record a caught worker panic at `site`; returns the winning trip
    /// error (an earlier trip takes precedence).
    pub fn note_panic(&self, site: &'static str) -> GovernorError {
        self.trip_with(GovernorError::WorkerPanicked { site })
    }

    /// Checkpoints taken so far.
    pub fn checks(&self) -> usize {
        self.checks.load(Ordering::Relaxed)
    }

    /// Live materialised bytes currently accounted.
    pub fn mem_used(&self) -> usize {
        self.mem_used.load(Ordering::Relaxed)
    }

    /// High-water mark of accounted bytes.
    pub fn mem_peak(&self) -> usize {
        self.mem_peak.load(Ordering::Relaxed)
    }

    #[cfg(any(test, feature = "fault-inject"))]
    fn fault_point(&self, site: &'static str) -> Result<(), GovernorError> {
        let Some(fault) = &self.fault else {
            return Ok(());
        };
        if fault.site != site || fault.fired.swap(true, Ordering::SeqCst) {
            return Ok(());
        }
        match fault.mode {
            FaultMode::Panic => panic!("injected fault: panic@{site}"),
            FaultMode::Slow => {
                std::thread::sleep(Duration::from_millis(25));
                Ok(())
            }
            FaultMode::Alloc => Err(self.trip_with(GovernorError::MemoryBudgetExceeded {
                used: self.mem_used.load(Ordering::Relaxed),
                budget: 0,
                site,
            })),
        }
    }

    #[cfg(not(any(test, feature = "fault-inject")))]
    fn fault_point(&self, _site: &'static str) -> Result<(), GovernorError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_governor_never_trips() {
        let gov = QueryGovernor::new();
        for _ in 0..100 {
            gov.check("worker").unwrap();
        }
        assert!(!gov.poll());
        assert_eq!(gov.checks(), 100);
        assert_eq!(gov.trip_error(), None);
    }

    #[test]
    fn cancel_token_trips_every_later_checkpoint() {
        let token = Arc::new(CancelToken::new());
        let gov = QueryGovernor::new().with_token(token.clone());
        gov.check("worker").unwrap();
        token.cancel();
        assert_eq!(gov.check("worker"), Err(GovernorError::Cancelled));
        // Sticky: the first error wins forever.
        assert_eq!(gov.check("breaker"), Err(GovernorError::Cancelled));
        assert!(gov.poll());
    }

    #[test]
    fn past_deadline_trips() {
        let gov = QueryGovernor::new().with_deadline_in(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(gov.check("operator"), Err(GovernorError::DeadlineExceeded));
    }

    #[test]
    fn memory_budget_charges_and_releases() {
        let gov = QueryGovernor::new().with_mem_budget(100);
        gov.charge(60, "sink").unwrap();
        assert_eq!(gov.mem_used(), 60);
        gov.release(20);
        assert_eq!(gov.mem_used(), 40);
        // Pre-check refuses without charging.
        assert!(matches!(
            gov.would_exceed(100, "crossproduct"),
            Err(GovernorError::MemoryBudgetExceeded {
                used: 140,
                budget: 100,
                site: "crossproduct"
            })
        ));
        assert_eq!(gov.mem_used(), 40);
        assert!(gov.is_tripped());
    }

    #[test]
    fn memory_peak_survives_release() {
        let gov = QueryGovernor::new();
        gov.charge(80, "sink").unwrap();
        gov.release(80);
        gov.charge(10, "sink").unwrap();
        assert_eq!(gov.mem_peak(), 80);
        // Release of never-charged bytes saturates at zero.
        gov.release(1_000_000);
        assert_eq!(gov.mem_used(), 0);
    }

    #[test]
    fn over_budget_charge_still_accounts_then_trips() {
        let gov = QueryGovernor::new().with_mem_budget(10);
        let err = gov.charge(25, "breaker").unwrap_err();
        assert_eq!(
            err,
            GovernorError::MemoryBudgetExceeded {
                used: 25,
                budget: 10,
                site: "breaker"
            }
        );
        assert_eq!(gov.mem_used(), 25);
    }

    #[test]
    fn first_trip_wins() {
        let gov = QueryGovernor::new().with_mem_budget(1);
        let first = gov.charge(5, "sink").unwrap_err();
        let second = gov.note_panic("worker");
        assert_eq!(first, second);
    }

    #[test]
    fn note_panic_trips_worker_panicked() {
        let gov = QueryGovernor::new();
        let e = gov.note_panic("worker");
        assert_eq!(e, GovernorError::WorkerPanicked { site: "worker" });
        assert_eq!(gov.trip_error(), Some(e));
    }

    #[test]
    fn fault_specs_parse() {
        assert!(parse_fault("panic@worker").is_some());
        assert!(parse_fault("slow@breaker").is_some());
        assert!(parse_fault("alloc@update").is_some());
        assert!(parse_fault("panic").is_none());
        assert!(parse_fault("boom@worker").is_none());
        assert!(parse_fault("panic@").is_none());
        assert!(parse_fault("").is_none());
    }

    #[test]
    fn alloc_fault_fires_once_at_its_site() {
        let gov = QueryGovernor {
            fault: parse_fault("alloc@breaker"),
            ..QueryGovernor::default()
        };
        // Wrong site: nothing happens.
        gov.check("worker").unwrap();
        // Matching site: trips as a memory-budget failure…
        assert!(matches!(
            gov.check("breaker"),
            Err(GovernorError::MemoryBudgetExceeded {
                site: "breaker",
                ..
            })
        ));
        // …and the sticky trip (not the fault) drives later checks.
        assert!(gov.check("breaker").is_err());
    }

    #[test]
    fn panic_fault_panics_at_its_site() {
        let gov = QueryGovernor {
            fault: parse_fault("panic@worker"),
            ..QueryGovernor::default()
        };
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = gov.check("worker");
        }));
        assert!(caught.is_err());
        // Fires once: the site is safe afterwards.
        gov.check("worker").unwrap();
    }
}
