//! Plan rendering — the format of the paper's Figures 2 and 3.
//!
//! Plans are printed as indented trees; when a [`Profile`] is supplied the
//! per-operator output cardinalities are annotated exactly like the
//! `(26.851)`-style labels in the paper's plan figures.

use hsp_sparql::{JoinQuery, TermOrVar, TriplePattern, Var};

use crate::exec::Profile;
use crate::plan::PhysicalPlan;

/// Render a plan as an indented tree without cardinalities.
pub fn render_plan(plan: &PhysicalPlan, query: &JoinQuery) -> String {
    let mut out = String::new();
    render(plan, None, query, 0, &mut out);
    out
}

/// Render a plan annotated with the output cardinalities recorded in
/// `profile` (which must come from executing the same plan).
pub fn render_plan_with_profile(
    plan: &PhysicalPlan,
    profile: &Profile,
    query: &JoinQuery,
) -> String {
    let mut out = String::new();
    render(plan, Some(profile), query, 0, &mut out);
    out
}

fn render(
    plan: &PhysicalPlan,
    profile: Option<&Profile>,
    query: &JoinQuery,
    depth: usize,
    out: &mut String,
) {
    let indent = "  ".repeat(depth);
    let cards = profile.map_or(String::new(), |p| {
        format!("  ({})", group_digits(p.output_rows))
    });
    match plan {
        PhysicalPlan::Scan {
            pattern_idx,
            pattern,
            order,
        } => {
            let op = if pattern.num_consts() > 0 {
                "σ"
            } else {
                "scan"
            };
            out.push_str(&format!(
                "{indent}{op}({}) {} [tp{pattern_idx}]{cards}\n",
                order.upper_name(),
                describe_pattern(pattern, query),
            ));
        }
        PhysicalPlan::MergeJoin { left, right, var } => {
            out.push_str(&format!("{indent}⋈mj ?{}{cards}\n", query.var_name(*var)));
            render(left, profile.map(|p| &p.children[0]), query, depth + 1, out);
            render(
                right,
                profile.map(|p| &p.children[1]),
                query,
                depth + 1,
                out,
            );
        }
        PhysicalPlan::HashJoin { left, right, vars } => {
            let names: Vec<String> = vars
                .iter()
                .map(|v| format!("?{}", query.var_name(*v)))
                .collect();
            out.push_str(&format!("{indent}⋈hj {}{cards}\n", names.join(",")));
            render(left, profile.map(|p| &p.children[0]), query, depth + 1, out);
            render(
                right,
                profile.map(|p| &p.children[1]),
                query,
                depth + 1,
                out,
            );
        }
        PhysicalPlan::LeftOuterHashJoin { left, right, vars } => {
            let names: Vec<String> = vars
                .iter()
                .map(|v| format!("?{}", query.var_name(*v)))
                .collect();
            out.push_str(&format!("{indent}⟕hj {}{cards}\n", names.join(",")));
            render(left, profile.map(|p| &p.children[0]), query, depth + 1, out);
            render(
                right,
                profile.map(|p| &p.children[1]),
                query,
                depth + 1,
                out,
            );
        }
        PhysicalPlan::CrossProduct { left, right } => {
            out.push_str(&format!("{indent}×{cards}\n"));
            render(left, profile.map(|p| &p.children[0]), query, depth + 1, out);
            render(
                right,
                profile.map(|p| &p.children[1]),
                query,
                depth + 1,
                out,
            );
        }
        PhysicalPlan::Sort { input, var } => {
            out.push_str(&format!("{indent}sort ?{}{cards}\n", query.var_name(*var)));
            render(
                input,
                profile.map(|p| &p.children[0]),
                query,
                depth + 1,
                out,
            );
        }
        PhysicalPlan::Filter { input, .. } => {
            out.push_str(&format!("{indent}σ(filter){cards}\n"));
            render(
                input,
                profile.map(|p| &p.children[0]),
                query,
                depth + 1,
                out,
            );
        }
        PhysicalPlan::Project {
            input,
            projection,
            distinct,
        } => {
            let names: Vec<String> = projection.iter().map(|(n, _)| format!("?{n}")).collect();
            let op = if *distinct { "π-distinct" } else { "π" };
            out.push_str(&format!("{indent}{op} {}{cards}\n", names.join(",")));
            render(
                input,
                profile.map(|p| &p.children[0]),
                query,
                depth + 1,
                out,
            );
        }
        PhysicalPlan::HashAggregate {
            input,
            group_by,
            aggs,
            having,
        } => {
            out.push_str(&format!(
                "{indent}{}{cards}\n",
                describe_aggregate(group_by, aggs, having.is_some(), query)
            ));
            render(
                input,
                profile.map(|p| &p.children[0]),
                query,
                depth + 1,
                out,
            );
        }
        PhysicalPlan::OrderBy { input, keys } => {
            let rendered: Vec<String> = keys
                .iter()
                .map(|k| {
                    if k.descending {
                        format!("DESC({})", k.expr)
                    } else {
                        k.expr.to_string()
                    }
                })
                .collect();
            out.push_str(&format!(
                "{indent}order by {}{cards}\n",
                rendered.join(", ")
            ));
            render(
                input,
                profile.map(|p| &p.children[0]),
                query,
                depth + 1,
                out,
            );
        }
        PhysicalPlan::Slice {
            input,
            offset,
            limit,
        } => {
            let lim = limit.map_or("∞".to_string(), |n| n.to_string());
            out.push_str(&format!("{indent}slice[{offset}..{lim}]{cards}\n"));
            render(
                input,
                profile.map(|p| &p.children[0]),
                query,
                depth + 1,
                out,
            );
        }
    }
}

/// The γ (grouping) line of an aggregate node: group keys, then the
/// aggregate specs with their output aliases, plus a `HAVING` marker.
pub(crate) fn describe_aggregate(
    group_by: &[Var],
    aggs: &[hsp_sparql::AggSpec],
    having: bool,
    query: &JoinQuery,
) -> String {
    let keys: Vec<String> = group_by
        .iter()
        .map(|v| format!("?{}", query.var_name(*v)))
        .collect();
    let specs: Vec<String> = aggs
        .iter()
        .map(|a| {
            let distinct = if a.distinct { "DISTINCT " } else { "" };
            let arg = a
                .arg
                .map_or("*".to_string(), |v| format!("?{}", query.var_name(v)));
            format!("{}({distinct}{arg}) AS ?{}", a.func.name(), a.name)
        })
        .collect();
    let mut line = format!("γ{{{}}} {}", keys.join(","), specs.join(", "));
    if having {
        line.push_str(" HAVING");
    }
    line
}

/// Describe a pattern like the paper's figures: `p = locatedIn` under a
/// `σ(PSO)` node, with variables shown by name.
pub(crate) fn describe_pattern(pattern: &TriplePattern, query: &JoinQuery) -> String {
    let mut parts = Vec::new();
    for pos in hsp_rdf::TriplePos::ALL {
        match pattern.slot(pos) {
            TermOrVar::Const(t) => parts.push(format!("{}={}", pos.letter(), short_term(t))),
            TermOrVar::Var(v) => parts.push(format!("?{}", var_name(query, *v))),
        }
    }
    parts.join(" ")
}

fn var_name(query: &JoinQuery, v: Var) -> String {
    query
        .var_names
        .get(v.index())
        .cloned()
        .unwrap_or_else(|| format!("v{}", v.0))
}

/// Shorten an IRI to its local name for readable figures.
fn short_term(t: &hsp_rdf::Term) -> String {
    match t {
        hsp_rdf::Term::Iri(iri) => {
            let local = iri.rsplit(['/', '#']).next().unwrap_or(iri);
            local.to_string()
        }
        lit => format!("\"{}\"", lit.lexical()),
    }
}

/// Group digits with dots the way the paper prints cardinalities
/// (`16.348.563`).
fn group_digits(n: usize) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, ch) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push('.');
        }
        out.push(ch);
    }
    out
}

/// One-line summary of an execution's morsel/pool runtime counters — what
/// the CLI prints under an `--explain` plan. Reports the parallel-kernel
/// and per-morsel counts only when something actually ran parallel (on a
/// one-core budget every kernel is sequential).
pub fn render_runtime_metrics(m: &crate::metrics::RuntimeMetrics) -> String {
    let parallel = if m.parallel_kernels > 0 {
        let mut line = format!(
            "{} parallel kernel{} ({} morsels) on {} threads",
            m.parallel_kernels,
            if m.parallel_kernels == 1 { "" } else { "s" },
            m.morsels,
            m.threads
        );
        let mut stages = Vec::new();
        if m.parallel_builds > 0 {
            stages.push(format!("{} parallel builds", m.parallel_builds));
        }
        if m.merge_partitions > 0 {
            stages.push(format!("{} merge partitions", m.merge_partitions));
        }
        if m.parallel_filters > 0 {
            stages.push(format!("{} parallel filters", m.parallel_filters));
        }
        if m.parallel_sorts > 0 {
            stages.push(format!("{} parallel sorts", m.parallel_sorts));
        }
        if !stages.is_empty() {
            line.push_str(&format!(" [{}]", stages.join(", ")));
        }
        line
    } else {
        format!("all kernels sequential ({} thread budget)", m.threads)
    };
    let pipelines = if m.pipelines > 0 {
        let mut extras = String::new();
        if m.pipeline_outer_probes > 0 {
            extras.push_str(&format!(
                ", {} outer probe{}",
                m.pipeline_outer_probes,
                if m.pipeline_outer_probes == 1 {
                    ""
                } else {
                    "s"
                },
            ));
        }
        if m.breaker_handoffs > 0 {
            extras.push_str(&format!(
                ", {} breaker handoff{}",
                m.breaker_handoffs,
                if m.breaker_handoffs == 1 { "" } else { "s" },
            ));
        }
        format!(
            "{} pipeline{} launched ({} morsel{} pushed, {} intermediate row{} avoided{extras}); ",
            m.pipelines,
            if m.pipelines == 1 { "" } else { "s" },
            m.pipeline_morsels,
            if m.pipeline_morsels == 1 { "" } else { "s" },
            m.pipeline_rows_avoided,
            if m.pipeline_rows_avoided == 1 {
                ""
            } else {
                "s"
            },
        )
    } else {
        String::new()
    };
    // The governor segment appears only on governed executions (a
    // timeout, memory budget, or cancel token was configured), so
    // ungoverned output is byte-identical to what it always was.
    let governor = if m.governor_checks > 0 {
        format!(
            "; governor {} checkpoint{}, {} peak bytes",
            m.governor_checks,
            if m.governor_checks == 1 { "" } else { "s" },
            m.governor_mem_peak
        )
    } else {
        String::new()
    };
    // The shared-pool segment appears only on the serving path, where the
    // session stamps `shared_pool_batches` after the run.
    let shared = if m.shared_pool_batches > 0 {
        format!(
            "; shared pool: {} batch{}",
            m.shared_pool_batches,
            if m.shared_pool_batches == 1 { "" } else { "es" }
        )
    } else {
        String::new()
    };
    // The cache segment appears only on the session path when a cache
    // tier was consulted (the session stamps the flags after the run),
    // so cache-less output stays byte-identical to what it always was.
    let cache = if m.plan_cache_used || m.result_cache_used {
        let mut tiers = Vec::new();
        if m.plan_cache_used {
            tiers.push(format!(
                "plan {}",
                if m.plan_cache_hit { "hit" } else { "miss" }
            ));
        }
        if m.result_cache_used {
            tiers.push(format!(
                "result {}",
                if m.result_cache_hit { "hit" } else { "miss" }
            ));
        }
        format!("; cache: {}", tiers.join(", "))
    } else {
        String::new()
    };
    // The storage segment appears only on the session path (the session
    // stamps the snapshot's version after the run) or when a scan had to
    // merge a delta overlay, so plain engine output stays byte-identical
    // to what it always was.
    let storage = if m.store_version > 0 || m.store_delta_rows > 0 || m.merged_scans > 0 {
        format!(
            "; storage: v{}, {} delta row{}, {} merged scan{}, {} compaction{}",
            m.store_version,
            m.store_delta_rows,
            if m.store_delta_rows == 1 { "" } else { "s" },
            m.merged_scans,
            if m.merged_scans == 1 { "" } else { "s" },
            m.store_compactions,
            if m.store_compactions == 1 { "" } else { "s" },
        )
    } else {
        String::new()
    };
    format!(
        "runtime: {parallel}; {pipelines}buffer pool {} hit{} / {} miss{} / {} recycled{governor}{shared}{cache}{storage}\n",
        m.pool_hits,
        if m.pool_hits == 1 { "" } else { "s" },
        m.pool_misses,
        if m.pool_misses == 1 { "" } else { "es" },
        m.pool_recycled
    )
}

/// Render the pipeline DAG the default executor lowers `plan` into — one
/// line per step: materialising breakers (`← breaker:`) and streaming
/// pipelines (`← pipeline: source → stage → … → sink`), in dependency
/// order. See [`crate::pipeline`].
pub fn render_pipeline_dag(plan: &PhysicalPlan, query: &JoinQuery) -> String {
    crate::pipeline::lower(plan).render(query)
}

/// Render a physical plan in Graphviz `dot` syntax: one node per operator
/// (labelled like the text explain, with cardinalities when a profile is
/// supplied), edges from children to parents — the shape of the paper's
/// Figures 2 and 3 as a picture.
pub fn render_plan_dot(
    plan: &PhysicalPlan,
    profile: Option<&Profile>,
    query: &JoinQuery,
) -> String {
    let mut out = String::from("digraph plan {\n  node [shape=box, fontname=\"monospace\"];\n");
    let mut counter = 0usize;
    dot_node(plan, profile, query, &mut counter, &mut out);
    out.push_str("}\n");
    out
}

/// Emit the node for `plan` (and its subtree); returns its dot id.
fn dot_node(
    plan: &PhysicalPlan,
    profile: Option<&Profile>,
    query: &JoinQuery,
    counter: &mut usize,
    out: &mut String,
) -> usize {
    let id = *counter;
    *counter += 1;
    let label = match plan {
        PhysicalPlan::Scan {
            pattern_idx,
            pattern,
            order,
        } => {
            let op = if pattern.num_consts() > 0 {
                "σ"
            } else {
                "scan"
            };
            format!(
                "{op}({}) {} [tp{pattern_idx}]",
                order.upper_name(),
                describe_pattern(pattern, query)
            )
        }
        PhysicalPlan::MergeJoin { var, .. } => format!("⋈mj ?{}", query.var_name(*var)),
        PhysicalPlan::HashJoin { vars, .. } => {
            let names: Vec<String> = vars
                .iter()
                .map(|v| format!("?{}", query.var_name(*v)))
                .collect();
            format!("⋈hj {}", names.join(","))
        }
        PhysicalPlan::LeftOuterHashJoin { vars, .. } => {
            let names: Vec<String> = vars
                .iter()
                .map(|v| format!("?{}", query.var_name(*v)))
                .collect();
            format!("⟕hj {}", names.join(","))
        }
        PhysicalPlan::CrossProduct { .. } => "×".to_string(),
        PhysicalPlan::Sort { var, .. } => format!("sort ?{}", query.var_name(*var)),
        PhysicalPlan::Filter { .. } => "σ(filter)".to_string(),
        PhysicalPlan::Project {
            projection,
            distinct,
            ..
        } => {
            let names: Vec<String> = projection.iter().map(|(n, _)| format!("?{n}")).collect();
            format!(
                "{} {}",
                if *distinct { "π-distinct" } else { "π" },
                names.join(",")
            )
        }
        PhysicalPlan::HashAggregate {
            group_by,
            aggs,
            having,
            ..
        } => describe_aggregate(group_by, aggs, having.is_some(), query),
        PhysicalPlan::OrderBy { keys, .. } => format!("order by ({} keys)", keys.len()),
        PhysicalPlan::Slice { offset, limit, .. } => {
            format!(
                "slice[{offset}..{}]",
                limit.map_or("∞".into(), |n| n.to_string())
            )
        }
    };
    let cards = profile.map_or(String::new(), |p| {
        format!("\\n{} rows", group_digits(p.output_rows))
    });
    out.push_str(&format!(
        "  n{id} [label=\"{}{}\"];\n",
        label.replace('\\', "\\\\").replace('"', "\\\""),
        cards
    ));
    let children: Vec<(&PhysicalPlan, Option<&Profile>)> = match plan {
        PhysicalPlan::Scan { .. } => vec![],
        PhysicalPlan::MergeJoin { left, right, .. }
        | PhysicalPlan::HashJoin { left, right, .. }
        | PhysicalPlan::LeftOuterHashJoin { left, right, .. }
        | PhysicalPlan::CrossProduct { left, right } => vec![
            (left.as_ref(), profile.map(|p| &p.children[0])),
            (right.as_ref(), profile.map(|p| &p.children[1])),
        ],
        PhysicalPlan::Sort { input, .. }
        | PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::Project { input, .. }
        | PhysicalPlan::HashAggregate { input, .. }
        | PhysicalPlan::OrderBy { input, .. }
        | PhysicalPlan::Slice { input, .. } => {
            vec![(input.as_ref(), profile.map(|p| &p.children[0]))]
        }
    };
    for (child, cp) in children {
        let cid = dot_node(child, cp, query, counter, out);
        out.push_str(&format!("  n{cid} -> n{id};\n"));
    }
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute, ExecConfig};
    use hsp_store::{Dataset, Order};

    fn setup() -> (Dataset, JoinQuery, PhysicalPlan) {
        let ds = Dataset::from_ntriples(
            r#"<http://e/a1> <http://e/p> <http://e/b1> .
<http://e/a1> <http://e/q> "5" .
<http://e/a2> <http://e/p> <http://e/b2> .
"#,
        )
        .unwrap();
        let query =
            JoinQuery::parse("SELECT ?x WHERE { ?x <http://e/p> ?y . ?x <http://e/q> ?z . }")
                .unwrap();
        let plan = PhysicalPlan::Project {
            input: Box::new(PhysicalPlan::MergeJoin {
                left: Box::new(PhysicalPlan::Scan {
                    pattern_idx: 0,
                    pattern: query.patterns[0].clone(),
                    order: Order::Pso,
                }),
                right: Box::new(PhysicalPlan::Scan {
                    pattern_idx: 1,
                    pattern: query.patterns[1].clone(),
                    order: Order::Pso,
                }),
                var: Var(0),
            }),
            projection: query.projection.clone(),
            distinct: false,
        };
        (ds, query, plan)
    }

    #[test]
    fn renders_dot_graph() {
        let (ds, query, plan) = setup();
        let out = crate::exec::execute(&plan, &ds, &crate::exec::ExecConfig::unlimited()).unwrap();
        let dot = render_plan_dot(&plan, Some(&out.profile), &query);
        assert!(dot.starts_with("digraph plan {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("⋈mj"));
        assert!(dot.contains("rows"));
        // One edge per non-root operator: scan + scan + join under project.
        assert_eq!(dot.matches(" -> ").count(), 3);
        // Balanced braces.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }

    #[test]
    fn renders_tree_with_named_vars() {
        let (_, query, plan) = setup();
        let text = render_plan(&plan, &query);
        assert!(text.contains("π ?x"));
        assert!(text.contains("⋈mj ?x"));
        assert!(text.contains("σ(PSO)"));
        assert!(text.contains("[tp0]"));
        assert!(text.contains("[tp1]"));
        assert!(text.contains("p=p")); // constant predicate shortened
    }

    #[test]
    fn renders_cardinalities_from_profile() {
        let (ds, query, plan) = setup();
        let out = execute(&plan, &ds, &ExecConfig::unlimited()).unwrap();
        let text = render_plan_with_profile(&plan, &out.profile, &query);
        assert!(text.contains("(1)")); // the join result has 1 row
        assert!(text.contains("(2)")); // the p-scan has 2 rows
    }

    #[test]
    fn runtime_metrics_render_both_shapes() {
        use crate::metrics::RuntimeMetrics;
        let sequential = RuntimeMetrics {
            threads: 1,
            pool_hits: 3,
            pool_misses: 7,
            ..RuntimeMetrics::default()
        };
        let line = render_runtime_metrics(&sequential);
        assert!(line.contains("all kernels sequential"));
        assert!(line.contains("3 hits / 7 misses"));
        let parallel = RuntimeMetrics {
            parallel_kernels: 2,
            morsels: 40,
            threads: 4,
            pool_hits: 1,
            pool_misses: 1,
            pool_recycled: 5,
            ..RuntimeMetrics::default()
        };
        let line = render_runtime_metrics(&parallel);
        assert!(line.contains("2 parallel kernels (40 morsels) on 4 threads"));
        assert!(line.contains("1 hit / 1 miss / 5 recycled"));
        // No per-stage suffix when no stage counter fired.
        assert!(!line.contains('['));
        let staged = RuntimeMetrics {
            parallel_builds: 1,
            merge_partitions: 4,
            parallel_filters: 2,
            ..parallel
        };
        let line = render_runtime_metrics(&staged);
        assert!(line.contains("[1 parallel builds, 4 merge partitions, 2 parallel filters]"));
        let with_sorts = RuntimeMetrics {
            parallel_sorts: 3,
            ..staged
        };
        assert!(render_runtime_metrics(&with_sorts).contains("3 parallel sorts"));
    }

    #[test]
    fn runtime_metrics_report_storage_only_when_stamped() {
        use crate::metrics::RuntimeMetrics;
        // Plain engine runs never stamp storage fields: no segment.
        let plain = RuntimeMetrics {
            threads: 1,
            ..RuntimeMetrics::default()
        };
        assert!(!render_runtime_metrics(&plain).contains("storage"));
        // Session-stamped metrics render the snapshot's storage state.
        let stamped = RuntimeMetrics {
            threads: 1,
            store_version: 3,
            store_delta_rows: 2,
            merged_scans: 1,
            store_compactions: 0,
            ..RuntimeMetrics::default()
        };
        let line = render_runtime_metrics(&stamped);
        assert!(
            line.contains("storage: v3, 2 delta rows, 1 merged scan, 0 compactions"),
            "{line}"
        );
    }

    #[test]
    fn runtime_metrics_report_pipelines() {
        use crate::metrics::RuntimeMetrics;
        let m = RuntimeMetrics {
            threads: 1,
            pipelines: 2,
            pipeline_morsels: 5,
            pipeline_rows_avoided: 1234,
            ..RuntimeMetrics::default()
        };
        let line = render_runtime_metrics(&m);
        assert!(
            line.contains(
                "2 pipelines launched (5 morsels pushed, 1234 intermediate rows avoided)"
            ),
            "{line}"
        );
        // The oracle path launches none and stays silent about pipelines.
        let none = RuntimeMetrics {
            threads: 1,
            ..RuntimeMetrics::default()
        };
        assert!(!render_runtime_metrics(&none).contains("pipeline"));
    }

    #[test]
    fn runtime_metrics_report_governor_only_when_governed() {
        use crate::metrics::RuntimeMetrics;
        let governed = RuntimeMetrics {
            threads: 1,
            governor_checks: 12,
            governor_mem_peak: 4096,
            ..RuntimeMetrics::default()
        };
        let line = render_runtime_metrics(&governed);
        assert!(
            line.contains("governor 12 checkpoints, 4096 peak bytes"),
            "{line}"
        );
        let ungoverned = RuntimeMetrics {
            threads: 1,
            ..RuntimeMetrics::default()
        };
        assert!(!render_runtime_metrics(&ungoverned).contains("governor"));
    }

    #[test]
    fn pipeline_dag_renders_for_a_planned_query() {
        let (_, query, plan) = setup();
        let dag = render_pipeline_dag(&plan, &query);
        assert!(dag.starts_with("pipeline DAG"), "{dag}");
        assert!(dag.contains("result: s"), "{dag}");
    }

    #[test]
    fn digit_grouping() {
        assert_eq!(group_digits(16_348_563), "16.348.563");
        assert_eq!(group_digits(432), "432");
        assert_eq!(group_digits(1_000), "1.000");
    }
}
