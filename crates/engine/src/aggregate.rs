//! Morsel-parallel two-phase grouped aggregation.
//!
//! SPARQL 1.1 `GROUP BY` + `COUNT`/`SUM`/`MIN`/`MAX`/`AVG` (+ `HAVING`)
//! runs as a **pipeline breaker** (see [`crate::pipeline`]): phase one
//! folds each morsel of the input into a thread-local `AggPartial` —
//! a grouped hash state keyed by the `GROUP BY` value tuple — and phase
//! two merges the partials **in morsel order** behind the barrier, then
//! finalises each group into one output row.
//!
//! # Determinism across thread counts
//!
//! The output must be byte-identical whether the fold ran on one thread
//! or eight, so every accumulator is designed to be *chunking-invariant*:
//!
//! * group rows are emitted in **first-seen input order** (a partial keeps
//!   its keys in first-seen order; merging appends the right partial's
//!   novel groups in *its* order, so merging in morsel order reproduces
//!   the sequential first-seen order exactly);
//! * `COUNT` partials are exact integer adds (associative);
//! * `SUM`/`AVG` (and every `DISTINCT` fold) do **not** add partial sums —
//!   floating-point addition is not associative, so per-chunk subtotals
//!   would make the result depend on the morsel size. Instead the partial
//!   keeps the group's bound argument ids *in row order* and finalisation
//!   folds them sequentially through [`hsp_sparql::expr::arith`] — the
//!   same left-to-right promotion ladder the reference implementation
//!   uses, at the cost of `O(group rows)` partial state (which the
//!   governor charges, site `"aggregate"`);
//! * `MIN`/`MAX` fold eagerly (`O(1)` per group) under the SPARQL §9.1
//!   value order ([`compare_for_order`]), replacing only on a **strict**
//!   improvement — so the first-seen row of an equal-valued tie wins in
//!   both the sequential and the merged order.
//!
//! # Computed terms
//!
//! `COUNT`/`SUM`/`AVG` produce values that may not exist in the dataset
//! dictionary. Finalisation resolves each result term against the
//! dictionary first and falls back to the per-execution computed-term
//! overlay ([`ExecContext::intern_computed`]); since groups finalise in
//! output order on one thread, both executors intern the same term
//! sequence and produce identical ids. `MIN`/`MAX` return one of the
//! *input* ids, so they never intern anything.

use std::collections::HashMap;
use std::fmt;
use std::ops::Range;

use hsp_rdf::{Term, TermId};
use hsp_sparql::expr::{arith, compare_for_order};
use hsp_sparql::{AggFunc, AggSpec, ArithOp, Value, Var};
use hsp_store::Dataset;

use crate::binding::BindingTable;
use crate::kernel::FxBuildHasher;
use crate::pool::ExecContext;

/// A typed aggregation failure: `SUM`/`AVG` over a value outside the
/// numeric promotion ladder (string, IRI, ill-typed literal, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggError {
    /// The aggregate that failed, e.g. `SUM(?v1)`.
    pub agg: String,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for AggError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "aggregate {}: {}", self.agg, self.detail)
    }
}

impl std::error::Error for AggError {}

/// Human form of one aggregate spec, for errors and `--explain` output.
pub(crate) fn describe(spec: &AggSpec) -> String {
    let distinct = if spec.distinct { "DISTINCT " } else { "" };
    match spec.arg {
        Some(v) => format!("{}({distinct}{v})", spec.func.name()),
        None => format!("{}({distinct}*)", spec.func.name()),
    }
}

/// One accumulator: the per-(group, aggregate) fold state.
#[derive(Debug, Clone)]
enum Acc {
    /// Plain `COUNT` (rows, or bound-argument rows): an exact add.
    Count(u64),
    /// `SUM`/`AVG` and every `DISTINCT` fold: the group's bound argument
    /// ids in input row order (finalisation folds or dedups them).
    Values(Vec<TermId>),
    /// `MIN`/`MAX`: best value so far plus the input id that produced it
    /// (the output is the *original* id — no re-interning).
    Extreme(Option<(Value, TermId)>),
}

impl Acc {
    fn fresh(spec: &AggSpec) -> Acc {
        match spec.func {
            AggFunc::Count if !spec.distinct => Acc::Count(0),
            AggFunc::Count | AggFunc::Sum | AggFunc::Avg => Acc::Values(Vec::new()),
            AggFunc::Min | AggFunc::Max => Acc::Extreme(None),
        }
    }

    /// Bytes this accumulator holds beyond its inline size — the unit of
    /// the governor's `"aggregate"` memory accounting.
    fn heap_bytes(&self) -> usize {
        match self {
            Acc::Count(_) | Acc::Extreme(_) => 0,
            Acc::Values(v) => v.len() * std::mem::size_of::<TermId>(),
        }
    }
}

/// One worker's grouped fold state over a subset of the input rows.
#[derive(Debug)]
pub(crate) struct AggPartial {
    /// Group keys in first-seen order.
    keys: Vec<Vec<TermId>>,
    /// Key → index into `keys`/`accs`.
    index: HashMap<Vec<TermId>, usize, FxBuildHasher>,
    /// `accs[g][a]`: accumulator of aggregate `a` in group `g`.
    accs: Vec<Vec<Acc>>,
}

impl AggPartial {
    fn new() -> AggPartial {
        AggPartial {
            keys: Vec::new(),
            index: HashMap::default(),
            accs: Vec::new(),
        }
    }

    fn group(&mut self, key: Vec<TermId>, aggs: &[AggSpec]) -> usize {
        if let Some(&g) = self.index.get(&key) {
            return g;
        }
        let g = self.keys.len();
        self.keys.push(key.clone());
        self.index.insert(key, g);
        self.accs.push(aggs.iter().map(Acc::fresh).collect());
        g
    }

    /// Finalised group count.
    pub(crate) fn groups(&self) -> usize {
        self.keys.len()
    }

    /// Approximate heap footprint (keys + accumulator value vectors), for
    /// the governor's `"aggregate"` budget checks.
    pub(crate) fn heap_bytes(&self) -> usize {
        let keys: usize = self
            .keys
            .len()
            .saturating_mul(2) // one copy in `keys`, one in `index`
            .saturating_mul(self.keys.first().map_or(0, Vec::len))
            .saturating_mul(std::mem::size_of::<TermId>());
        let accs: usize = self
            .accs
            .iter()
            .flat_map(|row| row.iter().map(Acc::heap_bytes))
            .sum();
        keys + accs
    }
}

/// Phase one: fold `rows` of `input` into a fresh partial. Deterministic
/// for a given range; ranges are stitched by [`merge_partials`].
pub(crate) fn fold_range(
    input: &BindingTable,
    ds: &Dataset,
    group_by: &[Var],
    aggs: &[AggSpec],
    rows: Range<usize>,
) -> AggPartial {
    // Pre-resolve the columns once per fold, not once per row. Group
    // variables are validated bound; an aggregate argument may still be
    // unbound per row (OPTIONAL padding), which the fold skips.
    let group_cols: Vec<&[TermId]> = group_by.iter().map(|&v| input.column(v)).collect();
    let arg_cols: Vec<Option<&[TermId]>> = aggs
        .iter()
        .map(|a| a.arg.map(|v| input.column(v)))
        .collect();

    let mut partial = AggPartial::new();
    let mut key = Vec::with_capacity(group_by.len());
    for i in rows {
        key.clear();
        key.extend(group_cols.iter().map(|c| c[i]));
        let g = partial.group(key.clone(), aggs);
        for (a, spec) in aggs.iter().enumerate() {
            let arg = arg_cols[a].map(|c| c[i]);
            fold_one(&mut partial.accs[g][a], spec, arg, ds);
        }
    }
    partial
}

/// Fold one row into one accumulator. `arg` is `None` for `COUNT(*)`,
/// `Some(UNBOUND)` for a row where the argument variable is unbound
/// (skipped by every aggregate except `COUNT(*)`).
fn fold_one(acc: &mut Acc, spec: &AggSpec, arg: Option<TermId>, ds: &Dataset) {
    match acc {
        Acc::Count(n) => {
            if arg.is_none_or(|id| !id.is_unbound()) {
                *n += 1;
            }
        }
        Acc::Values(vals) => {
            // invariant: `Acc::fresh` only builds `Values` for aggregates
            // with an argument (COUNT(DISTINCT *) parses as plain COUNT).
            let id = arg.expect("value accumulator without an argument");
            if !id.is_unbound() {
                vals.push(id);
            }
        }
        Acc::Extreme(best) => {
            let id = arg.expect("extreme accumulator without an argument");
            if id.is_unbound() {
                return;
            }
            let value = Value::from_term(ds.dict().term(id));
            let better = match best {
                None => true,
                Some((cur, _)) => {
                    let ord = compare_for_order(Some(&value), Some(cur));
                    // Strict improvement only: ties keep the first-seen row.
                    if spec.func == AggFunc::Min {
                        ord == std::cmp::Ordering::Less
                    } else {
                        ord == std::cmp::Ordering::Greater
                    }
                }
            };
            if better {
                *best = Some((value, id));
            }
        }
    }
}

/// Phase two: merge per-morsel partials **in morsel order** into one.
/// Right-hand novel groups append in their own first-seen order, so the
/// merged group order equals the sequential first-seen order.
pub(crate) fn merge_partials(parts: Vec<AggPartial>, aggs: &[AggSpec]) -> AggPartial {
    let mut parts = parts.into_iter();
    let mut out = parts.next().unwrap_or_else(AggPartial::new);
    for part in parts {
        for (key, accs) in part.keys.into_iter().zip(part.accs) {
            let g = out.group(key, aggs);
            for (a, (mine, theirs)) in out.accs[g].iter_mut().zip(accs).enumerate() {
                merge_acc(mine, theirs, &aggs[a]);
            }
        }
    }
    out
}

fn merge_acc(mine: &mut Acc, theirs: Acc, spec: &AggSpec) {
    match (mine, theirs) {
        (Acc::Count(a), Acc::Count(b)) => *a += b,
        (Acc::Values(a), Acc::Values(b)) => a.extend(b),
        (Acc::Extreme(a), Acc::Extreme(b)) => {
            let Some((bv, bid)) = b else { return };
            let better = match a {
                None => true,
                Some((av, _)) => {
                    let ord = compare_for_order(Some(&bv), Some(av));
                    // The left (earlier-morsel) holder keeps ties.
                    if spec.func == AggFunc::Min {
                        ord == std::cmp::Ordering::Less
                    } else {
                        ord == std::cmp::Ordering::Greater
                    }
                }
            };
            if better {
                *a = Some((bv, bid));
            }
        }
        _ => unreachable!("accumulator kinds are fixed per aggregate"),
    }
}

/// Finalise the merged partial into the output table: one row per group,
/// group-key columns (in `group_by` order) then aggregate outputs (in
/// `aggs` order). `HAVING` is **not** applied here — the caller builds
/// the full group table first so both executors intern identical term
/// sequences, then filters with [`apply_having`] (see the pipeline
/// breaker and [`crate::reference::hash_aggregate`]).
pub(crate) fn finalise(
    mut partial: AggPartial,
    ctx: &ExecContext,
    ds: &Dataset,
    group_by: &[Var],
    aggs: &[AggSpec],
) -> Result<BindingTable, AggError> {
    // Ungrouped aggregation over an empty input still yields one row
    // (COUNT 0, SUM 0, AVG 0, MIN/MAX unbound — SPARQL 1.1 §18.5);
    // grouped aggregation yields zero rows.
    if partial.keys.is_empty() && group_by.is_empty() {
        partial.group(Vec::new(), aggs);
    }

    let groups = partial.keys.len();
    let mut vars: Vec<Var> = group_by.to_vec();
    let mut cols: Vec<Vec<TermId>> = group_by
        .iter()
        .enumerate()
        .map(|(k, _)| {
            let mut col = ctx.pool.take_col(groups);
            col.extend(partial.keys.iter().map(|key| key[k]));
            col
        })
        .collect();

    // Finalise row-major (group g's aggregates before group g+1's) so the
    // computed-term intern order matches the row-at-a-time reference
    // implementation exactly — overlay ids are positional.
    let mut agg_cols: Vec<Vec<TermId>> = aggs.iter().map(|_| ctx.pool.take_col(groups)).collect();
    for g in 0..groups {
        for (a, spec) in aggs.iter().enumerate() {
            agg_cols[a].push(finalise_acc(&partial.accs[g][a], spec, ctx, ds)?);
        }
    }
    for (spec, col) in aggs.iter().zip(agg_cols) {
        vars.push(spec.out);
        cols.push(col);
    }

    // Group rows follow first-seen order, not any TermId order.
    Ok(BindingTable::from_columns(vars, cols, None))
}

/// Finalise one accumulator into an output id.
fn finalise_acc(
    acc: &Acc,
    spec: &AggSpec,
    ctx: &ExecContext,
    ds: &Dataset,
) -> Result<TermId, AggError> {
    let value = match (acc, spec.func) {
        (Acc::Count(n), _) => Value::Integer(*n as i64),
        (Acc::Values(vals), AggFunc::Count) => Value::Integer(count_distinct(vals) as i64),
        (Acc::Values(vals), AggFunc::Sum) => fold_numeric(vals, spec, ds)?.0,
        (Acc::Values(vals), AggFunc::Avg) => {
            let (sum, n) = fold_numeric(vals, spec, ds)?;
            if n == 0 {
                Value::Integer(0) // Avg({}) = 0, like Sum({}) = 0.
            } else {
                arith(ArithOp::Div, &sum, &Value::Integer(n as i64))
                    .map_err(|e| type_error(spec, e))?
            }
        }
        (Acc::Extreme(best), _) => {
            // MIN/MAX of an empty (or all-unbound) group is an error per
            // the spec, which leaves the output variable unbound.
            return Ok(best.as_ref().map_or(TermId::UNBOUND, |&(_, id)| id));
        }
        _ => unreachable!("accumulator kinds are fixed per aggregate"),
    };
    let term = value.to_term();
    Ok(ds
        .dict()
        .id(&term)
        .unwrap_or_else(|| ctx.intern_computed(term)))
}

/// `SUM`'s sequential left fold from `Integer(0)` (also `AVG`'s numerator):
/// returns the folded sum and the number of values folded, applying the
/// `DISTINCT` dedup first when the spec asks for it.
fn fold_numeric(vals: &[TermId], spec: &AggSpec, ds: &Dataset) -> Result<(Value, usize), AggError> {
    let deduped;
    let vals = if spec.distinct {
        deduped = dedup_in_order(vals);
        deduped.as_slice()
    } else {
        vals
    };
    let mut sum = Value::Integer(0);
    for &id in vals {
        let v = Value::from_term(ds.dict().term(id));
        sum = arith(ArithOp::Add, &sum, &v).map_err(|e| type_error(spec, e))?;
    }
    Ok((sum, vals.len()))
}

fn type_error(spec: &AggSpec, e: hsp_sparql::ExprError) -> AggError {
    AggError {
        agg: describe(spec),
        detail: e.to_string(),
    }
}

/// Distinct count of `vals` (term identity — interning is injective).
fn count_distinct(vals: &[TermId]) -> usize {
    let mut seen: std::collections::HashSet<TermId, FxBuildHasher> =
        std::collections::HashSet::default();
    vals.iter().filter(|&&id| seen.insert(id)).count()
}

/// First-occurrence dedup preserving input order.
fn dedup_in_order(vals: &[TermId]) -> Vec<TermId> {
    let mut seen: std::collections::HashSet<TermId, FxBuildHasher> =
        std::collections::HashSet::default();
    vals.iter().copied().filter(|&id| seen.insert(id)).collect()
}

/// [`hsp_sparql::Bindings`] over one finalised group row, resolving
/// computed ids through the execution context's overlay — the `HAVING`
/// evaluation view (and the result materialisation view in the CLI).
pub(crate) struct GroupRowBindings<'a> {
    /// The dataset dictionary for ordinary ids.
    pub ds: &'a Dataset,
    /// The overlay for computed ids.
    pub ctx: &'a ExecContext,
    /// The finalised group table.
    pub table: &'a BindingTable,
    /// The row under evaluation.
    pub row: usize,
}

impl hsp_sparql::Bindings for GroupRowBindings<'_> {
    fn term(&self, v: Var) -> Option<Term> {
        let id = match self.table.col_index(v) {
            Some(c) => self.table.columns()[c][self.row],
            None => TermId::UNBOUND,
        };
        if id.is_unbound() {
            None
        } else if crate::pool::is_computed(id) {
            self.ctx.computed_term(id)
        } else {
            Some(self.ds.dict().term(id).clone())
        }
    }
}

/// Apply `HAVING` to a finalised group table: keep the rows where the
/// predicate evaluates to true (an evaluation error is false, the usual
/// SPARQL filter rule). Consumes and recycles the unfiltered table.
pub(crate) fn apply_having(
    table: BindingTable,
    having: &hsp_sparql::Expr,
    ctx: &ExecContext,
    ds: &Dataset,
) -> BindingTable {
    let evaluator = hsp_sparql::Evaluator::new();
    let mut sel = ctx.pool.take_idx(table.len());
    for row in 0..table.len() {
        let bindings = GroupRowBindings {
            ds,
            ctx,
            table: &table,
            row,
        };
        if evaluator.matches(having, &bindings) {
            sel.push(row as u32);
        }
    }
    let out = table.gather_in(&sel, &ctx.pool);
    ctx.pool.put_idx(sel);
    ctx.pool.recycle(table);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Dataset {
        Dataset::from_ntriples(
            r#"<http://e/a1> <http://e/p> "1"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://e/a1> <http://e/p> "2"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://e/a2> <http://e/p> "3"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://e/a2> <http://e/p> "3"^^<http://www.w3.org/2001/XMLSchema#integer> .
"#,
        )
        .unwrap()
    }

    fn id(ds: &Dataset, term: &Term) -> TermId {
        ds.dict().id(term).unwrap()
    }

    fn int_term(n: i64) -> Term {
        Value::Integer(n).to_term()
    }

    fn spec(func: AggFunc, distinct: bool, arg: Option<Var>, out: Var) -> AggSpec {
        AggSpec {
            func,
            distinct,
            arg,
            out,
            name: "agg".into(),
        }
    }

    /// `?g` in column 0, `?x` in column 1.
    fn input(ds: &Dataset) -> BindingTable {
        let g1 = id(ds, &Term::iri("http://e/a1"));
        let g2 = id(ds, &Term::iri("http://e/a2"));
        let one = id(ds, &int_term(1));
        let two = id(ds, &int_term(2));
        let three = id(ds, &int_term(3));
        BindingTable::from_columns(
            vec![Var(0), Var(1)],
            vec![vec![g1, g1, g2, g2], vec![one, two, three, three]],
            None,
        )
    }

    #[test]
    fn chunked_fold_matches_single_fold() {
        let ds = dataset();
        let table = input(&ds);
        let ctx = ExecContext::new();
        let aggs = vec![
            spec(AggFunc::Count, false, None, Var(2)),
            spec(AggFunc::Sum, false, Some(Var(1)), Var(3)),
            spec(AggFunc::Avg, false, Some(Var(1)), Var(4)),
            spec(AggFunc::Min, false, Some(Var(1)), Var(5)),
            spec(AggFunc::Max, false, Some(Var(1)), Var(6)),
            spec(AggFunc::Count, true, Some(Var(1)), Var(7)),
        ];
        let whole = fold_range(&table, &ds, &[Var(0)], &aggs, 0..4);
        let seq = finalise(whole, &ctx, &ds, &[Var(0)], &aggs).unwrap();

        let ctx2 = ExecContext::new();
        let parts: Vec<AggPartial> = (0..4)
            .map(|i| fold_range(&table, &ds, &[Var(0)], &aggs, i..i + 1))
            .collect();
        let merged = merge_partials(parts, &aggs);
        let par = finalise(merged, &ctx2, &ds, &[Var(0)], &aggs).unwrap();
        assert_eq!(seq, par);

        // Hand-checked values: group a1 → count 2, sum 3, avg 1.5,
        // min 1, max 2, distinct-count 2; a2 → 2, 6, 3, 3, 3, 1.
        assert_eq!(seq.len(), 2);
        let sum_a1 = seq.value(Var(3), 0);
        assert_eq!(ds.dict().id(&int_term(3)), Some(sum_a1));
        let avg_a1 = ctx.computed_term(seq.value(Var(4), 0)).unwrap();
        assert_eq!(
            avg_a1,
            Term::typed_literal("1.5", hsp_rdf::vocab::XSD_DECIMAL)
        );
        let min_a1 = seq.value(Var(5), 0);
        assert_eq!(ds.dict().id(&int_term(1)), Some(min_a1));
        let cd_a2 = seq.value(Var(7), 1);
        assert_eq!(ds.dict().id(&int_term(1)), Some(cd_a2));
    }

    #[test]
    fn empty_input_ungrouped_yields_one_zero_row() {
        let ds = dataset();
        let ctx = ExecContext::new();
        let table = BindingTable::empty(vec![Var(0), Var(1)]);
        let aggs = vec![
            spec(AggFunc::Count, false, None, Var(2)),
            spec(AggFunc::Sum, false, Some(Var(1)), Var(3)),
            spec(AggFunc::Min, false, Some(Var(1)), Var(4)),
        ];
        let partial = fold_range(&table, &ds, &[], &aggs, 0..0);
        let out = finalise(partial, &ctx, &ds, &[], &aggs).unwrap();
        assert_eq!(out.len(), 1);
        let zero = out.value(Var(2), 0);
        let term = ctx
            .computed_term(zero)
            .unwrap_or_else(|| ds.dict().term(zero).clone());
        assert_eq!(term, int_term(0));
        assert_eq!(out.value(Var(2), 0), out.value(Var(3), 0)); // COUNT 0 == SUM 0
        assert!(out.value(Var(4), 0).is_unbound()); // MIN of nothing
    }

    #[test]
    fn empty_input_grouped_yields_zero_rows() {
        let ds = dataset();
        let ctx = ExecContext::new();
        let table = BindingTable::empty(vec![Var(0), Var(1)]);
        let aggs = vec![spec(AggFunc::Count, false, None, Var(2))];
        let partial = fold_range(&table, &ds, &[Var(0)], &aggs, 0..0);
        let out = finalise(partial, &ctx, &ds, &[Var(0)], &aggs).unwrap();
        assert_eq!(out.len(), 0);
        assert_eq!(out.vars(), &[Var(0), Var(2)]);
    }

    #[test]
    fn sum_over_iri_is_a_typed_error() {
        let ds = dataset();
        let ctx = ExecContext::new();
        let g = id(&ds, &Term::iri("http://e/a1"));
        let table = BindingTable::from_columns(vec![Var(0)], vec![vec![g]], None);
        let aggs = vec![spec(AggFunc::Sum, false, Some(Var(0)), Var(1))];
        let partial = fold_range(&table, &ds, &[], &aggs, 0..1);
        let err = finalise(partial, &ctx, &ds, &[], &aggs).unwrap_err();
        assert_eq!(err.agg, "SUM(?v0)");
    }

    #[test]
    fn unbound_arguments_are_skipped_but_count_star_sees_the_row() {
        let ds = dataset();
        let ctx = ExecContext::new();
        let one = id(&ds, &int_term(1));
        let table =
            BindingTable::from_columns(vec![Var(0)], vec![vec![one, TermId::UNBOUND, one]], None);
        let aggs = vec![
            spec(AggFunc::Count, false, None, Var(1)),
            spec(AggFunc::Count, false, Some(Var(0)), Var(2)),
            spec(AggFunc::Sum, false, Some(Var(0)), Var(3)),
        ];
        let partial = fold_range(&table, &ds, &[], &aggs, 0..3);
        let out = finalise(partial, &ctx, &ds, &[], &aggs).unwrap();
        assert_eq!(out.value(Var(1), 0), id(&ds, &int_term(3))); // COUNT(*)
        assert_eq!(out.value(Var(2), 0), id(&ds, &int_term(2))); // COUNT(?x)
        assert_eq!(out.value(Var(3), 0), id(&ds, &int_term(2))); // SUM
    }

    #[test]
    fn min_max_ties_keep_the_first_seen_id_across_merges() {
        // Two distinct ids, equal values ("3" appears twice in the data as
        // one id — craft equality via decimal 3.0 vs integer 3 instead).
        let ds = Dataset::from_ntriples(
            r#"<http://e/s> <http://e/p> "3"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://e/s> <http://e/p> "3.0"^^<http://www.w3.org/2001/XMLSchema#decimal> .
"#,
        )
        .unwrap();
        let int3 = id(&ds, &Term::typed_literal("3", hsp_rdf::vocab::XSD_INTEGER));
        let dec3 = id(
            &ds,
            &Term::typed_literal("3.0", hsp_rdf::vocab::XSD_DECIMAL),
        );
        let ctx = ExecContext::new();
        let table = BindingTable::from_columns(vec![Var(0)], vec![vec![int3, dec3]], None);
        let aggs = vec![
            spec(AggFunc::Min, false, Some(Var(0)), Var(1)),
            spec(AggFunc::Max, false, Some(Var(0)), Var(2)),
        ];
        // Sequential: first-seen (int3) wins both.
        let seq = finalise(
            fold_range(&table, &ds, &[], &aggs, 0..2),
            &ctx,
            &ds,
            &[],
            &aggs,
        )
        .unwrap();
        assert_eq!(seq.value(Var(1), 0), int3);
        assert_eq!(seq.value(Var(2), 0), int3);
        // Chunked per row and merged: identical.
        let parts = vec![
            fold_range(&table, &ds, &[], &aggs, 0..1),
            fold_range(&table, &ds, &[], &aggs, 1..2),
        ];
        let par = finalise(
            merge_partials(parts, &aggs),
            &ExecContext::new(),
            &ds,
            &[],
            &aggs,
        )
        .unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn having_filters_group_rows() {
        let ds = dataset();
        let ctx = ExecContext::new();
        let table = input(&ds);
        let aggs = vec![spec(AggFunc::Sum, false, Some(Var(1)), Var(2))];
        let out = finalise(
            fold_range(&table, &ds, &[Var(0)], &aggs, 0..4),
            &ctx,
            &ds,
            &[Var(0)],
            &aggs,
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        // HAVING (?v2 > 4): only a2 (sum 6) survives.
        let having = hsp_sparql::Expr::Cmp {
            op: hsp_sparql::CmpOp::Gt,
            lhs: Box::new(hsp_sparql::Expr::Var(Var(2))),
            rhs: Box::new(hsp_sparql::Expr::Const(int_term(4))),
        };
        let kept = apply_having(out, &having, &ctx, &ds);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept.value(Var(0), 0), id(&ds, &Term::iri("http://e/a2")));
    }
}
