//! Columnar, operator-at-a-time execution engine.
//!
//! This crate is the MonetDB stand-in: like MonetDB's BAT algebra, every
//! operator consumes and produces *fully materialised columnar* binding
//! tables ([`binding::BindingTable`]), and sortedness is a first-class
//! property — a [`plan::PhysicalPlan`] merge join is only valid when both
//! inputs are sorted on the join variable, which scans over the six ordered
//! relations provide for free.
//!
//! * [`binding`] — columnar intermediate results with sortedness metadata.
//! * [`plan`] — the physical plan tree shared by all planners.
//! * [`ops`] — the operators: scan-select, merge join, hash join, cross
//!   product, filter, projection, distinct.
//! * [`exec`] — the tree evaluator, with per-operator profiling and an
//!   intermediate-result row budget (used to make the SQL baseline's
//!   Cartesian plans fail fast, the paper's "XXX" entries).
//! * [`cost`] — the RDF-3X cost model the paper uses for Table 3.
//! * [`metrics`] — plan characteristics for Table 4 (merge/hash join counts,
//!   left-deep vs bushy shape, plan similarity).
//! * [`explain`] — plan rendering with per-operator cardinalities, the
//!   format of the paper's Figures 2 and 3.

pub mod binding;
pub mod cost;
pub mod exec;
pub mod explain;
pub mod metrics;
pub mod ops;
pub mod plan;

pub use binding::BindingTable;
pub use exec::{execute, ExecConfig, ExecError, ExecOutput, Profile};
pub use metrics::{PlanMetrics, PlanShape};
pub use plan::PhysicalPlan;
