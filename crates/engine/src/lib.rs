//! Columnar execution engine: pipeline-at-a-time by default, with the
//! operator-at-a-time evaluator retained as the byte-identity oracle.
//!
//! This crate began as the MonetDB stand-in: like MonetDB's BAT algebra,
//! every operator consumed and produced *fully materialised columnar*
//! binding tables ([`binding::BindingTable`]). That evaluator survives as
//! [`exec::ExecStrategy::OperatorAtATime`]; the default `execute` path now
//! **lowers** the plan into a DAG of morsel-driven pipelines with explicit
//! breakers ([`pipeline`]), so non-breaker intermediates are never
//! materialised. Sortedness stays a first-class property — a
//! [`plan::PhysicalPlan`] merge join is only valid when both inputs are
//! sorted on the join variable, which scans over the six ordered relations
//! provide for free.
//!
//! # The vectorized execution model
//!
//! Operators are **late-materializing**: a kernel never emits output rows
//! while it is still deciding *which* rows qualify. Execution of every
//! operator splits into two phases:
//!
//! 1. **Select** — produce a compact selection vector of `u32` row indices
//!    (for unary operators: filter, distinct, order-by, sort) or a pair of
//!    index vectors `(left_row, right_row)` (for joins). This phase touches
//!    only the columns it needs — the join key, the filter column — and
//!    allocates nothing per row.
//! 2. **Gather** — materialise the output **column at a time** through the
//!    bulk primitives on `BindingTable`
//!    ([`binding::BindingTable::gather`] for selection vectors,
//!    [`binding::BindingTable::from_join_pairs`] for join pairs), or, where
//!    the selection is a whole range, plain `extend_from_slice` copies
//!    (slice, union, cross product, plain projection).
//!
//! Compared with the original row-at-a-time kernels (preserved in
//! [`mod@reference`] as the benchmark baseline and differential-testing
//! oracle), this removes the three scalar costs that dominated profiles: a
//! linear `col_index` lookup per *value* in `value()`, a `Vec<TermId>` key
//! allocation per hash-join *probe*, and a `push_row` call per output
//! *row*.
//!
//! The hash-join build side ([`kernel::BuildTable`]) is an Fx-hashed flat
//! table: join keys of one or two variables pack into a `u64` per build row
//! (`TermId` is 32 bits) and verify with a single integer compare; wider
//! keys fall back to a CSR-style bucket directory — one offsets array plus
//! one row-index array — verified against the key columns. Neither layout
//! allocates per key or per probe.
//!
//! # The morsel/pool runtime layer
//!
//! On top of the vectorized kernels sit two execution-wide services,
//! threaded through every operator as an [`pool::ExecContext`]:
//!
//! * **Morsel-driven parallelism** ([`morsel`]) — every heavy operator
//!   stage runs on the scoped worker pool: the hash-join *build* (morsel-
//!   parallel hashing plus a two-pass partitioned counting sort that
//!   reproduces the sequential bucket directory byte-for-byte), the
//!   hash-join *probe* and scan fast paths (fixed-size morsels pulled
//!   from a shared cursor, thread-local pair buffers stitched back in
//!   morsel order), the *merge join* (both sorted inputs range-partitioned
//!   at common key boundaries, one independent cursor pair per partition,
//!   outputs stitched in partition order), *FILTER* / *ORDER BY* key
//!   extraction (one expression evaluator per worker — the compiled-regex
//!   cache stays single-threaded), the *ORDER BY / sort-enforcer*
//!   comparison sort (parallel merge sort over per-worker runs), and
//!   whole *pipelines* (each worker pushes a morsel through every stage
//!   of a breaker-free chain). Every parallel path is byte-identical
//!   to its sequential counterpart by construction. Parallelism is gated
//!   on `available_parallelism` and a row threshold, like the store's
//!   six-order build; tests force a thread count (or the
//!   `HSP_FORCE_THREADS` env var) to exercise the pool on single-core
//!   machines.
//! * **Buffer pooling** ([`pool`]) — a per-execution arena of recyclable
//!   column and index buffers. The gather primitives check output columns
//!   out of the pool, and the tree evaluator returns a consumed
//!   intermediate's columns the moment its parent operator has produced
//!   its output, so operator-at-a-time plans stop churning the allocator.
//!   Hit/miss/recycle counters surface as [`metrics::RuntimeMetrics`] on
//!   every [`ExecOutput`].
//!
//! # Module map
//!
//! * [`binding`] — columnar intermediate results with sortedness metadata
//!   and the bulk gather primitives.
//! * [`kernel`] — FxHash utilities and the flat hash-join build table.
//! * [`morsel`] — the morsel scheduler: config, gated worker pool,
//!   deterministic stitch-back.
//! * [`pool`] — the per-execution buffer pool and the [`pool::ExecContext`]
//!   threaded through the operators.
//! * [`govern`] — the query governor: deadlines, cooperative
//!   cancellation, per-query memory budgets, panic-isolated workers, and
//!   the `HSP_FAULT` fault-injection hook.
//! * [`plan`] — the physical plan tree shared by all planners.
//! * [`ops`] — the vectorized operators: scan-select, merge join, hash
//!   join, cross product, filter, projection, distinct. Each has a `*_in`
//!   variant taking an [`pool::ExecContext`].
//! * [`aggregate`] — the morsel-parallel two-phase γ: per-morsel grouped
//!   fold, morsel-order merge (first-seen group order is deterministic at
//!   any thread count), row-major finalisation into the computed-term
//!   overlay, and overlay-aware `HAVING`. `reference::hash_aggregate` is
//!   its row-at-a-time differential oracle.
//! * [`pipeline`] — lower-then-run: plans become a DAG of breaker-free
//!   pipelines (scan → filter / inner-or-outer probe / plain-projection
//!   stages → sink) separated by explicit breakers; pipelines run
//!   morsel-at-a-time end to end with thread-local index vectors,
//!   gathering each output column once at the sink, and a breaker output
//!   with a single consuming pipeline is handed off (its columns move
//!   into the sink when no stage drops a row).
//! * [`mod@reference`] — the retired row-at-a-time kernels, kept as oracle and
//!   benchmark baseline.
//! * [`exec`] — the tree evaluator, with per-operator profiling and an
//!   intermediate-result row budget (used to make the SQL baseline's
//!   Cartesian plans fail fast, the paper's "XXX" entries).
//! * [`cost`] — the RDF-3X cost model the paper uses for Table 3.
//! * [`metrics`] — plan characteristics for Table 4 (merge/hash join counts,
//!   left-deep vs bushy shape, plan similarity) and the runtime counters.
//! * [`explain`] — plan rendering with per-operator cardinalities, the
//!   format of the paper's Figures 2 and 3.

pub mod aggregate;
pub mod binding;
pub mod cost;
pub mod exec;
pub mod explain;
pub mod govern;
pub mod kernel;
pub mod metrics;
pub mod morsel;
pub mod ops;
pub mod pipeline;
pub mod plan;
pub mod pool;
pub mod reference;

pub use aggregate::AggError;
pub use binding::BindingTable;
pub use exec::{execute, execute_in, ExecConfig, ExecError, ExecOutput, ExecStrategy, Profile};
pub use govern::{CancelToken, GovernorError, QueryGovernor};
pub use metrics::{PlanMetrics, PlanShape, RuntimeMetrics};
pub use morsel::{MorselConfig, PoolStats, SharedPool, SharedPoolGuard};
pub use plan::PhysicalPlan;
pub use pool::{table_bytes, BufferPool, ExecContext};
