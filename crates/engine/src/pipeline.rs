//! Pipeline-at-a-time execution: lower a [`PhysicalPlan`] into a DAG of
//! morsel-driven **pipelines** separated by explicit **breakers**, then run
//! the pipelines in dependency order.
//!
//! The operator-at-a-time evaluator ([`crate::exec`]'s tree walk, retained
//! as the byte-identity oracle) fully materialises a
//! [`BindingTable`] between every pair of operators — the MonetDB-style
//! model the source paper ran on. Morsel-driven pipelining (Leis et al.)
//! replaces it with *lower-then-run*:
//!
//! * **Lowering** ([`lower`]) cuts the plan tree into maximal breaker-free
//!   operator chains. A *pipeline* is `source → stage* → sink`, where the
//!   source is a scan (or a breaker's materialised output), the stages are
//!   the streaming operators — FILTER, hash-join *probes* (inner **and
//!   left-outer**: [`BuildTable::probe_range_outer`] emits the
//!   unmatched-row sentinel per probe row, so morsel stitching is
//!   unchanged), and plain projection (a pure layout change folded into
//!   the stage chain and ultimately the sink gather) — and the sink is
//!   the single materialisation point. Everything that must see its whole
//!   input before emitting a row is a *breaker* and becomes its own step:
//!   the hash-join **build** side, merge join (both sorted inputs), cross
//!   product, the sort order-enforcer, ORDER BY, grouped aggregation
//!   (the morsel-parallel two-phase γ of [`crate::aggregate`]), and
//!   LIMIT/OFFSET. DISTINCT, once a breaker, now **streams**: each
//!   morsel dedups its projected rows locally, and the sink finishes
//!   with one global first-occurrence pass over the gathered output —
//!   order-preserving, so the result is byte-identical to the global
//!   dedup (a DISTINCT that is *not* the top of its chain still
//!   materialises, since later stages must see the deduped rows).
//! * **Breaker hand-off**: a breaker whose output slot is consumed by
//!   exactly one pipeline *source* is *handed off* — the materialised
//!   table moves straight into that pipeline (counted as
//!   [`RuntimeMetrics::breaker_handoffs`](crate::metrics::RuntimeMetrics::breaker_handoffs)),
//!   and when no stage drops a row the sink **moves** the handed columns
//!   into the output instead of gathering copies, recycling the
//!   unprojected ones through the [`crate::pool::BufferPool`].
//! * **Execution** ([`Program::run`]) walks the steps in dependency order
//!   (lowering emits them topologically). A pipeline pushes its source
//!   through the whole stage chain **morsel at a time** on the
//!   [`crate::morsel`] pool: each worker carries only thread-local `u32`
//!   index vectors — one per *side* (the source plus each probed build
//!   table) — through the stages, so the rows between operators are never
//!   gathered into columns. Per-morsel index vectors stitch back in morsel
//!   order (the same discipline as every parallel kernel, so the result is
//!   byte-identical to the oracle), and the sink gathers each output
//!   column exactly once through the [`crate::pool::BufferPool`].
//!
//! What the oracle would have materialised between the pipeline's
//! operators is reported as
//! [`RuntimeMetrics::pipeline_rows_avoided`](crate::metrics::RuntimeMetrics::pipeline_rows_avoided);
//! per-operator output cardinalities are still counted exactly, so the
//! produced [`Profile`] matches the oracle's row for row.
//!
//! Executions that enable SIP or a row budget fall back to the
//! operator-at-a-time evaluator (see [`crate::exec::ExecStrategy`]): both
//! features are defined in terms of materialised intermediates.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use hsp_rdf::{IdTriple, TermId};
use hsp_sparql::{AggSpec, FilterExpr, TriplePattern, Var};
use hsp_store::{Dataset, Order, OrderScan, StorageBackend};

use crate::binding::BindingTable;
use crate::exec::{plan_label, ExecError, Profile};
use crate::govern::QueryGovernor;
use crate::kernel::BuildTable;
use crate::morsel::{self, MorselRun};
use crate::ops::{self, RowValues};
use crate::plan::{scan_sort_var, PhysicalPlan};
use crate::pool::ExecContext;

/// A plan node's identity: its pre-order position in the plan tree.
type NodeId = usize;

/// A materialised table produced by one step (a breaker output or a
/// pipeline sink).
type SlotId = usize;

/// The lowered form of one plan: steps in dependency order, each filling
/// one slot. Build with [`lower`], run with [`Program::run`], render with
/// [`Program::render`].
pub struct Program<'p> {
    plan: &'p PhysicalPlan,
    steps: Vec<Step<'p>>,
    slot_count: usize,
    node_count: usize,
    root: SlotId,
    /// `handoff[s]` — slot `s` has exactly one consumer and it is a
    /// pipeline's *source*: the producing step's table is handed straight
    /// to that pipeline instead of round-tripping through the slot array's
    /// generic path (enabling the sink's column-move fast path).
    handoff: Vec<bool>,
    /// Plan-node pre-order ids, keyed by node address (stable: the plan is
    /// borrowed for `'p`).
    ids: HashMap<*const PhysicalPlan, NodeId>,
}

enum Step<'p> {
    /// A breaker: run one materialising operator over already-filled slots.
    Breaker {
        node: NodeId,
        out: SlotId,
        op: BreakerOp<'p>,
    },
    /// A streaming pipeline: source → stages → sink.
    Pipeline(Pipeline<'p>),
}

enum BreakerOp<'p> {
    /// A scan feeding a breaker directly (or a zero-variable scan, whose
    /// unit rows have no columns to stream).
    Scan {
        pattern: &'p TriplePattern,
        order: Order,
    },
    MergeJoin {
        left: SlotId,
        right: SlotId,
        var: Var,
    },
    CrossProduct {
        left: SlotId,
        right: SlotId,
    },
    Sort {
        input: SlotId,
        var: Var,
    },
    Project {
        input: SlotId,
        projection: &'p [(String, Var)],
        distinct: bool,
    },
    OrderBy {
        input: SlotId,
        keys: &'p [hsp_sparql::SortKey],
    },
    /// Grouped aggregation (γ): the morsel-parallel two-phase fold of
    /// [`crate::aggregate`] — per-morsel partials merged in morsel order
    /// behind the barrier, then finalised into one row per group.
    HashAggregate {
        input: SlotId,
        group_by: &'p [Var],
        aggs: &'p [AggSpec],
        having: Option<&'p hsp_sparql::Expr>,
    },
    Slice {
        input: SlotId,
        offset: usize,
        limit: Option<usize>,
    },
}

struct Pipeline<'p> {
    source: SourceSpec<'p>,
    stages: Vec<StageSpec<'p>>,
    out: SlotId,
}

enum SourceSpec<'p> {
    /// Stream straight out of an ordered relation.
    Scan {
        node: NodeId,
        pattern: &'p TriplePattern,
        order: Order,
    },
    /// Stream a breaker's materialised output.
    Slot(SlotId),
}

enum StageSpec<'p> {
    /// Residual FILTER over the pipeline's composed rows.
    Filter { node: NodeId, expr: &'p FilterExpr },
    /// Probe the hash table built over the (breaker-materialised) slot.
    /// `outer` probes keep every probe row: unmatched rows pair with the
    /// `u32::MAX` sentinel, read back as UNBOUND — the OPTIONAL operator.
    Probe {
        node: NodeId,
        build: SlotId,
        vars: &'p [Var],
        outer: bool,
    },
    /// Plain (non-DISTINCT) projection: restrict/reorder the pipeline's
    /// layout. No per-row work — the effect lands entirely in which
    /// columns the sink gathers.
    Project {
        node: NodeId,
        projection: &'p [(String, Var)],
    },
    /// DISTINCT projection at the top of its chain: narrows the layout
    /// like `Project`, dedups each morsel locally, and the sink finishes
    /// with one global first-occurrence pass — the two-phase streaming
    /// dedup.
    Distinct {
        node: NodeId,
        projection: &'p [(String, Var)],
    },
}

/// Lower a validated plan into a [`Program`].
pub fn lower(plan: &PhysicalPlan) -> Program<'_> {
    let mut ids = HashMap::new();
    let mut counter = 0usize;
    plan.visit(&mut |p| {
        ids.insert(p as *const PhysicalPlan, counter);
        counter += 1;
    });
    let mut lowerer = Lowerer {
        ids: &ids,
        steps: Vec::new(),
        slot_count: 0,
    };
    let chain = lowerer.chain(plan, true);
    let root = lowerer.seal(chain);

    // Single-consumer hand-off analysis: a slot consumed exactly once, by
    // a pipeline's *source*, is handed to that pipeline directly.
    let mut consumers = vec![0usize; lowerer.slot_count];
    let mut source_consumers = vec![0usize; lowerer.slot_count];
    for step in &lowerer.steps {
        match step {
            Step::Breaker { op, .. } => match op {
                BreakerOp::Scan { .. } => {}
                BreakerOp::MergeJoin { left, right, .. }
                | BreakerOp::CrossProduct { left, right } => {
                    consumers[*left] += 1;
                    consumers[*right] += 1;
                }
                BreakerOp::Sort { input, .. }
                | BreakerOp::Project { input, .. }
                | BreakerOp::OrderBy { input, .. }
                | BreakerOp::HashAggregate { input, .. }
                | BreakerOp::Slice { input, .. } => consumers[*input] += 1,
            },
            Step::Pipeline(p) => {
                if let SourceSpec::Slot(s) = &p.source {
                    consumers[*s] += 1;
                    source_consumers[*s] += 1;
                }
                for stage in &p.stages {
                    if let StageSpec::Probe { build, .. } = stage {
                        consumers[*build] += 1;
                    }
                }
            }
        }
    }
    let handoff = (0..lowerer.slot_count)
        .map(|s| consumers[s] == 1 && source_consumers[s] == 1)
        .collect();

    Program {
        plan,
        steps: lowerer.steps,
        slot_count: lowerer.slot_count,
        node_count: counter,
        root,
        handoff,
        ids,
    }
}

/// A pipeline under construction: a source plus the streaming stages
/// accumulated so far (not yet sealed into a step).
struct Chain<'p> {
    source: SourceSpec<'p>,
    stages: Vec<StageSpec<'p>>,
}

struct Lowerer<'p, 'i> {
    ids: &'i HashMap<*const PhysicalPlan, NodeId>,
    steps: Vec<Step<'p>>,
    slot_count: usize,
}

impl<'p> Lowerer<'p, '_> {
    fn node_id(&self, plan: &'p PhysicalPlan) -> NodeId {
        self.ids[&(plan as *const PhysicalPlan)]
    }

    fn new_slot(&mut self) -> SlotId {
        let slot = self.slot_count;
        self.slot_count += 1;
        slot
    }

    fn push_breaker(&mut self, node: NodeId, op: BreakerOp<'p>) -> SlotId {
        let out = self.new_slot();
        self.steps.push(Step::Breaker { node, out, op });
        out
    }

    /// Lower `plan` into an open chain, emitting breaker steps for every
    /// sub-plan that must materialise (the classification is
    /// [`PhysicalPlan::is_pipeline_breaker`]; the match below must agree
    /// with it).
    ///
    /// `last` is true when the caller will append no further stages to the
    /// returned chain — the condition under which a DISTINCT projection may
    /// stream (dedup per morsel, global pass at the sink) instead of
    /// materialising: nothing downstream in the same chain ever observes
    /// the not-yet-globally-deduped rows.
    fn chain(&mut self, plan: &'p PhysicalPlan, last: bool) -> Chain<'p> {
        debug_assert_eq!(
            plan.is_pipeline_breaker(),
            !matches!(
                plan,
                PhysicalPlan::Scan { .. }
                    | PhysicalPlan::Filter { .. }
                    | PhysicalPlan::Project { .. }
            ),
            "lowering must agree with the breaker classification"
        );
        let node = self.node_id(plan);
        match plan {
            PhysicalPlan::Scan { pattern, order, .. } => {
                if pattern.vars().is_empty() {
                    // A fully ground pattern produces unit rows — nothing
                    // to stream; materialise it like a breaker.
                    let slot = self.push_breaker(
                        node,
                        BreakerOp::Scan {
                            pattern,
                            order: *order,
                        },
                    );
                    Chain {
                        source: SourceSpec::Slot(slot),
                        stages: Vec::new(),
                    }
                } else {
                    Chain {
                        source: SourceSpec::Scan {
                            node,
                            pattern,
                            order: *order,
                        },
                        stages: Vec::new(),
                    }
                }
            }
            PhysicalPlan::Filter { input, expr } => {
                let mut chain = self.chain(input, false);
                chain.stages.push(StageSpec::Filter { node, expr });
                chain
            }
            PhysicalPlan::HashJoin { left, right, vars } => {
                // The build side is the breaker: seal it, then keep
                // streaming the probe side through a probe stage.
                let build = self.seal_subplan(right);
                let mut chain = self.chain(left, false);
                chain.stages.push(StageSpec::Probe {
                    node,
                    build,
                    vars,
                    outer: false,
                });
                chain
            }
            PhysicalPlan::LeftOuterHashJoin { left, right, vars } => {
                // Same shape as the inner join: the optional side builds,
                // the preserved side streams through an *outer* probe —
                // `probe_range_outer` emits the UNBOUND sentinel per
                // unmatched probe row, so per-morsel outputs still stitch
                // deterministically.
                let build = self.seal_subplan(right);
                let mut chain = self.chain(left, false);
                chain.stages.push(StageSpec::Probe {
                    node,
                    build,
                    vars,
                    outer: true,
                });
                chain
            }
            PhysicalPlan::MergeJoin { left, right, var } => {
                let l = self.seal_subplan(left);
                let r = self.seal_subplan(right);
                let slot = self.push_breaker(
                    node,
                    BreakerOp::MergeJoin {
                        left: l,
                        right: r,
                        var: *var,
                    },
                );
                Chain {
                    source: SourceSpec::Slot(slot),
                    stages: Vec::new(),
                }
            }
            PhysicalPlan::CrossProduct { left, right } => {
                let l = self.seal_subplan(left);
                let r = self.seal_subplan(right);
                let slot = self.push_breaker(node, BreakerOp::CrossProduct { left: l, right: r });
                Chain {
                    source: SourceSpec::Slot(slot),
                    stages: Vec::new(),
                }
            }
            PhysicalPlan::Sort { input, var } => {
                let i = self.seal_subplan(input);
                let slot = self.push_breaker(
                    node,
                    BreakerOp::Sort {
                        input: i,
                        var: *var,
                    },
                );
                Chain {
                    source: SourceSpec::Slot(slot),
                    stages: Vec::new(),
                }
            }
            PhysicalPlan::Project {
                input,
                projection,
                distinct,
            } => {
                if *distinct && !last {
                    // A DISTINCT feeding further stages in the same chain
                    // must dedup globally *before* they see rows:
                    // materialise it. (Planned trees never produce this
                    // shape — DISTINCT sits at the top of its chain.)
                    let i = self.seal_subplan(input);
                    let slot = self.push_breaker(
                        node,
                        BreakerOp::Project {
                            input: i,
                            projection,
                            distinct: true,
                        },
                    );
                    Chain {
                        source: SourceSpec::Slot(slot),
                        stages: Vec::new(),
                    }
                } else if *distinct {
                    // Streaming DISTINCT: narrow the layout and dedup each
                    // morsel locally; the sink finishes with one global
                    // first-occurrence pass. Order-preserving at both
                    // phases, so the output is byte-identical to the old
                    // materialising breaker.
                    let mut chain = self.chain(input, false);
                    chain.stages.push(StageSpec::Distinct { node, projection });
                    chain
                } else {
                    // Plain projection is a layout change, not row work:
                    // fold it into the chain so the sink gathers only the
                    // projected columns and the pre-projection width is
                    // never materialised.
                    let mut chain = self.chain(input, false);
                    chain.stages.push(StageSpec::Project { node, projection });
                    chain
                }
            }
            PhysicalPlan::OrderBy { input, keys } => {
                let i = self.seal_subplan(input);
                let slot = self.push_breaker(node, BreakerOp::OrderBy { input: i, keys });
                Chain {
                    source: SourceSpec::Slot(slot),
                    stages: Vec::new(),
                }
            }
            PhysicalPlan::HashAggregate {
                input,
                group_by,
                aggs,
                having,
            } => {
                let i = self.seal_subplan(input);
                let slot = self.push_breaker(
                    node,
                    BreakerOp::HashAggregate {
                        input: i,
                        group_by,
                        aggs,
                        having: having.as_ref(),
                    },
                );
                Chain {
                    source: SourceSpec::Slot(slot),
                    stages: Vec::new(),
                }
            }
            PhysicalPlan::Slice {
                input,
                offset,
                limit,
            } => {
                let i = self.seal_subplan(input);
                let slot = self.push_breaker(
                    node,
                    BreakerOp::Slice {
                        input: i,
                        offset: *offset,
                        limit: *limit,
                    },
                );
                Chain {
                    source: SourceSpec::Slot(slot),
                    stages: Vec::new(),
                }
            }
        }
    }

    fn seal_subplan(&mut self, plan: &'p PhysicalPlan) -> SlotId {
        // A sealed sub-plan is the whole chain: nothing is appended above
        // it, so a DISTINCT at its top may stream (`last == true`).
        let chain = self.chain(plan, true);
        self.seal(chain)
    }

    /// Close an open chain into a slot: an already-materialised stage-less
    /// chain is its slot; a stage-less scan materialises directly; anything
    /// else becomes a pipeline step.
    fn seal(&mut self, chain: Chain<'p>) -> SlotId {
        if chain.stages.is_empty() {
            return match chain.source {
                SourceSpec::Slot(slot) => slot,
                SourceSpec::Scan {
                    node,
                    pattern,
                    order,
                } => self.push_breaker(node, BreakerOp::Scan { pattern, order }),
            };
        }
        let out = self.new_slot();
        self.steps.push(Step::Pipeline(Pipeline {
            source: chain.source,
            stages: chain.stages,
            out,
        }));
        out
    }
}

impl Program<'_> {
    /// Number of pipeline steps (the rest are breakers).
    pub fn pipeline_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, Step::Pipeline(_)))
            .count()
    }

    /// Execute the program, producing the final table and a per-operator
    /// [`Profile`] mirroring the plan tree (output cardinalities are exact;
    /// a pipeline's wall time is attributed to its topmost operator, its
    /// inner stages report 0ns since they never run in isolation).
    ///
    /// With a governor attached to `ctx`, every breaker step and every
    /// morsel claim is a cooperative checkpoint; an error drains every
    /// filled slot back through [`ExecContext::recycle`], so a cancelled
    /// or failed execution leaves the buffer pool balanced and the memory
    /// accounting at zero.
    pub fn run(
        &self,
        ds: &Dataset,
        ctx: &ExecContext,
    ) -> Result<(BindingTable, Profile), ExecError> {
        let mut slots: Vec<Option<BindingTable>> = (0..self.slot_count).map(|_| None).collect();
        let mut rows = vec![0usize; self.node_count];
        let mut nanos = vec![0u128; self.node_count];
        if let Err(e) = self.run_steps(ds, ctx, &mut slots, &mut rows, &mut nanos) {
            for slot in slots.iter_mut() {
                if let Some(t) = slot.take() {
                    ctx.recycle(t);
                }
            }
            return Err(e);
        }
        // invariant: `lower` emits steps in topological order and the last
        // one fills `self.root` — every `expect` on slot contents in this
        // module rests on that ordering.
        let table = slots[self.root].take().expect("root slot filled");
        let profile = self.build_profile(self.plan, &rows, &nanos);
        Ok((table, profile))
    }

    fn run_steps(
        &self,
        ds: &Dataset,
        ctx: &ExecContext,
        slots: &mut [Option<BindingTable>],
        rows: &mut [usize],
        nanos: &mut [u128],
    ) -> Result<(), ExecError> {
        for step in &self.steps {
            match step {
                Step::Breaker { node, out, op } => {
                    let start = Instant::now();
                    let (table, consumed) = match ctx.governor() {
                        None => run_breaker(op, ds, ctx, slots)?,
                        Some(gov) => {
                            // A Cartesian product's output size is known
                            // exactly up front: refuse it *before*
                            // materialising when it cannot fit the budget.
                            if let BreakerOp::CrossProduct { left, right } = op {
                                let lt =
                                    slots[*left].as_ref().expect("input slot filled before use");
                                let rt = slots[*right]
                                    .as_ref()
                                    .expect("input slot filled before use");
                                let bytes = lt
                                    .len()
                                    .saturating_mul(rt.len())
                                    .saturating_mul(lt.vars().len() + rt.vars().len())
                                    .saturating_mul(std::mem::size_of::<TermId>());
                                gov.would_exceed(bytes, "crossproduct")?;
                            }
                            // The checkpoint runs inside the unwind guard:
                            // an injected `panic@breaker` fault takes the
                            // same recovery path as a real kernel panic.
                            match catch_unwind(AssertUnwindSafe(|| {
                                gov.check("breaker")?;
                                run_breaker(op, ds, ctx, slots)
                            })) {
                                Ok(Ok(x)) => x,
                                Ok(Err(e)) => return Err(e),
                                Err(_) => return Err(gov.note_panic("breaker").into()),
                            }
                        }
                    };
                    nanos[*node] = start.elapsed().as_nanos();
                    rows[*node] = table.len();
                    // A kernel that bailed out early on `governor_poll`
                    // (the cross product) returned an empty placeholder
                    // table: surface the trip instead of storing it and
                    // drop the placeholder (its columns never came from
                    // the pool, and it was never charged).
                    if let Some(e) = ctx.governor().and_then(QueryGovernor::trip_error) {
                        for t in consumed {
                            ctx.recycle(t);
                        }
                        drop(table);
                        return Err(e.into());
                    }
                    for t in consumed {
                        ctx.recycle(t);
                    }
                    if let Err(e) = ctx.charge_table(&table, "breaker") {
                        ctx.recycle(table);
                        return Err(e.into());
                    }
                    slots[*out] = Some(table);
                }
                Step::Pipeline(p) => {
                    // Single-consumer breaker hand-off: the source table
                    // was produced for this pipeline alone, so the sink
                    // may move its columns instead of gathering copies.
                    let handed_off = matches!(&p.source, SourceSpec::Slot(s) if self.handoff[*s]);
                    if handed_off {
                        ctx.note_handoff();
                    }
                    run_pipeline(p, ds, ctx, slots, rows, nanos, handed_off)?;
                }
            }
        }
        Ok(())
    }

    fn build_profile(&self, plan: &PhysicalPlan, rows: &[usize], nanos: &[u128]) -> Profile {
        let id = self.ids[&(plan as *const PhysicalPlan)];
        let children = match plan {
            PhysicalPlan::Scan { .. } => Vec::new(),
            PhysicalPlan::MergeJoin { left, right, .. }
            | PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::LeftOuterHashJoin { left, right, .. }
            | PhysicalPlan::CrossProduct { left, right } => vec![
                self.build_profile(left, rows, nanos),
                self.build_profile(right, rows, nanos),
            ],
            PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::OrderBy { input, .. }
            | PhysicalPlan::HashAggregate { input, .. }
            | PhysicalPlan::Slice { input, .. } => vec![self.build_profile(input, rows, nanos)],
        };
        Profile {
            label: plan_label(plan),
            output_rows: rows[id],
            nanos: nanos[id],
            children,
        }
    }

    /// Render the pipeline DAG as text: one line per step, slots named
    /// `s0, s1, …`, pipelines shown as `source → stage → … → sink`.
    pub fn render(&self, query: &hsp_sparql::JoinQuery) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "pipeline DAG: {} pipeline{}, {} breaker{}\n",
            self.pipeline_count(),
            if self.pipeline_count() == 1 { "" } else { "s" },
            self.steps.len() - self.pipeline_count(),
            if self.steps.len() - self.pipeline_count() == 1 {
                ""
            } else {
                "s"
            },
        );
        let scan_desc = |pattern: &TriplePattern, order: Order| {
            format!(
                "σ({}) {}",
                order.upper_name(),
                crate::explain::describe_pattern(pattern, query)
            )
        };
        for step in &self.steps {
            match step {
                Step::Breaker { out: slot, op, .. } => {
                    let desc = match op {
                        BreakerOp::Scan { pattern, order } => scan_desc(pattern, *order),
                        BreakerOp::MergeJoin { left, right, var } => {
                            format!("⋈mj ?{} (s{left}, s{right})", query.var_name(*var))
                        }
                        BreakerOp::CrossProduct { left, right } => {
                            format!("× (s{left}, s{right})")
                        }
                        BreakerOp::Sort { input, var } => {
                            format!("sort ?{} (s{input})", query.var_name(*var))
                        }
                        BreakerOp::Project {
                            input,
                            projection,
                            distinct,
                        } => {
                            let names: Vec<String> =
                                projection.iter().map(|(n, _)| format!("?{n}")).collect();
                            format!(
                                "{} {} (s{input})",
                                if *distinct { "π-distinct" } else { "π" },
                                names.join(",")
                            )
                        }
                        BreakerOp::OrderBy { input, keys } => {
                            format!("order by ({} keys) (s{input})", keys.len())
                        }
                        BreakerOp::HashAggregate {
                            input,
                            group_by,
                            aggs,
                            having,
                        } => format!(
                            "{} (s{input})",
                            crate::explain::describe_aggregate(
                                group_by,
                                aggs,
                                having.is_some(),
                                query
                            )
                        ),
                        BreakerOp::Slice {
                            input,
                            offset,
                            limit,
                        } => format!(
                            "slice[{offset}..{}] (s{input})",
                            limit.map_or("∞".into(), |n| n.to_string())
                        ),
                    };
                    let mark = if self.handoff[*slot] {
                        " [handoff]"
                    } else {
                        ""
                    };
                    let _ = writeln!(out, "  s{slot} ← breaker: {desc}{mark}");
                }
                Step::Pipeline(p) => {
                    let mut line = format!("  s{} ← pipeline: ", p.out);
                    match &p.source {
                        SourceSpec::Scan { pattern, order, .. } => {
                            line.push_str(&scan_desc(pattern, *order));
                        }
                        SourceSpec::Slot(slot) => {
                            let _ = write!(line, "s{slot}");
                        }
                    }
                    for stage in &p.stages {
                        match stage {
                            StageSpec::Filter { .. } => line.push_str(" → σ(filter)"),
                            StageSpec::Probe {
                                build, vars, outer, ..
                            } => {
                                let names: Vec<String> = vars
                                    .iter()
                                    .map(|v| format!("?{}", query.var_name(*v)))
                                    .collect();
                                let op = if *outer { "⟕hj" } else { "⋈hj" };
                                let _ =
                                    write!(line, " → {op} {} [build s{build}]", names.join(","));
                            }
                            StageSpec::Project { projection, .. } => {
                                let names: Vec<String> =
                                    projection.iter().map(|(n, _)| format!("?{n}")).collect();
                                let _ = write!(line, " → π {}", names.join(","));
                            }
                            StageSpec::Distinct { projection, .. } => {
                                let names: Vec<String> =
                                    projection.iter().map(|(n, _)| format!("?{n}")).collect();
                                let _ = write!(line, " → π-distinct {}", names.join(","));
                            }
                        }
                    }
                    line.push_str(" → sink\n");
                    out.push_str(&line);
                }
            }
        }
        let _ = writeln!(out, "  result: s{}", self.root);
        out
    }
}

/// Run one breaker op over materialised slots; returns the output table
/// plus the consumed input tables (for recycling). The only fallible op
/// is the γ aggregate (morsel-claim checkpoints, memory budget, typed
/// aggregate evaluation errors); on error the consumed inputs have
/// already been recycled.
fn run_breaker(
    op: &BreakerOp<'_>,
    ds: &Dataset,
    ctx: &ExecContext,
    slots: &mut [Option<BindingTable>],
) -> Result<(BindingTable, Vec<BindingTable>), ExecError> {
    let mut take = |slot: SlotId| -> BindingTable {
        // invariant: topological step order (see `Program::run`).
        slots[slot].take().expect("input slot filled before use")
    };
    Ok(match op {
        BreakerOp::Scan { pattern, order } => (ops::scan_in(ctx, ds, pattern, *order), Vec::new()),
        BreakerOp::MergeJoin { left, right, var } => {
            let (l, r) = (take(*left), take(*right));
            (ops::merge_join_in(ctx, &l, &r, *var), vec![l, r])
        }
        BreakerOp::CrossProduct { left, right } => {
            let (l, r) = (take(*left), take(*right));
            (ops::cross_product_in(ctx, &l, &r), vec![l, r])
        }
        BreakerOp::Sort { input, var } => {
            let i = take(*input);
            (ops::sort_by_in(ctx, &i, *var), vec![i])
        }
        BreakerOp::Project {
            input,
            projection,
            distinct,
        } => {
            let i = take(*input);
            (ops::project_in(ctx, &i, projection, *distinct), vec![i])
        }
        BreakerOp::OrderBy { input, keys } => {
            let i = take(*input);
            (ops::order_by_in(ctx, ds, &i, keys), vec![i])
        }
        BreakerOp::HashAggregate {
            input,
            group_by,
            aggs,
            having,
        } => {
            let i = take(*input);
            match run_aggregate(ds, ctx, &i, group_by, aggs, *having) {
                Ok(table) => (table, vec![i]),
                Err(e) => {
                    ctx.recycle(i);
                    return Err(e);
                }
            }
        }
        BreakerOp::Slice {
            input,
            offset,
            limit,
        } => {
            let i = take(*input);
            (ops::slice_in(ctx, &i, *offset, *limit), vec![i])
        }
    })
}

/// The γ breaker: phase one folds morsels of the input into thread-local
/// [`crate::aggregate::AggPartial`]s on the worker pool (governor site
/// `"aggregate"`); phase two merges the partials *in morsel order* behind
/// the barrier and finalises one row per group — deterministic across
/// thread budgets by construction (see [`crate::aggregate`]).
fn run_aggregate(
    ds: &Dataset,
    ctx: &ExecContext,
    input: &BindingTable,
    group_by: &[Var],
    aggs: &[AggSpec],
    having: Option<&hsp_sparql::Expr>,
) -> Result<BindingTable, ExecError> {
    let (parts, run) = morsel::try_run_morsels(
        input.len(),
        &ctx.morsel,
        ctx.governor(),
        "aggregate",
        |range| crate::aggregate::fold_range(input, ds, group_by, aggs, range),
    )?;
    let merged = crate::aggregate::merge_partials(parts, aggs);
    // The grouped hash state is this operator's own materialisation:
    // check it against the memory budget before finalising into columns.
    ctx.reserve_check(merged.heap_bytes(), "aggregate")?;
    ctx.note_aggregate(run, merged.groups());
    let table = crate::aggregate::finalise(merged, ctx, ds, group_by, aggs)?;
    Ok(match having {
        Some(h) => crate::aggregate::apply_having(table, h, ctx, ds),
        None => table,
    })
}

/// How a pipeline stage reads one value of a composed row: either a key
/// coordinate of the scan source's relation rows, or a column of a
/// materialised side table, indexed through that side's index vector.
#[derive(Clone, Copy)]
enum ColRef<'a> {
    /// `scan_rows[sides[0][row]][key]`.
    Key { key: usize },
    /// `col[sides[side][row]]`. `idx` is the column's index within its
    /// side's table (what the sink's column-move fast path needs);
    /// `nullable` marks sides introduced by an *outer* probe, whose index
    /// vectors may carry the `u32::MAX` sentinel (read as UNBOUND).
    Col {
        side: usize,
        idx: usize,
        col: &'a [TermId],
        nullable: bool,
    },
}

/// One prepared (executable) pipeline stage.
enum PreparedStage<'a> {
    Filter {
        node: NodeId,
        expr: &'a FilterExpr,
        /// The variables the expression reads, resolved against the
        /// pipeline layout — gathered into scratch columns per morsel so
        /// the row loop runs over contiguous memory, like the
        /// operator-at-a-time FILTER.
        used: Vec<(Var, ColRef<'a>)>,
    },
    Probe {
        node: NodeId,
        table: BuildTable,
        build_cols: Vec<&'a [TermId]>,
        key_refs: Vec<ColRef<'a>>,
        /// Shared non-key variables: the composed row's value must equal
        /// the build row's (the repeated-variable check of the joins).
        extra_checks: Vec<(ColRef<'a>, &'a [TermId])>,
        /// Left-outer semantics: unmatched probe rows survive with the
        /// `u32::MAX` sentinel on this probe's side.
        outer: bool,
    },
    /// Plain projection: the layout change happened at prepare time; at
    /// run time the stage only reports its (unchanged) cardinality.
    Project { node: NodeId },
    /// Streaming DISTINCT: the layout narrowed at prepare time (like
    /// `Project`); per morsel the narrowed columns are gathered and
    /// locally deduplicated (first occurrence wins). The cross-morsel
    /// pass runs once at the sink, over the gathered output.
    Distinct {
        node: NodeId,
        /// The narrowed layout's column references, in output order —
        /// what the local dedup keys on.
        refs: Vec<ColRef<'a>>,
    },
}

/// Everything a morsel worker needs, borrowed for the pipeline run.
struct PreparedPipeline<'a> {
    /// Relation rows of a scan source (empty for slot sources).
    scan_rows: &'a [IdTriple],
    /// `true` when the source is a scan (node cardinality + equalities
    /// apply; the scan's rows count as avoided materialisation).
    scan_source: Option<NodeId>,
    /// Repeated-variable equalities of the scan pattern (key-index pairs).
    equalities: Vec<(usize, usize)>,
    /// Output layout: one entry per output column, in output order.
    layout: Vec<(Var, ColRef<'a>)>,
    stages: Vec<PreparedStage<'a>>,
    rows: usize,
    sorted: Option<Var>,
}

/// The per-morsel result: one index vector per side plus the per-stage
/// surviving-row counts (source first).
struct MorselOut {
    sides: Vec<Vec<u32>>,
    counts: Vec<usize>,
    /// Side 0 stayed the untouched morsel range end-to-end (no stage
    /// dropped a row) — across all morsels this makes the stitched side-0
    /// vector the identity, which lets the sink *move* a handed-off
    /// source's columns instead of gathering them. When the caller set
    /// `defer_side0`, an identity side 0 is left **empty** (the column
    /// move never reads it); [`run_pipeline`] reconstructs it from
    /// `start`/`rows` only if another morsel broke the identity.
    side0_identity: bool,
    /// First source row of this morsel's range.
    start: u32,
    /// Rows surviving the whole stage chain (`== sides[0].len()` whenever
    /// side 0 is materialised).
    rows: usize,
}

/// The composed-row view a stage gathers its scratch columns from:
/// [`ColRef`] reads resolved through the current side index vectors.
/// While no stage has dropped a row yet, side 0 is represented *lazily*
/// as the morsel's row range (`ident`) instead of a materialised identity
/// vector — reads off it are sequential slice accesses.
struct View<'a, 'b> {
    scan_rows: &'a [IdTriple],
    sides: &'b [Vec<u32>],
    /// `Some(start)` while side 0 is still the untouched morsel range
    /// starting at `start` (its length is the current row count).
    ident: Option<u32>,
}

impl View<'_, '_> {
    /// Gather the first `n` values of a column reference into a contiguous
    /// scratch buffer (one tight loop per [`ColRef`] shape — what keeps
    /// the probe loop over the result as fast as a materialised column).
    fn gather(&self, r: ColRef<'_>, n: usize, scratch: &Scratch<'_>) -> Vec<TermId> {
        let mut out = scratch.take_col(n);
        match (r, self.ident) {
            (ColRef::Key { key }, Some(start)) => {
                let start = start as usize;
                out.extend(self.scan_rows[start..start + n].iter().map(|row| row[key]));
            }
            (ColRef::Key { key }, None) => out.extend(
                self.sides[0][..n]
                    .iter()
                    .map(|&i| self.scan_rows[i as usize][key]),
            ),
            (ColRef::Col { side: 0, col, .. }, Some(start)) => {
                let start = start as usize;
                out.extend_from_slice(&col[start..start + n]);
            }
            (
                ColRef::Col {
                    side,
                    col,
                    nullable,
                    ..
                },
                _,
            ) => gather_indices(&mut out, col, &self.sides[side][..n], nullable),
        }
        out
    }
}

/// The one index-vector gather loop, shared by the stage scratch gathers
/// ([`View::gather`]) and the sink: append `src[i]` for every index in
/// `sel`. With `nullable` (a side introduced by an *outer* probe) the
/// `u32::MAX` sentinel reads as UNBOUND — the same value the oracle
/// materialises for unmatched OPTIONAL rows.
fn gather_indices(out: &mut Vec<TermId>, src: &[TermId], sel: &[u32], nullable: bool) {
    if nullable {
        out.extend(sel.iter().map(|&i| {
            if i == u32::MAX {
                TermId::UNBOUND
            } else {
                src[i as usize]
            }
        }));
    } else {
        out.extend(sel.iter().map(|&i| src[i as usize]));
    }
}

/// Scratch-buffer source for one morsel run: the execution's
/// [`BufferPool`](crate::pool::BufferPool) when the pipeline runs
/// sequentially on the owning thread (large scratch columns recycle
/// instead of churning the allocator, exactly like the oracle's gathers),
/// plain allocation for parallel workers — the pool is single-threaded by
/// design and workers keep everything thread-local.
struct Scratch<'a> {
    pool: Option<&'a crate::pool::BufferPool>,
}

impl Scratch<'_> {
    fn take_col(&self, cap: usize) -> Vec<TermId> {
        self.pool
            .map_or_else(|| Vec::with_capacity(cap), |p| p.take_col(cap))
    }

    fn put_col(&self, col: Vec<TermId>) {
        if let Some(p) = self.pool {
            p.put_col(col);
        }
    }

    fn take_idx(&self, cap: usize) -> Vec<u32> {
        self.pool
            .map_or_else(|| Vec::with_capacity(cap), |p| p.take_idx(cap))
    }

    fn put_idx(&self, buf: Vec<u32>) {
        if let Some(p) = self.pool {
            p.put_idx(buf);
        }
    }
}

/// The FILTER stage's evaluation surface: just the expression's variables,
/// each backed by a contiguous scratch column gathered for this morsel.
struct ScratchCols<'a, 'b> {
    used: &'b [(Var, ColRef<'a>)],
    cols: &'b [Vec<TermId>],
}

impl RowValues for ScratchCols<'_, '_> {
    fn row_value(&self, v: Var, row: usize) -> TermId {
        self.used
            .iter()
            .position(|&(uv, _)| uv == v)
            .map_or(TermId::UNBOUND, |c| self.cols[c][row])
    }
}

/// How the sink reads one output column — [`ColRef`] stripped of its
/// borrows, so the prepared pipeline can be dropped before the sink takes
/// the input tables apart.
enum SinkRef {
    Key {
        key: usize,
    },
    Col {
        side: usize,
        idx: usize,
        nullable: bool,
    },
}

/// Execute one pipeline: prepare (resolve the source, build the probe hash
/// tables — the breaker work), push morsels through the stage chain, gather
/// once at the sink, recycle the consumed inputs. A `handed_off` source
/// table (a single-consumer breaker's output) may have its columns *moved*
/// into the sink when no stage dropped a row.
#[allow(clippy::too_many_arguments)]
fn run_pipeline(
    p: &Pipeline<'_>,
    ds: &Dataset,
    ctx: &ExecContext,
    slots: &mut [Option<BindingTable>],
    rows_by_node: &mut [usize],
    nanos_by_node: &mut [u128],
    handed_off: bool,
) -> Result<(), ExecError> {
    let start = Instant::now();

    // Take the pipeline's inputs out of their slots (they stay alive —
    // borrowed by the prepared stages — until the sink has gathered).
    // invariant: topological step order (see `Program::run`) fills every
    // source and build slot before the pipeline that consumes it.
    let mut source_table: Option<BindingTable> = match &p.source {
        SourceSpec::Slot(slot) => Some(slots[*slot].take().expect("source slot filled")),
        SourceSpec::Scan { .. } => None,
    };
    let build_tables: Vec<BindingTable> = p
        .stages
        .iter()
        .filter_map(|s| match s {
            StageSpec::Probe { build, .. } => {
                Some(slots[*build].take().expect("build slot filled"))
            }
            StageSpec::Filter { .. } | StageSpec::Project { .. } | StageSpec::Distinct { .. } => {
                None
            }
        })
        .collect();

    // Resolve a scan source against the dataset here — not inside
    // `prepare` — so the rows borrow `ds` alone (or the merged scan
    // buffer, which outlives `prepared`) and stay usable by the sink
    // after the prepared stages (which borrow the input tables) are
    // dropped.
    let (scan, scan_known) = match &p.source {
        SourceSpec::Scan { pattern, order, .. } => resolve_scan(ds, pattern, *order),
        SourceSpec::Slot(_) => (OrderScan::empty(), true),
    };
    if !scan.is_contiguous() {
        ctx.note_merged_scan();
    }
    let scan_rows: &[IdTriple] = &scan;

    let prepared = prepare(
        p,
        ctx,
        scan_rows,
        scan_known,
        source_table.as_ref(),
        &build_tables,
    );

    // The hand-off column-move precondition that is known *before* any
    // morsel runs: the source was handed off, no probe adds a side, and
    // every output column reads side 0. Morsels then leave an identity
    // side 0 empty (deferred) — the move path never reads it, and a
    // morsel that does drop rows breaks the identity, in which case the
    // stitch below reconstructs the deferred ranges.
    let static_movable = handed_off
        && !prepared.layout.is_empty()
        && prepared
            .layout
            .iter()
            .all(|&(_, r)| matches!(r, ColRef::Col { side: 0, .. }))
        && !prepared
            .stages
            .iter()
            .any(|s| matches!(s, PreparedStage::Probe { .. }));

    // Push morsels through the whole stage chain. Parallel workers use the
    // per-thread evaluator (scoped threads — the caches drop at pipeline
    // exit); the sequential path keeps a plain local evaluator so the
    // long-lived main thread never accretes a regex cache.
    let stage_count = prepared.stages.len();
    // Only the ungoverned sequential path hands pooled index vectors to
    // `process_morsel`: its single part's vectors *become* the stitched
    // sides and are put back after the sink. Worker parts and
    // governed-sequential parts use plain vectors — the stitch copies out
    // of them and drops them — so pool take/put stays balanced even when
    // a governed run produces several parts on one thread.
    let pooled_part = ctx.morsel.workers_for(prepared.rows) <= 1 && ctx.governor().is_none();
    let morsel_result = if ctx.morsel.workers_for(prepared.rows) > 1 {
        morsel::try_run_morsels(
            prepared.rows,
            &ctx.morsel,
            ctx.governor(),
            "worker",
            |range| {
                // Workers allocate scratch plainly: the pool is single-threaded.
                let scratch = Scratch { pool: None };
                ops::WORKER_EVALUATOR.with(|evaluator| {
                    process_morsel(range, &prepared, ds, evaluator, &scratch, static_movable)
                })
            },
        )
    } else if let Some(gov) = ctx.governor() {
        // Governed sequential path: still chunk into morsels so a deadline
        // or cancellation surfaces within one morsel's work, but keep the
        // plain local evaluator — the long-lived main thread must not
        // accrete a regex cache. The whole loop runs on the calling
        // thread, so borrowing the non-`Sync` evaluator is fine.
        let evaluator = hsp_sparql::Evaluator::new();
        let scratch = Scratch { pool: None };
        morsel::try_run_morsels_seq(prepared.rows, &ctx.morsel, gov, "worker", |range| {
            process_morsel(range, &prepared, ds, &evaluator, &scratch, static_movable)
        })
    } else {
        let evaluator = hsp_sparql::Evaluator::new();
        let scratch = Scratch {
            pool: Some(&ctx.pool),
        };
        let out = process_morsel(
            0..prepared.rows,
            &prepared,
            ds,
            &evaluator,
            &scratch,
            static_movable,
        );
        Ok((
            vec![out],
            MorselRun {
                morsels: 0,
                threads: 1,
            },
        ))
    };
    let (parts, run) = match morsel_result {
        Ok(x) => x,
        Err(e) => {
            // Workers are joined and their partial parts dropped; return
            // the consumed inputs (charged when their producers stored
            // them) so the pool balances and the accounting nets to zero.
            drop(prepared);
            if let Some(t) = source_table.take() {
                ctx.recycle(t);
            }
            for t in build_tables {
                ctx.recycle(t);
            }
            return Err(e.into());
        }
    };

    // Stitch the per-morsel index vectors in morsel order and total the
    // per-stage counts.
    let side_count = 1 + prepared
        .stages
        .iter()
        .filter(|s| matches!(s, PreparedStage::Probe { .. }))
        .count();
    let mut counts = vec![0usize; 1 + stage_count];
    let mut total_rows = 0usize;
    for part in &parts {
        total_rows += part.rows;
    }
    // Every morsel kept side 0 untouched ⇒ the stitched side-0 vector is
    // the identity over the whole source: the column-move fires and side 0
    // (left empty by the deferral) is never read.
    let movable = static_movable && parts.iter().all(|part| part.side0_identity);
    let sides: Vec<Vec<u32>> = if pooled_part {
        // Single pooled morsel (the ungoverned sequential path): its index
        // vectors are the stitched result — move them instead of copying.
        // invariant: `pooled_part` implies exactly one morsel ran.
        let part = parts.into_iter().next().expect("one part");
        for (c, n) in part.counts.iter().enumerate() {
            counts[c] += n;
        }
        part.sides
    } else {
        let mut sides: Vec<Vec<u32>> = (0..side_count)
            .map(|_| ctx.pool.take_idx(total_rows))
            .collect();
        for part in parts {
            for (c, n) in part.counts.iter().enumerate() {
                counts[c] += n;
            }
            for (s, v) in part.sides.into_iter().enumerate() {
                if s == 0 && static_movable && part.side0_identity {
                    // This morsel's side 0 was deferred (left empty). If
                    // another morsel broke the identity, reconstruct the
                    // range here; on the move path nothing reads side 0.
                    debug_assert!(v.is_empty());
                    if !movable {
                        sides[0].extend(part.start..part.start + part.rows as u32);
                    }
                } else {
                    sides[s].extend_from_slice(&v);
                }
            }
        }
        sides
    };

    // Record per-operator cardinalities (exactly what the oracle would
    // report): the scan source's output, then each stage's.
    if let Some(node) = prepared.scan_source {
        rows_by_node[node] = counts[0];
    }
    for (stage, &n) in prepared.stages.iter().zip(&counts[1..]) {
        let node = match stage {
            PreparedStage::Filter { node, .. }
            | PreparedStage::Probe { node, .. }
            | PreparedStage::Project { node }
            | PreparedStage::Distinct { node, .. } => *node,
        };
        rows_by_node[node] = n;
    }

    // The rows the oracle would have materialised between operators but
    // this pipeline kept as index vectors: every count except the final
    // stage's (which the sink materialises); a slot source was already
    // materialised by its breaker, so it does not count.
    let avoided: usize = counts[..counts.len() - 1]
        .iter()
        .skip(if prepared.scan_source.is_some() { 0 } else { 1 })
        .sum();
    ctx.note_pipeline(run, avoided);
    let outer_probes = prepared
        .stages
        .iter()
        .filter(|s| matches!(s, PreparedStage::Probe { outer: true, .. }))
        .count();
    if outer_probes > 0 {
        ctx.note_outer_probes(outer_probes);
    }

    // The topmost operator of the pipeline owns its wall time (inner
    // stages never run in isolation, so they report 0).
    let top_node = match prepared.stages.last() {
        Some(
            PreparedStage::Filter { node, .. }
            | PreparedStage::Probe { node, .. }
            | PreparedStage::Project { node }
            | PreparedStage::Distinct { node, .. },
        ) => *node,
        // invariant: `lower` never emits a stage-less pipeline — a bare
        // scan still carries its sink projection stage.
        None => unreachable!("pipelines have at least one stage"),
    };

    // Strip the layout of its borrows so the prepared stages (which borrow
    // the input tables) can drop before the sink consumes those tables.
    let sink_refs: Vec<(Var, SinkRef)> = prepared
        .layout
        .iter()
        .map(|&(v, r)| {
            let sink = match r {
                ColRef::Key { key } => SinkRef::Key { key },
                ColRef::Col {
                    side,
                    idx,
                    nullable,
                    ..
                } => SinkRef::Col {
                    side,
                    idx,
                    nullable,
                },
            };
            (v, sink)
        })
        .collect();
    let sorted = prepared.sorted;
    let distinct_node = prepared.stages.iter().find_map(|s| match s {
        PreparedStage::Distinct { node, .. } => Some(*node),
        _ => None,
    });
    drop(prepared);

    // Sink. Fast path (hand-off move, `movable` decided at the stitch):
    // the source table was materialised for this pipeline alone and no
    // stage dropped a row, so the selected columns *move* into the output
    // — zero copies, not even an identity index vector — and the
    // unprojected ones recycle through the pool. Otherwise each output
    // column is gathered exactly once, through the pool.
    let out_rows = total_rows;
    let table = if movable {
        // invariant: `static_movable` requires a slot source, taken above.
        let src = source_table.take().expect("handed-off slot source");
        // The source is consumed by the column move rather than recycled:
        // release its charge here so the moved output's own charge below
        // does not double-count the same bytes.
        ctx.release_bytes(crate::pool::table_bytes(&src));
        debug_assert_eq!(src.len(), out_rows, "identity sides preserve rows");
        let mut src_cols: Vec<Option<Vec<TermId>>> =
            src.into_columns().into_iter().map(Some).collect();
        let mut cols: Vec<Vec<TermId>> = Vec::with_capacity(sink_refs.len());
        for (_, r) in &sink_refs {
            let SinkRef::Col { idx, .. } = r else {
                // invariant: `static_movable` only holds for layouts whose
                // every reference is a side-0 column.
                unreachable!("movable layout is side-0 columns only")
            };
            // invariant: layout variables are deduplicated, so each source
            // column is moved at most once.
            cols.push(src_cols[*idx].take().expect("layout vars are distinct"));
        }
        for col in src_cols.into_iter().flatten() {
            ctx.pool.put_col(col);
        }
        let vars: Vec<Var> = sink_refs.iter().map(|&(v, _)| v).collect();
        let mut table = BindingTable::from_columns(vars, cols, None);
        table.set_sorted_by(sorted);
        table
    } else if sink_refs.is_empty() {
        BindingTable::unit(out_rows)
    } else {
        let mut cols: Vec<Vec<TermId>> = Vec::with_capacity(sink_refs.len());
        for (_, r) in &sink_refs {
            let mut col = ctx.pool.take_col(out_rows);
            match *r {
                SinkRef::Key { key } => {
                    col.extend(sides[0].iter().map(|&i| scan_rows[i as usize][key]));
                }
                SinkRef::Col {
                    side,
                    idx,
                    nullable,
                } => {
                    let src: &[TermId] = if side == 0 {
                        // invariant: a side-0 column reference implies a
                        // slot source (scan sources emit key references).
                        &source_table.as_ref().expect("slot source").columns()[idx]
                    } else {
                        &build_tables[side - 1].columns()[idx]
                    };
                    gather_indices(&mut col, src, &sides[side], nullable);
                }
            }
            cols.push(col);
        }
        let vars: Vec<Var> = sink_refs.iter().map(|&(v, _)| v).collect();
        let mut table = BindingTable::from_columns(vars, cols, None);
        table.set_sorted_by(sorted);
        table
    };

    // Global phase of a streaming DISTINCT: the morsels deduped locally,
    // so only duplicates *spanning* morsels remain — one first-occurrence
    // pass over the gathered output collapses them. Order-preserving at
    // both phases, so the result is byte-identical to the sequential
    // (materialising) dedup.
    let table = match distinct_node {
        None => table,
        Some(node) => {
            ctx.note_distinct_stream();
            let deduped = if table.vars().is_empty() {
                // Zero-column DISTINCT: at most one unit row overall.
                let rows = table.len().min(1);
                BindingTable::unit(rows)
            } else {
                let keep = {
                    let cols: Vec<&[TermId]> =
                        table.columns().iter().map(|c| c.as_slice()).collect();
                    ops::distinct_first_occurrences(&cols, table.len())
                };
                if keep.len() == table.len() {
                    table
                } else {
                    let mut out = table.gather_in(&keep, &ctx.pool);
                    out.set_sorted_by(sorted);
                    ctx.pool.recycle(table);
                    out
                }
            };
            // The stage's local counts overstated the operator's true
            // output — report the globally deduped cardinality.
            rows_by_node[node] = deduped.len();
            deduped
        }
    };
    for side in sides {
        ctx.pool.put_idx(side);
    }
    nanos_by_node[top_node] = start.elapsed().as_nanos();

    // Recycle the consumed inputs now that the gather is done (a moved
    // hand-off source already recycled its leftovers above), then charge
    // the materialised output against the memory budget.
    if let Some(t) = source_table {
        ctx.recycle(t);
    }
    for t in build_tables {
        ctx.recycle(t);
    }
    if let Err(e) = ctx.charge_table(&table, "sink") {
        ctx.pool.recycle(table);
        return Err(e.into());
    }
    slots[p.out] = Some(table);
    Ok(())
}

/// Resolve a scan source's relation range exactly like `ops::scan_in`: a
/// constant missing from the dictionary matches nothing, reported as
/// `known == false` (the empty output then advertises no sortedness,
/// matching the oracle).
fn resolve_scan<'d>(
    ds: &'d Dataset,
    pattern: &TriplePattern,
    order: Order,
) -> (OrderScan<'d>, bool) {
    let mut prefix: Vec<TermId> = Vec::with_capacity(3);
    for pos in order.positions() {
        match pattern.slot(pos) {
            hsp_sparql::TermOrVar::Const(term) => match ds.dict().id(term) {
                Some(id) => prefix.push(id),
                None => return (OrderScan::empty(), false),
            },
            hsp_sparql::TermOrVar::Var(_) => break,
        }
    }
    let scan = ds.store().scan(order, &prefix);
    assert!(
        scan.len() < u32::MAX as usize,
        "scan range exceeds u32 row indexing"
    );
    (scan, true)
}

/// Resolve the pipeline's source and stages against the (already
/// resolved) scan rows and the taken input tables: key layout for a scan
/// source, hash-table builds (the breaker half of each hash join) for the
/// probes, layout rewrites for projection stages.
fn prepare<'a>(
    p: &'a Pipeline<'_>,
    ctx: &ExecContext,
    scan_rows: &'a [IdTriple],
    scan_known: bool,
    source_table: Option<&'a BindingTable>,
    build_tables: &'a [BindingTable],
) -> PreparedPipeline<'a> {
    let mut layout: Vec<(Var, ColRef<'a>)> = Vec::new();
    let mut equalities: Vec<(usize, usize)> = Vec::new();
    let scan_source;
    let rows;
    let mut sorted;
    match &p.source {
        SourceSpec::Scan {
            node,
            pattern,
            order,
        } => {
            scan_source = Some(*node);
            let out_vars = pattern.vars();
            for &v in &out_vars {
                let pos = pattern.positions_of(v)[0];
                layout.push((
                    v,
                    ColRef::Key {
                        key: order.key_index(pos),
                    },
                ));
            }
            for &v in &out_vars {
                let positions = pattern.positions_of(v);
                for pair in positions.windows(2) {
                    equalities.push((order.key_index(pair[0]), order.key_index(pair[1])));
                }
            }
            rows = scan_rows.len();
            sorted = if scan_known {
                scan_sort_var(pattern, *order)
            } else {
                None
            };
        }
        SourceSpec::Slot(_) => {
            // invariant: `run_pipeline` takes the slot table before calling
            // `prepare` whenever the source is a slot.
            let table = source_table.expect("slot source taken");
            assert!(
                table.len() < u32::MAX as usize,
                "binding table exceeds u32 row indexing"
            );
            for (c, &v) in table.vars().iter().enumerate() {
                layout.push((
                    v,
                    ColRef::Col {
                        side: 0,
                        idx: c,
                        col: &table.columns()[c],
                        nullable: false,
                    },
                ));
            }
            scan_source = None;
            rows = table.len();
            sorted = table.sorted_by();
        }
    }

    let mut stages: Vec<PreparedStage<'a>> = Vec::with_capacity(p.stages.len());
    let mut side_count = 1usize;
    let mut builds = build_tables.iter();
    for stage in &p.stages {
        match stage {
            StageSpec::Filter { node, expr } => {
                let used: Vec<(Var, ColRef<'a>)> = expr
                    .vars()
                    .into_iter()
                    .filter_map(|v| {
                        layout
                            .iter()
                            .find(|&&(lv, _)| lv == v)
                            .map(|&(_, r)| (v, r))
                    })
                    .collect();
                stages.push(PreparedStage::Filter {
                    node: *node,
                    expr,
                    used,
                });
            }
            StageSpec::Probe {
                node, vars, outer, ..
            } => {
                // invariant: `run_pipeline` collects exactly one build
                // table per probe stage, in stage order.
                let bt = builds.next().expect("one build table per probe stage");
                let build_cols: Vec<&[TermId]> = vars.iter().map(|&v| bt.column(v)).collect();
                let (table, build_run) = BuildTable::build_par(&build_cols, bt.len(), &ctx.morsel);
                ctx.note_build(build_run);
                let key_refs: Vec<ColRef<'a>> = vars
                    .iter()
                    .map(|v| {
                        layout
                            .iter()
                            .find(|&&(lv, _)| lv == *v)
                            .map(|&(_, r)| r)
                            // invariant: `PhysicalPlan::validate` requires
                            // join variables bound by both inputs.
                            .expect("join variable bound by the pipeline (validated)")
                    })
                    .collect();
                let extra_checks: Vec<(ColRef<'a>, &[TermId])> = layout
                    .iter()
                    .filter(|&&(lv, _)| bt.vars().contains(&lv) && !vars.contains(&lv))
                    .map(|&(lv, r)| (r, bt.column(lv)))
                    .collect();
                // The build side's non-shared variables join the layout,
                // read through this probe's new side. An outer probe's
                // side may carry the unmatched-row sentinel, so its
                // columns are nullable.
                for (c, &v) in bt.vars().iter().enumerate() {
                    if !layout.iter().any(|&(lv, _)| lv == v) {
                        layout.push((
                            v,
                            ColRef::Col {
                                side: side_count,
                                idx: c,
                                col: &bt.columns()[c],
                                nullable: *outer,
                            },
                        ));
                    }
                }
                stages.push(PreparedStage::Probe {
                    node: *node,
                    table,
                    build_cols,
                    key_refs,
                    extra_checks,
                    outer: *outer,
                });
                side_count += 1;
                if *outer {
                    // UNBOUND padding may break any ordering — match the
                    // oracle's `left_outer_hash_join_in`.
                    sorted = None;
                }
            }
            StageSpec::Project { node, projection } => {
                // The projection happens entirely at prepare time: the
                // layout narrows to the projected variables (first
                // occurrence wins for duplicated names, like
                // `ops::project_in`), and the sink gathers only those.
                layout = narrow_layout(&layout, projection);
                sorted = sorted.filter(|v| layout.iter().any(|&(lv, _)| lv == *v));
                stages.push(PreparedStage::Project { node: *node });
            }
            StageSpec::Distinct { node, projection } => {
                // Same prepare-time narrowing as `Project`; the run-time
                // stage dedups each morsel over exactly these columns.
                layout = narrow_layout(&layout, projection);
                sorted = sorted.filter(|v| layout.iter().any(|&(lv, _)| lv == *v));
                let refs: Vec<ColRef<'a>> = layout.iter().map(|&(_, r)| r).collect();
                stages.push(PreparedStage::Distinct { node: *node, refs });
            }
        }
    }

    PreparedPipeline {
        scan_rows,
        scan_source,
        equalities,
        layout,
        stages,
        rows,
        sorted,
    }
}

/// Narrow a pipeline layout to a projection's variables, in projection
/// order, first occurrence winning for duplicated names — exactly
/// `ops::project_in`'s output layout.
fn narrow_layout<'a>(
    layout: &[(Var, ColRef<'a>)],
    projection: &[(String, Var)],
) -> Vec<(Var, ColRef<'a>)> {
    let mut narrowed: Vec<(Var, ColRef<'a>)> = Vec::new();
    for &(_, v) in projection {
        if !narrowed.iter().any(|&(lv, _)| lv == v) {
            let r = layout
                .iter()
                .find(|&&(lv, _)| lv == v)
                .map(|&(_, r)| r)
                // invariant: `PhysicalPlan::validate` requires projected
                // variables bound by the input.
                .expect("projected variable bound by the pipeline (validated)");
            narrowed.push((v, r));
        }
    }
    narrowed
}

/// Push one morsel of source rows through the whole stage chain,
/// thread-locally: every intermediate is a `u32` index vector per side.
/// With `defer_side0` (the hand-off column-move candidate) a side 0 that
/// stayed lazy end-to-end is left empty instead of being materialised —
/// the caller either never reads it (the move path) or reconstructs it
/// from the recorded range.
fn process_morsel(
    range: std::ops::Range<usize>,
    p: &PreparedPipeline<'_>,
    ds: &Dataset,
    evaluator: &hsp_sparql::Evaluator,
    scratch: &Scratch<'_>,
    defer_side0: bool,
) -> MorselOut {
    let range_start = range.start as u32;
    let mut counts = Vec::with_capacity(1 + p.stages.len());
    let mut sides: Vec<Vec<u32>> = Vec::with_capacity(4);

    // Source selection: the morsel's row range, minus scan rows violating
    // repeated-variable equalities (same order as the oracle's scan).
    // While nothing has been dropped, side 0 stays *lazy* (`ident`) — no
    // identity vector is materialised and reads off the source are
    // sequential.
    let mut ident: Option<u32> = None;
    let mut rows_now: usize;
    if p.equalities.is_empty() {
        ident = Some(range.start as u32);
        rows_now = range.len();
        sides.push(Vec::new()); // placeholder while side 0 is lazy
    } else {
        let mut sel: Vec<u32> = scratch.take_idx(range.len());
        sel.extend(
            range
                .filter(|&i| {
                    p.equalities
                        .iter()
                        .all(|&(a, b)| p.scan_rows[i][a] == p.scan_rows[i][b])
                })
                .map(|i| i as u32),
        );
        rows_now = sel.len();
        sides.push(sel);
    }
    counts.push(rows_now);

    for stage in &p.stages {
        match stage {
            PreparedStage::Filter { expr, used, .. } => {
                let n = rows_now;
                let keep: Vec<u32> = {
                    let view = View {
                        scan_rows: p.scan_rows,
                        sides: &sides,
                        ident,
                    };
                    // Gather only the columns the expression reads, then
                    // evaluate the row loop over contiguous scratch — the
                    // same memory shape the materialised FILTER sees.
                    let cols: Vec<Vec<TermId>> = used
                        .iter()
                        .map(|&(_, r)| view.gather(r, n, scratch))
                        .collect();
                    let surface = ScratchCols { used, cols: &cols };
                    let mut keep = scratch.take_idx(n);
                    keep.extend(
                        (0..n)
                            .filter(|&r| ops::eval_expr(ds, &surface, expr, r, evaluator))
                            .map(|r| r as u32),
                    );
                    for col in cols {
                        scratch.put_col(col);
                    }
                    keep
                };
                rows_now = keep.len();
                apply_keep(&mut sides, &keep, n, &mut ident, scratch);
                scratch.put_idx(keep);
            }
            PreparedStage::Probe {
                table,
                build_cols,
                key_refs,
                extra_checks,
                outer,
                ..
            } => {
                let n = rows_now;
                let (keep, matched) = {
                    let view = View {
                        scan_rows: p.scan_rows,
                        sides: &sides,
                        ident,
                    };
                    // Gather the key (and extra-check) values into
                    // contiguous thread-local scratch columns, then drive
                    // the shared probe loop over them — the same tight
                    // loop the operator-at-a-time join runs, minus the
                    // full-table materialisation around it.
                    let key_cols: Vec<Vec<TermId>> = key_refs
                        .iter()
                        .map(|&kr| view.gather(kr, n, scratch))
                        .collect();
                    let extra_cols: Vec<Vec<TermId>> = extra_checks
                        .iter()
                        .map(|&(lr, _)| view.gather(lr, n, scratch))
                        .collect();
                    let probe_cols: Vec<&[TermId]> = key_cols.iter().map(Vec::as_slice).collect();
                    let extra_pairs: Vec<(&[TermId], &[TermId])> = extra_cols
                        .iter()
                        .zip(extra_checks)
                        .map(|(l, &(_, rcol))| (l.as_slice(), rcol))
                        .collect();
                    let mut keep = scratch.take_idx(n);
                    let mut matched = scratch.take_idx(n);
                    if *outer {
                        // Left-outer: every probe row survives; unmatched
                        // ones pair with the sentinel (per probe row, so
                        // morsel stitching is unchanged).
                        table.probe_range_outer(
                            build_cols,
                            &probe_cols,
                            &extra_pairs,
                            0..n,
                            &mut keep,
                            &mut matched,
                        );
                    } else {
                        table.probe_range(
                            build_cols,
                            &probe_cols,
                            &extra_pairs,
                            0..n,
                            &mut keep,
                            &mut matched,
                        );
                    }
                    for col in key_cols {
                        scratch.put_col(col);
                    }
                    for col in extra_cols {
                        scratch.put_col(col);
                    }
                    (keep, matched)
                };
                rows_now = keep.len();
                apply_keep(&mut sides, &keep, n, &mut ident, scratch);
                scratch.put_idx(keep);
                sides.push(matched);
            }
            PreparedStage::Project { .. } => {
                // Pure layout change: no row dropped, no side touched —
                // the stage only reports its (unchanged) cardinality.
            }
            PreparedStage::Distinct { refs, .. } => {
                // Local phase of the streaming DISTINCT: keep this
                // morsel's first occurrence of each projected-row value.
                // The cross-morsel pass runs at the sink.
                let n = rows_now;
                let keep: Vec<u32> = if refs.is_empty() {
                    // Zero-column DISTINCT (everything projects away): at
                    // most one unit row survives per morsel.
                    if n > 0 {
                        vec![0]
                    } else {
                        Vec::new()
                    }
                } else {
                    let view = View {
                        scan_rows: p.scan_rows,
                        sides: &sides,
                        ident,
                    };
                    let cols: Vec<Vec<TermId>> =
                        refs.iter().map(|&r| view.gather(r, n, scratch)).collect();
                    let col_slices: Vec<&[TermId]> = cols.iter().map(Vec::as_slice).collect();
                    let keep = ops::distinct_first_occurrences(&col_slices, n);
                    for col in cols {
                        scratch.put_col(col);
                    }
                    keep
                };
                rows_now = keep.len();
                apply_keep(&mut sides, &keep, n, &mut ident, scratch);
            }
        }
        counts.push(rows_now);
    }
    let side0_identity = ident.is_some();
    // A chain that never dropped a row leaves side 0 lazy — materialise it
    // for the stitch and the sink, unless the caller deferred it (the
    // hand-off move path never reads an identity side 0).
    if let Some(start) = ident {
        if !defer_side0 {
            let mut sel = scratch.take_idx(rows_now);
            sel.extend(start..start + rows_now as u32);
            sides[0] = sel;
        }
    }
    MorselOut {
        sides,
        counts,
        side0_identity,
        start: range_start,
        rows: rows_now,
    }
}

/// Advance every side past a filtering stage: replace each side vector
/// with its values at the `keep` positions (`n` is the pre-stage row
/// count). A stage that kept every row exactly once (`keep` is the
/// identity — the common case for selective scans feeding 1:1 joins)
/// changes nothing, and a still-lazy side 0 materialises directly from
/// `keep` plus the range offset.
fn apply_keep(
    sides: &mut [Vec<u32>],
    keep: &[u32],
    n: usize,
    ident: &mut Option<u32>,
    scratch: &Scratch<'_>,
) {
    if keep.len() == n && keep.iter().enumerate().all(|(i, &k)| k as usize == i) {
        return;
    }
    let skip_side0 = if let Some(start) = *ident {
        let mut sel = scratch.take_idx(keep.len());
        sel.extend(keep.iter().map(|&k| start + k));
        sides[0] = sel;
        *ident = None;
        1
    } else {
        0
    };
    for side in sides.iter_mut().skip(skip_side0) {
        let mut gathered = scratch.take_idx(keep.len());
        gathered.extend(keep.iter().map(|&k| side[k as usize]));
        scratch.put_idx(std::mem::replace(side, gathered));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute, execute_in, ExecConfig, ExecStrategy};
    use crate::morsel::MorselConfig;
    use hsp_rdf::Term;
    use hsp_sparql::{CmpOp, Operand, TermOrVar};

    /// A context that really splits unit-test-sized inputs across
    /// `threads` workers (single-row morsels, no sequential threshold).
    fn forced_ctx(threads: usize) -> ExecContext {
        ExecContext::with_morsel_config(
            MorselConfig::with_threads(threads)
                .with_min_parallel_rows(0)
                .with_morsel_rows(1),
        )
    }

    fn dataset() -> Dataset {
        Dataset::from_ntriples(
            r#"<http://e/a1> <http://e/p> <http://e/b1> .
<http://e/a1> <http://e/p> <http://e/b2> .
<http://e/a2> <http://e/p> <http://e/b1> .
<http://e/a1> <http://e/q> "5" .
<http://e/a2> <http://e/q> "7" .
<http://e/b1> <http://e/r> "x" .
"#,
        )
        .unwrap()
    }

    fn cv(name: &str) -> TermOrVar {
        TermOrVar::Const(Term::iri(format!("http://e/{name}")))
    }

    fn vv(i: u32) -> TermOrVar {
        TermOrVar::Var(Var(i))
    }

    fn scan(idx: usize, s: TermOrVar, p: TermOrVar, o: TermOrVar, order: Order) -> PhysicalPlan {
        PhysicalPlan::Scan {
            pattern_idx: idx,
            pattern: TriplePattern::new(s, p, o),
            order,
        }
    }

    /// A filter-over-two-hash-joins chain: lowers to one pipeline with a
    /// probe and a filter stage plus two build breakers.
    fn chain_plan() -> PhysicalPlan {
        PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::HashJoin {
                left: Box::new(PhysicalPlan::HashJoin {
                    left: Box::new(scan(0, vv(0), cv("p"), vv(1), Order::Pso)),
                    right: Box::new(scan(1, vv(0), cv("q"), vv(2), Order::Pso)),
                    vars: vec![Var(0)],
                }),
                right: Box::new(scan(2, vv(1), cv("r"), vv(3), Order::Pso)),
                vars: vec![Var(1)],
            }),
            expr: FilterExpr::Cmp {
                op: CmpOp::Gt,
                lhs: Operand::Var(Var(2)),
                rhs: Operand::Const(Term::literal("4")),
            },
        }
    }

    #[test]
    fn lowering_splits_chain_into_one_pipeline_and_builds() {
        let plan = chain_plan();
        let program = lower(&plan);
        // Two build-side scans materialise; the probe chain is one pipeline.
        assert_eq!(program.pipeline_count(), 1);
        assert_eq!(program.steps.len(), 3);
        match program.steps.last().unwrap() {
            Step::Pipeline(p) => {
                assert!(matches!(p.source, SourceSpec::Scan { .. }));
                assert_eq!(p.stages.len(), 3); // probe, probe, filter
            }
            Step::Breaker { .. } => panic!("last step should be the probe pipeline"),
        }
    }

    #[test]
    fn pipeline_output_matches_oracle_byte_for_byte() {
        let ds = dataset();
        let plan = chain_plan();
        let oracle = execute(
            &plan,
            &ds,
            &ExecConfig::unlimited().with_strategy(ExecStrategy::OperatorAtATime),
        )
        .unwrap();
        for threads in 1..=4 {
            let out = execute(&plan, &ds, &ExecConfig::unlimited().with_threads(threads)).unwrap();
            assert_eq!(out.table, oracle.table, "threads={threads}");
            assert!(out.runtime.pipelines > 0);
        }
    }

    #[test]
    fn pipeline_profile_matches_oracle_cardinalities() {
        let ds = dataset();
        let plan = chain_plan();
        let oracle = execute(
            &plan,
            &ds,
            &ExecConfig::unlimited().with_strategy(ExecStrategy::OperatorAtATime),
        )
        .unwrap();
        let out = execute(&plan, &ds, &ExecConfig::unlimited()).unwrap();
        fn rows(p: &Profile) -> Vec<(String, usize)> {
            let mut out = Vec::new();
            p.visit(&mut |n| out.push((n.label.clone(), n.output_rows)));
            out
        }
        assert_eq!(rows(&out.profile), rows(&oracle.profile));
        assert_eq!(
            out.profile.total_intermediate_rows(),
            oracle.profile.total_intermediate_rows()
        );
    }

    #[test]
    fn pipeline_reports_avoided_intermediates() {
        let ds = dataset();
        let plan = chain_plan();
        let out = execute(&plan, &ds, &ExecConfig::unlimited()).unwrap();
        // The probe chain's scan + two join outputs stay as index vectors.
        assert!(out.runtime.pipeline_rows_avoided > 0);
        assert!(out.runtime.pipeline_morsels >= 1);
    }

    #[test]
    fn breaker_only_plans_still_run() {
        let ds = dataset();
        let plan = PhysicalPlan::Slice {
            input: Box::new(PhysicalPlan::MergeJoin {
                left: Box::new(scan(0, vv(0), cv("p"), vv(1), Order::Pso)),
                right: Box::new(scan(1, vv(0), cv("q"), vv(2), Order::Pso)),
                var: Var(0),
            }),
            offset: 0,
            limit: Some(2),
        };
        let oracle = execute(
            &plan,
            &ds,
            &ExecConfig::unlimited().with_strategy(ExecStrategy::OperatorAtATime),
        )
        .unwrap();
        let out = execute(&plan, &ds, &ExecConfig::unlimited()).unwrap();
        assert_eq!(out.table, oracle.table);
        // No streaming chain here: everything materialises at breakers.
        assert_eq!(out.runtime.pipelines, 0);
        let program = lower(&plan);
        assert_eq!(program.pipeline_count(), 0);
    }

    #[test]
    fn distinct_streams_at_chain_top_and_matches_oracle() {
        let ds = dataset();
        // SELECT DISTINCT ?o over ?s p ?o: two subjects share object b1.
        let plan = PhysicalPlan::Project {
            input: Box::new(scan(0, vv(0), cv("p"), vv(1), Order::Pso)),
            projection: vec![("o".into(), Var(1))],
            distinct: true,
        };
        let program = lower(&plan);
        // Streams: one pipeline, no breaker at all.
        assert_eq!(program.pipeline_count(), 1);
        assert_eq!(program.steps.len(), 1);
        let oracle = execute(
            &plan,
            &ds,
            &ExecConfig::unlimited().with_strategy(ExecStrategy::OperatorAtATime),
        )
        .unwrap();
        for threads in 1..=4 {
            let out =
                execute_in(&plan, &ds, &ExecConfig::unlimited(), &forced_ctx(threads)).unwrap();
            assert_eq!(out.table, oracle.table, "threads={threads}");
            assert!(out.runtime.distinct_streamed > 0, "threads={threads}");
        }
    }

    #[test]
    fn distinct_below_a_breaker_still_streams_in_its_subchain() {
        let ds = dataset();
        // LIMIT over DISTINCT: the Slice breaker seals the DISTINCT's
        // chain, so nothing is appended above it and it still streams.
        let plan = PhysicalPlan::Slice {
            input: Box::new(PhysicalPlan::Project {
                input: Box::new(scan(0, vv(0), cv("p"), vv(1), Order::Pso)),
                projection: vec![("o".into(), Var(1))],
                distinct: true,
            }),
            offset: 0,
            limit: Some(1),
        };
        let program = lower(&plan);
        assert_eq!(program.pipeline_count(), 1);
        let oracle = execute(
            &plan,
            &ds,
            &ExecConfig::unlimited().with_strategy(ExecStrategy::OperatorAtATime),
        )
        .unwrap();
        let out = execute(&plan, &ds, &ExecConfig::unlimited()).unwrap();
        assert_eq!(out.table, oracle.table);
        assert!(out.runtime.distinct_streamed > 0);
    }

    #[test]
    fn aggregate_breaker_matches_reference_at_all_thread_counts() {
        let ds = dataset();
        // γ{?s} COUNT(?o) over ?s p ?o.
        let plan = PhysicalPlan::HashAggregate {
            input: Box::new(scan(0, vv(0), cv("p"), vv(1), Order::Pso)),
            group_by: vec![Var(0)],
            aggs: vec![hsp_sparql::AggSpec {
                func: hsp_sparql::AggFunc::Count,
                arg: Some(Var(1)),
                distinct: false,
                out: Var(2),
                name: "n".into(),
            }],
            having: None,
        };
        let oracle = execute(
            &plan,
            &ds,
            &ExecConfig::unlimited().with_strategy(ExecStrategy::OperatorAtATime),
        )
        .unwrap();
        assert_eq!(oracle.table.len(), 2); // a1 → 2, a2 → 1
        for threads in 1..=4 {
            let out =
                execute_in(&plan, &ds, &ExecConfig::unlimited(), &forced_ctx(threads)).unwrap();
            assert_eq!(out.table, oracle.table, "threads={threads}");
            assert_eq!(out.runtime.aggregate_groups, 2, "threads={threads}");
            if threads > 1 {
                assert!(out.runtime.parallel_aggregates > 0, "threads={threads}");
            }
        }
    }

    #[test]
    fn unknown_constant_scan_matches_oracle_empty_output() {
        let ds = dataset();
        let plan = PhysicalPlan::Filter {
            input: Box::new(scan(0, vv(0), cv("nope"), vv(1), Order::Pso)),
            expr: FilterExpr::Cmp {
                op: CmpOp::Eq,
                lhs: Operand::Var(Var(0)),
                rhs: Operand::Var(Var(1)),
            },
        };
        let oracle = execute(
            &plan,
            &ds,
            &ExecConfig::unlimited().with_strategy(ExecStrategy::OperatorAtATime),
        )
        .unwrap();
        let out = execute(&plan, &ds, &ExecConfig::unlimited()).unwrap();
        assert_eq!(out.table, oracle.table);
        assert_eq!(out.table.sorted_by(), None);
    }

    #[test]
    fn repeated_variable_scan_streams_through_filter() {
        // ?x p ?x under a filter: the repeated-variable equality applies in
        // the pipeline source.
        let ds = Dataset::from_ntriples(
            r#"<http://e/a> <http://e/p> <http://e/a> .
<http://e/a> <http://e/p> <http://e/b> .
<http://e/b> <http://e/p> <http://e/b> .
"#,
        )
        .unwrap();
        let plan = PhysicalPlan::Filter {
            input: Box::new(scan(0, vv(0), cv("p"), vv(0), Order::Pso)),
            expr: FilterExpr::Cmp {
                op: CmpOp::Ne,
                lhs: Operand::Var(Var(0)),
                rhs: Operand::Const(Term::iri("http://e/zzz")),
            },
        };
        let oracle = execute(
            &plan,
            &ds,
            &ExecConfig::unlimited().with_strategy(ExecStrategy::OperatorAtATime),
        )
        .unwrap();
        let out = execute(&plan, &ds, &ExecConfig::unlimited()).unwrap();
        assert_eq!(out.table, oracle.table);
        assert_eq!(out.table.len(), 2);
    }

    #[test]
    fn outer_probe_pipeline_matches_oracle() {
        // ?a p ?b OPTIONAL { ?b r ?c }: b2 has no r-edge, so its rows
        // survive with UNBOUND padding.
        let ds = dataset();
        let plan = PhysicalPlan::LeftOuterHashJoin {
            left: Box::new(scan(0, vv(0), cv("p"), vv(1), Order::Pso)),
            right: Box::new(scan(1, vv(1), cv("r"), vv(2), Order::Pso)),
            vars: vec![Var(1)],
        };
        let oracle = execute(
            &plan,
            &ds,
            &ExecConfig::unlimited().with_strategy(ExecStrategy::OperatorAtATime),
        )
        .unwrap();
        assert_eq!(oracle.table.len(), 3); // every p-row survives
        for threads in 1..=4 {
            let out = execute(&plan, &ds, &ExecConfig::unlimited().with_threads(threads)).unwrap();
            assert_eq!(out.table, oracle.table, "threads={threads}");
            assert!(out.runtime.pipelines > 0);
            assert!(out.runtime.pipeline_outer_probes > 0);
        }
    }

    #[test]
    fn outer_probe_feeds_downstream_filter_stage() {
        // FILTER over an OPTIONAL's output: the filter stage reads a
        // nullable column (UNBOUND comparisons are false, per SPARQL).
        let ds = dataset();
        let plan = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::LeftOuterHashJoin {
                left: Box::new(scan(0, vv(0), cv("p"), vv(1), Order::Pso)),
                right: Box::new(scan(1, vv(1), cv("r"), vv(2), Order::Pso)),
                vars: vec![Var(1)],
            }),
            expr: FilterExpr::Cmp {
                op: CmpOp::Ne,
                lhs: Operand::Var(Var(2)),
                rhs: Operand::Const(Term::literal("zzz")),
            },
        };
        let oracle = execute(
            &plan,
            &ds,
            &ExecConfig::unlimited().with_strategy(ExecStrategy::OperatorAtATime),
        )
        .unwrap();
        for threads in 1..=4 {
            let out = execute(&plan, &ds, &ExecConfig::unlimited().with_threads(threads)).unwrap();
            assert_eq!(out.table, oracle.table, "threads={threads}");
        }
    }

    #[test]
    fn plain_root_projection_streams_through_the_sink() {
        // π over the probe chain: no Project breaker — the projection is
        // a stage and the sink gathers only the projected columns.
        let ds = dataset();
        let plan = PhysicalPlan::Project {
            input: Box::new(chain_plan()),
            projection: vec![("a".into(), Var(0)), ("y".into(), Var(2))],
            distinct: false,
        };
        let program = lower(&plan);
        assert_eq!(program.pipeline_count(), 1);
        assert!(
            !program.steps.iter().any(|s| matches!(
                s,
                Step::Breaker {
                    op: BreakerOp::Project { .. },
                    ..
                }
            )),
            "plain projection must not lower as a breaker"
        );
        let oracle = execute(
            &plan,
            &ds,
            &ExecConfig::unlimited().with_strategy(ExecStrategy::OperatorAtATime),
        )
        .unwrap();
        for threads in 1..=4 {
            let out = execute(&plan, &ds, &ExecConfig::unlimited().with_threads(threads)).unwrap();
            assert_eq!(out.table, oracle.table, "threads={threads}");
            // The projection's input (the filter output) is no longer
            // materialised: it shows up in the avoided-rows counter.
            assert!(out.runtime.pipelines > 0);
        }
        let out = execute(&plan, &ds, &ExecConfig::unlimited()).unwrap();
        fn rows(p: &Profile) -> Vec<(String, usize)> {
            let mut out = Vec::new();
            p.visit(&mut |n| out.push((n.label.clone(), n.output_rows)));
            out
        }
        assert_eq!(rows(&out.profile), rows(&oracle.profile));
    }

    #[test]
    fn empty_plain_projection_yields_unit_rows() {
        let ds = dataset();
        let plan = PhysicalPlan::Project {
            input: Box::new(scan(0, vv(0), cv("p"), vv(1), Order::Pso)),
            projection: vec![],
            distinct: false,
        };
        let oracle = execute(
            &plan,
            &ds,
            &ExecConfig::unlimited().with_strategy(ExecStrategy::OperatorAtATime),
        )
        .unwrap();
        let out = execute(&plan, &ds, &ExecConfig::unlimited()).unwrap();
        assert_eq!(out.table, oracle.table);
        assert_eq!(out.table.len(), 3);
        assert!(out.table.vars().is_empty());
    }

    #[test]
    fn single_consumer_breaker_hands_off_to_projection() {
        // π(mergejoin(...)): the merge join's output has exactly one
        // consumer (the projection pipeline's source), so it is handed
        // off and its projected columns move into the sink.
        let ds = dataset();
        let plan = PhysicalPlan::Project {
            input: Box::new(PhysicalPlan::MergeJoin {
                left: Box::new(scan(0, vv(0), cv("p"), vv(1), Order::Pso)),
                right: Box::new(scan(1, vv(0), cv("q"), vv(2), Order::Pso)),
                var: Var(0),
            }),
            projection: vec![("s".into(), Var(0)), ("o".into(), Var(1))],
            distinct: false,
        };
        let oracle = execute(
            &plan,
            &ds,
            &ExecConfig::unlimited().with_strategy(ExecStrategy::OperatorAtATime),
        )
        .unwrap();
        for threads in 1..=4 {
            let out = execute(&plan, &ds, &ExecConfig::unlimited().with_threads(threads)).unwrap();
            assert_eq!(out.table, oracle.table, "threads={threads}");
            assert!(
                out.runtime.breaker_handoffs > 0,
                "merge-join output should hand off: {:?}",
                out.runtime
            );
        }
    }

    #[test]
    fn handoff_survives_a_dropping_filter_between() {
        // σ(mergejoin(...)) as a pipeline: the filter drops rows, so the
        // hand-off falls back to the gather path — output must still match.
        let ds = dataset();
        let plan = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::MergeJoin {
                left: Box::new(scan(0, vv(0), cv("p"), vv(1), Order::Pso)),
                right: Box::new(scan(1, vv(0), cv("q"), vv(2), Order::Pso)),
                var: Var(0),
            }),
            expr: FilterExpr::Cmp {
                op: CmpOp::Gt,
                lhs: Operand::Var(Var(2)),
                rhs: Operand::Const(Term::literal("6")),
            },
        };
        let oracle = execute(
            &plan,
            &ds,
            &ExecConfig::unlimited().with_strategy(ExecStrategy::OperatorAtATime),
        )
        .unwrap();
        let out = execute(&plan, &ds, &ExecConfig::unlimited()).unwrap();
        assert_eq!(out.table, oracle.table);
        assert!(out.runtime.breaker_handoffs > 0);
    }

    #[test]
    fn dag_renders_outer_probe_projection_and_handoff() {
        let plan = PhysicalPlan::Project {
            input: Box::new(PhysicalPlan::LeftOuterHashJoin {
                left: Box::new(PhysicalPlan::MergeJoin {
                    left: Box::new(scan(0, vv(0), cv("p"), vv(1), Order::Pso)),
                    right: Box::new(scan(1, vv(0), cv("q"), vv(2), Order::Pso)),
                    var: Var(0),
                }),
                right: Box::new(scan(2, vv(1), cv("r"), vv(3), Order::Pso)),
                vars: vec![Var(1)],
            }),
            projection: vec![("a".into(), Var(0)), ("d".into(), Var(3))],
            distinct: false,
        };
        let query = hsp_sparql::JoinQuery::parse(
            "SELECT ?a WHERE { ?a <http://e/p> ?b . ?a <http://e/q> ?c . ?b <http://e/r> ?d . }",
        )
        .unwrap();
        let program = lower(&plan);
        let dag = program.render(&query);
        assert!(dag.contains("⟕hj"), "{dag}");
        assert!(dag.contains("→ π ?a,?d"), "{dag}");
        assert!(dag.contains("[handoff]"), "{dag}");
    }

    #[test]
    fn dag_renders_pipelines_and_breakers() {
        let plan = chain_plan();
        let query = hsp_sparql::JoinQuery::parse(
            "SELECT ?a WHERE { ?a <http://e/p> ?b . ?a <http://e/q> ?c . ?b <http://e/r> ?d . }",
        )
        .unwrap();
        let program = lower(&plan);
        let dag = program.render(&query);
        assert!(dag.contains("pipeline DAG"), "{dag}");
        assert!(dag.contains("← pipeline:"), "{dag}");
        assert!(dag.contains("← breaker:"), "{dag}");
        assert!(dag.contains("⋈hj"), "{dag}");
        assert!(dag.contains("→ sink"), "{dag}");
        assert!(dag.contains("result: s"), "{dag}");
    }
}
