//! Pipeline-at-a-time execution: lower a [`PhysicalPlan`] into a DAG of
//! morsel-driven **pipelines** separated by explicit **breakers**, then run
//! the pipelines in dependency order.
//!
//! The operator-at-a-time evaluator ([`crate::exec`]'s tree walk, retained
//! as the byte-identity oracle) fully materialises a
//! [`BindingTable`] between every pair of operators — the MonetDB-style
//! model the source paper ran on. Morsel-driven pipelining (Leis et al.)
//! replaces it with *lower-then-run*:
//!
//! * **Lowering** ([`lower`]) cuts the plan tree into maximal breaker-free
//!   operator chains. A *pipeline* is `source → stage* → sink`, where the
//!   source is a scan (or a breaker's materialised output), the stages are
//!   the streaming operators — FILTER and hash-join *probes* — and the
//!   sink is the single materialisation point. Everything that must see
//!   its whole input before emitting a row is a *breaker* and becomes its
//!   own step: the hash-join **build** side, merge join (both sorted
//!   inputs), cross product, the sort order-enforcer, ORDER BY,
//!   projection/DISTINCT, and LIMIT/OFFSET.
//! * **Execution** ([`Program::run`]) walks the steps in dependency order
//!   (lowering emits them topologically). A pipeline pushes its source
//!   through the whole stage chain **morsel at a time** on the
//!   [`crate::morsel`] pool: each worker carries only thread-local `u32`
//!   index vectors — one per *side* (the source plus each probed build
//!   table) — through the stages, so the rows between operators are never
//!   gathered into columns. Per-morsel index vectors stitch back in morsel
//!   order (the same discipline as every parallel kernel, so the result is
//!   byte-identical to the oracle), and the sink gathers each output
//!   column exactly once through the [`crate::pool::BufferPool`].
//!
//! What the oracle would have materialised between the pipeline's
//! operators is reported as
//! [`RuntimeMetrics::pipeline_rows_avoided`](crate::metrics::RuntimeMetrics::pipeline_rows_avoided);
//! per-operator output cardinalities are still counted exactly, so the
//! produced [`Profile`] matches the oracle's row for row.
//!
//! Executions that enable SIP or a row budget fall back to the
//! operator-at-a-time evaluator (see [`crate::exec::ExecStrategy`]): both
//! features are defined in terms of materialised intermediates.

use std::collections::HashMap;
use std::time::Instant;

use hsp_rdf::{IdTriple, TermId};
use hsp_sparql::{FilterExpr, TriplePattern, Var};
use hsp_store::{Dataset, Order};

use crate::binding::{gather_column, BindingTable};
use crate::exec::{plan_label, Profile};
use crate::kernel::BuildTable;
use crate::morsel::{self, MorselRun};
use crate::ops::{self, RowValues};
use crate::plan::{scan_sort_var, PhysicalPlan};
use crate::pool::ExecContext;

/// A plan node's identity: its pre-order position in the plan tree.
type NodeId = usize;

/// A materialised table produced by one step (a breaker output or a
/// pipeline sink).
type SlotId = usize;

/// The lowered form of one plan: steps in dependency order, each filling
/// one slot. Build with [`lower`], run with [`Program::run`], render with
/// [`Program::render`].
pub struct Program<'p> {
    plan: &'p PhysicalPlan,
    steps: Vec<Step<'p>>,
    slot_count: usize,
    node_count: usize,
    root: SlotId,
    /// Plan-node pre-order ids, keyed by node address (stable: the plan is
    /// borrowed for `'p`).
    ids: HashMap<*const PhysicalPlan, NodeId>,
}

enum Step<'p> {
    /// A breaker: run one materialising operator over already-filled slots.
    Breaker {
        node: NodeId,
        out: SlotId,
        op: BreakerOp<'p>,
    },
    /// A streaming pipeline: source → stages → sink.
    Pipeline(Pipeline<'p>),
}

enum BreakerOp<'p> {
    /// A scan feeding a breaker directly (or a zero-variable scan, whose
    /// unit rows have no columns to stream).
    Scan {
        pattern: &'p TriplePattern,
        order: Order,
    },
    MergeJoin {
        left: SlotId,
        right: SlotId,
        var: Var,
    },
    CrossProduct {
        left: SlotId,
        right: SlotId,
    },
    Sort {
        input: SlotId,
        var: Var,
    },
    Project {
        input: SlotId,
        projection: &'p [(String, Var)],
        distinct: bool,
    },
    OrderBy {
        input: SlotId,
        keys: &'p [hsp_sparql::SortKey],
    },
    Slice {
        input: SlotId,
        offset: usize,
        limit: Option<usize>,
    },
}

struct Pipeline<'p> {
    source: SourceSpec<'p>,
    stages: Vec<StageSpec<'p>>,
    out: SlotId,
}

enum SourceSpec<'p> {
    /// Stream straight out of an ordered relation.
    Scan {
        node: NodeId,
        pattern: &'p TriplePattern,
        order: Order,
    },
    /// Stream a breaker's materialised output.
    Slot(SlotId),
}

enum StageSpec<'p> {
    /// Residual FILTER over the pipeline's composed rows.
    Filter { node: NodeId, expr: &'p FilterExpr },
    /// Probe the hash table built over the (breaker-materialised) slot.
    Probe {
        node: NodeId,
        build: SlotId,
        vars: &'p [Var],
    },
}

/// Lower a validated plan into a [`Program`].
pub fn lower(plan: &PhysicalPlan) -> Program<'_> {
    let mut ids = HashMap::new();
    let mut counter = 0usize;
    plan.visit(&mut |p| {
        ids.insert(p as *const PhysicalPlan, counter);
        counter += 1;
    });
    let mut lowerer = Lowerer {
        ids: &ids,
        steps: Vec::new(),
        slot_count: 0,
    };
    let chain = lowerer.chain(plan);
    let root = lowerer.seal(chain);
    Program {
        plan,
        steps: lowerer.steps,
        slot_count: lowerer.slot_count,
        node_count: counter,
        root,
        ids,
    }
}

/// A pipeline under construction: a source plus the streaming stages
/// accumulated so far (not yet sealed into a step).
struct Chain<'p> {
    source: SourceSpec<'p>,
    stages: Vec<StageSpec<'p>>,
}

struct Lowerer<'p, 'i> {
    ids: &'i HashMap<*const PhysicalPlan, NodeId>,
    steps: Vec<Step<'p>>,
    slot_count: usize,
}

impl<'p> Lowerer<'p, '_> {
    fn node_id(&self, plan: &'p PhysicalPlan) -> NodeId {
        self.ids[&(plan as *const PhysicalPlan)]
    }

    fn new_slot(&mut self) -> SlotId {
        let slot = self.slot_count;
        self.slot_count += 1;
        slot
    }

    fn push_breaker(&mut self, node: NodeId, op: BreakerOp<'p>) -> SlotId {
        let out = self.new_slot();
        self.steps.push(Step::Breaker { node, out, op });
        out
    }

    /// Lower `plan` into an open chain, emitting breaker steps for every
    /// sub-plan that must materialise (the classification is
    /// [`PhysicalPlan::is_pipeline_breaker`]; the match below must agree
    /// with it).
    fn chain(&mut self, plan: &'p PhysicalPlan) -> Chain<'p> {
        debug_assert_eq!(
            plan.is_pipeline_breaker(),
            !matches!(
                plan,
                PhysicalPlan::Scan { .. } | PhysicalPlan::Filter { .. }
            ),
            "lowering must agree with the breaker classification"
        );
        let node = self.node_id(plan);
        match plan {
            PhysicalPlan::Scan { pattern, order, .. } => {
                if pattern.vars().is_empty() {
                    // A fully ground pattern produces unit rows — nothing
                    // to stream; materialise it like a breaker.
                    let slot = self.push_breaker(
                        node,
                        BreakerOp::Scan {
                            pattern,
                            order: *order,
                        },
                    );
                    Chain {
                        source: SourceSpec::Slot(slot),
                        stages: Vec::new(),
                    }
                } else {
                    Chain {
                        source: SourceSpec::Scan {
                            node,
                            pattern,
                            order: *order,
                        },
                        stages: Vec::new(),
                    }
                }
            }
            PhysicalPlan::Filter { input, expr } => {
                let mut chain = self.chain(input);
                chain.stages.push(StageSpec::Filter { node, expr });
                chain
            }
            PhysicalPlan::HashJoin { left, right, vars } => {
                // The build side is the breaker: seal it, then keep
                // streaming the probe side through a probe stage.
                let build = self.seal_subplan(right);
                let mut chain = self.chain(left);
                chain.stages.push(StageSpec::Probe { node, build, vars });
                chain
            }
            PhysicalPlan::MergeJoin { left, right, var } => {
                let l = self.seal_subplan(left);
                let r = self.seal_subplan(right);
                let slot = self.push_breaker(
                    node,
                    BreakerOp::MergeJoin {
                        left: l,
                        right: r,
                        var: *var,
                    },
                );
                Chain {
                    source: SourceSpec::Slot(slot),
                    stages: Vec::new(),
                }
            }
            PhysicalPlan::CrossProduct { left, right } => {
                let l = self.seal_subplan(left);
                let r = self.seal_subplan(right);
                let slot = self.push_breaker(node, BreakerOp::CrossProduct { left: l, right: r });
                Chain {
                    source: SourceSpec::Slot(slot),
                    stages: Vec::new(),
                }
            }
            PhysicalPlan::Sort { input, var } => {
                let i = self.seal_subplan(input);
                let slot = self.push_breaker(
                    node,
                    BreakerOp::Sort {
                        input: i,
                        var: *var,
                    },
                );
                Chain {
                    source: SourceSpec::Slot(slot),
                    stages: Vec::new(),
                }
            }
            PhysicalPlan::Project {
                input,
                projection,
                distinct,
            } => {
                let i = self.seal_subplan(input);
                let slot = self.push_breaker(
                    node,
                    BreakerOp::Project {
                        input: i,
                        projection,
                        distinct: *distinct,
                    },
                );
                Chain {
                    source: SourceSpec::Slot(slot),
                    stages: Vec::new(),
                }
            }
            PhysicalPlan::OrderBy { input, keys } => {
                let i = self.seal_subplan(input);
                let slot = self.push_breaker(node, BreakerOp::OrderBy { input: i, keys });
                Chain {
                    source: SourceSpec::Slot(slot),
                    stages: Vec::new(),
                }
            }
            PhysicalPlan::Slice {
                input,
                offset,
                limit,
            } => {
                let i = self.seal_subplan(input);
                let slot = self.push_breaker(
                    node,
                    BreakerOp::Slice {
                        input: i,
                        offset: *offset,
                        limit: *limit,
                    },
                );
                Chain {
                    source: SourceSpec::Slot(slot),
                    stages: Vec::new(),
                }
            }
        }
    }

    fn seal_subplan(&mut self, plan: &'p PhysicalPlan) -> SlotId {
        let chain = self.chain(plan);
        self.seal(chain)
    }

    /// Close an open chain into a slot: an already-materialised stage-less
    /// chain is its slot; a stage-less scan materialises directly; anything
    /// else becomes a pipeline step.
    fn seal(&mut self, chain: Chain<'p>) -> SlotId {
        if chain.stages.is_empty() {
            return match chain.source {
                SourceSpec::Slot(slot) => slot,
                SourceSpec::Scan {
                    node,
                    pattern,
                    order,
                } => self.push_breaker(node, BreakerOp::Scan { pattern, order }),
            };
        }
        let out = self.new_slot();
        self.steps.push(Step::Pipeline(Pipeline {
            source: chain.source,
            stages: chain.stages,
            out,
        }));
        out
    }
}

impl Program<'_> {
    /// Number of pipeline steps (the rest are breakers).
    pub fn pipeline_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, Step::Pipeline(_)))
            .count()
    }

    /// Execute the program, producing the final table and a per-operator
    /// [`Profile`] mirroring the plan tree (output cardinalities are exact;
    /// a pipeline's wall time is attributed to its topmost operator, its
    /// inner stages report 0ns since they never run in isolation).
    pub fn run(&self, ds: &Dataset, ctx: &ExecContext) -> (BindingTable, Profile) {
        let mut slots: Vec<Option<BindingTable>> = (0..self.slot_count).map(|_| None).collect();
        let mut rows = vec![0usize; self.node_count];
        let mut nanos = vec![0u128; self.node_count];
        for step in &self.steps {
            match step {
                Step::Breaker { node, out, op } => {
                    let start = Instant::now();
                    let (table, consumed) = run_breaker(op, ds, ctx, &mut slots);
                    nanos[*node] = start.elapsed().as_nanos();
                    rows[*node] = table.len();
                    for t in consumed {
                        ctx.pool.recycle(t);
                    }
                    slots[*out] = Some(table);
                }
                Step::Pipeline(p) => run_pipeline(p, ds, ctx, &mut slots, &mut rows, &mut nanos),
            }
        }
        let table = slots[self.root].take().expect("root slot filled");
        let profile = self.build_profile(self.plan, &rows, &nanos);
        (table, profile)
    }

    fn build_profile(&self, plan: &PhysicalPlan, rows: &[usize], nanos: &[u128]) -> Profile {
        let id = self.ids[&(plan as *const PhysicalPlan)];
        let children = match plan {
            PhysicalPlan::Scan { .. } => Vec::new(),
            PhysicalPlan::MergeJoin { left, right, .. }
            | PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::CrossProduct { left, right } => vec![
                self.build_profile(left, rows, nanos),
                self.build_profile(right, rows, nanos),
            ],
            PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::OrderBy { input, .. }
            | PhysicalPlan::Slice { input, .. } => vec![self.build_profile(input, rows, nanos)],
        };
        Profile {
            label: plan_label(plan),
            output_rows: rows[id],
            nanos: nanos[id],
            children,
        }
    }

    /// Render the pipeline DAG as text: one line per step, slots named
    /// `s0, s1, …`, pipelines shown as `source → stage → … → sink`.
    pub fn render(&self, query: &hsp_sparql::JoinQuery) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "pipeline DAG: {} pipeline{}, {} breaker{}\n",
            self.pipeline_count(),
            if self.pipeline_count() == 1 { "" } else { "s" },
            self.steps.len() - self.pipeline_count(),
            if self.steps.len() - self.pipeline_count() == 1 {
                ""
            } else {
                "s"
            },
        );
        let scan_desc = |pattern: &TriplePattern, order: Order| {
            format!(
                "σ({}) {}",
                order.upper_name(),
                crate::explain::describe_pattern(pattern, query)
            )
        };
        for step in &self.steps {
            match step {
                Step::Breaker { out: slot, op, .. } => {
                    let desc = match op {
                        BreakerOp::Scan { pattern, order } => scan_desc(pattern, *order),
                        BreakerOp::MergeJoin { left, right, var } => {
                            format!("⋈mj ?{} (s{left}, s{right})", query.var_name(*var))
                        }
                        BreakerOp::CrossProduct { left, right } => {
                            format!("× (s{left}, s{right})")
                        }
                        BreakerOp::Sort { input, var } => {
                            format!("sort ?{} (s{input})", query.var_name(*var))
                        }
                        BreakerOp::Project {
                            input,
                            projection,
                            distinct,
                        } => {
                            let names: Vec<String> =
                                projection.iter().map(|(n, _)| format!("?{n}")).collect();
                            format!(
                                "{} {} (s{input})",
                                if *distinct { "π-distinct" } else { "π" },
                                names.join(",")
                            )
                        }
                        BreakerOp::OrderBy { input, keys } => {
                            format!("order by ({} keys) (s{input})", keys.len())
                        }
                        BreakerOp::Slice {
                            input,
                            offset,
                            limit,
                        } => format!(
                            "slice[{offset}..{}] (s{input})",
                            limit.map_or("∞".into(), |n| n.to_string())
                        ),
                    };
                    let _ = writeln!(out, "  s{slot} ← breaker: {desc}");
                }
                Step::Pipeline(p) => {
                    let mut line = format!("  s{} ← pipeline: ", p.out);
                    match &p.source {
                        SourceSpec::Scan { pattern, order, .. } => {
                            line.push_str(&scan_desc(pattern, *order));
                        }
                        SourceSpec::Slot(slot) => {
                            let _ = write!(line, "s{slot}");
                        }
                    }
                    for stage in &p.stages {
                        match stage {
                            StageSpec::Filter { .. } => line.push_str(" → σ(filter)"),
                            StageSpec::Probe { build, vars, .. } => {
                                let names: Vec<String> = vars
                                    .iter()
                                    .map(|v| format!("?{}", query.var_name(*v)))
                                    .collect();
                                let _ = write!(line, " → ⋈hj {} [build s{build}]", names.join(","));
                            }
                        }
                    }
                    line.push_str(" → sink\n");
                    out.push_str(&line);
                }
            }
        }
        let _ = writeln!(out, "  result: s{}", self.root);
        out
    }
}

/// Run one breaker op over materialised slots; returns the output table
/// plus the consumed input tables (for recycling).
fn run_breaker(
    op: &BreakerOp<'_>,
    ds: &Dataset,
    ctx: &ExecContext,
    slots: &mut [Option<BindingTable>],
) -> (BindingTable, Vec<BindingTable>) {
    let mut take = |slot: SlotId| -> BindingTable {
        slots[slot].take().expect("input slot filled before use")
    };
    match op {
        BreakerOp::Scan { pattern, order } => (ops::scan_in(ctx, ds, pattern, *order), Vec::new()),
        BreakerOp::MergeJoin { left, right, var } => {
            let (l, r) = (take(*left), take(*right));
            (ops::merge_join_in(ctx, &l, &r, *var), vec![l, r])
        }
        BreakerOp::CrossProduct { left, right } => {
            let (l, r) = (take(*left), take(*right));
            (ops::cross_product_in(ctx, &l, &r), vec![l, r])
        }
        BreakerOp::Sort { input, var } => {
            let i = take(*input);
            (ops::sort_by_in(ctx, &i, *var), vec![i])
        }
        BreakerOp::Project {
            input,
            projection,
            distinct,
        } => {
            let i = take(*input);
            (ops::project_in(ctx, &i, projection, *distinct), vec![i])
        }
        BreakerOp::OrderBy { input, keys } => {
            let i = take(*input);
            (ops::order_by_in(ctx, ds, &i, keys), vec![i])
        }
        BreakerOp::Slice {
            input,
            offset,
            limit,
        } => {
            let i = take(*input);
            (ops::slice_in(ctx, &i, *offset, *limit), vec![i])
        }
    }
}

/// How a pipeline stage reads one value of a composed row: either a key
/// coordinate of the scan source's relation rows, or a column of a
/// materialised side table, indexed through that side's index vector.
#[derive(Clone, Copy)]
enum ColRef<'a> {
    /// `scan_rows[sides[0][row]][key]`.
    Key { key: usize },
    /// `col[sides[side][row]]`.
    Col { side: usize, col: &'a [TermId] },
}

/// One prepared (executable) pipeline stage.
enum PreparedStage<'a> {
    Filter {
        node: NodeId,
        expr: &'a FilterExpr,
        /// The variables the expression reads, resolved against the
        /// pipeline layout — gathered into scratch columns per morsel so
        /// the row loop runs over contiguous memory, like the
        /// operator-at-a-time FILTER.
        used: Vec<(Var, ColRef<'a>)>,
    },
    Probe {
        node: NodeId,
        table: BuildTable,
        build_cols: Vec<&'a [TermId]>,
        key_refs: Vec<ColRef<'a>>,
        /// Shared non-key variables: the composed row's value must equal
        /// the build row's (the repeated-variable check of the joins).
        extra_checks: Vec<(ColRef<'a>, &'a [TermId])>,
    },
}

/// Everything a morsel worker needs, borrowed for the pipeline run.
struct PreparedPipeline<'a> {
    /// Relation rows of a scan source (empty for slot sources).
    scan_rows: &'a [IdTriple],
    /// `true` when the source is a scan (node cardinality + equalities
    /// apply; the scan's rows count as avoided materialisation).
    scan_source: Option<NodeId>,
    /// Repeated-variable equalities of the scan pattern (key-index pairs).
    equalities: Vec<(usize, usize)>,
    /// Output layout: one entry per output column, in output order.
    layout: Vec<(Var, ColRef<'a>)>,
    stages: Vec<PreparedStage<'a>>,
    rows: usize,
    sorted: Option<Var>,
}

/// The per-morsel result: one index vector per side plus the per-stage
/// surviving-row counts (source first).
struct MorselOut {
    sides: Vec<Vec<u32>>,
    counts: Vec<usize>,
}

/// The composed-row view a stage gathers its scratch columns from:
/// [`ColRef`] reads resolved through the current side index vectors.
/// While no stage has dropped a row yet, side 0 is represented *lazily*
/// as the morsel's row range (`ident`) instead of a materialised identity
/// vector — reads off it are sequential slice accesses.
struct View<'a, 'b> {
    scan_rows: &'a [IdTriple],
    sides: &'b [Vec<u32>],
    /// `Some(start)` while side 0 is still the untouched morsel range
    /// starting at `start` (its length is the current row count).
    ident: Option<u32>,
}

impl View<'_, '_> {
    /// Gather the first `n` values of a column reference into a contiguous
    /// scratch buffer (one tight loop per [`ColRef`] shape — what keeps
    /// the probe loop over the result as fast as a materialised column).
    fn gather(&self, r: ColRef<'_>, n: usize, scratch: &Scratch<'_>) -> Vec<TermId> {
        let mut out = scratch.take_col(n);
        match (r, self.ident) {
            (ColRef::Key { key }, Some(start)) => {
                let start = start as usize;
                out.extend(self.scan_rows[start..start + n].iter().map(|row| row[key]));
            }
            (ColRef::Key { key }, None) => out.extend(
                self.sides[0][..n]
                    .iter()
                    .map(|&i| self.scan_rows[i as usize][key]),
            ),
            (ColRef::Col { side: 0, col }, Some(start)) => {
                let start = start as usize;
                out.extend_from_slice(&col[start..start + n]);
            }
            (ColRef::Col { side, col }, _) => {
                out.extend(self.sides[side][..n].iter().map(|&i| col[i as usize]))
            }
        }
        out
    }
}

/// Scratch-buffer source for one morsel run: the execution's
/// [`BufferPool`](crate::pool::BufferPool) when the pipeline runs
/// sequentially on the owning thread (large scratch columns recycle
/// instead of churning the allocator, exactly like the oracle's gathers),
/// plain allocation for parallel workers — the pool is single-threaded by
/// design and workers keep everything thread-local.
struct Scratch<'a> {
    pool: Option<&'a crate::pool::BufferPool>,
}

impl Scratch<'_> {
    fn take_col(&self, cap: usize) -> Vec<TermId> {
        self.pool
            .map_or_else(|| Vec::with_capacity(cap), |p| p.take_col(cap))
    }

    fn put_col(&self, col: Vec<TermId>) {
        if let Some(p) = self.pool {
            p.put_col(col);
        }
    }

    fn take_idx(&self, cap: usize) -> Vec<u32> {
        self.pool
            .map_or_else(|| Vec::with_capacity(cap), |p| p.take_idx(cap))
    }

    fn put_idx(&self, buf: Vec<u32>) {
        if let Some(p) = self.pool {
            p.put_idx(buf);
        }
    }
}

/// The FILTER stage's evaluation surface: just the expression's variables,
/// each backed by a contiguous scratch column gathered for this morsel.
struct ScratchCols<'a, 'b> {
    used: &'b [(Var, ColRef<'a>)],
    cols: &'b [Vec<TermId>],
}

impl RowValues for ScratchCols<'_, '_> {
    fn row_value(&self, v: Var, row: usize) -> TermId {
        self.used
            .iter()
            .position(|&(uv, _)| uv == v)
            .map_or(TermId::UNBOUND, |c| self.cols[c][row])
    }
}

/// Execute one pipeline: prepare (resolve the source, build the probe hash
/// tables — the breaker work), push morsels through the stage chain, gather
/// once at the sink, recycle the consumed inputs.
fn run_pipeline(
    p: &Pipeline<'_>,
    ds: &Dataset,
    ctx: &ExecContext,
    slots: &mut [Option<BindingTable>],
    rows_by_node: &mut [usize],
    nanos_by_node: &mut [u128],
) {
    let start = Instant::now();

    // Take the pipeline's inputs out of their slots (they stay alive —
    // borrowed by the prepared stages — until the sink has gathered).
    let source_table: Option<BindingTable> = match &p.source {
        SourceSpec::Slot(slot) => Some(slots[*slot].take().expect("source slot filled")),
        SourceSpec::Scan { .. } => None,
    };
    let build_tables: Vec<BindingTable> = p
        .stages
        .iter()
        .filter_map(|s| match s {
            StageSpec::Probe { build, .. } => {
                Some(slots[*build].take().expect("build slot filled"))
            }
            StageSpec::Filter { .. } => None,
        })
        .collect();

    let prepared = prepare(p, ds, ctx, source_table.as_ref(), &build_tables);

    // Push morsels through the whole stage chain. Parallel workers use the
    // per-thread evaluator (scoped threads — the caches drop at pipeline
    // exit); the sequential path keeps a plain local evaluator so the
    // long-lived main thread never accretes a regex cache.
    let stage_count = prepared.stages.len();
    let (parts, run) = if ctx.morsel.workers_for(prepared.rows) > 1 {
        morsel::run_morsels(prepared.rows, &ctx.morsel, |range| {
            // Workers allocate scratch plainly: the pool is single-threaded.
            let scratch = Scratch { pool: None };
            ops::WORKER_EVALUATOR
                .with(|evaluator| process_morsel(range, &prepared, ds, evaluator, &scratch))
        })
    } else {
        let evaluator = hsp_sparql::Evaluator::new();
        let scratch = Scratch {
            pool: Some(&ctx.pool),
        };
        let out = process_morsel(0..prepared.rows, &prepared, ds, &evaluator, &scratch);
        (
            vec![out],
            MorselRun {
                morsels: 0,
                threads: 1,
            },
        )
    };

    // Stitch the per-morsel index vectors in morsel order and total the
    // per-stage counts.
    let side_count = 1 + prepared
        .stages
        .iter()
        .filter(|s| matches!(s, PreparedStage::Probe { .. }))
        .count();
    let mut counts = vec![0usize; 1 + stage_count];
    let mut total_rows = 0usize;
    for part in &parts {
        total_rows += part.sides[0].len();
    }
    let sides: Vec<Vec<u32>> = if parts.len() == 1 {
        // Single morsel (the sequential path): its index vectors are the
        // stitched result — move them instead of copying.
        let part = parts.into_iter().next().expect("one part");
        for (c, n) in part.counts.iter().enumerate() {
            counts[c] += n;
        }
        part.sides
    } else {
        let mut sides: Vec<Vec<u32>> = (0..side_count)
            .map(|_| ctx.pool.take_idx(total_rows))
            .collect();
        for part in parts {
            for (c, n) in part.counts.iter().enumerate() {
                counts[c] += n;
            }
            for (s, v) in part.sides.into_iter().enumerate() {
                sides[s].extend_from_slice(&v);
            }
        }
        sides
    };

    // Record per-operator cardinalities (exactly what the oracle would
    // report): the scan source's output, then each stage's.
    if let Some(node) = prepared.scan_source {
        rows_by_node[node] = counts[0];
    }
    for (stage, &n) in prepared.stages.iter().zip(&counts[1..]) {
        let node = match stage {
            PreparedStage::Filter { node, .. } | PreparedStage::Probe { node, .. } => *node,
        };
        rows_by_node[node] = n;
    }

    // The rows the oracle would have materialised between operators but
    // this pipeline kept as index vectors: every count except the final
    // stage's (which the sink materialises); a slot source was already
    // materialised by its breaker, so it does not count.
    let avoided: usize = counts[..counts.len() - 1]
        .iter()
        .skip(if prepared.scan_source.is_some() { 0 } else { 1 })
        .sum();
    ctx.note_pipeline(run, avoided);

    // Sink: gather each output column exactly once, through the pool.
    let out_rows = sides[0].len();
    let table = if prepared.layout.is_empty() {
        BindingTable::unit(out_rows)
    } else {
        let mut cols: Vec<Vec<TermId>> = Vec::with_capacity(prepared.layout.len());
        for &(_, r) in &prepared.layout {
            match r {
                ColRef::Key { key } => {
                    let mut col = ctx.pool.take_col(out_rows);
                    col.extend(
                        sides[0]
                            .iter()
                            .map(|&i| prepared.scan_rows[i as usize][key]),
                    );
                    cols.push(col);
                }
                ColRef::Col { side, col } => {
                    cols.push(gather_column(col, &sides[side], Some(&ctx.pool)));
                }
            }
        }
        let vars: Vec<Var> = prepared.layout.iter().map(|&(v, _)| v).collect();
        let mut table = BindingTable::from_columns(vars, cols, None);
        table.set_sorted_by(prepared.sorted);
        table
    };
    for side in sides {
        ctx.pool.put_idx(side);
    }

    // The topmost operator of the pipeline owns its wall time (inner
    // stages never run in isolation, so they report 0).
    let top_node = match prepared.stages.last() {
        Some(PreparedStage::Filter { node, .. }) | Some(PreparedStage::Probe { node, .. }) => *node,
        None => unreachable!("pipelines have at least one stage"),
    };
    nanos_by_node[top_node] = start.elapsed().as_nanos();

    // Recycle the consumed inputs now that the gather is done.
    drop(prepared);
    if let Some(t) = source_table {
        ctx.pool.recycle(t);
    }
    for t in build_tables {
        ctx.pool.recycle(t);
    }
    slots[p.out] = Some(table);
}

/// Resolve the pipeline's source and stages against the dataset and the
/// taken input tables: relation range + key layout for a scan source,
/// hash-table builds (the breaker half of each hash join) for the probes.
fn prepare<'a>(
    p: &'a Pipeline<'_>,
    ds: &'a Dataset,
    ctx: &ExecContext,
    source_table: Option<&'a BindingTable>,
    build_tables: &'a [BindingTable],
) -> PreparedPipeline<'a> {
    let mut layout: Vec<(Var, ColRef<'a>)> = Vec::new();
    let mut equalities: Vec<(usize, usize)> = Vec::new();
    let mut scan_rows: &'a [IdTriple] = &[];
    let scan_source;
    let rows;
    let sorted;
    match &p.source {
        SourceSpec::Scan {
            node,
            pattern,
            order,
        } => {
            scan_source = Some(*node);
            // Resolve constants exactly like `ops::scan_in`: a constant
            // missing from the dictionary matches nothing (and the empty
            // output, like the oracle's, advertises no sortedness).
            let mut prefix: Vec<TermId> = Vec::with_capacity(3);
            let mut known = true;
            for pos in order.positions() {
                match pattern.slot(pos) {
                    hsp_sparql::TermOrVar::Const(term) => match ds.dict().id(term) {
                        Some(id) => prefix.push(id),
                        None => {
                            known = false;
                            break;
                        }
                    },
                    hsp_sparql::TermOrVar::Var(_) => break,
                }
            }
            if known {
                scan_rows = ds.store().relation(*order).range(&prefix);
            }
            assert!(
                scan_rows.len() < u32::MAX as usize,
                "scan range exceeds u32 row indexing"
            );
            let out_vars = pattern.vars();
            for &v in &out_vars {
                let pos = pattern.positions_of(v)[0];
                layout.push((
                    v,
                    ColRef::Key {
                        key: order.key_index(pos),
                    },
                ));
            }
            for &v in &out_vars {
                let positions = pattern.positions_of(v);
                for pair in positions.windows(2) {
                    equalities.push((order.key_index(pair[0]), order.key_index(pair[1])));
                }
            }
            rows = scan_rows.len();
            sorted = if known {
                scan_sort_var(pattern, *order)
            } else {
                None
            };
        }
        SourceSpec::Slot(_) => {
            let table = source_table.expect("slot source taken");
            assert!(
                table.len() < u32::MAX as usize,
                "binding table exceeds u32 row indexing"
            );
            for (c, &v) in table.vars().iter().enumerate() {
                layout.push((
                    v,
                    ColRef::Col {
                        side: 0,
                        col: &table.columns()[c],
                    },
                ));
            }
            scan_source = None;
            rows = table.len();
            sorted = table.sorted_by();
        }
    }

    let mut stages: Vec<PreparedStage<'a>> = Vec::with_capacity(p.stages.len());
    let mut side_count = 1usize;
    let mut builds = build_tables.iter();
    for stage in &p.stages {
        match stage {
            StageSpec::Filter { node, expr } => {
                let used: Vec<(Var, ColRef<'a>)> = expr
                    .vars()
                    .into_iter()
                    .filter_map(|v| {
                        layout
                            .iter()
                            .find(|&&(lv, _)| lv == v)
                            .map(|&(_, r)| (v, r))
                    })
                    .collect();
                stages.push(PreparedStage::Filter {
                    node: *node,
                    expr,
                    used,
                });
            }
            StageSpec::Probe { node, vars, .. } => {
                let bt = builds.next().expect("one build table per probe stage");
                let build_cols: Vec<&[TermId]> = vars.iter().map(|&v| bt.column(v)).collect();
                let (table, build_run) = BuildTable::build_par(&build_cols, bt.len(), &ctx.morsel);
                ctx.note_build(build_run);
                let key_refs: Vec<ColRef<'a>> = vars
                    .iter()
                    .map(|v| {
                        layout
                            .iter()
                            .find(|&&(lv, _)| lv == *v)
                            .map(|&(_, r)| r)
                            .expect("join variable bound by the pipeline (validated)")
                    })
                    .collect();
                let extra_checks: Vec<(ColRef<'a>, &[TermId])> = layout
                    .iter()
                    .filter(|&&(lv, _)| bt.vars().contains(&lv) && !vars.contains(&lv))
                    .map(|&(lv, r)| (r, bt.column(lv)))
                    .collect();
                // The build side's non-shared variables join the layout,
                // read through this probe's new side.
                for (c, &v) in bt.vars().iter().enumerate() {
                    if !layout.iter().any(|&(lv, _)| lv == v) {
                        layout.push((
                            v,
                            ColRef::Col {
                                side: side_count,
                                col: &bt.columns()[c],
                            },
                        ));
                    }
                }
                stages.push(PreparedStage::Probe {
                    node: *node,
                    table,
                    build_cols,
                    key_refs,
                    extra_checks,
                });
                side_count += 1;
            }
        }
    }

    PreparedPipeline {
        scan_rows,
        scan_source,
        equalities,
        layout,
        stages,
        rows,
        sorted,
    }
}

/// Push one morsel of source rows through the whole stage chain,
/// thread-locally: every intermediate is a `u32` index vector per side.
fn process_morsel(
    range: std::ops::Range<usize>,
    p: &PreparedPipeline<'_>,
    ds: &Dataset,
    evaluator: &hsp_sparql::Evaluator,
    scratch: &Scratch<'_>,
) -> MorselOut {
    let mut counts = Vec::with_capacity(1 + p.stages.len());
    let mut sides: Vec<Vec<u32>> = Vec::with_capacity(4);

    // Source selection: the morsel's row range, minus scan rows violating
    // repeated-variable equalities (same order as the oracle's scan).
    // While nothing has been dropped, side 0 stays *lazy* (`ident`) — no
    // identity vector is materialised and reads off the source are
    // sequential.
    let mut ident: Option<u32> = None;
    let mut rows_now: usize;
    if p.equalities.is_empty() {
        ident = Some(range.start as u32);
        rows_now = range.len();
        sides.push(Vec::new()); // placeholder while side 0 is lazy
    } else {
        let mut sel: Vec<u32> = scratch.take_idx(range.len());
        sel.extend(
            range
                .filter(|&i| {
                    p.equalities
                        .iter()
                        .all(|&(a, b)| p.scan_rows[i][a] == p.scan_rows[i][b])
                })
                .map(|i| i as u32),
        );
        rows_now = sel.len();
        sides.push(sel);
    }
    counts.push(rows_now);

    for stage in &p.stages {
        match stage {
            PreparedStage::Filter { expr, used, .. } => {
                let n = rows_now;
                let keep: Vec<u32> = {
                    let view = View {
                        scan_rows: p.scan_rows,
                        sides: &sides,
                        ident,
                    };
                    // Gather only the columns the expression reads, then
                    // evaluate the row loop over contiguous scratch — the
                    // same memory shape the materialised FILTER sees.
                    let cols: Vec<Vec<TermId>> = used
                        .iter()
                        .map(|&(_, r)| view.gather(r, n, scratch))
                        .collect();
                    let surface = ScratchCols { used, cols: &cols };
                    let mut keep = scratch.take_idx(n);
                    keep.extend(
                        (0..n)
                            .filter(|&r| ops::eval_expr(ds, &surface, expr, r, evaluator))
                            .map(|r| r as u32),
                    );
                    for col in cols {
                        scratch.put_col(col);
                    }
                    keep
                };
                rows_now = keep.len();
                apply_keep(&mut sides, &keep, n, &mut ident, scratch);
                scratch.put_idx(keep);
            }
            PreparedStage::Probe {
                table,
                build_cols,
                key_refs,
                extra_checks,
                ..
            } => {
                let n = rows_now;
                let (keep, matched) = {
                    let view = View {
                        scan_rows: p.scan_rows,
                        sides: &sides,
                        ident,
                    };
                    // Gather the key (and extra-check) values into
                    // contiguous thread-local scratch columns, then drive
                    // the shared probe loop over them — the same tight
                    // loop the operator-at-a-time join runs, minus the
                    // full-table materialisation around it.
                    let key_cols: Vec<Vec<TermId>> = key_refs
                        .iter()
                        .map(|&kr| view.gather(kr, n, scratch))
                        .collect();
                    let extra_cols: Vec<Vec<TermId>> = extra_checks
                        .iter()
                        .map(|&(lr, _)| view.gather(lr, n, scratch))
                        .collect();
                    let probe_cols: Vec<&[TermId]> = key_cols.iter().map(Vec::as_slice).collect();
                    let extra_pairs: Vec<(&[TermId], &[TermId])> = extra_cols
                        .iter()
                        .zip(extra_checks)
                        .map(|(l, &(_, rcol))| (l.as_slice(), rcol))
                        .collect();
                    let mut keep = scratch.take_idx(n);
                    let mut matched = scratch.take_idx(n);
                    table.probe_range(
                        build_cols,
                        &probe_cols,
                        &extra_pairs,
                        0..n,
                        &mut keep,
                        &mut matched,
                    );
                    for col in key_cols {
                        scratch.put_col(col);
                    }
                    for col in extra_cols {
                        scratch.put_col(col);
                    }
                    (keep, matched)
                };
                rows_now = keep.len();
                apply_keep(&mut sides, &keep, n, &mut ident, scratch);
                scratch.put_idx(keep);
                sides.push(matched);
            }
        }
        counts.push(rows_now);
    }
    // A chain that never dropped a row leaves side 0 lazy — materialise it
    // for the stitch and the sink.
    if let Some(start) = ident {
        let mut sel = scratch.take_idx(rows_now);
        sel.extend(start..start + rows_now as u32);
        sides[0] = sel;
    }
    MorselOut { sides, counts }
}

/// Advance every side past a filtering stage: replace each side vector
/// with its values at the `keep` positions (`n` is the pre-stage row
/// count). A stage that kept every row exactly once (`keep` is the
/// identity — the common case for selective scans feeding 1:1 joins)
/// changes nothing, and a still-lazy side 0 materialises directly from
/// `keep` plus the range offset.
fn apply_keep(
    sides: &mut [Vec<u32>],
    keep: &[u32],
    n: usize,
    ident: &mut Option<u32>,
    scratch: &Scratch<'_>,
) {
    if keep.len() == n && keep.iter().enumerate().all(|(i, &k)| k as usize == i) {
        return;
    }
    let skip_side0 = if let Some(start) = *ident {
        let mut sel = scratch.take_idx(keep.len());
        sel.extend(keep.iter().map(|&k| start + k));
        sides[0] = sel;
        *ident = None;
        1
    } else {
        0
    };
    for side in sides.iter_mut().skip(skip_side0) {
        let mut gathered = scratch.take_idx(keep.len());
        gathered.extend(keep.iter().map(|&k| side[k as usize]));
        scratch.put_idx(std::mem::replace(side, gathered));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute, ExecConfig, ExecStrategy};
    use hsp_rdf::Term;
    use hsp_sparql::{CmpOp, Operand, TermOrVar};

    fn dataset() -> Dataset {
        Dataset::from_ntriples(
            r#"<http://e/a1> <http://e/p> <http://e/b1> .
<http://e/a1> <http://e/p> <http://e/b2> .
<http://e/a2> <http://e/p> <http://e/b1> .
<http://e/a1> <http://e/q> "5" .
<http://e/a2> <http://e/q> "7" .
<http://e/b1> <http://e/r> "x" .
"#,
        )
        .unwrap()
    }

    fn cv(name: &str) -> TermOrVar {
        TermOrVar::Const(Term::iri(format!("http://e/{name}")))
    }

    fn vv(i: u32) -> TermOrVar {
        TermOrVar::Var(Var(i))
    }

    fn scan(idx: usize, s: TermOrVar, p: TermOrVar, o: TermOrVar, order: Order) -> PhysicalPlan {
        PhysicalPlan::Scan {
            pattern_idx: idx,
            pattern: TriplePattern::new(s, p, o),
            order,
        }
    }

    /// A filter-over-two-hash-joins chain: lowers to one pipeline with a
    /// probe and a filter stage plus two build breakers.
    fn chain_plan() -> PhysicalPlan {
        PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::HashJoin {
                left: Box::new(PhysicalPlan::HashJoin {
                    left: Box::new(scan(0, vv(0), cv("p"), vv(1), Order::Pso)),
                    right: Box::new(scan(1, vv(0), cv("q"), vv(2), Order::Pso)),
                    vars: vec![Var(0)],
                }),
                right: Box::new(scan(2, vv(1), cv("r"), vv(3), Order::Pso)),
                vars: vec![Var(1)],
            }),
            expr: FilterExpr::Cmp {
                op: CmpOp::Gt,
                lhs: Operand::Var(Var(2)),
                rhs: Operand::Const(Term::literal("4")),
            },
        }
    }

    #[test]
    fn lowering_splits_chain_into_one_pipeline_and_builds() {
        let plan = chain_plan();
        let program = lower(&plan);
        // Two build-side scans materialise; the probe chain is one pipeline.
        assert_eq!(program.pipeline_count(), 1);
        assert_eq!(program.steps.len(), 3);
        match program.steps.last().unwrap() {
            Step::Pipeline(p) => {
                assert!(matches!(p.source, SourceSpec::Scan { .. }));
                assert_eq!(p.stages.len(), 3); // probe, probe, filter
            }
            Step::Breaker { .. } => panic!("last step should be the probe pipeline"),
        }
    }

    #[test]
    fn pipeline_output_matches_oracle_byte_for_byte() {
        let ds = dataset();
        let plan = chain_plan();
        let oracle = execute(
            &plan,
            &ds,
            &ExecConfig::unlimited().with_strategy(ExecStrategy::OperatorAtATime),
        )
        .unwrap();
        for threads in 1..=4 {
            let out = execute(&plan, &ds, &ExecConfig::unlimited().with_threads(threads)).unwrap();
            assert_eq!(out.table, oracle.table, "threads={threads}");
            assert!(out.runtime.pipelines > 0);
        }
    }

    #[test]
    fn pipeline_profile_matches_oracle_cardinalities() {
        let ds = dataset();
        let plan = chain_plan();
        let oracle = execute(
            &plan,
            &ds,
            &ExecConfig::unlimited().with_strategy(ExecStrategy::OperatorAtATime),
        )
        .unwrap();
        let out = execute(&plan, &ds, &ExecConfig::unlimited()).unwrap();
        fn rows(p: &Profile) -> Vec<(String, usize)> {
            let mut out = Vec::new();
            p.visit(&mut |n| out.push((n.label.clone(), n.output_rows)));
            out
        }
        assert_eq!(rows(&out.profile), rows(&oracle.profile));
        assert_eq!(
            out.profile.total_intermediate_rows(),
            oracle.profile.total_intermediate_rows()
        );
    }

    #[test]
    fn pipeline_reports_avoided_intermediates() {
        let ds = dataset();
        let plan = chain_plan();
        let out = execute(&plan, &ds, &ExecConfig::unlimited()).unwrap();
        // The probe chain's scan + two join outputs stay as index vectors.
        assert!(out.runtime.pipeline_rows_avoided > 0);
        assert!(out.runtime.pipeline_morsels >= 1);
    }

    #[test]
    fn breaker_only_plans_still_run() {
        let ds = dataset();
        let plan = PhysicalPlan::Project {
            input: Box::new(PhysicalPlan::MergeJoin {
                left: Box::new(scan(0, vv(0), cv("p"), vv(1), Order::Pso)),
                right: Box::new(scan(1, vv(0), cv("q"), vv(2), Order::Pso)),
                var: Var(0),
            }),
            projection: vec![("s".into(), Var(0))],
            distinct: true,
        };
        let oracle = execute(
            &plan,
            &ds,
            &ExecConfig::unlimited().with_strategy(ExecStrategy::OperatorAtATime),
        )
        .unwrap();
        let out = execute(&plan, &ds, &ExecConfig::unlimited()).unwrap();
        assert_eq!(out.table, oracle.table);
        // No streaming chain here: everything materialises at breakers.
        assert_eq!(out.runtime.pipelines, 0);
        let program = lower(&plan);
        assert_eq!(program.pipeline_count(), 0);
    }

    #[test]
    fn unknown_constant_scan_matches_oracle_empty_output() {
        let ds = dataset();
        let plan = PhysicalPlan::Filter {
            input: Box::new(scan(0, vv(0), cv("nope"), vv(1), Order::Pso)),
            expr: FilterExpr::Cmp {
                op: CmpOp::Eq,
                lhs: Operand::Var(Var(0)),
                rhs: Operand::Var(Var(1)),
            },
        };
        let oracle = execute(
            &plan,
            &ds,
            &ExecConfig::unlimited().with_strategy(ExecStrategy::OperatorAtATime),
        )
        .unwrap();
        let out = execute(&plan, &ds, &ExecConfig::unlimited()).unwrap();
        assert_eq!(out.table, oracle.table);
        assert_eq!(out.table.sorted_by(), None);
    }

    #[test]
    fn repeated_variable_scan_streams_through_filter() {
        // ?x p ?x under a filter: the repeated-variable equality applies in
        // the pipeline source.
        let ds = Dataset::from_ntriples(
            r#"<http://e/a> <http://e/p> <http://e/a> .
<http://e/a> <http://e/p> <http://e/b> .
<http://e/b> <http://e/p> <http://e/b> .
"#,
        )
        .unwrap();
        let plan = PhysicalPlan::Filter {
            input: Box::new(scan(0, vv(0), cv("p"), vv(0), Order::Pso)),
            expr: FilterExpr::Cmp {
                op: CmpOp::Ne,
                lhs: Operand::Var(Var(0)),
                rhs: Operand::Const(Term::iri("http://e/zzz")),
            },
        };
        let oracle = execute(
            &plan,
            &ds,
            &ExecConfig::unlimited().with_strategy(ExecStrategy::OperatorAtATime),
        )
        .unwrap();
        let out = execute(&plan, &ds, &ExecConfig::unlimited()).unwrap();
        assert_eq!(out.table, oracle.table);
        assert_eq!(out.table.len(), 2);
    }

    #[test]
    fn dag_renders_pipelines_and_breakers() {
        let plan = chain_plan();
        let query = hsp_sparql::JoinQuery::parse(
            "SELECT ?a WHERE { ?a <http://e/p> ?b . ?a <http://e/q> ?c . ?b <http://e/r> ?d . }",
        )
        .unwrap();
        let program = lower(&plan);
        let dag = program.render(&query);
        assert!(dag.contains("pipeline DAG"), "{dag}");
        assert!(dag.contains("← pipeline:"), "{dag}");
        assert!(dag.contains("← breaker:"), "{dag}");
        assert!(dag.contains("⋈hj"), "{dag}");
        assert!(dag.contains("→ sink"), "{dag}");
        assert!(dag.contains("result: s"), "{dag}");
    }
}
