//! Columnar intermediate results.

use hsp_rdf::TermId;
use hsp_sparql::Var;

use crate::pool::BufferPool;

/// A fully materialised, columnar table of variable bindings.
///
/// `cols[i]` is the column of values bound to `vars[i]`; all columns have
/// equal length. `sorted_by` records which variable (if any) the rows are
/// sorted on — the property merge joins require and preserve.
#[derive(Debug, Clone, PartialEq)]
pub struct BindingTable {
    vars: Vec<Var>,
    cols: Vec<Vec<TermId>>,
    sorted_by: Option<Var>,
    /// Explicit row count: zero-column tables (the result of matching a
    /// fully ground pattern, or of an empty projection) still have rows.
    rows: usize,
}

impl BindingTable {
    /// An empty table over the given variables.
    pub fn empty(vars: Vec<Var>) -> Self {
        let cols = vars.iter().map(|_| Vec::new()).collect();
        BindingTable {
            vars,
            cols,
            sorted_by: None,
            rows: 0,
        }
    }

    /// A zero-column table with `rows` rows — the relational *unit* rows a
    /// fully ground triple pattern produces (0 or 1 in practice).
    pub fn unit(rows: usize) -> Self {
        BindingTable {
            vars: Vec::new(),
            cols: Vec::new(),
            sorted_by: None,
            rows,
        }
    }

    /// Build from columns. All columns must have the same length; `vars`
    /// must be distinct.
    ///
    /// # Panics
    /// Panics if lengths differ or variables repeat.
    pub fn from_columns(vars: Vec<Var>, cols: Vec<Vec<TermId>>, sorted_by: Option<Var>) -> Self {
        assert_eq!(vars.len(), cols.len(), "one column per variable");
        if let Some(first) = cols.first() {
            assert!(
                cols.iter().all(|c| c.len() == first.len()),
                "ragged columns"
            );
        }
        let mut seen = vars.clone();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), vars.len(), "repeated variable in table");
        if let Some(v) = sorted_by {
            assert!(vars.contains(&v), "sorted_by variable not in table");
        }
        let rows = cols.first().map_or(0, Vec::len);
        let table = BindingTable {
            vars,
            cols,
            sorted_by,
            rows,
        };
        debug_assert!(table.check_sortedness());
        table
    }

    /// The table's variables, in column order.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// `true` if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The variable the rows are sorted by, if any.
    pub fn sorted_by(&self) -> Option<Var> {
        self.sorted_by
    }

    /// Column index of `v`.
    pub fn col_index(&self, v: Var) -> Option<usize> {
        self.vars.iter().position(|&x| x == v)
    }

    /// The column of `v`.
    ///
    /// # Panics
    /// Panics if `v` is not a variable of this table.
    pub fn column(&self, v: Var) -> &[TermId] {
        // invariant: engine callers only reach here with variables the
        // plan binds — `PhysicalPlan::validate` rejects unbound filter,
        // join, sort, and projection variables before any kernel runs.
        let idx = self
            .col_index(v)
            .unwrap_or_else(|| panic!("variable {v} not in table"));
        &self.cols[idx]
    }

    /// All columns, in variable order.
    pub fn columns(&self) -> &[Vec<TermId>] {
        &self.cols
    }

    /// One row as a vector (variable order).
    pub fn row(&self, i: usize) -> Vec<TermId> {
        self.cols.iter().map(|c| c[i]).collect()
    }

    /// Value of `v` in row `i`.
    pub fn value(&self, v: Var, i: usize) -> TermId {
        self.column(v)[i]
    }

    /// Append a row given in this table's variable order.
    ///
    /// # Panics
    /// Panics if `row.len() != vars.len()`.
    pub fn push_row(&mut self, row: &[TermId]) {
        assert_eq!(row.len(), self.cols.len(), "row arity mismatch");
        for (col, &val) in self.cols.iter_mut().zip(row) {
            col.push(val);
        }
        self.rows += 1;
    }

    /// Declare the rows sorted by `v`. Debug builds verify the claim.
    ///
    /// # Panics
    /// Panics if `v` is not a variable of this table.
    pub fn set_sorted_by(&mut self, v: Option<Var>) {
        if let Some(v) = v {
            assert!(self.vars.contains(&v), "sorted_by variable not in table");
        }
        self.sorted_by = v;
        debug_assert!(self.check_sortedness());
    }

    /// Verify the `sorted_by` claim (used by debug assertions and tests).
    pub fn check_sortedness(&self) -> bool {
        match self.sorted_by {
            None => true,
            Some(v) => {
                let col = self.column(v);
                col.windows(2).all(|w| w[0] <= w[1])
            }
        }
    }

    /// Select the given rows (in `sel` order) — a column-at-a-time gather,
    /// the shared materialisation primitive of all vectorized operators.
    /// The result advertises no sortedness; callers that preserve an order
    /// re-declare it via [`BindingTable::set_sorted_by`].
    ///
    /// Zero-column (unit) tables gather to `sel.len()` unit rows.
    ///
    /// # Panics
    /// Panics if an index is out of bounds.
    pub fn gather(&self, sel: &[u32]) -> BindingTable {
        self.gather_impl(sel, None)
    }

    /// [`BindingTable::gather`] with output columns checked out of `pool`
    /// instead of freshly allocated.
    pub fn gather_in(&self, sel: &[u32], pool: &BufferPool) -> BindingTable {
        self.gather_impl(sel, Some(pool))
    }

    fn gather_impl(&self, sel: &[u32], pool: Option<&BufferPool>) -> BindingTable {
        let cols = self
            .cols
            .iter()
            .map(|col| gather_column(col, sel, pool))
            .collect();
        BindingTable {
            vars: self.vars.clone(),
            cols,
            sorted_by: None,
            rows: sel.len(),
        }
    }

    /// Tear the table down into its raw columns (variable order), so a
    /// consumed intermediate's buffers can be recycled.
    pub fn into_columns(self) -> Vec<Vec<TermId>> {
        self.cols
    }

    /// Materialise a join output from `(left_row, right_row)` index pairs:
    /// the left table's columns gathered by `lidx`, then the right table's
    /// `right_extra` columns gathered by `ridx`. A `ridx` entry of
    /// `u32::MAX` reads as [`TermId::UNBOUND`] (left-outer padding).
    ///
    /// # Panics
    /// Panics if the pair vectors differ in length or `right_extra`
    /// contains a variable missing from `right`.
    pub fn from_join_pairs(
        left: &BindingTable,
        right: &BindingTable,
        right_extra: &[Var],
        lidx: &[u32],
        ridx: &[u32],
    ) -> BindingTable {
        Self::join_pairs_impl(left, right, right_extra, lidx, ridx, None)
    }

    /// [`BindingTable::from_join_pairs`] with output columns checked out of
    /// `pool` instead of freshly allocated.
    pub fn from_join_pairs_in(
        left: &BindingTable,
        right: &BindingTable,
        right_extra: &[Var],
        lidx: &[u32],
        ridx: &[u32],
        pool: &BufferPool,
    ) -> BindingTable {
        Self::join_pairs_impl(left, right, right_extra, lidx, ridx, Some(pool))
    }

    fn join_pairs_impl(
        left: &BindingTable,
        right: &BindingTable,
        right_extra: &[Var],
        lidx: &[u32],
        ridx: &[u32],
        pool: Option<&BufferPool>,
    ) -> BindingTable {
        assert_eq!(lidx.len(), ridx.len(), "ragged join pair vectors");
        let mut vars = left.vars.clone();
        vars.extend_from_slice(right_extra);
        let mut cols = Vec::with_capacity(vars.len());
        for col in &left.cols {
            cols.push(gather_column(col, lidx, pool));
        }
        for &v in right_extra {
            let col = right.column(v);
            let mut out = alloc_column(ridx.len(), pool);
            out.extend(ridx.iter().map(|&j| {
                if j == u32::MAX {
                    TermId::UNBOUND
                } else {
                    col[j as usize]
                }
            }));
            cols.push(out);
        }
        BindingTable {
            vars,
            cols,
            sorted_by: None,
            rows: lidx.len(),
        }
    }

    /// Row indices sorted by lexicographic row comparison (column order).
    /// Comparisons read the columns in place — no per-row materialisation.
    pub fn sort_index(&self) -> Vec<u32> {
        assert!(
            self.rows <= u32::MAX as usize,
            "table too large for u32 row indices"
        );
        let cols = self.column_slices();
        let mut idx: Vec<u32> = (0..self.rows as u32).collect();
        idx.sort_unstable_by(|&a, &b| cmp_rows_at(&cols, a as usize, b as usize));
        idx
    }

    /// Borrow every column as a slice (the shape the shared row-comparison
    /// and kernel helpers work over).
    pub(crate) fn column_slices(&self) -> Vec<&[TermId]> {
        self.cols.iter().map(Vec::as_slice).collect()
    }

    /// Rows as a set-like sorted vector (for order-insensitive comparison in
    /// tests and result checking). Sorting happens on an index vector over
    /// the columns; rows are only materialised for the returned value.
    pub fn sorted_rows(&self) -> Vec<Vec<TermId>> {
        self.sort_index()
            .iter()
            .map(|&i| self.row(i as usize))
            .collect()
    }

    /// Rows projected to a variable subset, sorted (order-insensitive
    /// comparison across tables with different column orders).
    pub fn sorted_rows_for(&self, vars: &[Var]) -> Vec<Vec<TermId>> {
        let idx: Vec<usize> = vars
            .iter()
            .map(|&v| {
                // invariant: validated plans only project bound variables.
                self.col_index(v)
                    .unwrap_or_else(|| panic!("{v} not in table"))
            })
            .collect();
        assert!(
            self.rows <= u32::MAX as usize,
            "table too large for u32 row indices"
        );
        let cols: Vec<&[TermId]> = idx.iter().map(|&c| self.cols[c].as_slice()).collect();
        let mut order: Vec<u32> = (0..self.rows as u32).collect();
        order.sort_unstable_by(|&a, &b| cmp_rows_at(&cols, a as usize, b as usize));
        order
            .iter()
            .map(|&i| idx.iter().map(|&c| self.cols[c][i as usize]).collect())
            .collect()
    }
}

/// Lexicographic comparison of rows `a` and `b` over a column list — the
/// one row comparator behind `sort_index`, `sorted_rows_for`, and the
/// sort-based DISTINCT path.
pub(crate) fn cmp_rows_at(cols: &[&[TermId]], a: usize, b: usize) -> std::cmp::Ordering {
    for col in cols {
        match col[a].cmp(&col[b]) {
            std::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    std::cmp::Ordering::Equal
}

/// A column buffer with `capacity` spare: checked out of `pool` when one
/// is supplied, freshly allocated otherwise.
pub(crate) fn alloc_column(capacity: usize, pool: Option<&BufferPool>) -> Vec<TermId> {
    pool.map_or_else(|| Vec::with_capacity(capacity), |p| p.take_col(capacity))
}

/// Gather `col` values at the `sel` indices into one column — the single
/// per-column gather loop behind [`BindingTable::gather`],
/// [`BindingTable::from_join_pairs`], and the operators' column gathers.
pub(crate) fn gather_column(col: &[TermId], sel: &[u32], pool: Option<&BufferPool>) -> Vec<TermId> {
    let mut out = alloc_column(sel.len(), pool);
    out.extend(sel.iter().map(|&i| col[i as usize]));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(vals: &[u32]) -> Vec<TermId> {
        vals.iter().map(|&v| TermId(v)).collect()
    }

    #[test]
    fn build_and_inspect() {
        let t = BindingTable::from_columns(
            vec![Var(0), Var(1)],
            vec![ids(&[1, 2, 3]), ids(&[10, 20, 30])],
            Some(Var(0)),
        );
        assert_eq!(t.len(), 3);
        assert_eq!(t.vars(), &[Var(0), Var(1)]);
        assert_eq!(t.column(Var(1)), ids(&[10, 20, 30]).as_slice());
        assert_eq!(t.row(1), ids(&[2, 20]));
        assert_eq!(t.value(Var(0), 2), TermId(3));
        assert_eq!(t.sorted_by(), Some(Var(0)));
    }

    #[test]
    fn empty_table() {
        let t = BindingTable::empty(vec![Var(0)]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_columns_rejected() {
        BindingTable::from_columns(vec![Var(0), Var(1)], vec![ids(&[1]), ids(&[1, 2])], None);
    }

    #[test]
    #[should_panic(expected = "repeated variable")]
    fn repeated_vars_rejected() {
        BindingTable::from_columns(vec![Var(0), Var(0)], vec![ids(&[1]), ids(&[1])], None);
    }

    #[test]
    #[should_panic(expected = "not in table")]
    fn sorted_by_must_be_a_table_var() {
        BindingTable::from_columns(vec![Var(0)], vec![ids(&[1])], Some(Var(9)));
    }

    #[test]
    fn push_row_appends() {
        let mut t = BindingTable::empty(vec![Var(0), Var(1)]);
        t.push_row(&ids(&[1, 10]));
        t.push_row(&ids(&[2, 20]));
        assert_eq!(t.len(), 2);
        assert_eq!(t.row(1), ids(&[2, 20]));
    }

    #[test]
    fn sortedness_check() {
        let mut t = BindingTable::from_columns(vec![Var(0)], vec![ids(&[3, 1, 2])], None);
        assert!(t.check_sortedness());
        t.sorted_by = Some(Var(0)); // bypass set_sorted_by's debug assert
        assert!(!t.check_sortedness());
    }

    #[test]
    fn sorted_rows_for_projection() {
        let t = BindingTable::from_columns(
            vec![Var(0), Var(1)],
            vec![ids(&[2, 1]), ids(&[20, 10])],
            None,
        );
        assert_eq!(t.sorted_rows_for(&[Var(1)]), vec![ids(&[10]), ids(&[20])]);
    }
}
