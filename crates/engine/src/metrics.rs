//! Plan characteristics — the paper's Table 4 — plus the runtime counters
//! of the morsel/pool execution layer.

use std::fmt;

use crate::plan::PhysicalPlan;
use crate::pool::ExecContext;

/// What the morsel/pool layer did during one execution: how much of the
/// work ran parallel and how well the column arena recycled buffers.
/// Produced by [`crate::execute`] as [`crate::ExecOutput::runtime`];
/// rendered by [`crate::explain::render_runtime_metrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RuntimeMetrics {
    /// Kernels that actually ran morsel-parallel (an operator under the
    /// row threshold, or on a one-core budget, runs sequentially and does
    /// not count).
    pub parallel_kernels: usize,
    /// Morsels processed by those parallel kernels.
    pub morsels: usize,
    /// Hash-join build phases that ran parallel (morsel-parallel hashing
    /// plus the partitioned counting-sort bucket fill).
    pub parallel_builds: usize,
    /// Partitions processed by range-partitioned parallel merge joins.
    pub merge_partitions: usize,
    /// FILTER evaluations / ORDER BY key extractions that ran parallel
    /// (per-worker expression evaluators).
    pub parallel_filters: usize,
    /// Comparison sorts (ORDER BY merge phase, sort order-enforcer) that
    /// ran parallel (per-worker sorted runs + parallel run merges).
    pub parallel_sorts: usize,
    /// Pipelines the pipeline executor launched (0 under the
    /// operator-at-a-time oracle).
    pub pipelines: usize,
    /// Morsels pushed end-to-end through those pipelines (a sequential
    /// pipeline counts its whole source as one morsel).
    pub pipeline_morsels: usize,
    /// Left-outer (OPTIONAL) probe stages executed inside pipelines —
    /// each one streams an outer join that formerly materialised both its
    /// input and its output.
    pub pipeline_outer_probes: usize,
    /// Breaker outputs handed directly to their single consuming
    /// pipeline's source (no slot round-trip; columns move into the sink
    /// when no stage drops a row, and recycle through the pool otherwise).
    pub breaker_handoffs: usize,
    /// Intermediate rows the pipelines kept as thread-local index vectors
    /// instead of materialising between operators — the rows the
    /// operator-at-a-time evaluator would have written and re-read.
    pub pipeline_rows_avoided: usize,
    /// Hash aggregations (γ breakers) whose partial fold ran
    /// morsel-parallel (thread-local partials merged in morsel order).
    pub parallel_aggregates: usize,
    /// Groups finalised by hash aggregations (parallel or sequential).
    pub aggregate_groups: usize,
    /// DISTINCTs deduplicated as streaming pipeline stages (morsel-local
    /// pre-dedup + one sink first-occurrence pass) instead of
    /// materialising breakers.
    pub distinct_streamed: usize,
    /// Scans that merged the storage delta overlay with the base run
    /// (scans over a compacted store take the contiguous-slice fast path
    /// and do not count).
    pub merged_scans: usize,
    /// The execution's thread budget.
    pub threads: usize,
    /// Buffer-pool checkouts served from the free lists.
    pub pool_hits: usize,
    /// Buffer-pool checkouts that fell through to the allocator.
    pub pool_misses: usize,
    /// Buffers returned to the pool (consumed intermediates' columns plus
    /// returned index vectors).
    pub pool_recycled: usize,
    /// Governor checkpoints passed during the execution (0 when no
    /// governor was attached — no timeout, memory budget, or cancel
    /// token was configured).
    pub governor_checks: usize,
    /// High-water mark of the governor's memory accounting, in bytes
    /// (0 without a governor).
    pub governor_mem_peak: usize,
    /// Task batches this query dispatched to a shared, long-lived
    /// [`SharedPool`](crate::morsel::SharedPool) instead of scoped
    /// threads — nonzero only on the serving path, where the caller
    /// stamps it from
    /// [`SharedPoolGuard::batches`](crate::morsel::SharedPoolGuard::batches)
    /// after the run ([`RuntimeMetrics::of`] itself leaves it 0).
    pub shared_pool_batches: usize,
    /// The session plan cache was consulted for this request (HSP
    /// join-fragment queries on a caching session). Stamped by the
    /// session after the run; [`RuntimeMetrics::of`] leaves it `false`.
    pub plan_cache_used: bool,
    /// The plan came from the session plan cache (planning and MWIS were
    /// skipped; only constants were rebound). Meaningful only when
    /// [`RuntimeMetrics::plan_cache_used`] is set.
    pub plan_cache_hit: bool,
    /// The session result cache was consulted for this request.
    pub result_cache_used: bool,
    /// The whole response came from the session result cache (execution
    /// was skipped). Meaningful only when
    /// [`RuntimeMetrics::result_cache_used`] is set.
    pub result_cache_hit: bool,
    /// Monotonic content version of the store snapshot the query ran
    /// against. Stamped by the session; [`RuntimeMetrics::of`] leaves it 0.
    pub store_version: u64,
    /// Delta-overlay rows (inserts + tombstones) awaiting compaction in
    /// that snapshot. Stamped by the session.
    pub store_delta_rows: usize,
    /// Compactions (base-run rebuilds) the snapshot's lineage has
    /// performed. Stamped by the session.
    pub store_compactions: u64,
}

impl RuntimeMetrics {
    /// Snapshot the counters of an execution context.
    pub fn of(ctx: &ExecContext) -> Self {
        let pool = ctx.pool.stats();
        RuntimeMetrics {
            parallel_kernels: ctx.parallel_kernels(),
            morsels: ctx.morsels_run(),
            parallel_builds: ctx.parallel_builds(),
            merge_partitions: ctx.merge_partitions(),
            parallel_filters: ctx.parallel_filters(),
            parallel_sorts: ctx.parallel_sorts(),
            pipelines: ctx.pipelines(),
            pipeline_morsels: ctx.pipeline_morsels(),
            pipeline_outer_probes: ctx.pipeline_outer_probes(),
            breaker_handoffs: ctx.breaker_handoffs(),
            pipeline_rows_avoided: ctx.pipeline_rows_avoided(),
            parallel_aggregates: ctx.parallel_aggregates(),
            aggregate_groups: ctx.aggregate_groups(),
            distinct_streamed: ctx.distinct_streamed(),
            merged_scans: ctx.merged_scans(),
            threads: ctx.morsel.threads(),
            pool_hits: pool.hits,
            pool_misses: pool.misses,
            pool_recycled: pool.recycled,
            governor_checks: ctx.governor().map_or(0, |g| g.checks()),
            governor_mem_peak: ctx.governor().map_or(0, |g| g.mem_peak()),
            shared_pool_batches: 0,
            plan_cache_used: false,
            plan_cache_hit: false,
            result_cache_used: false,
            result_cache_hit: false,
            store_version: 0,
            store_delta_rows: 0,
            store_compactions: 0,
        }
    }
}

/// Left-deep vs bushy (the paper's `LD` / `B` column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanShape {
    /// Every join's right input is a leaf (scan, possibly behind
    /// filters/projections).
    LeftDeep,
    /// At least one join has a composite right input.
    Bushy,
}

impl fmt::Display for PlanShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanShape::LeftDeep => write!(f, "LD"),
            PlanShape::Bushy => write!(f, "B"),
        }
    }
}

/// Join counts and shape of one plan (one Table 4 column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanMetrics {
    /// Number of merge joins.
    pub merge_joins: usize,
    /// Number of hash joins.
    pub hash_joins: usize,
    /// Number of cross products.
    pub cross_products: usize,
    /// Left-deep or bushy.
    pub shape: PlanShape,
}

impl PlanMetrics {
    /// Analyse a plan.
    pub fn of(plan: &PhysicalPlan) -> Self {
        let mut m = PlanMetrics {
            merge_joins: 0,
            hash_joins: 0,
            cross_products: 0,
            shape: PlanShape::LeftDeep,
        };
        plan.visit(&mut |node| match node {
            PhysicalPlan::MergeJoin { right, .. } => {
                m.merge_joins += 1;
                if !is_leafish(right) {
                    m.shape = PlanShape::Bushy;
                }
            }
            PhysicalPlan::HashJoin { right, .. } => {
                m.hash_joins += 1;
                if !is_leafish(right) {
                    m.shape = PlanShape::Bushy;
                }
            }
            // Table 4 predates OPTIONAL support; the outer probe counts
            // with the hash joins (same build + probe machinery).
            PhysicalPlan::LeftOuterHashJoin { right, .. } => {
                m.hash_joins += 1;
                if !is_leafish(right) {
                    m.shape = PlanShape::Bushy;
                }
            }
            PhysicalPlan::CrossProduct { right, .. } => {
                m.cross_products += 1;
                if !is_leafish(right) {
                    m.shape = PlanShape::Bushy;
                }
            }
            _ => {}
        });
        m
    }

    /// Total binary operators.
    pub fn total_joins(&self) -> usize {
        self.merge_joins + self.hash_joins + self.cross_products
    }
}

/// `true` if the subtree contains no joins (a scan behind unary operators).
fn is_leafish(plan: &PhysicalPlan) -> bool {
    match plan {
        PhysicalPlan::Scan { .. } => true,
        PhysicalPlan::Sort { input, .. }
        | PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::Project { input, .. }
        | PhysicalPlan::OrderBy { input, .. }
        | PhysicalPlan::HashAggregate { input, .. }
        | PhysicalPlan::Slice { input, .. } => is_leafish(input),
        _ => false,
    }
}

/// Plan equality up to cosmetic details: same tree structure, same leaf
/// access paths, same join algorithms and variables. Unary wrappers
/// (filters, projections) are ignored — the comparison is about join
/// structure, the paper's "Similar Plans ✓/✗" row.
pub fn plans_similar(a: &PhysicalPlan, b: &PhysicalPlan) -> bool {
    let a = strip_unary(a);
    let b = strip_unary(b);
    match (a, b) {
        (
            PhysicalPlan::Scan {
                pattern_idx: ia,
                pattern: pa,
                order: oa,
            },
            PhysicalPlan::Scan {
                pattern_idx: ib,
                pattern: pb,
                order: ob,
            },
        ) => {
            // Access paths are equivalent when they bind the same constants
            // as a key prefix and deliver the same sort variable — the
            // order of constants *within* the prefix is cosmetic (both
            // OPS and POS answer `(?x, p, o)` sorted by ?x).
            ia == ib && crate::plan::scan_sort_var(pa, *oa) == crate::plan::scan_sort_var(pb, *ob)
        }
        (
            PhysicalPlan::MergeJoin {
                left: la,
                right: ra,
                var: va,
            },
            PhysicalPlan::MergeJoin {
                left: lb,
                right: rb,
                var: vb,
            },
        ) => va == vb && plans_similar(la, lb) && plans_similar(ra, rb),
        (
            PhysicalPlan::HashJoin {
                left: la,
                right: ra,
                vars: va,
            },
            PhysicalPlan::HashJoin {
                left: lb,
                right: rb,
                vars: vb,
            },
        ) => {
            let mut sa = va.clone();
            let mut sb = vb.clone();
            sa.sort();
            sb.sort();
            sa == sb
                && ((plans_similar(la, lb) && plans_similar(ra, rb))
                    // Hash joins are symmetric up to probe/build choice.
                    || (plans_similar(la, rb) && plans_similar(ra, lb)))
        }
        (
            PhysicalPlan::LeftOuterHashJoin {
                left: la,
                right: ra,
                vars: va,
            },
            PhysicalPlan::LeftOuterHashJoin {
                left: lb,
                right: rb,
                vars: vb,
            },
        ) => {
            // Unlike inner hash joins, outer joins are side-sensitive: the
            // probe (preserved) side is fixed.
            let mut sa = va.clone();
            let mut sb = vb.clone();
            sa.sort();
            sb.sort();
            sa == sb && plans_similar(la, lb) && plans_similar(ra, rb)
        }
        (
            PhysicalPlan::CrossProduct {
                left: la,
                right: ra,
            },
            PhysicalPlan::CrossProduct {
                left: lb,
                right: rb,
            },
        ) => {
            (plans_similar(la, lb) && plans_similar(ra, rb))
                || (plans_similar(la, rb) && plans_similar(ra, lb))
        }
        _ => false,
    }
}

/// Skip filter/sort/projection wrappers to reach join/scan structure.
fn strip_unary(plan: &PhysicalPlan) -> &PhysicalPlan {
    match plan {
        PhysicalPlan::Sort { input, .. }
        | PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::Project { input, .. }
        | PhysicalPlan::OrderBy { input, .. }
        | PhysicalPlan::HashAggregate { input, .. }
        | PhysicalPlan::Slice { input, .. } => strip_unary(input),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsp_rdf::Term;
    use hsp_sparql::{TermOrVar, TriplePattern, Var};
    use hsp_store::Order;

    fn scan(idx: usize, order: Order) -> PhysicalPlan {
        PhysicalPlan::Scan {
            pattern_idx: idx,
            pattern: TriplePattern::new(
                TermOrVar::Var(Var(0)),
                TermOrVar::Const(Term::iri("http://e/p")),
                TermOrVar::Var(Var(idx as u32 + 1)),
            ),
            order,
        }
    }

    fn mj(left: PhysicalPlan, right: PhysicalPlan) -> PhysicalPlan {
        PhysicalPlan::MergeJoin {
            left: Box::new(left),
            right: Box::new(right),
            var: Var(0),
        }
    }

    fn hj(left: PhysicalPlan, right: PhysicalPlan) -> PhysicalPlan {
        PhysicalPlan::HashJoin {
            left: Box::new(left),
            right: Box::new(right),
            vars: vec![Var(0)],
        }
    }

    #[test]
    fn left_deep_chain() {
        let plan = mj(
            mj(scan(0, Order::Pso), scan(1, Order::Pso)),
            scan(2, Order::Pso),
        );
        let m = PlanMetrics::of(&plan);
        assert_eq!(m.merge_joins, 2);
        assert_eq!(m.hash_joins, 0);
        assert_eq!(m.shape, PlanShape::LeftDeep);
    }

    #[test]
    fn bushy_detection() {
        let left = mj(scan(0, Order::Pso), scan(1, Order::Pso));
        let right = mj(scan(2, Order::Pso), scan(3, Order::Pso));
        let plan = hj(left, right);
        let m = PlanMetrics::of(&plan);
        assert_eq!(m.merge_joins, 2);
        assert_eq!(m.hash_joins, 1);
        assert_eq!(m.shape, PlanShape::Bushy);
        assert_eq!(m.total_joins(), 3);
    }

    #[test]
    fn unary_wrappers_keep_leafishness() {
        let wrapped = PhysicalPlan::Project {
            input: Box::new(scan(1, Order::Pso)),
            projection: vec![("x".into(), Var(0))],
            distinct: false,
        };
        let plan = mj(scan(0, Order::Pso), wrapped);
        assert_eq!(PlanMetrics::of(&plan).shape, PlanShape::LeftDeep);
    }

    #[test]
    fn similarity_same_plan() {
        let a = mj(scan(0, Order::Pso), scan(1, Order::Pso));
        let b = mj(scan(0, Order::Pso), scan(1, Order::Pso));
        assert!(plans_similar(&a, &b));
    }

    #[test]
    fn similarity_differs_on_access_path() {
        let a = mj(scan(0, Order::Pso), scan(1, Order::Pso));
        let b = mj(scan(0, Order::Pso), scan(1, Order::Spo));
        assert!(!plans_similar(&a, &b));
    }

    #[test]
    fn similarity_differs_on_join_order() {
        let a = mj(scan(0, Order::Pso), scan(1, Order::Pso));
        let b = mj(scan(1, Order::Pso), scan(0, Order::Pso));
        assert!(!plans_similar(&a, &b)); // merge joins are order-sensitive here
    }

    #[test]
    fn hash_join_similarity_is_symmetric() {
        let a = hj(scan(0, Order::Pso), scan(1, Order::Pso));
        let b = hj(scan(1, Order::Pso), scan(0, Order::Pso));
        assert!(plans_similar(&a, &b));
    }

    #[test]
    fn projection_wrapper_ignored_for_similarity() {
        let bare = mj(scan(0, Order::Pso), scan(1, Order::Pso));
        let wrapped = PhysicalPlan::Project {
            input: Box::new(bare.clone()),
            projection: vec![("x".into(), Var(0))],
            distinct: false,
        };
        assert!(plans_similar(&bare, &wrapped));
    }

    #[test]
    fn cross_product_counted() {
        let plan = PhysicalPlan::CrossProduct {
            left: Box::new(scan(0, Order::Pso)),
            right: Box::new(scan(1, Order::Pso)),
        };
        let m = PlanMetrics::of(&plan);
        assert_eq!(m.cross_products, 1);
    }
}
