//! Low-level building blocks of the vectorized join kernels: an FxHash-style
//! mixer, a drop-in `BuildHasher` for `u64`-keyed std collections, and the
//! allocation-free hash-join build table.
//!
//! The build table comes in two layouts, both flat (CSR-style: one offsets
//! array + one row-index array, no per-key `Vec`s and no per-probe
//! allocation):
//!
//! * **Packed** — join keys of one or two variables fit a single `u64`
//!   (`TermId` is 32 bits), so the table stores one packed key per build
//!   row and bucket membership is verified by a single integer compare.
//!   This covers the overwhelming majority of SPARQL joins (the planner
//!   joins on one variable; two-variable keys appear after FILTER
//!   unification).
//! * **Wide** — three or more key variables verify by comparing the key
//!   columns directly; only the 64-bit hash is precomputed per row.

use hsp_rdf::TermId;

/// The Firefox-hash multiplier (the `rustc-hash`/FxHash constant).
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fold one 64-bit word into an Fx-style running hash.
#[inline]
pub fn fx_fold(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED)
}

/// Hash a single packed key. For one word this reduces to a multiplicative
/// hash, whose *high* bits are well mixed — bucket indices below are taken
/// from the top of the word.
#[inline]
pub fn fx_hash_u64(key: u64) -> u64 {
    fx_fold(0, key)
}

/// An Fx-backed `std::hash::BuildHasher`, for `u64`-keyed sets on hot paths
/// (e.g. DISTINCT over packed rows) where SipHash dominates the profile.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxBuildHasher;

/// The streaming hasher behind [`FxBuildHasher`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl std::hash::Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.hash = fx_fold(self.hash, u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.hash = fx_fold(self.hash, u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.hash = fx_fold(self.hash, n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.hash = fx_fold(self.hash, n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.hash = fx_fold(self.hash, n as u64);
    }
}

impl std::hash::BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// Pack a one- or two-column key into a `u64` (injective: `TermId` is 32
/// bits). Shared by the hash-join build table and the packed DISTINCT path
/// so the two key encodings can never diverge.
#[inline]
pub(crate) fn pack2(a: TermId, b: TermId) -> u64 {
    a.0 as u64 | ((b.0 as u64) << 32)
}

/// Flat bucket directory: `rows[offsets[b]..offsets[b + 1]]` are the build
/// rows hashing to bucket `b`, in build order (stable, so probe results
/// come out in the same order the seed's `HashMap<_, Vec<usize>>` produced).
#[derive(Debug)]
struct CsrBuckets {
    shift: u32,
    offsets: Vec<u32>,
    rows: Vec<u32>,
}

impl CsrBuckets {
    /// Counting-sort `hashes` into a bucket directory with ~2x occupancy.
    fn build(hashes: &[u64]) -> CsrBuckets {
        let buckets = (hashes.len() * 2).next_power_of_two().max(16);
        let shift = 64 - buckets.trailing_zeros();
        let mut offsets = vec![0u32; buckets + 1];
        for &h in hashes {
            offsets[(h >> shift) as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor = offsets[..buckets].to_vec();
        let mut rows = vec![0u32; hashes.len()];
        for (j, &h) in hashes.iter().enumerate() {
            let b = (h >> shift) as usize;
            rows[cursor[b] as usize] = j as u32;
            cursor[b] += 1;
        }
        CsrBuckets { shift, offsets, rows }
    }

    /// The build rows in the bucket of `hash`.
    #[inline]
    fn slot(&self, hash: u64) -> &[u32] {
        let b = (hash >> self.shift) as usize;
        &self.rows[self.offsets[b] as usize..self.offsets[b + 1] as usize]
    }
}

/// The hash-join build side: right-table rows indexed by join key.
///
/// Construction hashes every build row once; probing walks one bucket and
/// verifies candidates, calling back with matching build-row indices in
/// build order. Neither phase allocates per row/probe beyond the flat
/// arrays built up front.
#[derive(Debug)]
pub struct BuildTable {
    buckets: CsrBuckets,
    layout: Layout,
}

#[derive(Debug)]
enum Layout {
    /// Keys of ≤ 2 variables, packed into a `u64` per build row.
    Packed { keys: Vec<u64> },
    /// Keys of ≥ 3 variables, verified against the key columns at probe
    /// time; only the per-row hash is precomputed.
    Wide { hashes: Vec<u64> },
}

impl BuildTable {
    /// Index `rows` build rows by the given key columns.
    ///
    /// # Panics
    /// Panics if `key_cols` is empty or a column is shorter than `rows`.
    pub fn build(key_cols: &[&[TermId]], rows: usize) -> BuildTable {
        assert!(!key_cols.is_empty(), "join key needs at least one column");
        assert!(rows < u32::MAX as usize, "build side exceeds u32 row indexing");
        if key_cols.len() <= 2 {
            let keys: Vec<u64> = (0..rows)
                .map(|j| pack2(key_cols[0][j], key_cols.get(1).map_or(TermId(0), |c| c[j])))
                .collect();
            let hashes: Vec<u64> = keys.iter().map(|&k| fx_hash_u64(k)).collect();
            BuildTable { buckets: CsrBuckets::build(&hashes), layout: Layout::Packed { keys } }
        } else {
            let hashes: Vec<u64> = (0..rows)
                .map(|j| key_cols.iter().fold(0u64, |h, col| fx_fold(h, col[j].0 as u64)))
                .collect();
            BuildTable { buckets: CsrBuckets::build(&hashes), layout: Layout::Wide { hashes } }
        }
    }

    /// Call `on_match` with every build row whose key equals probe row `i`
    /// of `probe_cols` (same column layout as the build's `key_cols`),
    /// in build order. `build_cols` must be the columns the table was built
    /// from (used for verification in the wide layout).
    #[inline]
    pub fn probe(
        &self,
        build_cols: &[&[TermId]],
        probe_cols: &[&[TermId]],
        i: usize,
        mut on_match: impl FnMut(usize),
    ) {
        match &self.layout {
            Layout::Packed { keys } => {
                let key = pack2(probe_cols[0][i], probe_cols.get(1).map_or(TermId(0), |c| c[i]));
                for &j in self.buckets.slot(fx_hash_u64(key)) {
                    if keys[j as usize] == key {
                        on_match(j as usize);
                    }
                }
            }
            Layout::Wide { hashes } => {
                let hash = probe_cols.iter().fold(0u64, |h, col| fx_fold(h, col[i].0 as u64));
                for &j in self.buckets.slot(hash) {
                    let j = j as usize;
                    if hashes[j] == hash
                        && build_cols.iter().zip(probe_cols).all(|(bc, pc)| bc[j] == pc[i])
                    {
                        on_match(j);
                    }
                }
            }
        }
    }

    /// Probe a contiguous `range` of probe rows, appending every matching
    /// `(probe_row, build_row)` pair to `lidx`/`ridx` in probe order (build
    /// order within one probe row). `extra_pairs` are additional shared
    /// `(probe column, build column)` pairs that must also match — the
    /// repeated-variable check of the join operators.
    ///
    /// This is the one probe loop: the sequential hash join calls it over
    /// `0..rows`, the morsel-driven hash join calls it per morsel with
    /// thread-local output buffers (see [`crate::morsel`]). Output is a
    /// pure function of `range`, so stitching the per-morsel buffers in
    /// morsel order reproduces the sequential output exactly.
    #[allow(clippy::too_many_arguments)]
    pub fn probe_range(
        &self,
        build_cols: &[&[TermId]],
        probe_cols: &[&[TermId]],
        extra_pairs: &[(&[TermId], &[TermId])],
        range: std::ops::Range<usize>,
        lidx: &mut Vec<u32>,
        ridx: &mut Vec<u32>,
    ) {
        for i in range {
            self.probe(build_cols, probe_cols, i, |j| {
                if extra_pairs.iter().all(|(pc, bc)| pc[i] == bc[j]) {
                    lidx.push(i as u32);
                    ridx.push(j as u32);
                }
            });
        }
    }

    /// [`BuildTable::probe_range`] with left-outer semantics: a probe row
    /// with no surviving match emits one `(probe_row, u32::MAX)` sentinel
    /// pair, which the gather phase turns into UNBOUND padding.
    #[allow(clippy::too_many_arguments)]
    pub fn probe_range_outer(
        &self,
        build_cols: &[&[TermId]],
        probe_cols: &[&[TermId]],
        extra_pairs: &[(&[TermId], &[TermId])],
        range: std::ops::Range<usize>,
        lidx: &mut Vec<u32>,
        ridx: &mut Vec<u32>,
    ) {
        for i in range {
            let mut matched = false;
            self.probe(build_cols, probe_cols, i, |j| {
                if extra_pairs.iter().all(|(pc, bc)| pc[i] == bc[j]) {
                    matched = true;
                    lidx.push(i as u32);
                    ridx.push(j as u32);
                }
            });
            if !matched {
                lidx.push(i as u32);
                ridx.push(u32::MAX);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(vals: &[u32]) -> Vec<TermId> {
        vals.iter().map(|&v| TermId(v)).collect()
    }

    #[test]
    fn packed_single_column_probe_finds_all_matches_in_order() {
        let col = ids(&[5, 3, 5, 9, 5]);
        let cols: Vec<&[TermId]> = vec![&col];
        let table = BuildTable::build(&cols, col.len());
        let probe = ids(&[5, 1]);
        let pcols: Vec<&[TermId]> = vec![&probe];
        let mut hits = Vec::new();
        table.probe(&cols, &pcols, 0, |j| hits.push(j));
        assert_eq!(hits, vec![0, 2, 4]);
        hits.clear();
        table.probe(&cols, &pcols, 1, |j| hits.push(j));
        assert!(hits.is_empty());
    }

    #[test]
    fn packed_two_column_keys_distinguish_pairs() {
        let a = ids(&[1, 1, 2]);
        let b = ids(&[10, 20, 10]);
        let cols: Vec<&[TermId]> = vec![&a, &b];
        let table = BuildTable::build(&cols, 3);
        let pa = ids(&[1]);
        let pb = ids(&[10]);
        let pcols: Vec<&[TermId]> = vec![&pa, &pb];
        let mut hits = Vec::new();
        table.probe(&cols, &pcols, 0, |j| hits.push(j));
        assert_eq!(hits, vec![0]);
    }

    #[test]
    fn wide_three_column_keys_verify_columns() {
        let a = ids(&[1, 1, 1]);
        let b = ids(&[2, 2, 9]);
        let c = ids(&[3, 3, 3]);
        let cols: Vec<&[TermId]> = vec![&a, &b, &c];
        let table = BuildTable::build(&cols, 3);
        let pcols: Vec<&[TermId]> = vec![&a, &b, &c];
        let mut hits = Vec::new();
        table.probe(&cols, &pcols, 0, |j| hits.push(j));
        assert_eq!(hits, vec![0, 1]);
    }

    #[test]
    fn empty_build_side_matches_nothing() {
        let empty: Vec<TermId> = Vec::new();
        let cols: Vec<&[TermId]> = vec![&empty];
        let table = BuildTable::build(&cols, 0);
        let probe = ids(&[7]);
        let pcols: Vec<&[TermId]> = vec![&probe];
        let mut hits = Vec::new();
        table.probe(&cols, &pcols, 0, |j| hits.push(j));
        assert!(hits.is_empty());
    }
}
