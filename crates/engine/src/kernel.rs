//! Low-level building blocks of the vectorized join kernels: an FxHash-style
//! mixer, a drop-in `BuildHasher` for `u64`-keyed std collections, and the
//! allocation-free hash-join build table.
//!
//! The build table comes in two layouts, both flat (CSR-style: one offsets
//! array + one row-index array, no per-key `Vec`s and no per-probe
//! allocation):
//!
//! * **Packed** — join keys of one or two variables fit a single `u64`
//!   (`TermId` is 32 bits), so the table stores one packed key per build
//!   row and bucket membership is verified by a single integer compare.
//!   This covers the overwhelming majority of SPARQL joins (the planner
//!   joins on one variable; two-variable keys appear after FILTER
//!   unification).
//! * **Wide** — three or more key variables verify by comparing the key
//!   columns directly; only the 64-bit hash is precomputed per row.

use hsp_rdf::TermId;

use crate::morsel::{self, MorselConfig, MorselRun};

/// The Firefox-hash multiplier (the `rustc-hash`/FxHash constant).
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fold one 64-bit word into an Fx-style running hash.
#[inline]
pub fn fx_fold(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED)
}

/// Hash a single packed key. For one word this reduces to a multiplicative
/// hash, whose *high* bits are well mixed — bucket indices below are taken
/// from the top of the word.
#[inline]
pub fn fx_hash_u64(key: u64) -> u64 {
    fx_fold(0, key)
}

/// An Fx-backed `std::hash::BuildHasher`, for `u64`-keyed sets on hot paths
/// (e.g. DISTINCT over packed rows) where SipHash dominates the profile.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxBuildHasher;

/// The streaming hasher behind [`FxBuildHasher`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl std::hash::Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.hash = fx_fold(
                self.hash,
                // invariant: `chunks_exact(8)` yields 8-byte slices only.
                u64::from_le_bytes(chunk.try_into().expect("8 bytes")),
            );
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.hash = fx_fold(self.hash, u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.hash = fx_fold(self.hash, n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.hash = fx_fold(self.hash, n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.hash = fx_fold(self.hash, n as u64);
    }
}

impl std::hash::BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// Pack a one- or two-column key into a `u64` (injective: `TermId` is 32
/// bits). Shared by the hash-join build table and the packed DISTINCT path
/// so the two key encodings can never diverge.
#[inline]
pub(crate) fn pack2(a: TermId, b: TermId) -> u64 {
    a.0 as u64 | ((b.0 as u64) << 32)
}

/// Flat bucket directory: `rows[offsets[b]..offsets[b + 1]]` are the build
/// rows hashing to bucket `b`, in build order (stable, so probe results
/// come out in the same order the seed's `HashMap<_, Vec<usize>>` produced).
#[derive(Debug, PartialEq, Eq)]
struct CsrBuckets {
    shift: u32,
    offsets: Vec<u32>,
    rows: Vec<u32>,
}

impl CsrBuckets {
    /// Counting-sort `hashes` into a bucket directory with ~2x occupancy.
    fn build(hashes: &[u64]) -> CsrBuckets {
        let buckets = (hashes.len() * 2).next_power_of_two().max(16);
        let shift = 64 - buckets.trailing_zeros();
        let mut offsets = vec![0u32; buckets + 1];
        for &h in hashes {
            offsets[(h >> shift) as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor = offsets[..buckets].to_vec();
        let mut rows = vec![0u32; hashes.len()];
        for (j, &h) in hashes.iter().enumerate() {
            let b = (h >> shift) as usize;
            rows[cursor[b] as usize] = j as u32;
            cursor[b] += 1;
        }
        CsrBuckets {
            shift,
            offsets,
            rows,
        }
    }

    /// The build rows in the bucket of `hash`.
    #[inline]
    fn slot(&self, hash: u64) -> &[u32] {
        let b = (hash >> self.shift) as usize;
        &self.rows[self.offsets[b] as usize..self.offsets[b + 1] as usize]
    }

    /// [`CsrBuckets::build`] as a **two-pass partitioned counting sort**
    /// over contiguous row stripes, producing a directory byte-identical
    /// to the sequential build.
    ///
    /// Pass 1: each worker histograms its stripe's bucket occupancy. The
    /// per-stripe histograms are then prefix-summed (stripe-major within
    /// each bucket) into per-stripe write cursors — stripe `s`'s slice of
    /// bucket `b` starts where stripe `s − 1`'s ends, which is exactly the
    /// row order the sequential counting sort produces. Pass 2: each
    /// worker scatters its stripe's row indices through its own cursors.
    /// The cursor construction hands every worker a *disjoint* set of
    /// slots in the shared `rows` array, so the scatter is race-free by
    /// construction (asserted through a raw-pointer wrapper below).
    ///
    /// The cursor carve-out between the passes is itself parallel over
    /// **disjoint bucket chunks**: each carve task computes its chunk's
    /// per-stripe cursors from a chunk base offset, so the former
    /// `O(stripes × buckets)` serial term (with `buckets ≈ 2 × rows` it
    /// bounded the build's speedup by Amdahl) shrinks to an
    /// `O(workers)` sequential prefix over per-chunk totals. The carved
    /// cursor values are the same integers the sequential interleaved
    /// scan produces — chunk `c`'s base is exactly the row count of all
    /// buckets before it — so the directory stays byte-identical.
    fn build_par(hashes: &[u64], config: &MorselConfig) -> (CsrBuckets, MorselRun) {
        let workers = config.workers_for(hashes.len()).min(MAX_BUILD_WORKERS);
        if workers <= 1 {
            return (
                CsrBuckets::build(hashes),
                MorselRun {
                    morsels: 0,
                    threads: 1,
                },
            );
        }
        let buckets = (hashes.len() * 2).next_power_of_two().max(16);
        let shift = 64 - buckets.trailing_zeros();
        let stripes = morsel::stripe_ranges(hashes.len(), workers, config.morsel_rows());

        // Pass 1 (parallel): per-stripe bucket histograms.
        let (mut histograms, run) = morsel::run_tasks(stripes.len(), workers, |s| {
            let mut counts = vec![0u32; buckets];
            for &h in &hashes[stripes[s].clone()] {
                counts[(h >> shift) as usize] += 1;
            }
            counts
        });

        // Carve-out (parallel over disjoint bucket chunks): per-chunk
        // totals, a sequential prefix over the chunk totals, then each
        // chunk turns its slice of the histograms into per-stripe write
        // cursors and fills its slice of the global offsets array.
        let chunk_size = buckets.div_ceil(workers);
        let chunks: Vec<std::ops::Range<usize>> = (0..workers)
            .map(|c| (c * chunk_size).min(buckets)..((c + 1) * chunk_size).min(buckets))
            .filter(|r| !r.is_empty())
            .collect();
        let (chunk_totals, _) = morsel::run_tasks(chunks.len(), workers, |c| {
            let mut sum = 0u32;
            for b in chunks[c].clone() {
                for hist in &histograms {
                    sum += hist[b];
                }
            }
            sum
        });
        let mut chunk_base = vec![0u32; chunks.len() + 1];
        for (c, &total) in chunk_totals.iter().enumerate() {
            chunk_base[c + 1] = chunk_base[c] + total;
        }
        let mut offsets = vec![0u32; buckets + 1];
        {
            let offsets_out = ScatterSlice(offsets.as_mut_ptr());
            let hist_slices: Vec<ScatterSlice<u32>> = histograms
                .iter_mut()
                .map(|h| ScatterSlice(h.as_mut_ptr()))
                .collect();
            let (_, _) = morsel::run_tasks(chunks.len(), workers, |c| {
                // SAFETY: bucket chunks are disjoint, so every histogram
                // slot `hist[b]` and offsets slot `offsets[b + 1]` is
                // touched by exactly one task; `offsets[0]` stays 0.
                let mut cursor = chunk_base[c];
                for b in chunks[c].clone() {
                    for hist in &hist_slices {
                        let count = unsafe { hist.read(b) };
                        unsafe { hist.write(b, cursor) };
                        cursor += count;
                    }
                    unsafe { offsets_out.write(b + 1, cursor) };
                }
            });
        }

        // Pass 2 (parallel): scatter row indices through the per-stripe
        // cursors. Every write lands at a distinct index (the cursors
        // partition `0..rows.len()`), so sharing the output across workers
        // is sound; the `ScatterSlice` wrapper carries that promise. Each
        // task takes *ownership* of its stripe's cursor vector (one
        // uncontended lock per stripe) instead of cloning `buckets`
        // entries per stripe.
        let mut rows = vec![0u32; hashes.len()];
        let out = ScatterSlice(rows.as_mut_ptr());
        let cursor_slots: Vec<std::sync::Mutex<Vec<u32>>> =
            histograms.into_iter().map(std::sync::Mutex::new).collect();
        let (_, scatter_run) = morsel::run_tasks(stripes.len(), workers, |s| {
            let out = &out;
            // Poison-tolerant: a caught worker panic elsewhere must not
            // cascade into a second panic here.
            let mut cursors = std::mem::take(
                &mut *cursor_slots[s]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            );
            for j in stripes[s].clone() {
                let b = (hashes[j] >> shift) as usize;
                // SAFETY: `cursors[b]` values across stripes are disjoint
                // and each is bumped past-the-end exactly `hist[s][b]`
                // times, staying inside this stripe's slice of bucket `b`.
                unsafe { out.write(cursors[b] as usize, j as u32) };
                cursors[b] += 1;
            }
        });
        let threads = run.threads.max(scatter_run.threads);
        (
            CsrBuckets {
                shift,
                offsets,
                rows,
            },
            MorselRun {
                morsels: stripes.len(),
                threads,
            },
        )
    }
}

/// Cap on the worker count of the parallel build: each pass-1 worker owns
/// a full bucket histogram (`~2 × rows` u32 entries), so the histogram
/// memory is bounded at 8× the directory instead of growing with the
/// machine's core count.
const MAX_BUILD_WORKERS: usize = 8;

/// A raw mutable slice shared across scatter workers. The *caller*
/// guarantees the workers write disjoint index sets (see
/// [`CsrBuckets::build_par`]); the wrapper only exists to carry the
/// pointer across the `Sync` bound of the scoped pool.
struct ScatterSlice<T>(*mut T);

unsafe impl<T: Send> Send for ScatterSlice<T> {}
unsafe impl<T: Send> Sync for ScatterSlice<T> {}

impl<T> ScatterSlice<T> {
    /// Write `value` at `index`.
    ///
    /// # Safety
    /// `index` must be in bounds and not written concurrently by any other
    /// worker.
    unsafe fn write(&self, index: usize, value: T) {
        unsafe { self.0.add(index).write(value) };
    }
}

impl<T: Copy> ScatterSlice<T> {
    /// Read the value at `index`.
    ///
    /// # Safety
    /// `index` must be in bounds and not written concurrently by any other
    /// worker.
    unsafe fn read(&self, index: usize) -> T {
        unsafe { self.0.add(index).read() }
    }
}

/// The hash-join build side: right-table rows indexed by join key.
///
/// Construction hashes every build row once; probing walks one bucket and
/// verifies candidates, calling back with matching build-row indices in
/// build order. Neither phase allocates per row/probe beyond the flat
/// arrays built up front.
#[derive(Debug, PartialEq, Eq)]
pub struct BuildTable {
    buckets: CsrBuckets,
    layout: Layout,
}

#[derive(Debug, PartialEq, Eq)]
enum Layout {
    /// Keys of ≤ 2 variables, packed into a `u64` per build row.
    Packed { keys: Vec<u64> },
    /// Keys of ≥ 3 variables, verified against the key columns at probe
    /// time; only the per-row hash is precomputed.
    Wide { hashes: Vec<u64> },
}

impl BuildTable {
    /// Index `rows` build rows by the given key columns.
    ///
    /// # Panics
    /// Panics if `key_cols` is empty or a column is shorter than `rows`.
    pub fn build(key_cols: &[&[TermId]], rows: usize) -> BuildTable {
        assert!(!key_cols.is_empty(), "join key needs at least one column");
        assert!(
            rows < u32::MAX as usize,
            "build side exceeds u32 row indexing"
        );
        if key_cols.len() <= 2 {
            let keys: Vec<u64> = (0..rows)
                .map(|j| pack2(key_cols[0][j], key_cols.get(1).map_or(TermId(0), |c| c[j])))
                .collect();
            let hashes: Vec<u64> = keys.iter().map(|&k| fx_hash_u64(k)).collect();
            BuildTable {
                buckets: CsrBuckets::build(&hashes),
                layout: Layout::Packed { keys },
            }
        } else {
            let hashes: Vec<u64> = (0..rows)
                .map(|j| {
                    key_cols
                        .iter()
                        .fold(0u64, |h, col| fx_fold(h, col[j].0 as u64))
                })
                .collect();
            BuildTable {
                buckets: CsrBuckets::build(&hashes),
                layout: Layout::Wide { hashes },
            }
        }
    }

    /// [`BuildTable::build`] with morsel-parallel row hashing and a
    /// two-pass partitioned-counting-sort bucket fill.
    /// The output is **byte-identical** to the sequential build — same
    /// packed keys / hashes, same bucket directory, same in-bucket row
    /// order — so sequential and parallel probes over it cannot diverge.
    /// Below the config's row threshold (or on a one-thread budget) this
    /// degenerates to the sequential build. The returned [`MorselRun`]
    /// reports what the build did, for the engine's runtime counters.
    ///
    /// # Panics
    /// Panics if `key_cols` is empty or a column is shorter than `rows`.
    pub fn build_par(
        key_cols: &[&[TermId]],
        rows: usize,
        config: &MorselConfig,
    ) -> (BuildTable, MorselRun) {
        assert!(!key_cols.is_empty(), "join key needs at least one column");
        assert!(
            rows < u32::MAX as usize,
            "build side exceeds u32 row indexing"
        );
        if config.workers_for(rows) <= 1 {
            return (
                BuildTable::build(key_cols, rows),
                MorselRun {
                    morsels: 0,
                    threads: 1,
                },
            );
        }
        if key_cols.len() <= 2 {
            // Packed layout: key packing and hashing are both
            // position-deterministic stripe fills.
            let mut keys = vec![0u64; rows];
            let key_run = morsel::fill_stripes(&mut keys, config, |offset, chunk| {
                for (i, k) in chunk.iter_mut().enumerate() {
                    let j = offset + i;
                    *k = pack2(key_cols[0][j], key_cols.get(1).map_or(TermId(0), |c| c[j]));
                }
            });
            let mut hashes = vec![0u64; rows];
            let hash_run = morsel::fill_stripes(&mut hashes, config, |offset, chunk| {
                for (i, h) in chunk.iter_mut().enumerate() {
                    *h = fx_hash_u64(keys[offset + i]);
                }
            });
            let (buckets, sort_run) = CsrBuckets::build_par(&hashes, config);
            let run = MorselRun {
                morsels: key_run.morsels + hash_run.morsels + sort_run.morsels,
                threads: key_run.threads.max(hash_run.threads).max(sort_run.threads),
            };
            (
                BuildTable {
                    buckets,
                    layout: Layout::Packed { keys },
                },
                run,
            )
        } else {
            let mut hashes = vec![0u64; rows];
            let hash_run = morsel::fill_stripes(&mut hashes, config, |offset, chunk| {
                for (i, h) in chunk.iter_mut().enumerate() {
                    let j = offset + i;
                    *h = key_cols
                        .iter()
                        .fold(0u64, |acc, col| fx_fold(acc, col[j].0 as u64));
                }
            });
            let (buckets, sort_run) = CsrBuckets::build_par(&hashes, config);
            let run = MorselRun {
                morsels: hash_run.morsels + sort_run.morsels,
                threads: hash_run.threads.max(sort_run.threads),
            };
            (
                BuildTable {
                    buckets,
                    layout: Layout::Wide { hashes },
                },
                run,
            )
        }
    }

    /// Call `on_match` with every build row whose key equals probe row `i`
    /// of `probe_cols` (same column layout as the build's `key_cols`),
    /// in build order. `build_cols` must be the columns the table was built
    /// from (used for verification in the wide layout).
    #[inline]
    pub fn probe(
        &self,
        build_cols: &[&[TermId]],
        probe_cols: &[&[TermId]],
        i: usize,
        mut on_match: impl FnMut(usize),
    ) {
        match &self.layout {
            Layout::Packed { keys } => {
                let key = pack2(
                    probe_cols[0][i],
                    probe_cols.get(1).map_or(TermId(0), |c| c[i]),
                );
                for &j in self.buckets.slot(fx_hash_u64(key)) {
                    if keys[j as usize] == key {
                        on_match(j as usize);
                    }
                }
            }
            Layout::Wide { hashes } => {
                let hash = probe_cols
                    .iter()
                    .fold(0u64, |h, col| fx_fold(h, col[i].0 as u64));
                for &j in self.buckets.slot(hash) {
                    let j = j as usize;
                    if hashes[j] == hash
                        && build_cols
                            .iter()
                            .zip(probe_cols)
                            .all(|(bc, pc)| bc[j] == pc[i])
                    {
                        on_match(j);
                    }
                }
            }
        }
    }

    /// Probe a contiguous `range` of probe rows, appending every matching
    /// `(probe_row, build_row)` pair to `lidx`/`ridx` in probe order (build
    /// order within one probe row). `extra_pairs` are additional shared
    /// `(probe column, build column)` pairs that must also match — the
    /// repeated-variable check of the join operators.
    ///
    /// This is the one probe loop: the sequential hash join calls it over
    /// `0..rows`, the morsel-driven hash join calls it per morsel with
    /// thread-local output buffers (see [`crate::morsel`]). Output is a
    /// pure function of `range`, so stitching the per-morsel buffers in
    /// morsel order reproduces the sequential output exactly.
    #[allow(clippy::too_many_arguments)]
    pub fn probe_range(
        &self,
        build_cols: &[&[TermId]],
        probe_cols: &[&[TermId]],
        extra_pairs: &[(&[TermId], &[TermId])],
        range: std::ops::Range<usize>,
        lidx: &mut Vec<u32>,
        ridx: &mut Vec<u32>,
    ) {
        for i in range {
            self.probe(build_cols, probe_cols, i, |j| {
                if extra_pairs.iter().all(|(pc, bc)| pc[i] == bc[j]) {
                    lidx.push(i as u32);
                    ridx.push(j as u32);
                }
            });
        }
    }

    /// [`BuildTable::probe_range`] with left-outer semantics: a probe row
    /// with no surviving match emits one `(probe_row, u32::MAX)` sentinel
    /// pair, which the gather phase turns into UNBOUND padding.
    #[allow(clippy::too_many_arguments)]
    pub fn probe_range_outer(
        &self,
        build_cols: &[&[TermId]],
        probe_cols: &[&[TermId]],
        extra_pairs: &[(&[TermId], &[TermId])],
        range: std::ops::Range<usize>,
        lidx: &mut Vec<u32>,
        ridx: &mut Vec<u32>,
    ) {
        for i in range {
            let mut matched = false;
            self.probe(build_cols, probe_cols, i, |j| {
                if extra_pairs.iter().all(|(pc, bc)| pc[i] == bc[j]) {
                    matched = true;
                    lidx.push(i as u32);
                    ridx.push(j as u32);
                }
            });
            if !matched {
                lidx.push(i as u32);
                ridx.push(u32::MAX);
            }
        }
    }
}

/// The merge join's cursor-pair scan over explicit subranges of the two
/// sorted key columns: append every matching `(left_row, right_row)` pair
/// with `left_row ∈ l_range`, `right_row ∈ r_range` to `lidx`/`ridx`, in
/// left order (right order within an equal-key group), filtered by the
/// `extra_pairs` repeated-variable checks.
///
/// This is the one merge scan: the sequential merge join calls it over the
/// full columns, the range-partitioned parallel merge join calls it once
/// per partition. As long as no equal-key group spans a partition boundary
/// (the partitioner splits at key-group starts), concatenating per-
/// partition outputs in partition order reproduces the sequential output
/// exactly.
pub fn merge_join_pairs(
    lcol: &[TermId],
    rcol: &[TermId],
    extra_pairs: &[(&[TermId], &[TermId])],
    l_range: std::ops::Range<usize>,
    r_range: std::ops::Range<usize>,
    lidx: &mut Vec<u32>,
    ridx: &mut Vec<u32>,
) {
    let (mut i, l_end) = (l_range.start, l_range.end);
    let (mut j, r_end) = (r_range.start, r_range.end);
    while i < l_end && j < r_end {
        let (a, b) = (lcol[i], rcol[j]);
        if a < b {
            i += 1;
        } else if b < a {
            j += 1;
        } else {
            // Equal-key groups: cross-combine.
            let i_end = i + lcol[i..l_end].partition_point(|&x| x == a);
            let j_end = j + rcol[j..r_end].partition_point(|&x| x == a);
            if extra_pairs.is_empty() {
                lidx.reserve((i_end - i) * (j_end - j));
                ridx.reserve((i_end - i) * (j_end - j));
                for li in i..i_end {
                    for rj in j..j_end {
                        lidx.push(li as u32);
                        ridx.push(rj as u32);
                    }
                }
            } else {
                for li in i..i_end {
                    for rj in j..j_end {
                        if extra_pairs.iter().all(|(lc, rc)| lc[li] == rc[rj]) {
                            lidx.push(li as u32);
                            ridx.push(rj as u32);
                        }
                    }
                }
            }
            i = i_end;
            j = j_end;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(vals: &[u32]) -> Vec<TermId> {
        vals.iter().map(|&v| TermId(v)).collect()
    }

    #[test]
    fn packed_single_column_probe_finds_all_matches_in_order() {
        let col = ids(&[5, 3, 5, 9, 5]);
        let cols: Vec<&[TermId]> = vec![&col];
        let table = BuildTable::build(&cols, col.len());
        let probe = ids(&[5, 1]);
        let pcols: Vec<&[TermId]> = vec![&probe];
        let mut hits = Vec::new();
        table.probe(&cols, &pcols, 0, |j| hits.push(j));
        assert_eq!(hits, vec![0, 2, 4]);
        hits.clear();
        table.probe(&cols, &pcols, 1, |j| hits.push(j));
        assert!(hits.is_empty());
    }

    #[test]
    fn packed_two_column_keys_distinguish_pairs() {
        let a = ids(&[1, 1, 2]);
        let b = ids(&[10, 20, 10]);
        let cols: Vec<&[TermId]> = vec![&a, &b];
        let table = BuildTable::build(&cols, 3);
        let pa = ids(&[1]);
        let pb = ids(&[10]);
        let pcols: Vec<&[TermId]> = vec![&pa, &pb];
        let mut hits = Vec::new();
        table.probe(&cols, &pcols, 0, |j| hits.push(j));
        assert_eq!(hits, vec![0]);
    }

    #[test]
    fn wide_three_column_keys_verify_columns() {
        let a = ids(&[1, 1, 1]);
        let b = ids(&[2, 2, 9]);
        let c = ids(&[3, 3, 3]);
        let cols: Vec<&[TermId]> = vec![&a, &b, &c];
        let table = BuildTable::build(&cols, 3);
        let pcols: Vec<&[TermId]> = vec![&a, &b, &c];
        let mut hits = Vec::new();
        table.probe(&cols, &pcols, 0, |j| hits.push(j));
        assert_eq!(hits, vec![0, 1]);
    }

    /// Deterministic pseudo-random key columns with heavy collisions.
    fn random_cols(n: usize, domain: u32, salt: u64) -> Vec<TermId> {
        let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ salt;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                TermId((state >> 33) as u32 % domain)
            })
            .collect()
    }

    /// A forced-parallel config: tiny morsels, no row threshold.
    fn forced(threads: usize) -> MorselConfig {
        MorselConfig::with_threads(threads)
            .with_morsel_rows(64)
            .with_min_parallel_rows(0)
    }

    #[test]
    fn parallel_build_is_byte_identical_packed_one_column() {
        let col = random_cols(3_000, 101, 1);
        let cols: Vec<&[TermId]> = vec![&col];
        let sequential = BuildTable::build(&cols, col.len());
        for threads in 2..=4 {
            let (parallel, run) = BuildTable::build_par(&cols, col.len(), &forced(threads));
            assert_eq!(parallel, sequential, "threads={threads}");
            assert!(run.threads > 1);
            assert!(run.morsels > 1);
        }
    }

    #[test]
    fn parallel_build_is_byte_identical_packed_two_columns() {
        let a = random_cols(2_500, 37, 2);
        let b = random_cols(2_500, 11, 3);
        let cols: Vec<&[TermId]> = vec![&a, &b];
        let sequential = BuildTable::build(&cols, a.len());
        for threads in 2..=4 {
            let (parallel, _) = BuildTable::build_par(&cols, a.len(), &forced(threads));
            assert_eq!(parallel, sequential, "threads={threads}");
        }
    }

    #[test]
    fn parallel_build_is_byte_identical_wide_three_columns() {
        let a = random_cols(2_000, 7, 4);
        let b = random_cols(2_000, 5, 5);
        let c = random_cols(2_000, 3, 6);
        let cols: Vec<&[TermId]> = vec![&a, &b, &c];
        let sequential = BuildTable::build(&cols, a.len());
        for threads in 2..=4 {
            let (parallel, _) = BuildTable::build_par(&cols, a.len(), &forced(threads));
            assert_eq!(parallel, sequential, "threads={threads}");
        }
    }

    #[test]
    fn parallel_build_below_threshold_stays_sequential() {
        let col = random_cols(100, 11, 7);
        let cols: Vec<&[TermId]> = vec![&col];
        let config = MorselConfig::with_threads(4); // default 32k threshold
        let (table, run) = BuildTable::build_par(&cols, col.len(), &config);
        assert_eq!(run.threads, 1);
        assert_eq!(table, BuildTable::build(&cols, col.len()));
    }

    #[test]
    fn parallel_build_of_empty_input() {
        let empty: Vec<TermId> = Vec::new();
        let cols: Vec<&[TermId]> = vec![&empty];
        let (table, _) = BuildTable::build_par(&cols, 0, &forced(3));
        assert_eq!(table, BuildTable::build(&cols, 0));
    }

    #[test]
    fn parallel_carve_out_survives_skewed_buckets() {
        // All rows hash to few buckets: most chunks carve empty ranges,
        // one chunk carves everything — the directory must still equal
        // the sequential build's.
        let col: Vec<TermId> = (0..4_000).map(|i| TermId(i % 3)).collect();
        let cols: Vec<&[TermId]> = vec![&col];
        let sequential = BuildTable::build(&cols, col.len());
        for threads in 2..=4 {
            let (parallel, _) = BuildTable::build_par(&cols, col.len(), &forced(threads));
            assert_eq!(parallel, sequential, "threads={threads}");
        }
    }

    #[test]
    fn merge_join_pairs_full_range_matches_manual_scan() {
        let l = ids(&[1, 1, 2, 4, 4, 4, 7]);
        let r = ids(&[1, 2, 2, 4, 6]);
        let mut lidx = Vec::new();
        let mut ridx = Vec::new();
        merge_join_pairs(&l, &r, &[], 0..l.len(), 0..r.len(), &mut lidx, &mut ridx);
        // 1×1 (two left 1s), 2×2 (two right 2s), 4×4 (three left 4s).
        assert_eq!(lidx, vec![0, 1, 2, 2, 3, 4, 5]);
        assert_eq!(ridx, vec![0, 0, 1, 2, 3, 3, 3]);
    }

    #[test]
    fn merge_join_pairs_partitioned_at_key_boundaries_concatenates() {
        let l = ids(&[1, 1, 2, 4, 4, 4, 7]);
        let r = ids(&[1, 2, 2, 4, 6]);
        let mut full_l = Vec::new();
        let mut full_r = Vec::new();
        merge_join_pairs(
            &l,
            &r,
            &[],
            0..l.len(),
            0..r.len(),
            &mut full_l,
            &mut full_r,
        );
        // Split both sides at the start of key 4's groups.
        let (ls, rs) = (3, 3);
        let mut part_l = Vec::new();
        let mut part_r = Vec::new();
        merge_join_pairs(&l, &r, &[], 0..ls, 0..rs, &mut part_l, &mut part_r);
        merge_join_pairs(
            &l,
            &r,
            &[],
            ls..l.len(),
            rs..r.len(),
            &mut part_l,
            &mut part_r,
        );
        assert_eq!(part_l, full_l);
        assert_eq!(part_r, full_r);
    }

    #[test]
    fn empty_build_side_matches_nothing() {
        let empty: Vec<TermId> = Vec::new();
        let cols: Vec<&[TermId]> = vec![&empty];
        let table = BuildTable::build(&cols, 0);
        let probe = ids(&[7]);
        let pcols: Vec<&[TermId]> = vec![&probe];
        let mut hits = Vec::new();
        table.probe(&cols, &pcols, 0, |j| hits.push(j));
        assert!(hits.is_empty());
    }
}
