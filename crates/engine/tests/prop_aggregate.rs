//! Property tests for the morsel-parallel two-phase aggregation breaker:
//! on randomly generated employee/department datasets — with randomized
//! group-key cardinality and skew (one department absorbing most rows) —
//! a γ plan carrying **every** aggregate function (plain and DISTINCT)
//! must produce a [`BindingTable`] byte-identical to the row-at-a-time
//! reference (`ExecStrategy::OperatorAtATime` runs
//! `hsp_engine::reference::hash_aggregate`), at forced thread counts 2–4
//! with tiny morsels, including the computed-term overlay (aggregate
//! output ids are positional, so a divergent intern order would corrupt
//! results even when the values agree).
//!
//! [`BindingTable`]: hsp_engine::BindingTable

use hsp_engine::exec::{execute_in, ExecConfig, ExecStrategy};
use hsp_engine::{ExecContext, MorselConfig, PhysicalPlan};
use hsp_rdf::Term;
use hsp_sparql::{AggFunc, AggSpec, TermOrVar, TriplePattern, Var};
use hsp_store::{Dataset, Order};
use proptest::prelude::*;

const XSD_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";

/// `(employee, department, salary)` facts as two predicates. Duplicate
/// employees collapse under RDF set semantics — both arms see the same
/// graph, so that only sharpens the dedup coverage.
fn dataset_of(facts: &[(u16, u8, u8)]) -> Dataset {
    let mut nt = String::new();
    for &(e, d, sal) in facts {
        nt.push_str(&format!(
            "<http://e/e{e}> <http://e/dept> <http://e/d{d}> .\n"
        ));
        nt.push_str(&format!(
            "<http://e/e{e}> <http://e/salary> \"{sal}\"^^<{XSD_INTEGER}> .\n"
        ));
    }
    Dataset::from_ntriples(&nt).expect("generated N-Triples parse")
}

fn scan(idx: usize, pred: &str, s: Var, o: Var) -> PhysicalPlan {
    PhysicalPlan::Scan {
        pattern_idx: idx,
        pattern: TriplePattern::new(
            TermOrVar::Var(s),
            TermOrVar::Const(Term::iri(format!("http://e/{pred}"))),
            TermOrVar::Var(o),
        ),
        order: Order::Pso,
    }
}

/// `?s dept ?d ⋈ ?s salary ?sal`, then γ with the full aggregate menu:
/// COUNT(*), COUNT(?sal), SUM, MIN, MAX, AVG, COUNT(DISTINCT ?sal),
/// SUM(DISTINCT ?sal), AVG(DISTINCT ?sal).
fn full_menu_plan(group_by: Vec<Var>) -> PhysicalPlan {
    let (s, d, sal) = (Var(0), Var(1), Var(2));
    let agg = |func: AggFunc, distinct: bool, arg: Option<Var>, out: u32, name: &str| AggSpec {
        func,
        distinct,
        arg,
        out: Var(out),
        name: name.to_string(),
    };
    let aggs = vec![
        agg(AggFunc::Count, false, None, 3, "n"),
        agg(AggFunc::Count, false, Some(sal), 4, "nsal"),
        agg(AggFunc::Sum, false, Some(sal), 5, "t"),
        agg(AggFunc::Min, false, Some(sal), 6, "lo"),
        agg(AggFunc::Max, false, Some(sal), 7, "hi"),
        agg(AggFunc::Avg, false, Some(sal), 8, "a"),
        agg(AggFunc::Count, true, Some(sal), 9, "nd"),
        agg(AggFunc::Sum, true, Some(sal), 10, "td"),
        agg(AggFunc::Avg, true, Some(sal), 11, "ad"),
    ];
    let mut projection: Vec<(String, Var)> =
        group_by.iter().map(|&v| (format!("g{}", v.0), v)).collect();
    projection.extend(aggs.iter().map(|a| (a.name.clone(), a.out)));
    PhysicalPlan::Project {
        input: Box::new(PhysicalPlan::HashAggregate {
            input: Box::new(PhysicalPlan::HashJoin {
                left: Box::new(scan(0, "dept", s, d)),
                right: Box::new(scan(1, "salary", s, sal)),
                vars: vec![s],
            }),
            group_by,
            aggs,
            having: None,
        }),
        projection,
        distinct: false,
    }
}

/// Oracle vs pipeline at forced threads 2–4 (and 1, as the degenerate
/// stitch): byte-identical tables and computed-term overlays.
fn assert_aggregate_matches_oracle(ds: &Dataset, plan: &PhysicalPlan) -> Result<(), TestCaseError> {
    let oracle_config = ExecConfig::unlimited().with_strategy(ExecStrategy::OperatorAtATime);
    let oracle =
        execute_in(plan, ds, &oracle_config, &oracle_config.context()).expect("oracle executes");
    let pipeline_config = ExecConfig::unlimited();
    for threads in 1..=4usize {
        let ctx = ExecContext::with_morsel_config(
            MorselConfig::with_threads(threads)
                .with_morsel_rows(3)
                .with_min_parallel_rows(0),
        );
        let out = execute_in(plan, ds, &pipeline_config, &ctx).expect("pipeline executes");
        prop_assert_eq!(
            &out.table,
            &oracle.table,
            "tables diverge at threads={}",
            threads
        );
        prop_assert_eq!(
            &out.computed,
            &oracle.computed,
            "computed-term overlays diverge at threads={}",
            threads
        );
    }
    Ok(())
}

proptest! {
    /// Randomized group-key cardinality: departments drawn from 0..8, so
    /// runs range from one group to eight, with duplicate salaries inside
    /// and across groups.
    #[test]
    fn grouped_full_menu_matches_reference(
        facts in proptest::collection::vec((0u16..60, 0u8..8, 0u8..25), 1..70),
    ) {
        let ds = dataset_of(&facts);
        assert_aggregate_matches_oracle(&ds, &full_menu_plan(vec![Var(1)]))?;
    }

    /// Skewed group keys: most departments collapse onto `d0` (one giant
    /// group, a few singletons) — the shape where per-morsel partial
    /// states disagree most about group discovery order, which the
    /// morsel-order merge must hide completely.
    #[test]
    fn skewed_groups_match_reference(
        facts in proptest::collection::vec((0u16..80, 0u8..16, 0u8..10), 1..80),
    ) {
        let skewed: Vec<(u16, u8, u8)> = facts
            .into_iter()
            .map(|(e, d, sal)| (e, if d < 12 { 0 } else { d }, sal))
            .collect();
        let ds = dataset_of(&skewed);
        assert_aggregate_matches_oracle(&ds, &full_menu_plan(vec![Var(1)]))?;
    }

    /// Ungrouped aggregation (the implicit all-rows group), including the
    /// empty-input case (`COUNT` 0 / `SUM` 0 / `MIN`/`MAX` unbound) when
    /// the generator yields no facts.
    #[test]
    fn ungrouped_full_menu_matches_reference(
        facts in proptest::collection::vec((0u16..40, 0u8..4, 0u8..25), 0..50),
    ) {
        let ds = dataset_of(&facts);
        assert_aggregate_matches_oracle(&ds, &full_menu_plan(vec![]))?;
    }

    /// Two group keys (department × salary): key tuples rather than single
    /// ids exercise the multi-column key hashing and the positional
    /// overlay across a larger group count.
    #[test]
    fn two_key_groups_match_reference(
        facts in proptest::collection::vec((0u16..60, 0u8..5, 0u8..6), 1..70),
    ) {
        let ds = dataset_of(&facts);
        assert_aggregate_matches_oracle(&ds, &full_menu_plan(vec![Var(1), Var(2)]))?;
    }
}
