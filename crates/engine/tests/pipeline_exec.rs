//! Byte-identity of the pipeline executor against the operator-at-a-time
//! oracle: for randomly generated SP²Bench- and YAGO-shaped datasets and
//! plans, `execute` (pipeline lowering, the default) must produce a
//! [`BindingTable`] **equal in every field** — values, column order,
//! sortedness metadata, row count — to
//! [`ExecStrategy::OperatorAtATime`]'s output, at forced thread counts
//! 1–4 with tiny morsels (so even these small inputs split across
//! workers), and the per-operator [`Profile`] cardinalities must agree
//! row for row.

use hsp_engine::exec::{execute_in, ExecConfig, ExecStrategy};
use hsp_engine::{BindingTable, ExecContext, MorselConfig, PhysicalPlan};
use hsp_rdf::Term;
use hsp_sparql::{CmpOp, FilterExpr, Operand, TermOrVar, TriplePattern, Var};
use hsp_store::{Dataset, Order};
use proptest::prelude::*;

fn cv(name: &str) -> TermOrVar {
    TermOrVar::Const(Term::iri(format!("http://e/{name}")))
}

fn vv(i: u32) -> TermOrVar {
    TermOrVar::Var(Var(i))
}

fn scan(idx: usize, s: TermOrVar, p: TermOrVar, o: TermOrVar, order: Order) -> PhysicalPlan {
    PhysicalPlan::Scan {
        pattern_idx: idx,
        pattern: TriplePattern::new(s, p, o),
        order,
    }
}

/// An SP²Bench-shaped micro graph: articles cite articles, have numeric
/// years and venues — enough fan-out that joins produce skewed groups.
fn sp2b_doc(cites: &[(u8, u8)], years: &[(u8, u8)]) -> String {
    let mut doc = String::new();
    for &(a, b) in cites {
        doc.push_str(&format!(
            "<http://e/art{a}> <http://e/cites> <http://e/art{b}> .\n"
        ));
    }
    for &(a, y) in years {
        doc.push_str(&format!(
            "<http://e/art{a}> <http://e/year> \"{}\" .\n",
            1990 + (y as u32 % 30)
        ));
    }
    doc
}

/// A YAGO-shaped star: entities with several attribute predicates hanging
/// off the same subject variable.
fn yago_doc(facts: &[(u8, u8, u8)]) -> String {
    let preds = ["bornIn", "livesIn", "worksAt"];
    let mut doc = String::new();
    for &(s, p, o) in facts {
        doc.push_str(&format!(
            "<http://e/e{s}> <http://e/{}> <http://e/c{o}> .\n",
            preds[p as usize % preds.len()]
        ));
    }
    doc
}

/// Execute `plan` under the oracle and under the pipeline executor at
/// forced thread counts 1–4 (tiny morsels, no row threshold) and assert
/// byte-identical tables and identical per-operator cardinalities.
fn assert_pipeline_matches_oracle(ds: &Dataset, plan: &PhysicalPlan) -> Result<(), TestCaseError> {
    let oracle_config = ExecConfig::unlimited().with_strategy(ExecStrategy::OperatorAtATime);
    let oracle = execute_in(plan, ds, &oracle_config, &oracle_config.context())
        .expect("oracle execution succeeds");
    let pipeline_config = ExecConfig::unlimited();
    for threads in 1..=4usize {
        let ctx = ExecContext::with_morsel_config(
            MorselConfig::with_threads(threads)
                .with_morsel_rows(4)
                .with_min_parallel_rows(0),
        );
        let out =
            execute_in(plan, ds, &pipeline_config, &ctx).expect("pipeline execution succeeds");
        prop_assert_eq!(&out.table, &oracle.table, "threads={}", threads);
        let mut got = Vec::new();
        out.profile
            .visit(&mut |p| got.push((p.label.clone(), p.output_rows)));
        let mut want = Vec::new();
        oracle
            .profile
            .visit(&mut |p| want.push((p.label.clone(), p.output_rows)));
        prop_assert_eq!(got, want, "profile diverges at threads={}", threads);
    }
    Ok(())
}

proptest! {
    /// SP²Bench-shaped chain: cites ⋈ cites ⋈ year with a numeric FILTER —
    /// the canonical scan → probe → probe → filter pipeline.
    #[test]
    fn sp2b_probe_chain_matches_oracle(
        cites in proptest::collection::vec((0u8..12, 0u8..12), 0..40),
        years in proptest::collection::vec((0u8..12, 0u8..30), 0..20),
    ) {
        let ds = Dataset::from_ntriples(&sp2b_doc(&cites, &years)).unwrap();
        // ?a cites ?b . ?b cites ?c . ?b year ?y . FILTER(?y > 1995)
        let plan = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::HashJoin {
                left: Box::new(PhysicalPlan::HashJoin {
                    left: Box::new(scan(0, vv(0), cv("cites"), vv(1), Order::Pso)),
                    right: Box::new(scan(1, vv(1), cv("cites"), vv(2), Order::Pso)),
                    vars: vec![Var(1)],
                }),
                right: Box::new(scan(2, vv(1), cv("year"), vv(3), Order::Pso)),
                vars: vec![Var(1)],
            }),
            expr: FilterExpr::Cmp {
                op: CmpOp::Gt,
                lhs: Operand::Var(Var(3)),
                rhs: Operand::Const(Term::literal("1995")),
            },
        };
        assert_pipeline_matches_oracle(&ds, &plan)?;
    }

    /// Merge-join + pipeline mix: a sorted merge join feeds a probe +
    /// filter pipeline, topped by projection / ORDER BY / slice breakers —
    /// every breaker kind in one plan.
    /// (Both inputs are kept non-empty: a scan over a predicate missing
    /// from the dictionary loses its static sortedness — in both
    /// executors — and the merge join rejects it before either runs.)
    #[test]
    fn sp2b_modifier_stack_matches_oracle(
        cites in proptest::collection::vec((0u8..10, 0u8..10), 1..30),
        years in proptest::collection::vec((0u8..10, 0u8..30), 1..15),
        offset in 0usize..5,
        limit in 1usize..8,
        distinct in any::<bool>(),
    ) {
        let ds = Dataset::from_ntriples(&sp2b_doc(&cites, &years)).unwrap();
        // mergejoin(?a cites ?b, ?a year ?y) ⋈hj (?b year ?z), project,
        // order by ?y, slice.
        let plan = PhysicalPlan::Slice {
            input: Box::new(PhysicalPlan::OrderBy {
                input: Box::new(PhysicalPlan::Project {
                    input: Box::new(PhysicalPlan::HashJoin {
                        left: Box::new(PhysicalPlan::MergeJoin {
                            left: Box::new(scan(0, vv(0), cv("cites"), vv(1), Order::Pso)),
                            right: Box::new(scan(1, vv(0), cv("year"), vv(2), Order::Pso)),
                            var: Var(0),
                        }),
                        right: Box::new(scan(2, vv(1), cv("year"), vv(3), Order::Pso)),
                        vars: vec![Var(1)],
                    }),
                    projection: vec![("a".into(), Var(0)), ("y".into(), Var(2))],
                    distinct,
                }),
                keys: vec![hsp_sparql::SortKey {
                    expr: hsp_sparql::Expr::Var(Var(2)),
                    descending: false,
                }],
            }),
            offset,
            limit: Some(limit),
        };
        assert_pipeline_matches_oracle(&ds, &plan)?;
    }

    /// YAGO-shaped star join on one subject variable: probe chains where
    /// every build side shares the same variable, plus a repeated-variable
    /// extra check (?0 appears in all three patterns).
    #[test]
    fn yago_star_matches_oracle(
        facts in proptest::collection::vec((0u8..10, 0u8..3, 0u8..6), 0..40),
    ) {
        let ds = Dataset::from_ntriples(&yago_doc(&facts)).unwrap();
        let plan = PhysicalPlan::HashJoin {
            left: Box::new(PhysicalPlan::HashJoin {
                left: Box::new(scan(0, vv(0), cv("bornIn"), vv(1), Order::Pso)),
                right: Box::new(scan(1, vv(0), cv("livesIn"), vv(2), Order::Pso)),
                vars: vec![Var(0)],
            }),
            right: Box::new(scan(2, vv(0), cv("worksAt"), vv(3), Order::Pso)),
            vars: vec![Var(0)],
        };
        assert_pipeline_matches_oracle(&ds, &plan)?;
    }

    /// A join whose inputs share a *non-key* variable exercises the probe
    /// stage's extra-check path (the repeated-variable verification that
    /// the operator-at-a-time join does through `extra_pairs`).
    #[test]
    fn shared_non_key_variable_matches_oracle(
        facts in proptest::collection::vec((0u8..6, 0u8..3, 0u8..4), 0..35),
    ) {
        let ds = Dataset::from_ntriples(&yago_doc(&facts)).unwrap();
        // Both sides bind ?0 and ?1: join on ?0, verify ?1 as extra.
        let plan = PhysicalPlan::HashJoin {
            left: Box::new(scan(0, vv(0), cv("bornIn"), vv(1), Order::Pso)),
            right: Box::new(PhysicalPlan::HashJoin {
                left: Box::new(scan(1, vv(0), cv("livesIn"), vv(1), Order::Pso)),
                right: Box::new(scan(2, vv(0), cv("worksAt"), vv(2), Order::Pso)),
                vars: vec![Var(0)],
            }),
            vars: vec![Var(0), Var(1)],
        };
        assert_pipeline_matches_oracle(&ds, &plan)?;
    }

    /// OPTIONAL chain: two left-outer probes over the cites graph —
    /// `?a cites ?b OPTIONAL { ?b year ?y } OPTIONAL { ?b cites ?c }` —
    /// unmatched rows carry UNBOUND, and the whole chain runs as one
    /// pipeline with outer-probe stages.
    #[test]
    fn optional_chain_matches_oracle(
        cites in proptest::collection::vec((0u8..10, 0u8..10), 0..30),
        years in proptest::collection::vec((0u8..10, 0u8..30), 0..12),
    ) {
        let ds = Dataset::from_ntriples(&sp2b_doc(&cites, &years)).unwrap();
        let plan = PhysicalPlan::LeftOuterHashJoin {
            left: Box::new(PhysicalPlan::LeftOuterHashJoin {
                left: Box::new(scan(0, vv(0), cv("cites"), vv(1), Order::Pso)),
                right: Box::new(scan(1, vv(1), cv("year"), vv(2), Order::Pso)),
                vars: vec![Var(1)],
            }),
            right: Box::new(scan(2, vv(1), cv("cites"), vv(3), Order::Pso)),
            vars: vec![Var(1)],
        };
        assert_pipeline_matches_oracle(&ds, &plan)?;
        // The chain is one pipeline whose outer probes stream.
        let out = execute_in(
            &plan,
            &ds,
            &ExecConfig::unlimited(),
            &ExecConfig::unlimited().context(),
        )
        .expect("pipeline runs");
        prop_assert!(out.runtime.pipelines > 0);
        prop_assert_eq!(out.runtime.pipeline_outer_probes, 2);
    }

    /// OPTIONAL under a FILTER and a plain root projection: the filter
    /// reads the nullable (UNBOUND-padded) column, and the projection
    /// folds into the pipeline sink instead of breaking.
    #[test]
    fn root_projection_over_optional_matches_oracle(
        cites in proptest::collection::vec((0u8..10, 0u8..10), 0..30),
        years in proptest::collection::vec((0u8..10, 0u8..30), 0..12),
        keep_year in 1990u32..2020,
    ) {
        let ds = Dataset::from_ntriples(&sp2b_doc(&cites, &years)).unwrap();
        let plan = PhysicalPlan::Project {
            input: Box::new(PhysicalPlan::Filter {
                input: Box::new(PhysicalPlan::LeftOuterHashJoin {
                    left: Box::new(scan(0, vv(0), cv("cites"), vv(1), Order::Pso)),
                    right: Box::new(scan(1, vv(1), cv("year"), vv(2), Order::Pso)),
                    vars: vec![Var(1)],
                }),
                expr: FilterExpr::Cmp {
                    op: CmpOp::Ne,
                    lhs: Operand::Var(Var(2)),
                    rhs: Operand::Const(Term::literal(keep_year.to_string())),
                },
            }),
            projection: vec![("a".into(), Var(0)), ("y".into(), Var(2))],
            distinct: false,
        };
        assert_pipeline_matches_oracle(&ds, &plan)?;
        let out = execute_in(
            &plan,
            &ds,
            &ExecConfig::unlimited(),
            &ExecConfig::unlimited().context(),
        )
        .expect("pipeline runs");
        prop_assert!(out.runtime.pipelines > 0);
        prop_assert_eq!(out.runtime.pipeline_outer_probes, 1);
    }

    /// Plain root projection over a breaker (merge join): the breaker's
    /// single-consumer output hands off to the projection pipeline, whose
    /// sink moves the projected columns instead of copying.
    #[test]
    fn projection_handoff_over_merge_join_matches_oracle(
        cites in proptest::collection::vec((0u8..10, 0u8..10), 1..30),
        years in proptest::collection::vec((0u8..10, 0u8..30), 1..12),
    ) {
        let ds = Dataset::from_ntriples(&sp2b_doc(&cites, &years)).unwrap();
        let plan = PhysicalPlan::Project {
            input: Box::new(PhysicalPlan::MergeJoin {
                left: Box::new(scan(0, vv(0), cv("cites"), vv(1), Order::Pso)),
                right: Box::new(scan(1, vv(0), cv("year"), vv(2), Order::Pso)),
                var: Var(0),
            }),
            projection: vec![("y".into(), Var(2)), ("a".into(), Var(0))],
            distinct: false,
        };
        assert_pipeline_matches_oracle(&ds, &plan)?;
        let out = execute_in(
            &plan,
            &ds,
            &ExecConfig::unlimited(),
            &ExecConfig::unlimited().context(),
        )
        .expect("pipeline runs");
        prop_assert!(out.runtime.breaker_handoffs > 0);
    }

    /// Cross products (breakers) interleaved with a streaming filter.
    #[test]
    fn cross_product_with_filter_matches_oracle(
        facts in proptest::collection::vec((0u8..5, 0u8..1, 0u8..4), 0..20),
        years in proptest::collection::vec((0u8..5, 0u8..30), 0..10),
    ) {
        let mut doc = yago_doc(&facts);
        doc.push_str(&sp2b_doc(&[], &years));
        let ds = Dataset::from_ntriples(&doc).unwrap();
        let plan = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::CrossProduct {
                left: Box::new(scan(0, vv(0), cv("bornIn"), vv(1), Order::Pso)),
                right: Box::new(scan(1, vv(2), cv("year"), vv(3), Order::Pso)),
            }),
            expr: FilterExpr::Cmp {
                op: CmpOp::Lt,
                lhs: Operand::Var(Var(3)),
                rhs: Operand::Const(Term::literal("2005")),
            },
        };
        assert_pipeline_matches_oracle(&ds, &plan)?;
    }
}

#[test]
fn empty_dataset_all_plan_shapes() {
    let ds = Dataset::from_ntriples("").unwrap();
    let plans = [
        scan(0, vv(0), cv("cites"), vv(1), Order::Pso),
        PhysicalPlan::HashJoin {
            left: Box::new(scan(0, vv(0), cv("cites"), vv(1), Order::Pso)),
            right: Box::new(scan(1, vv(1), cv("year"), vv(2), Order::Pso)),
            vars: vec![Var(1)],
        },
    ];
    for plan in &plans {
        let oracle = execute_in(
            plan,
            &ds,
            &ExecConfig::unlimited().with_strategy(ExecStrategy::OperatorAtATime),
            &ExecConfig::unlimited().context(),
        )
        .unwrap();
        let out = execute_in(
            plan,
            &ds,
            &ExecConfig::unlimited(),
            &ExecConfig::unlimited().context(),
        )
        .unwrap();
        assert_eq!(out.table, oracle.table);
    }
}

/// The sort order-enforcer (a breaker) between two pipelines: scan → sort →
/// merge join, with the parallel merge sort underneath.
#[test]
fn sort_enforcer_feeds_merge_join_identically() {
    let mut doc = String::new();
    for i in 0..200u32 {
        doc.push_str(&format!(
            "<http://e/a{}> <http://e/p> <http://e/b{}> .\n",
            i % 40,
            (i * 7) % 23
        ));
        doc.push_str(&format!(
            "<http://e/b{}> <http://e/q> \"{}\" .\n",
            i % 23,
            i % 9
        ));
    }
    let ds = Dataset::from_ntriples(&doc).unwrap();
    // ?a p ?b sorted by ?b via POS? No: enforce with Sort instead.
    let plan = PhysicalPlan::MergeJoin {
        left: Box::new(PhysicalPlan::Sort {
            input: Box::new(scan(0, vv(0), cv("p"), vv(1), Order::Pso)),
            var: Var(1),
        }),
        right: Box::new(scan(1, vv(1), cv("q"), vv(2), Order::Pso)),
        var: Var(1),
    };
    let oracle = execute_in(
        &plan,
        &ds,
        &ExecConfig::unlimited().with_strategy(ExecStrategy::OperatorAtATime),
        &ExecConfig::unlimited().context(),
    )
    .unwrap();
    for threads in 1..=4usize {
        let ctx = ExecContext::with_morsel_config(
            MorselConfig::with_threads(threads)
                .with_morsel_rows(8)
                .with_min_parallel_rows(0),
        );
        let out = execute_in(&plan, &ds, &ExecConfig::unlimited(), &ctx).unwrap();
        assert_eq!(out.table, oracle.table, "threads={threads}");
        if threads > 1 {
            assert!(
                out.runtime.parallel_sorts > 0,
                "forced-parallel sort should fire: {:?}",
                out.runtime
            );
        }
    }
}

/// BindingTable sanity for the proptest harness itself: the oracle and the
/// pipeline must even agree on a zero-row filter result's metadata.
#[test]
fn empty_filter_result_metadata_matches() {
    let ds = Dataset::from_ntriples("<http://e/a> <http://e/year> \"1990\" .\n").unwrap();
    let plan = PhysicalPlan::Filter {
        input: Box::new(scan(0, vv(0), cv("year"), vv(1), Order::Pso)),
        expr: FilterExpr::Cmp {
            op: CmpOp::Gt,
            lhs: Operand::Var(Var(1)),
            rhs: Operand::Const(Term::literal("3000")),
        },
    };
    let oracle = execute_in(
        &plan,
        &ds,
        &ExecConfig::unlimited().with_strategy(ExecStrategy::OperatorAtATime),
        &ExecConfig::unlimited().context(),
    )
    .unwrap();
    let out = execute_in(
        &plan,
        &ds,
        &ExecConfig::unlimited(),
        &ExecConfig::unlimited().context(),
    )
    .unwrap();
    assert!(out.table.is_empty());
    assert_eq!(out.table, oracle.table);
    let _: &BindingTable = &out.table;
}
