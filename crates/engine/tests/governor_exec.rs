//! Governor semantics under the pipeline executor: deadlines trip
//! promptly on a multi-million-row cross product, cancellation and memory
//! budgets surface as typed [`ExecError`]s (never a panic, never a hang),
//! and — the load-bearing invariant — a tripped execution drains
//! everything it checked out: the context's [`BufferPool`] counters
//! balance (`hits + misses == returned`), the governor's memory account
//! returns to zero, and a subsequent query on the *same context* is
//! byte-identical to a fresh run. All of it at forced thread counts 1–4
//! with tiny morsels, so the parallel claim/stitch machinery is exercised
//! even on small inputs.
//!
//! [`BufferPool`]: hsp_engine::BufferPool

use std::sync::Arc;
use std::time::{Duration, Instant};

use hsp_engine::exec::{execute_in, ExecConfig, ExecError, ExecStrategy};
use hsp_engine::{CancelToken, ExecContext, MorselConfig, PhysicalPlan};
use hsp_rdf::Term;
use hsp_sparql::{TermOrVar, TriplePattern, Var};
use hsp_store::{Dataset, Order};

fn cv(name: &str) -> TermOrVar {
    TermOrVar::Const(Term::iri(format!("http://e/{name}")))
}

fn vv(i: u32) -> TermOrVar {
    TermOrVar::Var(Var(i))
}

fn scan(idx: usize, s: TermOrVar, p: TermOrVar, o: TermOrVar, order: Order) -> PhysicalPlan {
    PhysicalPlan::Scan {
        pattern_idx: idx,
        pattern: TriplePattern::new(s, p, o),
        order,
    }
}

/// `n` `p`-triples and `n` `q`-triples with disjoint variables: crossing
/// them yields an `n²`-row product — the runaway query the governor
/// exists to stop.
fn cross_doc(n: usize) -> String {
    let mut doc = String::new();
    for i in 0..n {
        doc.push_str(&format!("<http://e/a{i}> <http://e/p> <http://e/b{i}> .\n"));
        doc.push_str(&format!("<http://e/c{i}> <http://e/q> <http://e/d{i}> .\n"));
    }
    doc
}

/// `?a p ?b × ?c q ?d` over [`cross_doc`].
fn cross_plan() -> PhysicalPlan {
    PhysicalPlan::CrossProduct {
        left: Box::new(scan(0, vv(0), cv("p"), vv(1), Order::Pso)),
        right: Box::new(scan(1, vv(2), cv("q"), vv(3), Order::Pso)),
    }
}

/// A deterministic SP²Bench-shaped citation graph (see
/// `pipeline_exec.rs`): enough fan-out that the chain plan below runs
/// real probe pipelines with intermediates worth pooling.
fn chain_doc() -> String {
    let mut doc = String::new();
    for i in 0..120u32 {
        let a = i % 40;
        let b = (i * 7 + 3) % 40;
        doc.push_str(&format!(
            "<http://e/art{a}> <http://e/cites> <http://e/art{b}> .\n"
        ));
    }
    for a in 0..40u32 {
        doc.push_str(&format!(
            "<http://e/art{a}> <http://e/year> \"{}\" .\n",
            1990 + (a % 25)
        ));
    }
    doc
}

/// `?a cites ?b . ?b cites ?c . ?b year ?y` — scan → probe → probe.
fn chain_plan() -> PhysicalPlan {
    PhysicalPlan::HashJoin {
        left: Box::new(PhysicalPlan::HashJoin {
            left: Box::new(scan(0, vv(0), cv("cites"), vv(1), Order::Pso)),
            right: Box::new(scan(1, vv(1), cv("cites"), vv(2), Order::Pso)),
            vars: vec![Var(1)],
        }),
        right: Box::new(scan(2, vv(1), cv("year"), vv(3), Order::Pso)),
        vars: vec![Var(1)],
    }
}

/// A context with forced `threads` and tiny morsels (the
/// `pipeline_exec.rs` convention: even 100-row inputs split across
/// workers).
fn forced_ctx(threads: usize) -> ExecContext {
    ExecContext::with_morsel_config(
        MorselConfig::with_threads(threads)
            .with_morsel_rows(4)
            .with_min_parallel_rows(0),
    )
}

/// Assert the drained-error-path invariants on `ctx`: every buffer the
/// execution checked out went back (pool counters balance) and every
/// charged byte was released.
fn assert_drained(ctx: &ExecContext) {
    let stats = ctx.pool.stats();
    assert_eq!(
        stats.hits + stats.misses,
        stats.returned,
        "pool imbalance after a tripped execution: {stats:?}"
    );
    let gov = ctx.governor().expect("governor attached");
    assert_eq!(gov.mem_used(), 0, "leaked memory accounting after trip");
}

/// Detach the tripped governor and re-run `plan` on the same (warm)
/// context; the output must be byte-identical to a fresh ungoverned run.
fn assert_rerun_identical(mut ctx: ExecContext, plan: &PhysicalPlan, ds: &Dataset) {
    ctx.set_governor(None);
    let config = ExecConfig::unlimited();
    let warm = execute_in(plan, ds, &config, &ctx).expect("re-run on warm context succeeds");
    let fresh = execute_in(plan, ds, &config, &config.context()).expect("fresh run succeeds");
    assert_eq!(
        warm.table, fresh.table,
        "warm-context re-run diverges from a fresh run"
    );
}

#[test]
fn deadline_trips_promptly_on_ten_million_row_cross_product() {
    // 3200 × 3200 ≈ 10.2M output rows — far more work than 50ms allows,
    // but the inputs themselves load and scan quickly.
    let ds = Dataset::from_ntriples(&cross_doc(3200)).unwrap();
    let plan = cross_plan();
    let config = ExecConfig::unlimited().with_timeout(Duration::from_millis(50));
    let ctx = ExecContext::new().with_governor(config.governor().expect("timeout set"));
    let started = Instant::now();
    let err = execute_in(&plan, &ds, &config, &ctx).expect_err("deadline must trip");
    let elapsed = started.elapsed();
    assert!(
        matches!(err, ExecError::DeadlineExceeded),
        "expected DeadlineExceeded, got {err}"
    );
    // Promptness: the trip is bounded by one poll stride / breaker step,
    // not by materialising the full 10M-row product. The bound is
    // deliberately loose for slow CI machines; without the governor this
    // plan takes far longer still.
    assert!(
        elapsed < Duration::from_secs(10),
        "deadline honoured too slowly: {elapsed:?}"
    );
    assert_drained(&ctx);
}

#[test]
fn oracle_strategy_honours_the_deadline_too() {
    let ds = Dataset::from_ntriples(&cross_doc(3200)).unwrap();
    let plan = cross_plan();
    let config = ExecConfig::unlimited()
        .with_strategy(ExecStrategy::OperatorAtATime)
        .with_timeout(Duration::from_millis(50));
    let ctx = ExecContext::new().with_governor(config.governor().expect("timeout set"));
    let err = execute_in(&plan, &ds, &config, &ctx).expect_err("deadline must trip");
    assert!(
        matches!(err, ExecError::DeadlineExceeded),
        "expected DeadlineExceeded, got {err}"
    );
    assert_drained(&ctx);
}

#[test]
fn cancelled_token_fails_fast_and_context_stays_reusable() {
    let ds = Dataset::from_ntriples(&chain_doc()).unwrap();
    let plan = chain_plan();
    for threads in 1..=4usize {
        let token = Arc::new(CancelToken::new());
        token.cancel();
        let config = ExecConfig::unlimited().with_cancel_token(Arc::clone(&token));
        let mut ctx = forced_ctx(threads);
        ctx.set_governor(Some(config.governor().expect("token set")));
        let err = execute_in(&plan, &ds, &config, &ctx).expect_err("cancellation must surface");
        assert!(
            matches!(err, ExecError::Cancelled),
            "threads={threads}: expected Cancelled, got {err}"
        );
        assert_drained(&ctx);
        assert_rerun_identical(ctx, &plan, &ds);
    }
}

#[test]
fn cancellation_from_another_thread_interrupts_a_running_cross_product() {
    // The product is ~10M rows (hundreds of megabytes of column writes),
    // so cancelling a few milliseconds in lands mid-kernel: the
    // cooperative poll inside the cross-product tiling loop must observe
    // it and bail, draining the partially filled columns.
    let ds = Dataset::from_ntriples(&cross_doc(3200)).unwrap();
    let plan = cross_plan();
    let token = Arc::new(CancelToken::new());
    let config = ExecConfig::unlimited().with_cancel_token(Arc::clone(&token));
    let ctx = ExecContext::new().with_governor(config.governor().expect("token set"));
    let canceller = std::thread::spawn({
        let token = Arc::clone(&token);
        move || {
            std::thread::sleep(Duration::from_millis(3));
            token.cancel();
        }
    });
    let err = execute_in(&plan, &ds, &config, &ctx).expect_err("cancellation must surface");
    canceller.join().expect("canceller thread joins");
    assert!(
        matches!(err, ExecError::Cancelled),
        "expected Cancelled, got {err}"
    );
    assert_drained(&ctx);
    assert_rerun_identical(
        ctx,
        &chain_plan(),
        &Dataset::from_ntriples(&chain_doc()).unwrap(),
    );
}

#[test]
fn memory_budget_trips_with_typed_fields_and_the_account_drains() {
    let ds = Dataset::from_ntriples(&chain_doc()).unwrap();
    let plan = chain_plan();
    const BUDGET: usize = 256; // bytes — the first materialisation blows it
    for threads in 1..=4usize {
        let config = ExecConfig::unlimited().with_mem_budget(BUDGET);
        let mut ctx = forced_ctx(threads);
        ctx.set_governor(Some(config.governor().expect("budget set")));
        let err = execute_in(&plan, &ds, &config, &ctx).expect_err("budget must trip");
        match &err {
            ExecError::MemoryBudgetExceeded { used, budget, site } => {
                assert_eq!(*budget, BUDGET);
                assert!(*used > BUDGET, "used {used} should exceed budget {BUDGET}");
                assert!(
                    ["worker", "breaker", "operator", "sink", "crossproduct"].contains(site),
                    "unexpected site {site}"
                );
            }
            other => panic!("threads={threads}: expected MemoryBudgetExceeded, got {other}"),
        }
        assert_drained(&ctx);
        assert_rerun_identical(ctx, &plan, &ds);
    }
}

/// Every row its own group: the γ hash state (keys held twice — in the
/// key list and the index — plus accumulators) dwarfs the scanned input,
/// so a budget sized above the scan but below the grouped state trips at
/// the dedicated `"aggregate"` checkpoint, with the typed fields intact
/// and the account drained.
#[test]
fn memory_budget_trips_inside_the_aggregate_hash_state() {
    let mut doc = String::new();
    for i in 0..2000u32 {
        doc.push_str(&format!("<http://e/s{i}> <http://e/p> <http://e/o{i}> .\n"));
    }
    let ds = Dataset::from_ntriples(&doc).unwrap();
    let aggs = vec![hsp_sparql::AggSpec {
        func: hsp_sparql::AggFunc::Count,
        distinct: false,
        arg: None,
        out: Var(2),
        name: "n".into(),
    }];
    let plan = PhysicalPlan::Project {
        input: Box::new(PhysicalPlan::HashAggregate {
            input: Box::new(scan(0, vv(0), cv("p"), vv(1), Order::Pso)),
            group_by: vec![Var(0), Var(1)],
            aggs,
            having: None,
        }),
        projection: vec![
            ("s".into(), Var(0)),
            ("o".into(), Var(1)),
            ("n".into(), Var(2)),
        ],
        distinct: false,
    };
    const BUDGET: usize = 24 * 1024; // scanned input ≈ 16 KiB, γ keys ≈ 32 KiB
    for threads in 1..=4usize {
        let config = ExecConfig::unlimited().with_mem_budget(BUDGET);
        let mut ctx = forced_ctx(threads);
        ctx.set_governor(Some(config.governor().expect("budget set")));
        let err = execute_in(&plan, &ds, &config, &ctx).expect_err("aggregate budget must trip");
        match &err {
            ExecError::MemoryBudgetExceeded { used, budget, site } => {
                assert_eq!(*budget, BUDGET);
                assert!(*used > BUDGET, "used {used} should exceed budget {BUDGET}");
                assert_eq!(
                    *site, "aggregate",
                    "the trip should land at the aggregate checkpoint"
                );
            }
            other => panic!("threads={threads}: expected MemoryBudgetExceeded, got {other}"),
        }
        assert_drained(&ctx);
        assert_rerun_identical(
            ctx,
            &chain_plan(),
            &Dataset::from_ntriples(&chain_doc()).unwrap(),
        );
    }
}

#[test]
fn inert_governor_is_byte_identical_to_ungoverned_execution() {
    let ds = Dataset::from_ntriples(&chain_doc()).unwrap();
    let plan = chain_plan();
    let ungoverned_config = ExecConfig::unlimited();
    let oracle = execute_in(&plan, &ds, &ungoverned_config, &ungoverned_config.context())
        .expect("ungoverned run succeeds");
    for threads in 1..=4usize {
        let config = ExecConfig::unlimited()
            .with_timeout(Duration::from_secs(3600))
            .with_mem_budget(usize::MAX);
        let mut ctx = forced_ctx(threads);
        ctx.set_governor(Some(config.governor().expect("limits set")));
        let out = execute_in(&plan, &ds, &config, &ctx).expect("governed run succeeds");
        assert_eq!(
            out.table, oracle.table,
            "threads={threads}: governed output diverges"
        );
        let gov = ctx.governor().expect("governor attached");
        assert!(gov.checks() > 0, "no checkpoints consulted the governor");
        // The only live allocation at completion is the result table
        // itself; recycling it must zero the account and balance the pool.
        assert_eq!(gov.mem_used(), hsp_engine::table_bytes(&out.table));
        assert_eq!(out.runtime.governor_checks, gov.checks());
        assert_eq!(out.runtime.governor_mem_peak, gov.mem_peak());
        ctx.recycle(out.table);
        assert_eq!(gov.mem_used(), 0);
        let stats = ctx.pool.stats();
        assert_eq!(
            stats.hits + stats.misses,
            stats.returned,
            "threads={threads}: pool imbalance after recycling the result: {stats:?}"
        );
    }
}

#[test]
fn zero_deadline_trips_before_any_work_at_all_thread_counts() {
    let ds = Dataset::from_ntriples(&chain_doc()).unwrap();
    let plan = chain_plan();
    for threads in 1..=4usize {
        let config = ExecConfig::unlimited().with_timeout(Duration::ZERO);
        let mut ctx = forced_ctx(threads);
        ctx.set_governor(Some(config.governor().expect("timeout set")));
        let err = execute_in(&plan, &ds, &config, &ctx).expect_err("deadline must trip");
        assert!(
            matches!(err, ExecError::DeadlineExceeded),
            "threads={threads}: expected DeadlineExceeded, got {err}"
        );
        assert_drained(&ctx);
        assert_rerun_identical(ctx, &plan, &ds);
    }
}
