//! Property tests for the join operators: merge join, hash join and the
//! left-outer join agree with a nested-loop reference on random inputs.

use hsp_engine::binding::BindingTable;
use hsp_engine::ops;
use hsp_rdf::TermId;
use hsp_sparql::Var;
use proptest::prelude::*;

/// A random two-column table `(?0 key, ?payload)` sorted by the key.
fn arb_table(payload_var: u32) -> impl Strategy<Value = BindingTable> {
    proptest::collection::vec((0u32..8, 0u32..50), 0..40).prop_map(move |mut rows| {
        rows.sort();
        let keys: Vec<TermId> = rows.iter().map(|&(k, _)| TermId(k)).collect();
        let payloads: Vec<TermId> = rows.iter().map(|&(_, p)| TermId(100 + p)).collect();
        BindingTable::from_columns(
            vec![Var(0), Var(payload_var)],
            vec![keys, payloads],
            Some(Var(0)),
        )
    })
}

/// Nested-loop inner join on `?0`, output `(?0, ?1, ?2)` rows, sorted.
fn reference_join(left: &BindingTable, right: &BindingTable) -> Vec<Vec<TermId>> {
    let mut out = Vec::new();
    for i in 0..left.len() {
        for j in 0..right.len() {
            if left.value(Var(0), i) == right.value(Var(0), j) {
                out.push(vec![
                    left.value(Var(0), i),
                    left.value(Var(1), i),
                    right.value(Var(2), j),
                ]);
            }
        }
    }
    out.sort();
    out
}

proptest! {
    /// Merge join ≡ hash join ≡ nested loop.
    #[test]
    fn joins_agree_with_reference(left in arb_table(1), right in arb_table(2)) {
        let reference = reference_join(&left, &right);

        let mj = ops::merge_join(&left, &right, Var(0));
        prop_assert_eq!(mj.sorted_rows_for(&[Var(0), Var(1), Var(2)]), reference.clone());
        prop_assert!(mj.check_sortedness());
        prop_assert_eq!(mj.sorted_by(), Some(Var(0)));

        let hj = ops::hash_join(&left, &right, &[Var(0)]);
        prop_assert_eq!(hj.sorted_rows_for(&[Var(0), Var(1), Var(2)]), reference);
    }

    /// Left-outer join row count: one row per match, plus one padded row per
    /// unmatched left row; inner rows are exactly the inner join.
    #[test]
    fn outer_join_semantics(left in arb_table(1), right in arb_table(2)) {
        let inner = reference_join(&left, &right);
        let outer = ops::left_outer_hash_join(&left, &right, &[Var(0)]);
        let matched_left: std::collections::HashSet<TermId> =
            inner.iter().map(|r| r[0]).collect();
        let unmatched = (0..left.len())
            .filter(|&i| !matched_left.contains(&left.value(Var(0), i)))
            .count();
        prop_assert_eq!(outer.len(), inner.len() + unmatched);
        // Every padded row has UNBOUND exactly in the right payload column.
        let padded = (0..outer.len())
            .filter(|&i| outer.value(Var(2), i).is_unbound())
            .count();
        prop_assert_eq!(padded, unmatched);
    }

    /// Union has the right length, variables, and padding.
    #[test]
    fn union_all_properties(a in arb_table(1), b in arb_table(2)) {
        let u = ops::union_all(&a, &b);
        prop_assert_eq!(u.len(), a.len() + b.len());
        prop_assert_eq!(u.vars(), &[Var(0), Var(1), Var(2)]);
        for i in 0..a.len() {
            prop_assert!(u.value(Var(2), i).is_unbound());
            prop_assert!(!u.value(Var(1), i).is_unbound());
        }
        for i in a.len()..u.len() {
            prop_assert!(u.value(Var(1), i).is_unbound());
        }
    }

    /// Cross product size and content.
    #[test]
    fn cross_product_counts(a in arb_table(1), rows_b in proptest::collection::vec(0u32..50, 0..10)) {
        let b = BindingTable::from_columns(
            vec![Var(5)],
            vec![rows_b.iter().map(|&v| TermId(500 + v)).collect()],
            None,
        );
        let x = ops::cross_product(&a, &b);
        prop_assert_eq!(x.len(), a.len() * b.len());
    }

    /// Projection with distinct yields the set of projected rows.
    #[test]
    fn project_distinct_is_a_set(a in arb_table(1)) {
        let p = ops::project(&a, &[("k".into(), Var(0))], true);
        let mut expected: Vec<TermId> = a.column(Var(0)).to_vec();
        expected.sort();
        expected.dedup();
        prop_assert_eq!(p.len(), expected.len());
    }
}

proptest! {
    /// `slice(0, k)` ++ `slice(k, ∞)` partition the input exactly.
    #[test]
    fn slice_partitions_input(table in arb_table(1), k in 0usize..50) {
        let head = ops::slice(&table, 0, Some(k));
        let tail = ops::slice(&table, k, None);
        prop_assert_eq!(head.len() + tail.len(), table.len());
        let mut rows = Vec::new();
        for i in 0..head.len() {
            rows.push(head.row(i));
        }
        for i in 0..tail.len() {
            rows.push(tail.row(i));
        }
        let expected: Vec<Vec<TermId>> = (0..table.len()).map(|i| table.row(i)).collect();
        prop_assert_eq!(rows, expected);
    }

    /// ORDER BY a variable key is a permutation, sorted on that key, and
    /// stable within equal keys.
    #[test]
    fn order_by_permutes_and_sorts(table in arb_table(1), descending in any::<bool>()) {
        use hsp_sparql::{Expr, SortKey};
        // An empty dataset is fine: keys resolve through term decoding, so
        // build a dictionary that knows every id used by the table.
        let mut doc = String::new();
        for i in 0..60 {
            doc.push_str(&format!("<http://e/s{i}> <http://e/p{i}> <http://e/o{i}> .\n"));
        }
        let ds = hsp_store::Dataset::from_ntriples(&doc).unwrap();

        let keys = vec![SortKey { expr: Expr::Var(Var(1)), descending }];
        let sorted = ops::order_by(&ds, &table, &keys);
        prop_assert_eq!(sorted.len(), table.len());
        // Permutation: same multiset of rows.
        prop_assert_eq!(sorted.sorted_rows(), table.sorted_rows());
        // Sorted on the key column (ids here decode to IRIs, which the
        // ORDER BY comparator orders by codepoint; id order and IRI order
        // coincide only per-equal-length names, so compare decoded terms).
        let decoded: Vec<String> = (0..sorted.len())
            .map(|i| ds.dict().term(sorted.value(Var(1), i)).lexical().to_string())
            .collect();
        let mut expected = decoded.clone();
        expected.sort();
        if descending {
            expected.reverse();
        }
        prop_assert_eq!(decoded, expected);
    }

    /// domain_filter ≡ retain-if-in-set, preserving order.
    #[test]
    fn domain_filter_matches_retain(
        table in arb_table(1),
        allowed in proptest::collection::hash_set(0u32..8, 0..8),
    ) {
        use std::collections::HashMap;
        use std::rc::Rc;
        let set: std::collections::HashSet<TermId> =
            allowed.iter().map(|&k| TermId(k)).collect();
        let mut domains = HashMap::new();
        domains.insert(Var(0), Rc::new(set.clone()));
        let filtered = ops::domain_filter(&table, &domains);
        let expected: Vec<Vec<TermId>> = (0..table.len())
            .filter(|&i| set.contains(&table.value(Var(0), i)))
            .map(|i| table.row(i))
            .collect();
        let got: Vec<Vec<TermId>> = (0..filtered.len()).map(|i| filtered.row(i)).collect();
        prop_assert_eq!(got, expected);
        prop_assert!(filtered.check_sortedness());
    }
}
