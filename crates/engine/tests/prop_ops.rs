//! Property tests for the join operators: merge join, hash join and the
//! left-outer join agree with a nested-loop reference on random inputs —
//! including the vectorized kernels against the retired row-at-a-time
//! kernels ([`hsp_engine::reference`]) on repeated-variable (extra shared
//! column), multi-variable-key (packed and CSR layouts), and zero-column
//! (unit) inputs — plus the morsel/pool layer: every kernel property also
//! runs through a pooled, forced-multi-thread execution context and must
//! produce byte-identical tables. The parallel stages each get their own
//! oracle property: the partitioned-counting-sort hash-join build must be
//! byte-identical to the sequential build across all key layouts, the
//! range-partitioned merge join must match both the sequential merge join
//! and the row-at-a-time reference kernel, and the per-worker-evaluator
//! FILTER must keep exactly the sequential row set.

use hsp_engine::binding::BindingTable;
use hsp_engine::{ops, reference, ExecContext, MorselConfig};
use hsp_rdf::TermId;
use hsp_sparql::Var;
use proptest::prelude::*;

/// A random two-column table `(?0 key, ?payload)` sorted by the key.
fn arb_table(payload_var: u32) -> impl Strategy<Value = BindingTable> {
    proptest::collection::vec((0u32..8, 0u32..50), 0..40).prop_map(move |mut rows| {
        rows.sort();
        let keys: Vec<TermId> = rows.iter().map(|&(k, _)| TermId(k)).collect();
        let payloads: Vec<TermId> = rows.iter().map(|&(_, p)| TermId(100 + p)).collect();
        BindingTable::from_columns(
            vec![Var(0), Var(payload_var)],
            vec![keys, payloads],
            Some(Var(0)),
        )
    })
}

/// Nested-loop inner join on `?0`, output `(?0, ?1, ?2)` rows, sorted.
fn reference_join(left: &BindingTable, right: &BindingTable) -> Vec<Vec<TermId>> {
    let mut out = Vec::new();
    for i in 0..left.len() {
        for j in 0..right.len() {
            if left.value(Var(0), i) == right.value(Var(0), j) {
                out.push(vec![
                    left.value(Var(0), i),
                    left.value(Var(1), i),
                    right.value(Var(2), j),
                ]);
            }
        }
    }
    out.sort();
    out
}

proptest! {
    /// Merge join ≡ hash join ≡ nested loop.
    #[test]
    fn joins_agree_with_reference(left in arb_table(1), right in arb_table(2)) {
        let reference = reference_join(&left, &right);

        let mj = ops::merge_join(&left, &right, Var(0));
        prop_assert_eq!(mj.sorted_rows_for(&[Var(0), Var(1), Var(2)]), reference.clone());
        prop_assert!(mj.check_sortedness());
        prop_assert_eq!(mj.sorted_by(), Some(Var(0)));

        let hj = ops::hash_join(&left, &right, &[Var(0)]);
        prop_assert_eq!(hj.sorted_rows_for(&[Var(0), Var(1), Var(2)]), reference);
    }

    /// Left-outer join row count: one row per match, plus one padded row per
    /// unmatched left row; inner rows are exactly the inner join.
    #[test]
    fn outer_join_semantics(left in arb_table(1), right in arb_table(2)) {
        let inner = reference_join(&left, &right);
        let outer = ops::left_outer_hash_join(&left, &right, &[Var(0)]);
        let matched_left: std::collections::HashSet<TermId> =
            inner.iter().map(|r| r[0]).collect();
        let unmatched = (0..left.len())
            .filter(|&i| !matched_left.contains(&left.value(Var(0), i)))
            .count();
        prop_assert_eq!(outer.len(), inner.len() + unmatched);
        // Every padded row has UNBOUND exactly in the right payload column.
        let padded = (0..outer.len())
            .filter(|&i| outer.value(Var(2), i).is_unbound())
            .count();
        prop_assert_eq!(padded, unmatched);
    }

    /// Union has the right length, variables, and padding.
    #[test]
    fn union_all_properties(a in arb_table(1), b in arb_table(2)) {
        let u = ops::union_all(&a, &b);
        prop_assert_eq!(u.len(), a.len() + b.len());
        prop_assert_eq!(u.vars(), &[Var(0), Var(1), Var(2)]);
        for i in 0..a.len() {
            prop_assert!(u.value(Var(2), i).is_unbound());
            prop_assert!(!u.value(Var(1), i).is_unbound());
        }
        for i in a.len()..u.len() {
            prop_assert!(u.value(Var(1), i).is_unbound());
        }
    }

    /// Cross product size and content.
    #[test]
    fn cross_product_counts(a in arb_table(1), rows_b in proptest::collection::vec(0u32..50, 0..10)) {
        let b = BindingTable::from_columns(
            vec![Var(5)],
            vec![rows_b.iter().map(|&v| TermId(500 + v)).collect()],
            None,
        );
        let x = ops::cross_product(&a, &b);
        prop_assert_eq!(x.len(), a.len() * b.len());
    }

    /// Projection with distinct yields the set of projected rows.
    #[test]
    fn project_distinct_is_a_set(a in arb_table(1)) {
        let p = ops::project(&a, &[("k".into(), Var(0))], true);
        let mut expected: Vec<TermId> = a.column(Var(0)).to_vec();
        expected.sort();
        expected.dedup();
        prop_assert_eq!(p.len(), expected.len());
    }
}

proptest! {
    /// `slice(0, k)` ++ `slice(k, ∞)` partition the input exactly.
    #[test]
    fn slice_partitions_input(table in arb_table(1), k in 0usize..50) {
        let head = ops::slice(&table, 0, Some(k));
        let tail = ops::slice(&table, k, None);
        prop_assert_eq!(head.len() + tail.len(), table.len());
        let mut rows = Vec::new();
        for i in 0..head.len() {
            rows.push(head.row(i));
        }
        for i in 0..tail.len() {
            rows.push(tail.row(i));
        }
        let expected: Vec<Vec<TermId>> = (0..table.len()).map(|i| table.row(i)).collect();
        prop_assert_eq!(rows, expected);
    }

    /// ORDER BY a variable key is a permutation, sorted on that key, and
    /// stable within equal keys.
    #[test]
    fn order_by_permutes_and_sorts(table in arb_table(1), descending in any::<bool>()) {
        use hsp_sparql::{Expr, SortKey};
        // An empty dataset is fine: keys resolve through term decoding, so
        // build a dictionary that knows every id used by the table.
        let mut doc = String::new();
        for i in 0..60 {
            doc.push_str(&format!("<http://e/s{i}> <http://e/p{i}> <http://e/o{i}> .\n"));
        }
        let ds = hsp_store::Dataset::from_ntriples(&doc).unwrap();

        let keys = vec![SortKey { expr: Expr::Var(Var(1)), descending }];
        let sorted = ops::order_by(&ds, &table, &keys);
        prop_assert_eq!(sorted.len(), table.len());
        // Permutation: same multiset of rows.
        prop_assert_eq!(sorted.sorted_rows(), table.sorted_rows());
        // Sorted on the key column (ids here decode to IRIs, which the
        // ORDER BY comparator orders by codepoint; id order and IRI order
        // coincide only per-equal-length names, so compare decoded terms).
        let decoded: Vec<String> = (0..sorted.len())
            .map(|i| ds.dict().term(sorted.value(Var(1), i)).lexical().to_string())
            .collect();
        let mut expected = decoded.clone();
        expected.sort();
        if descending {
            expected.reverse();
        }
        prop_assert_eq!(decoded, expected);
    }

    /// Vectorized merge/hash join ≡ the row-at-a-time kernels on every
    /// random input (bit-identical sorted row-sets and metadata).
    #[test]
    fn vectorized_kernels_match_rowwise_kernels(left in arb_table(1), right in arb_table(2)) {
        let hj_new = ops::hash_join(&left, &right, &[Var(0)]);
        let hj_old = reference::hash_join(&left, &right, &[Var(0)]);
        prop_assert_eq!(hj_new.vars(), hj_old.vars());
        prop_assert_eq!(hj_new.sorted_rows(), hj_old.sorted_rows());
        prop_assert_eq!(hj_new.sorted_by(), hj_old.sorted_by());

        let mj_new = ops::merge_join(&left, &right, Var(0));
        let mj_old = reference::merge_join(&left, &right, Var(0));
        prop_assert_eq!(mj_new.sorted_rows(), mj_old.sorted_rows());
        prop_assert_eq!(mj_new.sorted_by(), mj_old.sorted_by());

        let cp_l = ops::project(&left, &[("p".into(), Var(1))], false);
        let cp_r = ops::project(&right, &[("q".into(), Var(2))], false);
        let cp_new = ops::cross_product(&cp_l, &cp_r);
        let cp_old = reference::cross_product(&cp_l, &cp_r);
        prop_assert_eq!(cp_new.sorted_rows(), cp_old.sorted_rows());
    }

    /// domain_filter ≡ retain-if-in-set, preserving order.
    #[test]
    fn domain_filter_matches_retain(
        table in arb_table(1),
        allowed in proptest::collection::hash_set(0u32..8, 0..8),
    ) {
        use std::collections::HashMap;
        use std::rc::Rc;
        let set: std::collections::HashSet<TermId> =
            allowed.iter().map(|&k| TermId(k)).collect();
        let mut domains = HashMap::new();
        domains.insert(Var(0), Rc::new(set.clone()));
        let filtered = ops::domain_filter(&table, &domains);
        let expected: Vec<Vec<TermId>> = (0..table.len())
            .filter(|&i| set.contains(&table.value(Var(0), i)))
            .map(|i| table.row(i))
            .collect();
        let got: Vec<Vec<TermId>> = (0..filtered.len()).map(|i| filtered.row(i)).collect();
        prop_assert_eq!(got, expected);
        prop_assert!(filtered.check_sortedness());
    }
}

// ---------------------------------------------------------------------------
// Vectorized-kernel coverage: extra shared columns, multi-variable keys
// (packed u64 and CSR bucket layouts), and zero-column (unit) tables.
// ---------------------------------------------------------------------------

/// A random table over `(?0, ?1, ?payload)` where ?0 and ?1 draw from tiny
/// domains (lots of key collisions) and the payload is unique-ish.
fn arb_shared_table(payload_var: u32) -> impl Strategy<Value = BindingTable> {
    proptest::collection::vec((0u32..4, 0u32..4, 0u32..40), 0..30).prop_map(move |rows| {
        let c0: Vec<TermId> = rows.iter().map(|&(a, _, _)| TermId(a)).collect();
        let c1: Vec<TermId> = rows.iter().map(|&(_, b, _)| TermId(10 + b)).collect();
        let cp: Vec<TermId> = rows
            .iter()
            .map(|&(_, _, p)| TermId(100 * payload_var + p))
            .collect();
        BindingTable::from_columns(
            vec![Var(0), Var(1), Var(payload_var)],
            vec![c0, c1, cp],
            None,
        )
    })
}

/// A random table over `(?0, ?1, ?2, ?payload)` — three shared key columns,
/// which pushes the hash join into the CSR (wide-key) layout.
fn arb_wide_table(payload_var: u32) -> impl Strategy<Value = BindingTable> {
    proptest::collection::vec((0u32..3, 0u32..3, 0u32..3, 0u32..40), 0..25).prop_map(move |rows| {
        let c0: Vec<TermId> = rows.iter().map(|&(a, _, _, _)| TermId(a)).collect();
        let c1: Vec<TermId> = rows.iter().map(|&(_, b, _, _)| TermId(10 + b)).collect();
        let c2: Vec<TermId> = rows.iter().map(|&(_, _, c, _)| TermId(20 + c)).collect();
        let cp: Vec<TermId> = rows
            .iter()
            .map(|&(_, _, _, p)| TermId(100 * payload_var + p))
            .collect();
        BindingTable::from_columns(
            vec![Var(0), Var(1), Var(2), Var(payload_var)],
            vec![c0, c1, c2, cp],
            None,
        )
    })
}

proptest! {
    /// Hash join on ?0 with ?1 as an extra shared (repeated) variable ≡ the
    /// nested-loop join on all shared variables, ≡ the two-variable-key
    /// (packed u64) hash join on {?0, ?1}.
    #[test]
    fn extra_shared_and_packed_keys_agree_with_nested_loop(
        left in arb_shared_table(5),
        right in arb_shared_table(6),
    ) {
        let oracle = reference::nested_loop_join_rows(&left, &right);
        let out_vars = [Var(0), Var(1), Var(5), Var(6)];

        let one_key = ops::hash_join(&left, &right, &[Var(0)]);
        prop_assert_eq!(one_key.sorted_rows_for(&out_vars), oracle.clone());

        let packed_two = ops::hash_join(&left, &right, &[Var(0), Var(1)]);
        prop_assert_eq!(packed_two.sorted_rows_for(&out_vars), oracle.clone());

        let rowwise = reference::hash_join(&left, &right, &[Var(0)]);
        prop_assert_eq!(one_key.sorted_rows(), rowwise.sorted_rows());

        // Sorting both sides turns the same join into a merge join.
        let ls = ops::sort_by(&left, Var(0));
        let rs = ops::sort_by(&right, Var(0));
        let mj = ops::merge_join(&ls, &rs, Var(0));
        prop_assert_eq!(mj.sorted_rows_for(&out_vars), oracle);
        prop_assert!(mj.check_sortedness());
    }

    /// Three-variable join keys (the CSR wide layout) ≡ nested loop.
    #[test]
    fn wide_csr_keys_agree_with_nested_loop(
        left in arb_wide_table(5),
        right in arb_wide_table(6),
    ) {
        let oracle = reference::nested_loop_join_rows(&left, &right);
        let wide = ops::hash_join(&left, &right, &[Var(0), Var(1), Var(2)]);
        prop_assert_eq!(wide.sorted_rows_for(&[Var(0), Var(1), Var(2), Var(5), Var(6)]), oracle);
    }

    /// Left-outer join with an extra shared column: inner rows match the
    /// nested loop; every unmatched left row survives with UNBOUND padding.
    #[test]
    fn outer_join_with_extra_shared_pads_unmatched(
        left in arb_shared_table(5),
        right in arb_shared_table(6),
    ) {
        let inner = reference::nested_loop_join_rows(&left, &right);
        let outer = ops::left_outer_hash_join(&left, &right, &[Var(0)]);
        let matched: std::collections::HashSet<(TermId, TermId, TermId)> = inner
            .iter()
            .map(|r| (r[0], r[1], r[2]))
            .collect();
        let unmatched = (0..left.len())
            .filter(|&i| {
                !matched.contains(&(
                    left.value(Var(0), i),
                    left.value(Var(1), i),
                    left.value(Var(5), i),
                ))
            })
            .count();
        prop_assert_eq!(outer.len(), inner.len() + unmatched);
        let padded = (0..outer.len())
            .filter(|&i| outer.value(Var(6), i).is_unbound())
            .count();
        prop_assert_eq!(padded, unmatched);
    }

    /// Zero-column (unit) tables flow through cross product, slice, and
    /// empty projection with exact row counts.
    #[test]
    fn unit_tables_flow_through_operators(
        table in arb_shared_table(5),
        unit_rows in 0usize..4,
        offset in 0usize..5,
    ) {
        let unit = BindingTable::unit(unit_rows);
        let x = ops::cross_product(&unit, &table);
        prop_assert_eq!(x.len(), unit_rows * table.len());
        prop_assert_eq!(x.vars(), table.vars());

        let both = ops::cross_product(&unit, &BindingTable::unit(3));
        prop_assert_eq!(both.len(), unit_rows * 3);
        prop_assert!(both.vars().is_empty());

        let sliced = ops::slice(&unit, offset, Some(2));
        prop_assert_eq!(sliced.len(), unit_rows.saturating_sub(offset).min(2));
        prop_assert!(sliced.vars().is_empty());

        let ask = ops::project(&table, &[], true);
        prop_assert_eq!(ask.len(), table.len().min(1));
    }

    /// Every kernel, run through a pooled execution context with a forced
    /// 3-thread morsel pool (tiny morsels, no row threshold, so even these
    /// small inputs split), produces tables byte-identical to the default
    /// path — and a second pass over warm (recycled) buffers agrees too.
    #[test]
    fn pooled_parallel_context_is_byte_identical(
        left in arb_table(1),
        right in arb_table(2),
        threads in 2usize..=4,
    ) {
        let ctx = ExecContext::with_morsel_config(
            MorselConfig::with_threads(threads)
                .with_morsel_rows(4)
                .with_min_parallel_rows(0),
        );
        for _pass in 0..2 {
            let hj = ops::hash_join_in(&ctx, &left, &right, &[Var(0)]);
            prop_assert_eq!(&hj, &ops::hash_join(&left, &right, &[Var(0)]));

            let oj = ops::left_outer_hash_join_in(&ctx, &left, &right, &[Var(0)]);
            prop_assert_eq!(&oj, &ops::left_outer_hash_join(&left, &right, &[Var(0)]));

            let mj = ops::merge_join_in(&ctx, &left, &right, Var(0));
            prop_assert_eq!(&mj, &ops::merge_join(&left, &right, Var(0)));

            let sorted = ops::sort_by_in(&ctx, &hj, Var(1));
            prop_assert_eq!(&sorted, &ops::sort_by(&hj, Var(1)));

            let proj = ops::project_in(&ctx, &hj, &[("k".into(), Var(0))], true);
            prop_assert_eq!(&proj, &ops::project(&hj, &[("k".into(), Var(0))], true));

            let sliced = ops::slice_in(&ctx, &hj, 1, Some(5));
            prop_assert_eq!(&sliced, &ops::slice(&hj, 1, Some(5)));

            let unioned = ops::union_all_in(&ctx, &left, &right);
            prop_assert_eq!(&unioned, &ops::union_all(&left, &right));

            // Recycle this pass's intermediates so the second pass runs on
            // warm buffers (the pool-hit path).
            for table in [hj, oj, mj, sorted, proj, sliced, unioned] {
                ctx.pool.recycle(table);
            }
        }
        prop_assert!(ctx.pool.stats().hits > 0 || left.is_empty() || right.is_empty());
    }

    /// The morsel-parallel probe agrees with the nested-loop oracle on the
    /// extra-shared-column inputs (the worker-side extra-pair check).
    #[test]
    fn pooled_parallel_probe_matches_nested_loop(
        left in arb_shared_table(5),
        right in arb_shared_table(6),
    ) {
        let ctx = ExecContext::with_morsel_config(
            MorselConfig::with_threads(3)
                .with_morsel_rows(4)
                .with_min_parallel_rows(0),
        );
        let oracle = reference::nested_loop_join_rows(&left, &right);
        let joined = ops::hash_join_in(&ctx, &left, &right, &[Var(0)]);
        prop_assert_eq!(joined.sorted_rows_for(&[Var(0), Var(1), Var(5), Var(6)]), oracle);
    }

    /// The parallel hash-join build (morsel-parallel hashing + partitioned
    /// counting sort) produces a table **byte-identical** to the
    /// sequential build on arbitrary inputs, for both the packed-u64
    /// layout (1- and 2-column keys) and the CSR/wide layout (3-column
    /// keys) — and a join probing the parallel table matches the
    /// [`hsp_engine::reference`] nested-loop oracle.
    #[test]
    fn parallel_build_table_matches_sequential_all_layouts(
        left in arb_wide_table(5),
        right in arb_wide_table(6),
        threads in 2usize..=4,
    ) {
        use hsp_engine::kernel::BuildTable;
        let config = MorselConfig::with_threads(threads)
            .with_morsel_rows(4)
            .with_min_parallel_rows(0);
        for width in 1..=3u32 {
            let cols: Vec<&[TermId]> = (0..width).map(|i| right.column(Var(i))).collect();
            let sequential = BuildTable::build(&cols, right.len());
            let (parallel, _) = BuildTable::build_par(&cols, right.len(), &config);
            prop_assert_eq!(parallel, sequential, "width={}", width);
        }
        // End-to-end: a forced-parallel join over every key width agrees
        // with the nested-loop oracle on all shared variables.
        let ctx = ExecContext::with_morsel_config(config);
        let oracle = reference::nested_loop_join_rows(&left, &right);
        let wide = ops::hash_join_in(&ctx, &left, &right, &[Var(0), Var(1), Var(2)]);
        prop_assert_eq!(
            wide.sorted_rows_for(&[Var(0), Var(1), Var(2), Var(5), Var(6)]),
            oracle
        );
    }

    /// The range-partitioned parallel merge join is byte-identical to the
    /// sequential merge join and agrees with the row-at-a-time
    /// [`reference::merge_join`] oracle on arbitrary sorted inputs
    /// (including an extra shared non-key column checked inside every
    /// partition).
    #[test]
    fn parallel_merge_join_matches_reference(
        left in arb_table(1),
        right in arb_table(2),
        threads in 2usize..=4,
    ) {
        let ctx = ExecContext::with_morsel_config(
            MorselConfig::with_threads(threads)
                .with_morsel_rows(4)
                .with_min_parallel_rows(0),
        );
        let sequential = ops::merge_join(&left, &right, Var(0));
        let parallel = ops::merge_join_in(&ctx, &left, &right, Var(0));
        prop_assert_eq!(&parallel, &sequential);
        let oracle = reference::merge_join(&left, &right, Var(0));
        prop_assert_eq!(parallel.sorted_rows(), oracle.sorted_rows());
        prop_assert_eq!(parallel.sorted_by(), oracle.sorted_by());
    }

    /// Parallel merge join with an extra shared (repeated) variable:
    /// byte-identical to sequential, row-set-identical to the nested-loop
    /// oracle over all shared variables.
    #[test]
    fn parallel_merge_join_with_shared_var_matches_oracle(
        left in arb_shared_table(5),
        right in arb_shared_table(6),
        threads in 2usize..=4,
    ) {
        let ls = ops::sort_by(&left, Var(0));
        let rs = ops::sort_by(&right, Var(0));
        let ctx = ExecContext::with_morsel_config(
            MorselConfig::with_threads(threads)
                .with_morsel_rows(4)
                .with_min_parallel_rows(0),
        );
        let sequential = ops::merge_join(&ls, &rs, Var(0));
        let parallel = ops::merge_join_in(&ctx, &ls, &rs, Var(0));
        prop_assert_eq!(&parallel, &sequential);
        let oracle = reference::nested_loop_join_rows(&left, &right);
        prop_assert_eq!(parallel.sorted_rows_for(&[Var(0), Var(1), Var(5), Var(6)]), oracle);
    }

    /// The morsel-parallel FILTER (per-worker evaluators) keeps exactly
    /// the rows the sequential evaluation keeps, byte-identically —
    /// exercised through a REGEX expression so every worker compiles into
    /// its own cache.
    #[test]
    fn parallel_filter_matches_sequential(
        rows in proptest::collection::vec(0u32..60, 0..50),
        threads in 2usize..=4,
    ) {
        use hsp_sparql::{Expr, FilterExpr, Func};
        let mut doc = String::new();
        for i in 0..60 {
            doc.push_str(&format!("<http://e/s{i}> <http://e/p> \"val {i}\" .\n"));
        }
        let ds = hsp_store::Dataset::from_ntriples(&doc).unwrap();
        // A table over ?0 whose ids all decode through the dictionary.
        let ids: Vec<TermId> = rows
            .iter()
            .map(|&v| ds.dict().id(&hsp_rdf::Term::literal(format!("val {v}"))).unwrap())
            .collect();
        let table = BindingTable::from_columns(vec![Var(0)], vec![ids], None);
        let expr = FilterExpr::Complex(Box::new(Expr::Call {
            func: Func::Regex,
            args: vec![
                Expr::Var(Var(0)),
                Expr::Const(hsp_rdf::Term::literal(r"val [0-2]\d?$")),
            ],
        }));
        let sequential = ops::filter_in(&ExecContext::with_threads(1), &ds, &table, &expr);
        let ctx = ExecContext::with_morsel_config(
            MorselConfig::with_threads(threads)
                .with_morsel_rows(4)
                .with_min_parallel_rows(0),
        );
        let parallel = ops::filter_in(&ctx, &ds, &table, &expr);
        prop_assert_eq!(parallel, sequential);
    }

    /// The parallel merge sort behind the sort order-enforcer is
    /// byte-identical to the sequential stable sort, including tie order
    /// (tiny key domain → long runs of equal keys).
    #[test]
    fn parallel_sort_by_matches_sequential(
        rows in proptest::collection::vec((0u32..4, 0u32..50), 0..60),
        threads in 2usize..=4,
    ) {
        let keys: Vec<TermId> = rows.iter().map(|&(k, _)| TermId(k)).collect();
        let payloads: Vec<TermId> = rows.iter().map(|&(_, p)| TermId(100 + p)).collect();
        let table = BindingTable::from_columns(vec![Var(0), Var(1)], vec![keys, payloads], None);
        let sequential = ops::sort_by_in(&ExecContext::with_threads(1), &table, Var(0));
        let ctx = ExecContext::with_morsel_config(
            MorselConfig::with_threads(threads)
                .with_morsel_rows(4)
                .with_min_parallel_rows(0),
        );
        let parallel = ops::sort_by_in(&ctx, &table, Var(0));
        prop_assert_eq!(parallel, sequential);
    }

    /// The parallel ORDER BY merge (per-worker sorted runs + run merges)
    /// is byte-identical to the sequential stable sort under the SPARQL
    /// value order, ascending and descending.
    #[test]
    fn parallel_order_by_matches_sequential(
        rows in proptest::collection::vec(0u32..40, 0..50),
        descending in any::<bool>(),
        threads in 2usize..=4,
    ) {
        use hsp_sparql::{Expr, SortKey};
        let mut doc = String::new();
        for i in 0..40 {
            doc.push_str(&format!("<http://e/s{i}> <http://e/p> \"{}\" .\n", i % 7));
        }
        let ds = hsp_store::Dataset::from_ntriples(&doc).unwrap();
        let ids: Vec<TermId> = rows
            .iter()
            .map(|&v| ds.dict().id(&hsp_rdf::Term::literal(format!("{}", v % 7))).unwrap())
            .collect();
        let tag: Vec<TermId> = (0..rows.len() as u32).map(TermId).collect();
        let table = BindingTable::from_columns(vec![Var(0), Var(1)], vec![ids, tag], None);
        let keys = vec![SortKey { expr: Expr::Var(Var(0)), descending }];
        let sequential = ops::order_by_in(&ExecContext::with_threads(1), &ds, &table, &keys);
        let ctx = ExecContext::with_morsel_config(
            MorselConfig::with_threads(threads)
                .with_morsel_rows(4)
                .with_min_parallel_rows(0),
        );
        let parallel = ops::order_by_in(&ctx, &ds, &table, &keys);
        prop_assert_eq!(parallel, sequential);
    }

    /// DISTINCT projection over three columns (the sort-index dedup path)
    /// keeps exactly the first occurrence of each distinct row, in order.
    #[test]
    fn distinct_three_columns_keeps_first_occurrences(table in arb_shared_table(5)) {
        let projection = vec![
            ("a".to_string(), Var(0)),
            ("b".to_string(), Var(1)),
            ("c".to_string(), Var(5)),
        ];
        let got = ops::project(&table, &projection, true);
        // Oracle: row-at-a-time first-occurrence dedup.
        let mut seen = std::collections::HashSet::new();
        let mut expected: Vec<Vec<TermId>> = Vec::new();
        for i in 0..table.len() {
            let row = table.row(i);
            if seen.insert(row.clone()) {
                expected.push(row);
            }
        }
        prop_assert_eq!(got.len(), expected.len());
        let got_rows: Vec<Vec<TermId>> = (0..got.len()).map(|i| got.row(i)).collect();
        prop_assert_eq!(got_rows, expected);
    }
}
