//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace must build with **no network access**, so instead of the
//! real `rand` we ship a tiny deterministic implementation of exactly the
//! API subset the workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::random_range`] and [`Rng::random_bool`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! solid for data generation and fully reproducible. It is, of course, not
//! cryptographically secure, and its streams differ from the real `StdRng`
//! (which is fine: all seeds in this repo are internal).

/// Uniform sampling from a range, the subset of `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Sample a value uniformly from `self`.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

/// The raw-entropy trait: everything else is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Primitive types uniformly samplable from 64 random bits. The single
/// blanket [`SampleRange`] impl below is what lets `random_range(1..500)`
/// infer its integer type the way the real crate does.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample in `[lo, hi)`.
    fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
    /// Uniform sample in `[lo, hi]`.
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is ~2^-64 for the small spans used here.
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
            fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// The derived-sampling trait (the `rand` 0.9 method names).
pub trait Rng: RngCore + Sized {
    /// A uniform sample from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of [0, 1]");
        // 53 high bits → uniform f64 in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// A uniform random value (bool only — the sole `random()` use case here).
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// Types samplable uniformly from raw bits (minimal `Standard` analogue).
pub trait Standard {
    /// Derive a value from the RNG.
    fn from_rng(rng: &mut dyn RngCore) -> Self;
}

impl Standard for bool {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

/// Deterministic seeding, the subset of `rand`'s `SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! The standard generator.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u32..1000), b.random_range(0u32..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: Vec<u32> = (0..32)
            .map(|_| StdRng::seed_from_u64(7).random_range(0..100))
            .collect();
        let diff: Vec<u32> = (0..32).map(|_| c.random_range(0..100)).collect();
        assert_ne!(same, diff);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
