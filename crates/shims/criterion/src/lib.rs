//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! crate.
//!
//! This workspace must build with **no network access**, so benchmarks run
//! against a small wall-clock harness implementing the criterion API subset
//! they use: `Criterion` with `sample_size` / `warm_up_time` /
//! `measurement_time`, benchmark groups, `bench_function` /
//! `bench_with_input`, `Bencher::iter` / `iter_batched`, `BenchmarkId`,
//! `Throughput`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Methodology: each benchmark is warmed up for `warm_up_time`, then
//! `sample_size` samples are taken; each sample runs enough iterations to
//! fill `measurement_time / sample_size` and records the mean per-iteration
//! time. The report prints the median sample with min/max spread —
//! deliberately simple, but stable enough to compare kernels before/after
//! an optimisation on the same machine.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortises setup (ignored: setup is always run
/// per-batch, outside the timed section).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A `group_or_function/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `"{name}/{parameter}"`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter (used when the group name already identifies the
    /// function).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark identifier.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The measurement harness configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Total sampling duration target.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.clone(), id.into_id(), None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let config = self.clone();
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            config,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    config: Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.config.sample_size = n;
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_id());
        run_one(self.config.clone(), label, self.throughput, f);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_id());
        run_one(self.config.clone(), label, self.throughput, |b| f(b, input));
        self
    }

    /// End the group (report flushing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// The per-benchmark measurement driver handed to benchmark closures.
pub struct Bencher {
    mode: BenchMode,
    /// Mean nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
    sample_size: usize,
    warm_up_time: Duration,
    sample_time: Duration,
}

enum BenchMode {
    WarmUp,
    Measure,
}

impl Bencher {
    /// Measure `f` (called in a loop; its return value is black-boxed).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            BenchMode::WarmUp => {
                let start = Instant::now();
                while start.elapsed() < self.warm_up_time {
                    black_box(f());
                }
            }
            BenchMode::Measure => {
                // Calibrate iterations per sample from a single run.
                let start = Instant::now();
                black_box(f());
                let once = start.elapsed().max(Duration::from_nanos(1));
                let iters =
                    (self.sample_time.as_nanos() / once.as_nanos()).clamp(1, 1 << 24) as u64;
                for _ in 0..self.sample_size {
                    let start = Instant::now();
                    for _ in 0..iters {
                        black_box(f());
                    }
                    let elapsed = start.elapsed();
                    self.samples.push(elapsed.as_nanos() as f64 / iters as f64);
                }
            }
        }
    }

    /// Measure `routine` over fresh inputs from `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        match self.mode {
            BenchMode::WarmUp => {
                let start = Instant::now();
                while start.elapsed() < self.warm_up_time {
                    let input = setup();
                    black_box(routine(input));
                }
            }
            BenchMode::Measure => {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                let once = start.elapsed().max(Duration::from_nanos(1));
                let iters =
                    (self.sample_time.as_nanos() / once.as_nanos()).clamp(1, 1 << 16) as u64;
                for _ in 0..self.sample_size {
                    let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
                    let start = Instant::now();
                    for input in inputs {
                        black_box(routine(input));
                    }
                    let elapsed = start.elapsed();
                    self.samples.push(elapsed.as_nanos() as f64 / iters as f64);
                }
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    config: Criterion,
    label: String,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let sample_time = config
        .measurement_time
        .div_f64(config.sample_size as f64)
        .max(Duration::from_micros(200));
    let mut bencher = Bencher {
        mode: BenchMode::WarmUp,
        samples: Vec::new(),
        sample_size: config.sample_size,
        warm_up_time: config.warm_up_time,
        sample_time,
    };
    f(&mut bencher);
    bencher.mode = BenchMode::Measure;
    f(&mut bencher);

    let mut samples = std::mem::take(&mut bencher.samples);
    if samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 / (median / 1e9))
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.0} B/s", n as f64 / (median / 1e9))
        }
        None => String::new(),
    };
    println!(
        "{label:<50} time: [{} {} {}]{rate}",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(max)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Define a benchmark group function, in either criterion syntax.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`); the
            // wall-clock harness has no options, so they are ignored.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("smoke", |b| b.iter(|| black_box(2u64 + 2)));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(2);
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("with-input", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput)
        });
        group.finish();
    }
}
